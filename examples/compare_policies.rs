//! Comparing the three policy-optimization schemes of Section 4.2 on one
//! tiny setting: combinatorial MCTS (ours), conventional AlphaGo-like MCTS,
//! and PPO — including the search-efficiency ablation (tree sizes) behind
//! the paper's 3.48× sample-generation claim.
//!
//! Run with `cargo run --release --example compare_policies`.

use oarsmt::selector::UniformSelector;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_mcts::{AlphaGoMcts, CombinatorialMcts, MctsConfig};
use oarsmt_nn::unet::UNetConfig;
use oarsmt_rl::ppo::{PpoConfig, PpoTrainer};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 1, (4, 6)), 99);
    let cases = gen.generate_many(8);
    let cfg = MctsConfig {
        base_iterations: 8 * 36,
        base_size: 36,
        use_critic: false,
        ..MctsConfig::default()
    };

    // An uncommitted selector isolates the search schemes themselves.
    let mut selector = UniformSelector::new(0.08);

    println!("search-efficiency comparison (same iteration budget):");
    let mut comb_nodes = 0usize;
    let mut conv_nodes = 0usize;
    let mut comb_time = std::time::Duration::ZERO;
    let mut conv_time = std::time::Duration::ZERO;
    let mut comb_gain = 0.0f64;
    let mut conv_gain = 0.0f64;
    let mut n = 0usize;
    for graph in &cases {
        let t0 = Instant::now();
        let Ok(comb) = CombinatorialMcts::new(cfg.clone()).search(graph, &mut selector) else {
            continue;
        };
        comb_time += t0.elapsed();
        let t0 = Instant::now();
        let conv = AlphaGoMcts::new(cfg.clone()).search(graph, &mut selector)?;
        conv_time += t0.elapsed();
        comb_nodes += comb.nodes_created;
        conv_nodes += conv.nodes_created;
        comb_gain += 1.0 - comb.final_cost / comb.initial_cost;
        conv_gain += 1.0 - conv.final_cost / conv.initial_cost;
        n += 1;
    }
    println!(
        "  combinatorial: {comb_nodes} nodes, {comb_time:?}, avg cost gain {:.2}%",
        100.0 * comb_gain / n as f64
    );
    println!(
        "  conventional : {conv_nodes} nodes, {conv_time:?}, avg cost gain {:.2}%",
        100.0 * conv_gain / n as f64
    );
    println!("  (paper: combinatorial sample generation is 3.48x faster than conventional)");

    println!("\nppo baseline (one iteration on the same distribution):");
    let mut ppo = PpoTrainer::new(
        PpoConfig {
            iterations: 1,
            episodes_per_iter: 8,
            size: (6, 6, 1),
            pin_range: (4, 6),
            seed: 99,
            ..PpoConfig::default()
        },
        UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed: 99,
        },
    );
    for report in ppo.run() {
        println!("  {report}");
    }
    println!("  (paper: the PPO router trails both MCTS routers throughout training)");
    Ok(())
}
