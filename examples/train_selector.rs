//! Training the Steiner-point selector with combinatorial MCTS — a small
//! end-to-end run of the paper's Fig. 8 loop: search generates labels, the
//! selector fits them, and the improved selector powers the next stage.
//!
//! Run with `cargo run --release --example train_selector`. Pass a stage
//! count to train longer: `cargo run --release --example train_selector 6`.

use oarsmt::selector::NeuralSelector;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_nn::unet::UNetConfig;
use oarsmt_rl::schedule::smoke_schedule;
use oarsmt_rl::trainer::{st_to_mst_over_cases, InferenceMode, Trainer, TrainerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let config = TrainerConfig {
        stages,
        ..smoke_schedule(42)
    };
    println!(
        "training a selector for {stages} stages on {:?} layouts",
        config.sizes
    );

    let mut selector = NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 4,
        levels: 2,
        seed: 42,
    });
    let eval_cases =
        CaseGenerator::new(GeneratorConfig::tiny(6, 6, 1, (4, 5)), 777).generate_many(20);
    let before = st_to_mst_over_cases(&mut selector, InferenceMode::OneShot, &eval_cases);

    let mut trainer = Trainer::new(config);
    for report in trainer.run(&mut selector)? {
        println!("  {report}");
    }

    let after = st_to_mst_over_cases(&mut selector, InferenceMode::OneShot, &eval_cases);
    println!("avg ST-to-MST ratio: {before:.4} before -> {after:.4} after");
    println!("(lower is better; 1.0 means the selected Steiner points bought nothing)");

    // Persist the weights for later reuse.
    let path = std::env::temp_dir().join("oarsmt_trained_selector.bin");
    selector.save(&path)?;
    println!("weights saved to {path:?}");
    Ok(())
}
