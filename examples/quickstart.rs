//! Quickstart: build a multi-layer layout, route it with the RL router, and
//! inspect the resulting ML-OARSMT.
//!
//! Run with `cargo run --release --example quickstart`.

use oarsmt::rl_router::RlRouter;
use oarsmt::selector::MedianHeuristicSelector;
use oarsmt_geom::{GridPoint, HananGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 9x9 Hanan grid with two routing layers: unit horizontal cost,
    // doubled vertical cost, via cost 3.
    let mut graph = HananGraph::uniform(9, 9, 2, 1.0, 2.0, 3.0);

    // Five pins spread over both layers.
    for (h, v, m) in [(0, 4, 0), (8, 4, 0), (4, 0, 1), (4, 8, 1), (7, 7, 0)] {
        graph.add_pin(GridPoint::new(h, v, m))?;
    }

    // A wall of obstacles on layer 0 that forces detours or layer changes.
    for v in 2..7 {
        graph.add_obstacle_vertex(GridPoint::new(5, v, 0))?;
    }

    // Route. The median-heuristic selector needs no training; swap in
    // `NeuralSelector` + `oarsmt_rl::Trainer` for the paper's learned agent.
    let mut router = RlRouter::new(MedianHeuristicSelector::new());
    let outcome = router.route(&graph)?;

    println!("{graph}");
    println!("selected steiner candidates: {:?}", outcome.steiner_points);
    println!(
        "routed tree: cost {}, {} edges, {} vias",
        outcome.tree.cost(),
        outcome.tree.edge_count(),
        outcome.tree.via_count(&graph)
    );
    println!(
        "selection took {:?}, total {:?}",
        outcome.select_time, outcome.total_time
    );
    assert!(outcome.tree.spans_in(&graph, graph.pins()));
    assert!(outcome.tree.is_tree());
    println!("tree spans all pins and is cycle-free");
    Ok(())
}
