//! Routing a physical layout with macros and routing blockages — the
//! scenario the paper's introduction motivates: "macros, routing blockages,
//! or pre-routed wires are often encountered and multiple routing layers
//! are in use."
//!
//! Starts from *physical coordinates* (database units), reduces to a 3D
//! Hanan grid graph, and compares the RL router against the three
//! algorithmic baselines on the same layout.
//!
//! Run with `cargo run --release --example macro_blockage_routing`.

use oarsmt::rl_router::RlRouter;
use oarsmt::selector::MedianHeuristicSelector;
use oarsmt_geom::{Coord, HananGraph, Layout, Obstacle, Pin, Rect};
use oarsmt_router::{Lin18Router, Liu14Router, SpanningRouter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 200x160 um block with three routing layers. Two macros block the
    // lower layers, a pre-routed power strap blocks a thin channel, and six
    // pins of one net must be connected.
    let layout = Layout::new(3)
        .with_pin(Pin::new(Coord::new(10, 20), 0))
        .with_pin(Pin::new(Coord::new(180, 30), 0))
        .with_pin(Pin::new(Coord::new(20, 140), 1))
        .with_pin(Pin::new(Coord::new(190, 150), 0))
        .with_pin(Pin::new(Coord::new(100, 10), 2))
        .with_pin(Pin::new(Coord::new(110, 150), 1))
        // Macro A blocks layers 0 and 1.
        .with_obstacle(Obstacle::new(Rect::new(40, 40, 90, 110), 0))
        .with_obstacle(Obstacle::new(Rect::new(40, 40, 90, 110), 1))
        // Macro B blocks layer 0 only.
        .with_obstacle(Obstacle::new(Rect::new(120, 60, 170, 120), 0))
        // A pre-routed strap: a thin blockage on layer 1.
        .with_obstacle(Obstacle::new(Rect::new(0, 125, 200, 128), 1))
        .with_via_cost(4.0);

    let graph = HananGraph::from_layout(&layout)?;
    println!("physical layout reduced to {graph}");
    println!(
        "hanan reduction: {} vertices instead of a {}x{}x3 uniform grid",
        graph.len(),
        201,
        161
    );

    let spanning = SpanningRouter::new().route(&graph)?;
    let liu14 = Liu14Router::new().route(&graph)?;
    let lin18 = Lin18Router::new().route(&graph)?;
    let mut rl = RlRouter::new(MedianHeuristicSelector::new());
    let ours = rl.route(&graph)?;

    println!("spanning-graph [12]-style : cost {:.0}", spanning.cost());
    println!("geometric-red. [16]-style : cost {:.0}", liu14.cost());
    println!("maze+retrace   [14]-style : cost {:.0}", lin18.cost());
    println!(
        "RL router (ours)          : cost {:.0} ({} steiner candidates, {} vias)",
        ours.tree.cost(),
        ours.steiner_points.len(),
        ours.tree.via_count(&graph)
    );
    assert!(ours.tree.spans_in(&graph, graph.pins()));
    assert!(ours.tree.cost() <= spanning.cost());
    Ok(())
}
