//! Multi-net routing of a small SoC-like block: several nets share three
//! routing layers; each routed net becomes a pre-routed wire (an obstacle)
//! for the nets that follow — the production scenario the paper's
//! introduction motivates.
//!
//! Also demonstrates the physical-geometry export and the ASCII renderer.
//!
//! Run with `cargo run --release --example multi_net_soc`.

use oarsmt::multi_net::{MultiNetRouter, Net};
use oarsmt::selector::MedianHeuristicSelector;
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_router::segments::{render_layer, RouteGeometry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 14x10 block with 3 routing layers; a macro blocks layers 0-1 in the
    // middle.
    let mut template = HananGraph::uniform(14, 10, 3, 1.0, 1.0, 3.0);
    for h in 5..9 {
        for v in 3..7 {
            for m in 0..2 {
                template.add_obstacle_vertex(GridPoint::new(h, v, m))?;
            }
        }
    }

    let p = GridPoint::new;
    let nets = vec![
        Net::new(
            "clk",
            vec![p(0, 0, 0), p(13, 0, 0), p(13, 9, 0), p(0, 9, 0)],
        ),
        Net::new("data0", vec![p(1, 2, 0), p(12, 2, 0), p(6, 8, 2)]),
        Net::new("data1", vec![p(1, 7, 0), p(12, 7, 0)]),
        Net::new("irq", vec![p(3, 0, 1), p(3, 9, 1)]),
        Net::new("rst", vec![p(10, 0, 1), p(10, 9, 1)]),
    ];

    let mut router = MultiNetRouter::new(MedianHeuristicSelector::new());
    let outcome = router.route_nets(&template, &nets)?;
    println!("{outcome}");

    for net in &outcome.nets {
        match &net.tree {
            Some(tree) => {
                let geometry = RouteGeometry::extract(&template, tree);
                println!("  {:>6}: cost {:>5.0}, {}", net.name, tree.cost(), geometry);
            }
            None => println!("  {:>6}: FAILED (congested)", net.name),
        }
    }

    // Render the first routed net's layer 0 as ASCII art.
    if let Some(tree) = outcome.nets.first().and_then(|n| n.tree.as_ref()) {
        println!("\n{} on layer 0:", outcome.nets[0].name);
        print!("{}", render_layer(&template, tree, 0));
    }
    assert!(outcome.failed <= 1, "this floorplan has plenty of room");
    Ok(())
}
