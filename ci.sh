#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests, docs. Run from the repo root.
# Fails fast on the first broken step, with the same settings the repo's
# tooling assumes (clippy warnings are errors, rustdoc must be clean).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> oarsmt-lint (interprocedural determinism / zero-alloc / panic-freedom invariants)"
# --deny-stale keeps lint-baseline.txt honest (a fixed finding must leave
# the baseline); the JSON report is a checked CI artifact with call-chain
# attribution for every transitive finding.
mkdir -p target
cargo run -q -p oarsmt-lint -- --deny-stale --json > target/lint-report.json \
    || { cat target/lint-report.json; exit 1; }

echo "==> feature matrix (naive-ref oracle, no-default-features, telemetry-timing)"
cargo check -q -p oarsmt-nn --features naive-ref
cargo check -q --workspace --no-default-features
cargo check -q -p oarsmt-telemetry --features telemetry-timing
cargo test -q -p oarsmt-telemetry --features telemetry-timing

echo "==> simd lane (AVX2+FMA kernels build, lint clean, tests pass on any host)"
cargo clippy -q -p oarsmt-nn --all-targets --features simd -- -D warnings
cargo test -q -p oarsmt-nn --features simd
cargo test -q -p oarsmt --features simd batch
cargo check -q -p oarsmt-bench --features simd
cargo check -q -p oarsmt-repro --features simd

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> counter determinism (bit-identical totals across thread counts, trace recorder armed)"
cargo test -q --test parallel_determinism counter_totals

echo "==> allocation sanitizer (zero steady-state allocs on registered hot paths, both kernel lanes)"
cargo test --release -q -p oarsmt-lint --features alloc-count,simd --test alloc_sanitizer

echo "==> route-context property tests"
cargo test -q -p oarsmt-router --test context_properties

echo "==> queue-policy equivalence (Dial == heap oracle bit-identity, A* golden pins)"
cargo test -q -p oarsmt-router --test queue_equivalence

echo "==> batched-path equivalence (batch == sequential bit-identity at nn/core/rl levels)"
cargo test -q -p oarsmt-nn batch
cargo test -q -p oarsmt batch
cargo test -q -p oarsmt-rl --test batch_equivalence

echo "==> dijkstra_bench smoke (quick mode, asserts heap/Dial checksum + op-count identity)"
cargo run --release -q -p oarsmt-bench --bin dijkstra_bench -- --quick \
    --out target/BENCH_dijkstra_smoke.json

echo "==> critic_throughput smoke (quick mode, checks fresh/reused bit-identity)"
cargo run --release -q -p oarsmt-bench --bin critic_throughput -- --quick \
    --out target/BENCH_critic_smoke.json

echo "==> unet_throughput smoke (quick mode, asserts GEMM == naive oracle and baseline checksums)"
cargo run --release -q -p oarsmt-bench --bin unet_throughput -- --quick \
    --out target/BENCH_unet_smoke.json

echo "==> selector_batch_bench smoke (quick mode, asserts batch == single bit-identity at B in {1,4,16})"
cargo run --release -q -p oarsmt-bench --bin selector_batch_bench -- --quick \
    --out target/BENCH_batch_smoke.json

echo "==> oarsmt report smoke (renders the telemetry embedded in the quick artifacts)"
cargo run --release -q -p oarsmt-repro --bin oarsmt -- report \
    target/BENCH_critic_smoke.json > /dev/null
cargo run --release -q -p oarsmt-repro --bin oarsmt -- report \
    target/BENCH_critic_smoke.json target/BENCH_unet_smoke.json > /dev/null

echo "==> regression gate (report --check: quick smokes vs committed baselines under report.toml)"
cargo run --release -q -p oarsmt-repro --bin oarsmt -- report --check \
    target/BENCH_critic_smoke.json \
    crates/bench/artifacts/BENCH_critic_quick_baseline.json --policy report.toml
cargo run --release -q -p oarsmt-repro --bin oarsmt -- report --check \
    target/BENCH_dijkstra_smoke.json \
    crates/bench/artifacts/BENCH_dijkstra_quick_baseline.json --policy report.toml
# The gate must actually gate: a perturbed counter in a copy of the
# artifact has to fail the check with a nonzero exit.
sed '/"record":"counter","name":"dijkstra_pops"/s/"value":[0-9]*/"value":1/' \
    target/BENCH_critic_smoke.json > target/BENCH_critic_perturbed.json
if cargo run --release -q -p oarsmt-repro --bin oarsmt -- report --check \
    target/BENCH_critic_perturbed.json \
    crates/bench/artifacts/BENCH_critic_quick_baseline.json \
    --policy report.toml > /dev/null 2>&1; then
    echo "ERROR: report --check passed a perturbed counter" >&2
    exit 1
fi

echo "==> trace smoke (flight-record a route, export + verify Chrome trace_event JSON)"
cargo run --release -q -p oarsmt-repro --bin oarsmt -- \
    gen 8 8 2 4 42 target/trace_case.json > /dev/null
cargo run --release -q -p oarsmt-repro --bin oarsmt -- \
    trace target/trace_case.json --out target/trace_smoke.json > /dev/null
cargo run --release -q -p oarsmt-repro --bin oarsmt -- \
    trace --verify target/trace_smoke.json

echo "==> runlog round-trip (bench writes runs/<id>/metrics.jsonl, report renders it)"
rm -rf target/runs/ci-smoke
cargo run --release -q -p oarsmt-bench --bin critic_throughput -- --quick \
    --out target/BENCH_critic_runlog_smoke.json \
    --runlog target/runs/ci-smoke > /dev/null
cargo run --release -q -p oarsmt-repro --bin oarsmt -- report \
    target/runs/ci-smoke > /dev/null

echo "==> BENCH_summary.json (regenerate from committed artifacts, must match the committed file)"
cargo run --release -q -p oarsmt-repro --bin oarsmt -- report \
    --summary crates/bench/artifacts --out target/BENCH_summary.json > /dev/null
cmp target/BENCH_summary.json BENCH_summary.json

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> ci.sh: all green"
