#!/usr/bin/env bash
# Local CI gate: formatting, lints, tests, docs. Run from the repo root.
# Fails fast on the first broken step, with the same settings the repo's
# tooling assumes (clippy warnings are errors, rustdoc must be clean).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> ci.sh: all green"
