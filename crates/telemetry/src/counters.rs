//! Tier A: deterministic, always-on `u64` counters.
//!
//! Counters are registered statically in the [`Counter`] enum and stored in
//! a fixed array ([`CounterSet`]) embedded by value in the hot-path
//! workspaces. The increment helpers are `#[inline]` branch-free array adds
//! and are registered in `lint.toml` as zero-allocation hot-path functions;
//! adding a counter means adding an enum variant, a name in
//! [`COUNTER_NAMES`], and the increment at the site being measured —
//! nothing is configured at runtime.
//!
//! Determinism contract: a counter may only count *events of the
//! computation itself* (pops, relaxations, dispatches, MACs), never
//! anything environmental (time, addresses, thread ids). Under that
//! contract the per-job deltas are pure functions of the job inputs, and
//! because `u64` addition is commutative, folding them in index order —
//! which `oarsmt::parallel` guarantees — yields totals that are
//! bit-identical for any thread count.

/// Every Tier A counter. The discriminant is the index into
/// [`CounterSet`] / [`COUNTER_NAMES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Dijkstra heap pops that survived the stale-entry check.
    DijkstraPops,
    /// Edge relaxations attempted (distance comparisons).
    DijkstraRelaxations,
    /// Entries pushed onto the Dijkstra heap.
    DijkstraPushes,
    /// Empty-bucket cursor advances of the Dial bucket queue (zero under
    /// the binary-heap policy; the Dial overhead diagnostic).
    DijkstraBucketScans,
    /// Steiner points discarded by the irredundancy prune.
    SteinerPruned,
    /// `RouteTree` acquisitions served from the context pool.
    TreePoolHits,
    /// `RouteTree` acquisitions that had to heap-allocate.
    TreePoolMisses,
    /// MCTS nodes expanded (children materialized).
    MctsExpansions,
    /// MCTS simulations run (leaf evaluations / rollouts).
    MctsRollouts,
    /// Total backpropagation steps (sum of backed-up path depths).
    MctsBackpropSteps,
    /// NN tensor acquisitions served from the workspace pool.
    NnPoolHits,
    /// NN tensor acquisitions that had to heap-allocate.
    NnPoolMisses,
    /// Conv3d forwards dispatched to the implicit-im2col direct path
    /// (`d3 >= 8` z-lanes).
    GemmDirect,
    /// Conv3d forwards dispatched to the materialized row-panel path
    /// (`d3 < 8`, padded).
    GemmPanel,
    /// Conv3d forwards dispatched to the flat `1×1×1` fallback
    /// (`d3 < 8`, unpadded).
    GemmFlat,
    /// Sample columns pushed through the selector network, summed over
    /// every forward pass (a batch-`B` pass adds `B`). Divided by
    /// [`Counter::BatchFlushes`] this is the mean batch occupancy.
    GemmBatchCols,
    /// Selector-network forward passes (a batch of any width counts once).
    BatchFlushes,
    /// Conv3d kernel entries (forward or backward) that ran the AVX2+FMA
    /// register tiles instead of the scalar bit-identity tiles. Zero
    /// whenever the workspace kernel policy is `Scalar`, the `simd`
    /// feature is off, or the host lacks AVX2+FMA.
    GemmKernelSimd,
    /// Multiply-accumulates in encoder level 0 (deeper levels clamp to 3).
    MacsEnc0,
    /// Multiply-accumulates in encoder level 1.
    MacsEnc1,
    /// Multiply-accumulates in encoder level 2.
    MacsEnc2,
    /// Multiply-accumulates in encoder level 3+.
    MacsEnc3,
    /// Multiply-accumulates in the bottleneck block.
    MacsBottleneck,
    /// Multiply-accumulates in decoder level 0 (deeper levels clamp to 3).
    MacsDec0,
    /// Multiply-accumulates in decoder level 1.
    MacsDec1,
    /// Multiply-accumulates in decoder level 2.
    MacsDec2,
    /// Multiply-accumulates in decoder level 3+.
    MacsDec3,
    /// Multiply-accumulates in the `1×1×1` output head.
    MacsHead,
    /// Multiply-accumulates outside any tagged U-Net layer.
    MacsOther,
}

/// Number of [`Counter`] variants.
pub const NUM_COUNTERS: usize = 29;

/// Snake-case wire names, indexed by [`Counter`] discriminant. These are
/// the JSONL `"name"` values, so renaming one is a wire-format change.
pub const COUNTER_NAMES: [&str; NUM_COUNTERS] = [
    "dijkstra_pops",
    "dijkstra_relaxations",
    "dijkstra_pushes",
    "dijkstra_bucket_scans",
    "steiner_pruned",
    "tree_pool_hits",
    "tree_pool_misses",
    "mcts_expansions",
    "mcts_rollouts",
    "mcts_backprop_steps",
    "nn_pool_hits",
    "nn_pool_misses",
    "gemm_direct",
    "gemm_panel",
    "gemm_flat",
    "gemm_batch_cols",
    "batch_flushes",
    "gemm_kernel_simd",
    "macs_enc0",
    "macs_enc1",
    "macs_enc2",
    "macs_enc3",
    "macs_bottleneck",
    "macs_dec0",
    "macs_dec1",
    "macs_dec2",
    "macs_dec3",
    "macs_head",
    "macs_other",
];

impl Counter {
    /// The MAC counter for encoder level `i` (levels past 3 clamp to
    /// [`Counter::MacsEnc3`], keeping the registry static for any depth).
    #[must_use]
    pub fn enc_macs(level: usize) -> Counter {
        match level {
            0 => Counter::MacsEnc0,
            1 => Counter::MacsEnc1,
            2 => Counter::MacsEnc2,
            _ => Counter::MacsEnc3,
        }
    }

    /// The MAC counter for decoder level `i` (clamped like
    /// [`Counter::enc_macs`]).
    #[must_use]
    pub fn dec_macs(level: usize) -> Counter {
        match level {
            0 => Counter::MacsDec0,
            1 => Counter::MacsDec1,
            2 => Counter::MacsDec2,
            _ => Counter::MacsDec3,
        }
    }

    /// Parses a wire name back to the counter.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Counter> {
        COUNTER_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| ALL_COUNTERS[i])
    }
}

/// All counters in discriminant order (for iteration without transmutes).
pub const ALL_COUNTERS: [Counter; NUM_COUNTERS] = [
    Counter::DijkstraPops,
    Counter::DijkstraRelaxations,
    Counter::DijkstraPushes,
    Counter::DijkstraBucketScans,
    Counter::SteinerPruned,
    Counter::TreePoolHits,
    Counter::TreePoolMisses,
    Counter::MctsExpansions,
    Counter::MctsRollouts,
    Counter::MctsBackpropSteps,
    Counter::NnPoolHits,
    Counter::NnPoolMisses,
    Counter::GemmDirect,
    Counter::GemmPanel,
    Counter::GemmFlat,
    Counter::GemmBatchCols,
    Counter::BatchFlushes,
    Counter::GemmKernelSimd,
    Counter::MacsEnc0,
    Counter::MacsEnc1,
    Counter::MacsEnc2,
    Counter::MacsEnc3,
    Counter::MacsBottleneck,
    Counter::MacsDec0,
    Counter::MacsDec1,
    Counter::MacsDec2,
    Counter::MacsDec3,
    Counter::MacsHead,
    Counter::MacsOther,
];

/// A full set of Tier A counters: a plain `u64` array, `Copy`, no
/// allocation anywhere in its API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSet {
    vals: [u64; NUM_COUNTERS],
}

impl CounterSet {
    /// All-zero counters.
    #[must_use]
    pub const fn new() -> Self {
        CounterSet {
            vals: [0; NUM_COUNTERS],
        }
    }

    /// Increments `c` by one. Branch-free, alloc-free; safe to call from
    /// the registered zero-allocation hot paths.
    #[inline]
    pub fn bump(&mut self, c: Counter) {
        self.vals[c as usize] += 1;
    }

    /// Adds `n` to `c`. Branch-free, alloc-free.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c as usize] += n;
    }

    /// Adds `n` to the counter at raw index `slot` (used by the NN layer
    /// tagging, where the active MAC slot is data, not code).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= NUM_COUNTERS`.
    #[inline]
    pub fn add_at(&mut self, slot: usize, n: u64) {
        self.vals[slot] += n;
    }

    /// Reads counter `c`.
    #[inline]
    #[must_use]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Overwrites counter `c` with `v` (snapshot parsing: a re-read counter
    /// record replaces the earlier value rather than accumulating).
    #[inline]
    pub fn set(&mut self, c: Counter, v: u64) {
        self.vals[c as usize] = v;
    }

    /// Adds every counter of `other` into `self`, index by index. Folding
    /// per-job deltas with this in index order is the thread-count-
    /// invariant reduction.
    pub fn merge_from(&mut self, other: &CounterSet) {
        for (a, b) in self.vals.iter_mut().zip(other.vals.iter()) {
            *a += *b;
        }
    }

    /// The element-wise delta `self - since` (counters are monotone, so
    /// `since` must be an earlier reading of the same set).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter went backwards.
    #[must_use]
    pub fn delta_since(&self, since: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for i in 0..NUM_COUNTERS {
            debug_assert!(self.vals[i] >= since.vals[i], "counter went backwards");
            out.vals[i] = self.vals[i].wrapping_sub(since.vals[i]);
        }
        out
    }

    /// Folds each workspace-pool hit/miss pair into its hit slot (zeroing
    /// the miss slot), leaving the pair's *sum* — the number of pool
    /// acquisitions, which is a pure function of the work done.
    ///
    /// The hit/miss **split** is the one part of the registry that is not
    /// thread-count invariant: each worker warms its own context, so more
    /// workers means more cold misses for the same jobs. Normalize with
    /// this before comparing counter sets produced under different thread
    /// counts (or pool-warmth states); everything else must already match
    /// bit-for-bit.
    pub fn fold_pool_splits(&mut self) {
        for (hit, miss) in [
            (Counter::TreePoolHits, Counter::TreePoolMisses),
            (Counter::NnPoolHits, Counter::NnPoolMisses),
        ] {
            self.vals[hit as usize] += self.vals[miss as usize];
            self.vals[miss as usize] = 0;
        }
    }

    /// Whether every counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// Resets every counter to zero.
    pub fn clear(&mut self) {
        self.vals = [0; NUM_COUNTERS];
    }

    /// `(wire name, value)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        COUNTER_NAMES.iter().copied().zip(self.vals.iter().copied())
    }

    /// Total MACs across every U-Net layer slot.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        let first = Counter::MacsEnc0 as usize;
        self.vals[first..].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        for (i, c) in ALL_COUNTERS.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL_COUNTERS order matches discriminants");
            assert_eq!(Counter::from_name(COUNTER_NAMES[i]), Some(*c));
        }
        assert_eq!(Counter::from_name("no_such_counter"), None);
        let mut names = COUNTER_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_COUNTERS, "wire names must be unique");
    }

    #[test]
    fn bump_add_get_roundtrip() {
        let mut c = CounterSet::new();
        assert!(c.is_zero());
        c.bump(Counter::DijkstraPops);
        c.add(Counter::DijkstraPops, 4);
        c.add_at(Counter::GemmPanel as usize, 7);
        assert_eq!(c.get(Counter::DijkstraPops), 5);
        assert_eq!(c.get(Counter::GemmPanel), 7);
        assert!(!c.is_zero());
        c.clear();
        assert!(c.is_zero());
    }

    #[test]
    fn merge_is_element_wise_and_order_insensitive() {
        let mut a = CounterSet::new();
        let mut b = CounterSet::new();
        a.add(Counter::MctsRollouts, 3);
        b.add(Counter::MctsRollouts, 9);
        b.add(Counter::NnPoolHits, 1);
        let mut ab = a;
        ab.merge_from(&b);
        let mut ba = b;
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(Counter::MctsRollouts), 12);
        assert_eq!(ab.get(Counter::NnPoolHits), 1);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut before = CounterSet::new();
        before.add(Counter::GemmDirect, 2);
        let mut after = before;
        after.add(Counter::GemmDirect, 5);
        after.bump(Counter::GemmFlat);
        let d = after.delta_since(&before);
        assert_eq!(d.get(Counter::GemmDirect), 5);
        assert_eq!(d.get(Counter::GemmFlat), 1);
        assert_eq!(d.get(Counter::GemmPanel), 0);
    }

    #[test]
    fn fold_pool_splits_keeps_the_sum() {
        let mut warm = CounterSet::new();
        warm.add(Counter::TreePoolHits, 10);
        warm.add(Counter::NnPoolHits, 7);
        warm.add(Counter::NnPoolMisses, 1);
        let mut cold = CounterSet::new();
        cold.add(Counter::TreePoolHits, 4);
        cold.add(Counter::TreePoolMisses, 6);
        cold.add(Counter::NnPoolMisses, 8);
        warm.fold_pool_splits();
        cold.fold_pool_splits();
        assert_eq!(warm.get(Counter::TreePoolHits), 10);
        assert_eq!(cold.get(Counter::TreePoolHits), 10);
        assert_eq!(warm.get(Counter::NnPoolHits), 8);
        assert_eq!(cold.get(Counter::NnPoolHits), 8);
        assert_eq!(cold.get(Counter::TreePoolMisses), 0);
    }

    #[test]
    fn mac_slots_clamp_and_total() {
        assert_eq!(Counter::enc_macs(1), Counter::MacsEnc1);
        assert_eq!(Counter::enc_macs(9), Counter::MacsEnc3);
        assert_eq!(Counter::dec_macs(0), Counter::MacsDec0);
        assert_eq!(Counter::dec_macs(5), Counter::MacsDec3);
        let mut c = CounterSet::new();
        c.add(Counter::MacsEnc0, 10);
        c.add(Counter::MacsHead, 5);
        c.add(Counter::DijkstraPops, 99); // not a MAC slot
        assert_eq!(c.total_macs(), 15);
    }
}
