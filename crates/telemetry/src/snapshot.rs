//! Run manifests and the JSONL wire form of a telemetry snapshot.
//!
//! A [`TelemetrySnapshot`] bundles what a bench run wants to persist: a
//! [`Manifest`] identifying the run, the merged Tier A [`CounterSet`], and
//! the merged Tier B [`SpanSet`]. The wire form is JSONL — one JSON object
//! per line, each tagged with a `"record"` kind — chosen so it can be
//! embedded verbatim inside the line-oriented `BENCH_*.json` artifacts and
//! parsed back by the same string scanning those artifacts already use (the
//! build has no JSON dependency). Unknown record kinds and unknown
//! counter/span names are skipped on parse, so old readers survive new
//! telemetry.

use crate::counters::{Counter, CounterSet};
use crate::timing::{Span, SpanHist, SpanSet, SPAN_BUCKETS};

/// Identity of one telemetry-producing run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Producing program (e.g. `critic_throughput`).
    pub run: String,
    /// Free-form mode/configuration tag (e.g. `reused` or `full`).
    pub mode: String,
    /// Worker threads the run used.
    pub threads: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Whether the producing build had `telemetry-timing` on (spans are
    /// all-zero otherwise).
    pub timing: bool,
}

/// A complete snapshot: manifest + counters + spans.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Run identity.
    pub manifest: Manifest,
    /// Merged Tier A counters.
    pub counters: CounterSet,
    /// Merged Tier B spans.
    pub spans: SpanSet,
}

/// Escapes a string for a JSON string literal (the subset we emit).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Truncates a payload for an error message (parse failures quote the
/// offending line, but artifact lines can be arbitrarily long).
fn trunc(line: &str) -> String {
    const MAX: usize = 60;
    if line.chars().count() <= MAX {
        line.to_string()
    } else {
        let cut: String = line.chars().take(MAX).collect();
        format!("{cut}…")
    }
}

/// Extracts the string value of `"key":"…"` from a JSON line.
pub(crate) fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            _ => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key":<digits>` from a JSON line.
pub(crate) fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Extracts the numeric value of `"key":<number>` from a JSON line,
/// accepting the full float syntax (sign, fraction, exponent).
pub(crate) fn json_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    digits.parse().ok()
}

/// Extracts the boolean value of `"key":true|false` from a JSON line.
fn json_bool(line: &str, key: &str) -> Option<bool> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts the u64 array value of `"key":[…]` from a JSON line.
fn json_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find(']')? + start;
    let mut out = Vec::new();
    for piece in line[start..end].split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        out.push(piece.parse().ok()?);
    }
    Some(out)
}

impl TelemetrySnapshot {
    /// Serializes to JSONL: one `manifest` record, one `counter` record per
    /// non-zero counter, one `span` record per non-empty span. Every line
    /// is a complete JSON object.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let m = &self.manifest;
        out.push_str(&format!(
            "{{\"record\":\"manifest\",\"run\":\"{}\",\"mode\":\"{}\",\"threads\":{},\"seed\":{},\"timing\":{}}}\n",
            esc(&m.run),
            esc(&m.mode),
            m.threads,
            m.seed,
            m.timing
        ));
        for (name, value) in self.counters.iter() {
            if value == 0 {
                continue;
            }
            out.push_str(&format!(
                "{{\"record\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n"
            ));
        }
        for (name, h) in self.spans.iter() {
            if h.count == 0 {
                continue;
            }
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "{{\"record\":\"span\",\"name\":\"{name}\",\"count\":{},\"total_ns\":{},\"buckets\":[{}]}}\n",
                h.count,
                h.total_ns,
                buckets.join(",")
            ));
        }
        out
    }

    /// Parses JSONL produced by [`TelemetrySnapshot::to_jsonl`]. Lines that
    /// are not telemetry records (e.g. surrounding artifact JSON) are
    /// ignored, which is what lets this read an embedded snapshot straight
    /// out of a `BENCH_*.json` file.
    ///
    /// When the input holds more than one snapshot, the **last one wins**:
    /// a second `manifest` record resets the counters and spans gathered so
    /// far, and a repeated counter record overwrites (not accumulates) the
    /// earlier value. This makes concatenated logs and re-appended
    /// artifacts parse to their most recent state.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed telemetry record —
    /// line number plus a truncated copy of the offending payload — or when
    /// no `manifest` record is present at all.
    pub fn from_jsonl(src: &str) -> Result<TelemetrySnapshot, String> {
        let mut snap = TelemetrySnapshot::default();
        let mut saw_manifest = false;
        for (i, raw) in src.lines().enumerate() {
            let line = raw.trim().trim_end_matches(',');
            let Some(kind) = json_str(line, "record") else {
                continue;
            };
            let lineno = i + 1;
            match kind.as_str() {
                "manifest" => {
                    // Last snapshot wins: a new manifest starts over.
                    if saw_manifest {
                        snap = TelemetrySnapshot::default();
                    }
                    snap.manifest = Manifest {
                        run: json_str(line, "run").ok_or_else(|| {
                            format!("line {lineno}: manifest missing `run` in `{}`", trunc(line))
                        })?,
                        mode: json_str(line, "mode").unwrap_or_default(),
                        threads: json_u64(line, "threads").unwrap_or(0) as usize,
                        seed: json_u64(line, "seed").unwrap_or(0),
                        timing: json_bool(line, "timing").unwrap_or(false),
                    };
                    saw_manifest = true;
                }
                "counter" => {
                    let name = json_str(line, "name").ok_or_else(|| {
                        format!("line {lineno}: counter missing `name` in `{}`", trunc(line))
                    })?;
                    let value = json_u64(line, "value").ok_or_else(|| {
                        format!(
                            "line {lineno}: counter missing `value` in `{}`",
                            trunc(line)
                        )
                    })?;
                    if let Some(c) = Counter::from_name(&name) {
                        snap.counters.set(c, value);
                    }
                }
                "span" => {
                    let name = json_str(line, "name").ok_or_else(|| {
                        format!("line {lineno}: span missing `name` in `{}`", trunc(line))
                    })?;
                    let count = json_u64(line, "count").ok_or_else(|| {
                        format!("line {lineno}: span missing `count` in `{}`", trunc(line))
                    })?;
                    let total_ns = json_u64(line, "total_ns").ok_or_else(|| {
                        format!(
                            "line {lineno}: span missing `total_ns` in `{}`",
                            trunc(line)
                        )
                    })?;
                    let buckets = json_u64_array(line, "buckets").ok_or_else(|| {
                        format!("line {lineno}: span missing `buckets` in `{}`", trunc(line))
                    })?;
                    if let Some(s) = Span::from_name(&name) {
                        let mut h = SpanHist {
                            count,
                            total_ns,
                            buckets: [0; SPAN_BUCKETS],
                        };
                        for (slot, v) in h.buckets.iter_mut().zip(buckets.iter()) {
                            *slot = *v;
                        }
                        snap.spans.set_hist(s, h);
                    }
                }
                _ => {} // unknown record kinds: forward compatibility
            }
        }
        if !saw_manifest {
            return Err("no telemetry manifest record found".to_string());
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counter;
    use crate::timing::Span;

    fn sample() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot {
            manifest: Manifest {
                run: "critic_throughput".to_string(),
                mode: "reused \"quick\"".to_string(),
                threads: 4,
                seed: 42,
                timing: true,
            },
            ..TelemetrySnapshot::default()
        };
        snap.counters.add(Counter::DijkstraPops, 123_456);
        snap.counters.add(Counter::GemmPanel, 78);
        snap.counters.add(Counter::MacsEnc0, 9_000_000_000);
        snap.spans.record_ns(Span::CriticRoute, 1_500);
        snap.spans.record_ns(Span::CriticRoute, 3_000);
        snap.spans.record_ns(Span::CriticSelect, 250);
        snap
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let snap = sample();
        let wire = snap.to_jsonl();
        let back = TelemetrySnapshot::from_jsonl(&wire).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn zero_entries_are_omitted_from_the_wire() {
        let snap = sample();
        let wire = snap.to_jsonl();
        assert!(!wire.contains("dijkstra_pushes"));
        assert!(!wire.contains("phase_route"));
        assert_eq!(wire.lines().count(), 1 + 3 + 2);
    }

    #[test]
    fn embedded_snapshot_parses_out_of_surrounding_json() {
        let snap = sample();
        let mut artifact = String::from("{\n\"bench\": \"critic\",\n\"telemetry\": [\n");
        for line in snap.to_jsonl().lines() {
            artifact.push_str("  ");
            artifact.push_str(line);
            artifact.push_str(",\n");
        }
        artifact.push_str("],\n\"total\": 1.5\n}\n");
        let back = TelemetrySnapshot::from_jsonl(&artifact).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn unknown_records_and_names_are_skipped() {
        let wire = "{\"record\":\"manifest\",\"run\":\"x\",\"mode\":\"\",\"threads\":1,\"seed\":0,\"timing\":false}\n\
                    {\"record\":\"future_kind\",\"name\":\"whatever\"}\n\
                    {\"record\":\"counter\",\"name\":\"not_a_counter\",\"value\":7}\n";
        let snap = TelemetrySnapshot::from_jsonl(wire).unwrap();
        assert!(snap.counters.is_zero());
    }

    #[test]
    fn missing_manifest_is_an_error() {
        assert!(TelemetrySnapshot::from_jsonl("not telemetry\n").is_err());
        let bad = "{\"record\":\"counter\",\"name\":\"dijkstra_pops\"}\n";
        assert!(TelemetrySnapshot::from_jsonl(bad).is_err());
    }

    #[test]
    fn parse_errors_carry_line_number_and_payload() {
        let wire = "{\"record\":\"manifest\",\"run\":\"x\",\"mode\":\"\",\"threads\":1,\"seed\":0,\"timing\":false}\n\
                    {\"record\":\"counter\",\"name\":\"dijkstra_pops\"}\n";
        let err = TelemetrySnapshot::from_jsonl(wire).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("dijkstra_pops"), "payload missing: {err}");
        // Long payloads are truncated, not quoted wholesale.
        let long = format!(
            "{{\"record\":\"counter\",\"name\":\"dijkstra_pops\",\"pad\":\"{}\"}}\n",
            "x".repeat(500)
        );
        let wire = format!("{}{long}", wire.lines().next().unwrap().to_owned() + "\n");
        let err = TelemetrySnapshot::from_jsonl(&wire).unwrap_err();
        assert!(err.contains('…'), "{err}");
        assert!(err.len() < 200, "error not truncated: {}", err.len());
    }

    #[test]
    fn last_snapshot_wins_on_concatenated_input() {
        let mut first = sample();
        first.manifest.run = "old".to_string();
        let mut second = TelemetrySnapshot {
            manifest: Manifest {
                run: "new".to_string(),
                ..Manifest::default()
            },
            ..TelemetrySnapshot::default()
        };
        second.counters.add(Counter::DijkstraPops, 7);
        let wire = format!("{}{}", first.to_jsonl(), second.to_jsonl());
        let back = TelemetrySnapshot::from_jsonl(&wire).unwrap();
        assert_eq!(back, second, "second manifest must reset state");
        assert_eq!(back.counters.get(Counter::GemmPanel), 0);
    }

    #[test]
    fn duplicate_counter_records_overwrite_not_accumulate() {
        let wire = "{\"record\":\"manifest\",\"run\":\"x\",\"mode\":\"\",\"threads\":1,\"seed\":0,\"timing\":false}\n\
                    {\"record\":\"counter\",\"name\":\"dijkstra_pops\",\"value\":5}\n\
                    {\"record\":\"counter\",\"name\":\"dijkstra_pops\",\"value\":9}\n";
        let snap = TelemetrySnapshot::from_jsonl(wire).unwrap();
        assert_eq!(snap.counters.get(Counter::DijkstraPops), 9);
    }

    #[test]
    fn escaped_quotes_in_manifest_strings_survive() {
        let snap = sample();
        let back = TelemetrySnapshot::from_jsonl(&snap.to_jsonl()).unwrap();
        assert_eq!(back.manifest.mode, "reused \"quick\"");
    }
}
