//! Tier B: a bounded ring-buffer flight recorder of begin/end span events.
//!
//! Where [`crate::timing`] aggregates durations into per-span histograms,
//! this module keeps the *sequence*: every [`TraceRecorder::begin`] /
//! [`TraceRecorder::end`] pair is one [`TraceEvent`] with a timestamp
//! relative to the recorder's enable mark and the nesting depth at record
//! time. Nesting is what buys hierarchy — a `critic_route` span decomposes
//! into its `route_prepare` / `route_dijkstra` / `route_retrace` children,
//! and [`summarize`] splits each span's total into self vs child time.
//!
//! The recorder obeys the same tier discipline as the histograms: the only
//! clock read is [`SpanStart::elapsed_ns`] against the enable-time origin,
//! so without the `telemetry-timing` feature every timestamp is zero (the
//! event *sequence* is still recorded, which is what the determinism tests
//! exercise). The buffer is allocated once by [`TraceRecorder::enable`];
//! the record path is a cursor write into that buffer — alloc-free and
//! panic-free, registered in `lint.toml` and measured by the alloc-count
//! sanitizer. When the ring fills, the oldest events are overwritten and
//! counted in [`TraceRecorder::dropped`]: a flight recorder keeps the most
//! recent window, never stalls the hot loop.
//!
//! [`to_chrome_json`] exports an event list as Chrome `trace_event` JSON
//! (load in `chrome://tracing` or Perfetto). The export re-balances the
//! stream — orphan `E` events whose `B` was overwritten are skipped, spans
//! still open at the end are closed at the last timestamp — so the output
//! is always well-formed; [`verify_chrome`] checks exactly that property
//! and backs the `oarsmt trace --verify` CI smoke.

use crate::timing::{Span, SpanStart, SPAN_NAMES};

/// Whether a [`TraceEvent`] opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceKind {
    /// Span opens (`ph: "B"`).
    #[default]
    Begin,
    /// Span closes (`ph: "E"`).
    End,
}

/// One recorded begin/end event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceEvent {
    /// The span this event opens or closes.
    pub span: Span,
    /// Begin or end.
    pub kind: TraceKind,
    /// Nanoseconds since the recorder was enabled (zero without the
    /// `telemetry-timing` feature, or for events injected with an explicit
    /// timestamp of zero).
    pub ts_ns: u64,
    /// Nesting depth at record time (a begin at depth `d` nests inside `d`
    /// open spans; its matching end carries the same `d`).
    pub depth: u32,
}

/// The bounded flight recorder. `Default` is a disabled, zero-capacity
/// recorder whose record calls are branch-and-return — cheap enough to
/// leave embedded in every `RouteContext`.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    /// Next write slot.
    next: usize,
    /// Whether the ring has wrapped at least once.
    wrapped: bool,
    /// Events overwritten after the ring filled.
    dropped: u64,
    /// Current nesting depth.
    depth: u32,
    /// Timestamp origin, marked at enable time.
    origin: SpanStart,
    enabled: bool,
}

impl TraceRecorder {
    /// A disabled recorder (no buffer; record calls are no-ops).
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::default()
    }

    /// A recorder enabled with the given ring capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut r = TraceRecorder::default();
        r.enable(capacity);
        r
    }

    /// Enables recording into a freshly allocated ring of `capacity`
    /// events and marks the timestamp origin. This is the *one* allocating
    /// call of the recorder lifecycle; a zero capacity leaves it disabled.
    pub fn enable(&mut self, capacity: usize) {
        self.events.clear();
        self.events.resize(capacity, TraceEvent::default());
        self.next = 0;
        self.wrapped = false;
        self.dropped = 0;
        self.depth = 0;
        self.origin = SpanStart::now();
        self.enabled = capacity > 0;
    }

    /// Stops recording, keeping the buffer contents readable.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether record calls currently store events.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Ring capacity in events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.events.len()
    }

    /// Number of events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        if self.wrapped {
            self.events.len()
        } else {
            self.next
        }
    }

    /// Whether no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten after the ring filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Writes one event at the cursor. Alloc-free: the ring was sized by
    /// [`TraceRecorder::enable`] and is never grown here.
    #[inline]
    fn push(&mut self, span: Span, kind: TraceKind, ts_ns: u64, depth: u32) {
        if self.wrapped {
            self.dropped += 1;
        }
        let next = self.next;
        if let Some(slot) = self.events.get_mut(next) {
            *slot = TraceEvent {
                span,
                kind,
                ts_ns,
                depth,
            };
        }
        self.next = next + 1;
        if self.next >= self.events.len() {
            self.next = 0;
            self.wrapped = true;
        }
    }

    /// Records a span begin at "now" (relative to the enable mark) and
    /// deepens the nesting. No-op when disabled.
    #[inline]
    pub fn begin(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        let ts = self.origin.elapsed_ns();
        let depth = self.depth;
        self.depth += 1;
        self.push(span, TraceKind::Begin, ts, depth);
    }

    /// Records a span end at "now" and unwinds the nesting. No-op when
    /// disabled.
    #[inline]
    pub fn end(&mut self, span: Span) {
        if !self.enabled {
            return;
        }
        let ts = self.origin.elapsed_ns();
        self.depth = self.depth.saturating_sub(1);
        let depth = self.depth;
        self.push(span, TraceKind::End, ts, depth);
    }

    /// Records a begin with an externally measured timestamp. Deterministic
    /// in its arguments, like `SpanSet::record_ns`: harnesses that measure
    /// on one side of a thread boundary (or reconstruct a timeline from
    /// stage reports) inject events here. No-op when disabled.
    #[inline]
    pub fn begin_at(&mut self, span: Span, ts_ns: u64) {
        if !self.enabled {
            return;
        }
        let depth = self.depth;
        self.depth += 1;
        self.push(span, TraceKind::Begin, ts_ns, depth);
    }

    /// Records an end with an externally measured timestamp (see
    /// [`TraceRecorder::begin_at`]). No-op when disabled.
    #[inline]
    pub fn end_at(&mut self, span: Span, ts_ns: u64) {
        if !self.enabled {
            return;
        }
        self.depth = self.depth.saturating_sub(1);
        let depth = self.depth;
        self.push(span, TraceKind::End, ts_ns, depth);
    }

    /// The held events, oldest first (unwraps the ring).
    #[must_use]
    pub fn events_in_order(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len());
        if self.wrapped {
            out.extend_from_slice(&self.events[self.next..]);
            out.extend_from_slice(&self.events[..self.next]);
        } else {
            out.extend_from_slice(&self.events[..self.next]);
        }
        out
    }
}

/// Per-span aggregate over one event stream: call count, inclusive total,
/// and self time (total minus the time spent in nested child spans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanAgg {
    /// The span.
    pub span: Span,
    /// Completed begin/end pairs.
    pub count: u64,
    /// Inclusive nanoseconds (children included).
    pub total_ns: u64,
    /// Exclusive nanoseconds (children subtracted).
    pub self_ns: u64,
}

/// Aggregates an ordered event stream into per-span totals with parent
/// attribution, in [`Span`] registry order. Orphan ends (begin lost to the
/// ring) and unclosed begins are skipped — only completed pairs count.
#[must_use]
pub fn summarize(events: &[TraceEvent]) -> Vec<SpanAgg> {
    use crate::timing::{ALL_SPANS, NUM_SPANS};
    let mut count = [0u64; NUM_SPANS];
    let mut total = [0u64; NUM_SPANS];
    let mut own = [0u64; NUM_SPANS];
    // Open-span stack: (span, begin ts, child time accumulated so far).
    let mut stack: Vec<(Span, u64, u64)> = Vec::new();
    for ev in events {
        match ev.kind {
            TraceKind::Begin => stack.push((ev.span, ev.ts_ns, 0)),
            TraceKind::End => {
                let Some(&(span, t0, child_ns)) = stack.last() else {
                    continue; // orphan end: begin overwritten
                };
                if span != ev.span {
                    continue; // mismatched nesting across a ring truncation
                }
                stack.pop();
                let dur = ev.ts_ns.saturating_sub(t0);
                let i = span as usize;
                count[i] += 1;
                total[i] = total[i].saturating_add(dur);
                own[i] = own[i].saturating_add(dur.saturating_sub(child_ns));
                if let Some(parent) = stack.last_mut() {
                    parent.2 = parent.2.saturating_add(dur);
                }
            }
        }
    }
    ALL_SPANS
        .iter()
        .filter(|&&s| count[s as usize] > 0)
        .map(|&s| SpanAgg {
            span: s,
            count: count[s as usize],
            total_ns: total[s as usize],
            self_ns: own[s as usize],
        })
        .collect()
}

/// Renders a [`summarize`] result as an aligned self-vs-total table.
#[must_use]
pub fn render_summary(aggs: &[SpanAgg]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>10} {:>14} {:>14}\n",
        "span", "count", "total ms", "self ms"
    ));
    for a in aggs {
        out.push_str(&format!(
            "{:<16} {:>10} {:>14.3} {:>14.3}\n",
            SPAN_NAMES[a.span as usize],
            a.count,
            a.total_ns as f64 / 1e6,
            a.self_ns as f64 / 1e6,
        ));
    }
    out
}

/// Serializes an ordered event stream as Chrome `trace_event` JSON, one
/// event object per line. The output is always balanced: ends without a
/// live begin are dropped, and spans still open after the last event are
/// closed at its timestamp. `dropped` is surfaced under `otherData`.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut lines: Vec<String> = Vec::new();
    let mut stack: Vec<Span> = Vec::new();
    let mut last_ts = 0u64;
    let emit = |span: Span, ph: char, ts_ns: u64| {
        format!(
            "{{\"name\":\"{}\",\"cat\":\"oarsmt\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":0,\"tid\":0}}",
            SPAN_NAMES[span as usize],
            ph,
            ts_ns as f64 / 1e3
        )
    };
    for ev in events {
        last_ts = last_ts.max(ev.ts_ns);
        match ev.kind {
            TraceKind::Begin => {
                stack.push(ev.span);
                lines.push(emit(ev.span, 'B', ev.ts_ns));
            }
            TraceKind::End => {
                if stack.last() == Some(&ev.span) {
                    stack.pop();
                    lines.push(emit(ev.span, 'E', ev.ts_ns));
                }
                // else: orphan end (begin overwritten) — skip.
            }
        }
    }
    while let Some(span) = stack.pop() {
        lines.push(emit(span, 'E', last_ts));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{dropped}}}}}\n"
    ));
    out
}

/// Verification result of [`verify_chrome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total `B`/`E` events seen.
    pub events: usize,
    /// Maximum nesting depth reached.
    pub max_depth: usize,
}

/// Checks that `src` is a [`to_chrome_json`]-shaped export with strictly
/// balanced begin/end events: every `E` closes the innermost open `B` of
/// the same name and nothing stays open. This is the `oarsmt trace
/// --verify` backend and the CI trace-export smoke.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn verify_chrome(src: &str) -> Result<TraceCheck, String> {
    if !src.trim_start().starts_with("{\"traceEvents\":[") {
        return Err("not a trace export: missing `traceEvents` header".to_string());
    }
    if !src.trim_end().ends_with('}') {
        return Err("truncated trace export: missing closing brace".to_string());
    }
    let mut stack: Vec<String> = Vec::new();
    let mut events = 0usize;
    let mut max_depth = 0usize;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        let Some(ph) = crate::snapshot::json_str(line, "ph") else {
            continue;
        };
        let lineno = i + 1;
        let name = crate::snapshot::json_str(line, "name")
            .ok_or_else(|| format!("line {lineno}: event without a `name`"))?;
        if !line.contains("\"ts\":") {
            return Err(format!("line {lineno}: event without a `ts`"));
        }
        events += 1;
        match ph.as_str() {
            "B" => {
                stack.push(name);
                max_depth = max_depth.max(stack.len());
            }
            "E" => match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!(
                        "line {lineno}: `E` for `{name}` while `{open}` is innermost"
                    ));
                }
                None => return Err(format!("line {lineno}: `E` for `{name}` with no open span")),
            },
            other => return Err(format!("line {lineno}: unknown phase `{other}`")),
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!("span `{open}` never closed"));
    }
    Ok(TraceCheck { events, max_depth })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = TraceRecorder::new();
        r.begin(Span::RoutePrepare);
        r.end(Span::RoutePrepare);
        assert!(r.is_empty());
        assert!(!r.is_enabled());
        assert_eq!(r.capacity(), 0);
        // Zero capacity keeps it disabled too.
        r.enable(0);
        assert!(!r.is_enabled());
    }

    #[test]
    fn ring_keeps_the_newest_window() {
        let mut r = TraceRecorder::with_capacity(4);
        for k in 0..6u64 {
            r.begin_at(Span::RouteDijkstra, k * 10);
            r.end_at(Span::RouteDijkstra, k * 10 + 5);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 8);
        let evs = r.events_in_order();
        assert_eq!(evs.len(), 4);
        // Oldest-first and strictly the last two pairs.
        assert_eq!(evs[0].ts_ns, 40);
        assert_eq!(evs[3].ts_ns, 55);
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn nesting_depth_is_recorded() {
        let mut r = TraceRecorder::with_capacity(16);
        r.begin_at(Span::CriticRoute, 0);
        r.begin_at(Span::RouteDijkstra, 10);
        r.end_at(Span::RouteDijkstra, 20);
        r.end_at(Span::CriticRoute, 30);
        let evs = r.events_in_order();
        assert_eq!(evs[0].depth, 0);
        assert_eq!(evs[1].depth, 1);
        assert_eq!(evs[2].depth, 1);
        assert_eq!(evs[3].depth, 0);
    }

    #[test]
    fn summarize_attributes_self_vs_child_time() {
        let mut r = TraceRecorder::with_capacity(16);
        r.begin_at(Span::CriticRoute, 0);
        r.begin_at(Span::RouteDijkstra, 20);
        r.end_at(Span::RouteDijkstra, 50);
        r.begin_at(Span::RouteRetrace, 60);
        r.end_at(Span::RouteRetrace, 90);
        r.end_at(Span::CriticRoute, 100);
        let aggs = summarize(&r.events_in_order());
        let get = |s: Span| *aggs.iter().find(|a| a.span == s).unwrap();
        assert_eq!(get(Span::CriticRoute).total_ns, 100);
        assert_eq!(get(Span::CriticRoute).self_ns, 40); // 100 - 30 - 30
        assert_eq!(get(Span::RouteDijkstra).total_ns, 30);
        assert_eq!(get(Span::RouteDijkstra).self_ns, 30);
        assert_eq!(get(Span::RouteRetrace).count, 1);
    }

    #[test]
    fn chrome_export_is_balanced_even_when_truncated() {
        let mut r = TraceRecorder::with_capacity(4);
        // 3 nested pairs = 6 events through a 4-slot ring: the outer
        // begins are overwritten, leaving orphan ends.
        r.begin_at(Span::CriticRoute, 0);
        r.begin_at(Span::RouteDijkstra, 10);
        r.begin_at(Span::RouteRetrace, 20);
        r.end_at(Span::RouteRetrace, 30);
        r.end_at(Span::RouteDijkstra, 40);
        r.end_at(Span::CriticRoute, 50);
        assert_eq!(r.dropped(), 2);
        let js = to_chrome_json(&r.events_in_order(), r.dropped());
        let check = verify_chrome(&js).expect("truncated export must still balance");
        assert_eq!(check.events, 2); // only the innermost pair survives whole
        assert!(js.contains("\"dropped_events\":2"));
    }

    #[test]
    fn chrome_export_closes_open_spans() {
        let mut r = TraceRecorder::with_capacity(8);
        r.begin_at(Span::BenchRung, 0);
        r.begin_at(Span::CriticSelect, 10);
        // never ended
        let js = to_chrome_json(&r.events_in_order(), 0);
        let check = verify_chrome(&js).unwrap();
        assert_eq!(check.events, 4);
        assert_eq!(check.max_depth, 2);
    }

    #[test]
    fn verify_rejects_imbalance() {
        let bad = "{\"traceEvents\":[\n\
                   {\"name\":\"critic_route\",\"cat\":\"oarsmt\",\"ph\":\"B\",\"ts\":0.000,\"pid\":0,\"tid\":0}\n\
                   ],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":0}}\n";
        assert!(verify_chrome(bad).unwrap_err().contains("never closed"));
        let crossed = "{\"traceEvents\":[\n\
                       {\"name\":\"a\",\"ph\":\"B\",\"ts\":0},\n\
                       {\"name\":\"b\",\"ph\":\"B\",\"ts\":1},\n\
                       {\"name\":\"a\",\"ph\":\"E\",\"ts\":2},\n\
                       {\"name\":\"b\",\"ph\":\"E\",\"ts\":3}\n\
                       ],\"otherData\":{}}";
        assert!(verify_chrome(crossed).unwrap_err().contains("innermost"));
        assert!(verify_chrome("nonsense").is_err());
    }

    #[test]
    fn live_begin_end_nest_and_balance() {
        let mut r = TraceRecorder::with_capacity(64);
        r.begin(Span::CriticRoute);
        r.begin(Span::RouteDijkstra);
        r.end(Span::RouteDijkstra);
        r.end(Span::CriticRoute);
        let js = to_chrome_json(&r.events_in_order(), r.dropped());
        let check = verify_chrome(&js).unwrap();
        assert_eq!(check.events, 4);
        assert_eq!(check.max_depth, 2);
        // Timestamps are monotone whether or not the clock is real.
        let evs = r.events_in_order();
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }
}
