//! Two-tier telemetry for the OARSMT router/MCTS/NN stack.
//!
//! The repo's headline numbers are throughput and cost; this crate exists so
//! a slow rung can be *explained* (Dijkstra pops? GEMM panel fallbacks? MCTS
//! re-expansions?) without compromising the determinism and zero-allocation
//! invariants that `oarsmt-lint` enforces. Two strictly separated tiers:
//!
//! * **Tier A — deterministic counters** ([`counters`]): a statically
//!   registered [`Counter`] enum backed by a plain `u64` array
//!   ([`CounterSet`]) embedded in the hot-path workspaces (`RouteContext`,
//!   `SearchBuffers`, `NnWorkspace`, `DijkstraWorkspace`). Increments are
//!   branch-free array adds — always on, alloc-free, no clock reads — and
//!   `u64` addition is commutative, so per-job counter deltas folded in
//!   index order by `oarsmt::parallel` are **bit-identical for any thread
//!   count**.
//! * **Tier B — span timing** ([`timing`]): scoped wall-clock spans with
//!   fixed log2-nanosecond-bucket histograms ([`SpanSet`]). The clock reads
//!   are compiled in only under the `telemetry-timing` feature and live in
//!   this crate alone, behind `timing-ok` lint markers at the tier
//!   boundary; result-affecting crates record spans through the no-op API
//!   and never observe time.
//!
//! [`snapshot`] bundles a run [`Manifest`], a counter set and a span set
//! into a [`TelemetrySnapshot`] with a line-oriented JSONL wire form that
//! bench artifacts embed; [`report`] renders and diffs snapshots for the
//! `oarsmt report` CLI subcommand.
//!
//! Three observability subsystems build on those tiers:
//!
//! * [`tracing`] — a bounded, pre-allocated ring-buffer flight recorder of
//!   begin/end span events ([`TraceRecorder`]) with parent attribution and
//!   Chrome `trace_event` JSON export (`oarsmt trace`). Recording is
//!   alloc-free; timestamps are real only under `telemetry-timing`.
//! * [`runlog`] — append-only JSONL run-metrics streams
//!   (`runs/<run-id>/metrics.jsonl`): one [`StageStats`] record per
//!   training stage / bench rung, plus counter deltas, rendered and diffed
//!   by `oarsmt report`.
//! * [`check`] — the CI regression gate (`oarsmt report --check`):
//!   deterministic counters must stay bit-identical, wall-clock metrics
//!   within per-metric bands from a `report.toml` [`Policy`].

#![forbid(unsafe_code)]

pub mod check;
pub mod counters;
pub mod report;
pub mod runlog;
pub mod snapshot;
pub mod timing;
pub mod tracing;

pub use check::{CheckReport, MetricPolicy, Policy, Violation};
pub use counters::{Counter, CounterSet, COUNTER_NAMES, NUM_COUNTERS};
pub use runlog::{RunLog, RunLogger, RungRecord, StageRecord, StageStats};
pub use snapshot::{Manifest, TelemetrySnapshot};
pub use timing::{Span, SpanHist, SpanSet, SpanStart, NUM_SPANS, SPAN_BUCKETS, SPAN_NAMES};
pub use tracing::{SpanAgg, TraceEvent, TraceKind, TraceRecorder};

/// Whether Tier B actually reads clocks in this build (the
/// `telemetry-timing` feature). When `false`, [`SpanStart::now`] and
/// [`SpanStart::elapsed_ns`] are free no-ops and every recorded duration is
/// zero; counters (Tier A) are unaffected.
pub const TIMING_ENABLED: bool = cfg!(feature = "telemetry-timing");
