//! Two-tier telemetry for the OARSMT router/MCTS/NN stack.
//!
//! The repo's headline numbers are throughput and cost; this crate exists so
//! a slow rung can be *explained* (Dijkstra pops? GEMM panel fallbacks? MCTS
//! re-expansions?) without compromising the determinism and zero-allocation
//! invariants that `oarsmt-lint` enforces. Two strictly separated tiers:
//!
//! * **Tier A — deterministic counters** ([`counters`]): a statically
//!   registered [`Counter`] enum backed by a plain `u64` array
//!   ([`CounterSet`]) embedded in the hot-path workspaces (`RouteContext`,
//!   `SearchBuffers`, `NnWorkspace`, `DijkstraWorkspace`). Increments are
//!   branch-free array adds — always on, alloc-free, no clock reads — and
//!   `u64` addition is commutative, so per-job counter deltas folded in
//!   index order by `oarsmt::parallel` are **bit-identical for any thread
//!   count**.
//! * **Tier B — span timing** ([`timing`]): scoped wall-clock spans with
//!   fixed log2-nanosecond-bucket histograms ([`SpanSet`]). The clock reads
//!   are compiled in only under the `telemetry-timing` feature and live in
//!   this crate alone, behind `timing-ok` lint markers at the tier
//!   boundary; result-affecting crates record spans through the no-op API
//!   and never observe time.
//!
//! [`snapshot`] bundles a run [`Manifest`], a counter set and a span set
//! into a [`TelemetrySnapshot`] with a line-oriented JSONL wire form that
//! bench artifacts embed; [`report`] renders and diffs snapshots for the
//! `oarsmt report` CLI subcommand.

#![forbid(unsafe_code)]

pub mod counters;
pub mod report;
pub mod snapshot;
pub mod timing;

pub use counters::{Counter, CounterSet, COUNTER_NAMES, NUM_COUNTERS};
pub use snapshot::{Manifest, TelemetrySnapshot};
pub use timing::{Span, SpanHist, SpanSet, SpanStart, NUM_SPANS, SPAN_BUCKETS, SPAN_NAMES};

/// Whether Tier B actually reads clocks in this build (the
/// `telemetry-timing` feature). When `false`, [`SpanStart::now`] and
/// [`SpanStart::elapsed_ns`] are free no-ops and every recorded duration is
/// zero; counters (Tier A) are unaffected.
pub const TIMING_ENABLED: bool = cfg!(feature = "telemetry-timing");
