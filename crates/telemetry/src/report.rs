//! Human-readable rendering and diffing of telemetry snapshots — the
//! backend of the `oarsmt report` CLI subcommand.
//!
//! [`render`] pretty-prints one snapshot (manifest header, non-zero
//! counters, non-empty spans); [`diff`] lines two snapshots up counter by
//! counter and span by span with absolute deltas and ratios, so "what got
//! slower between these two `BENCH_*.json` runs, and why" is one command.

use crate::counters::{Counter, ALL_COUNTERS, COUNTER_NAMES};
use crate::snapshot::TelemetrySnapshot;
use crate::timing::{ALL_SPANS, SPAN_NAMES};

/// Groups 1234567 as `1_234_567` — counter magnitudes (MACs especially)
/// are unreadable without separators.
fn group(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

fn fmt_ratio(a: u64, b: u64) -> String {
    if a == 0 && b == 0 {
        "=".to_string()
    } else if a == 0 {
        "new".to_string()
    } else {
        format!("{:.2}x", b as f64 / a as f64)
    }
}

/// Mean selector batch occupancy (`gemm_batch_cols / batch_flushes`), or
/// `None` when the snapshot recorded no network forwards.
fn occupancy(snap: &TelemetrySnapshot) -> Option<f64> {
    let flushes = snap.counters.get(Counter::BatchFlushes);
    if flushes == 0 {
        return None;
    }
    Some(snap.counters.get(Counter::GemmBatchCols) as f64 / flushes as f64)
}

fn manifest_line(snap: &TelemetrySnapshot) -> String {
    let m = &snap.manifest;
    format!(
        "run={} mode={} threads={} seed={} timing={}",
        m.run, m.mode, m.threads, m.seed, m.timing
    )
}

/// Renders one snapshot as a readable report.
#[must_use]
pub fn render(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("manifest: {}\n", manifest_line(snap)));
    out.push_str("\ncounters:\n");
    let mut any = false;
    for (name, value) in snap.counters.iter() {
        if value == 0 {
            continue;
        }
        any = true;
        out.push_str(&format!("  {name:<22} {:>20}\n", group(value)));
    }
    if !any {
        out.push_str("  (all zero)\n");
    }
    if let Some(occ) = occupancy(snap) {
        out.push_str(&format!("  {:<22} {:>20.2}\n", "batch_occupancy", occ));
    }
    out.push_str("\nspans:\n");
    any = false;
    for (name, h) in snap.spans.iter() {
        if h.count == 0 {
            continue;
        }
        any = true;
        out.push_str(&format!(
            "  {name:<16} count {:>12}  total {:>10.3} ms  mean {:>10} ns\n",
            group(h.count),
            h.total_ns as f64 / 1e6,
            group(h.mean_ns())
        ));
    }
    if !any {
        out.push_str(&format!(
            "  (none recorded{})\n",
            if snap.manifest.timing {
                ""
            } else {
                "; producing build had telemetry-timing off"
            }
        ));
    }
    out
}

/// Renders a counter/span diff of two snapshots (`a` → `b`).
#[must_use]
pub fn diff(a: &TelemetrySnapshot, b: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("a: {}\n", manifest_line(a)));
    out.push_str(&format!("b: {}\n", manifest_line(b)));
    out.push_str("\ncounters (a -> b):\n");
    out.push_str(&format!(
        "  {:<22} {:>16} {:>16} {:>17} {:>8}\n",
        "counter", "a", "b", "delta", "ratio"
    ));
    let mut any = false;
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        let va = a.counters.get(ALL_COUNTERS[i]);
        let vb = b.counters.get(ALL_COUNTERS[i]);
        if va == 0 && vb == 0 {
            continue;
        }
        any = true;
        let delta = vb as i128 - va as i128;
        let sign = if delta >= 0 { "+" } else { "-" };
        out.push_str(&format!(
            "  {name:<22} {:>16} {:>16} {sign}{:>16} {:>8}\n",
            group(va),
            group(vb),
            group(delta.unsigned_abs() as u64),
            fmt_ratio(va, vb)
        ));
    }
    if !any {
        out.push_str("  (all zero in both)\n");
    }
    match (occupancy(a), occupancy(b)) {
        (None, None) => {}
        (oa, ob) => {
            let f = |o: Option<f64>| o.map_or("-".to_string(), |v| format!("{v:.2}"));
            out.push_str(&format!(
                "  {:<22} {:>16} {:>16}\n",
                "batch_occupancy",
                f(oa),
                f(ob)
            ));
        }
    }
    out.push_str("\nspans, total ns (a -> b):\n");
    any = false;
    for (i, name) in SPAN_NAMES.iter().enumerate() {
        let ha = *a.spans.get(ALL_SPANS[i]);
        let hb = *b.spans.get(ALL_SPANS[i]);
        if ha.count == 0 && hb.count == 0 {
            continue;
        }
        any = true;
        out.push_str(&format!(
            "  {name:<16} {:>16} {:>16} {:>8}\n",
            group(ha.total_ns),
            group(hb.total_ns),
            fmt_ratio(ha.total_ns, hb.total_ns)
        ));
    }
    if !any {
        out.push_str("  (none recorded in either)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Counter;
    use crate::snapshot::Manifest;
    use crate::timing::Span;

    fn snap(pops: u64, ns: u64) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot {
            manifest: Manifest {
                run: "unet_throughput".to_string(),
                mode: "full".to_string(),
                threads: 1,
                seed: 7,
                timing: ns > 0,
            },
            ..TelemetrySnapshot::default()
        };
        s.counters.add(Counter::DijkstraPops, pops);
        if ns > 0 {
            s.spans.record_ns(Span::NnConvFwd, ns);
        }
        s
    }

    #[test]
    fn render_reports_batch_occupancy() {
        let mut s = snap(0, 0);
        assert!(!render(&s).contains("batch_occupancy"));
        s.counters.add(Counter::BatchFlushes, 4);
        s.counters.add(Counter::GemmBatchCols, 10);
        let r = render(&s);
        assert!(r.contains("batch_occupancy"), "{r}");
        assert!(r.contains("2.50"), "{r}");
        let d = diff(&snap(0, 0), &s);
        assert!(d.contains("batch_occupancy"), "{d}");
        assert!(d.contains("2.50"), "{d}");
    }

    #[test]
    fn group_inserts_separators() {
        assert_eq!(group(0), "0");
        assert_eq!(group(999), "999");
        assert_eq!(group(1000), "1_000");
        assert_eq!(group(1234567), "1_234_567");
    }

    #[test]
    fn render_shows_nonzero_counters_and_spans() {
        let r = render(&snap(1500, 2048));
        assert!(r.contains("run=unet_throughput"));
        assert!(r.contains("dijkstra_pops"));
        assert!(r.contains("1_500"));
        assert!(r.contains("nn_conv_fwd"));
        assert!(!r.contains("gemm_panel"), "zero counters stay hidden");
    }

    #[test]
    fn render_flags_timing_off_builds() {
        let r = render(&snap(1, 0));
        assert!(r.contains("telemetry-timing off"));
    }

    #[test]
    fn diff_reports_delta_and_ratio() {
        let d = diff(&snap(100, 1000), &snap(250, 500));
        assert!(d.contains("dijkstra_pops"));
        assert!(d.contains("+"));
        assert!(d.contains("2.50x"));
        assert!(d.contains("0.50x"));
    }

    #[test]
    fn diff_handles_counters_appearing_only_on_one_side() {
        let a = snap(0, 0);
        let mut b = snap(0, 0);
        b.counters.add(Counter::GemmPanel, 5);
        let d = diff(&a, &b);
        assert!(d.contains("gemm_panel"));
        assert!(d.contains("new"));
    }
}
