//! Tier B: feature-gated scoped span timing with log2 histograms.
//!
//! Spans are statically registered in the [`Span`] enum, like Tier A
//! counters, and accumulate into fixed-size [`SpanHist`] log2-nanosecond
//! histograms — no allocation, no dynamic registration. The *only* clock
//! reads live in this module, behind `cfg(feature = "telemetry-timing")`
//! and `timing-ok` lint markers: that pair of gates is the tier boundary.
//! Without the feature, [`SpanStart::now`] is a unit value and
//! [`SpanStart::elapsed_ns`] returns zero, so result-affecting crates can
//! keep their span calls compiled in (they cost two function calls that
//! fold to nothing) without ever observing time.
//!
//! [`SpanSet::record_ns`] itself is *not* feature-gated: it is a
//! deterministic function of its arguments, which lets harnesses measure
//! durations on one side of a thread boundary and fold them on the other.

/// Number of log2 buckets per span histogram. Bucket `i` counts durations
/// with `floor(log2(ns)) == i` (bucket 0 also takes 0 ns), so the top
/// bucket starts at `2^39` ns ≈ 9 minutes.
pub const SPAN_BUCKETS: usize = 40;

/// Every Tier B span. The discriminant is the index into [`SpanSet`] /
/// [`SPAN_NAMES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Span {
    /// Harness: the \[14\] baseline router, per layout.
    PhaseBaseline,
    /// Harness: Steiner-point selection (encode + U-Net + top-k).
    PhaseSelect,
    /// Harness: post-selection routing (OARMST + safeguard + refinement).
    PhaseRoute,
    /// Critic bench: selector share of one leaf evaluation.
    CriticSelect,
    /// Critic bench: router share of one leaf evaluation.
    CriticRoute,
    /// Convolution forward (incl. `1×1×1` heads and projections).
    NnConvFwd,
    /// Convolution backward.
    NnConvBwd,
    /// GroupNorm forward.
    NnNormFwd,
    /// GroupNorm backward.
    NnNormBwd,
    /// Activation (ReLU/sigmoid) forward.
    NnActFwd,
    /// Activation backward.
    NnActBwd,
    /// Max-pool forward.
    NnPoolFwd,
    /// Max-pool backward.
    NnPoolBwd,
    /// Upsample forward.
    NnUpFwd,
    /// Upsample backward.
    NnUpBwd,
    /// Router: per-query preparation (bind + candidate dedup).
    RoutePrepare,
    /// Router: one multi-source maze (Dijkstra) query of the Prim loop.
    RouteDijkstra,
    /// Router: one path-assessed polish round (retrace).
    RouteRetrace,
    /// Trainer: one full training stage (generation + fit).
    TrainStage,
    /// Trainer: sample-generation share of a stage.
    TrainGen,
    /// Trainer: optimizer-fit share of a stage.
    TrainFit,
    /// Bench harness: one benchmark rung end to end.
    BenchRung,
}

/// Number of [`Span`] variants.
pub const NUM_SPANS: usize = 22;

/// Snake-case wire names, indexed by [`Span`] discriminant.
pub const SPAN_NAMES: [&str; NUM_SPANS] = [
    "phase_baseline",
    "phase_select",
    "phase_route",
    "critic_select",
    "critic_route",
    "nn_conv_fwd",
    "nn_conv_bwd",
    "nn_norm_fwd",
    "nn_norm_bwd",
    "nn_act_fwd",
    "nn_act_bwd",
    "nn_pool_fwd",
    "nn_pool_bwd",
    "nn_up_fwd",
    "nn_up_bwd",
    "route_prepare",
    "route_dijkstra",
    "route_retrace",
    "train_stage",
    "train_gen",
    "train_fit",
    "bench_rung",
];

/// All spans in discriminant order.
pub const ALL_SPANS: [Span; NUM_SPANS] = [
    Span::PhaseBaseline,
    Span::PhaseSelect,
    Span::PhaseRoute,
    Span::CriticSelect,
    Span::CriticRoute,
    Span::NnConvFwd,
    Span::NnConvBwd,
    Span::NnNormFwd,
    Span::NnNormBwd,
    Span::NnActFwd,
    Span::NnActBwd,
    Span::NnPoolFwd,
    Span::NnPoolBwd,
    Span::NnUpFwd,
    Span::NnUpBwd,
    Span::RoutePrepare,
    Span::RouteDijkstra,
    Span::RouteRetrace,
    Span::TrainStage,
    Span::TrainGen,
    Span::TrainFit,
    Span::BenchRung,
];

/// Default span (the zeroed slot value of the trace ring buffer; never
/// observable through the recorder API, which tracks the valid prefix).
impl Default for Span {
    fn default() -> Self {
        Span::PhaseBaseline
    }
}

impl Span {
    /// Parses a wire name back to the span.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Span> {
        SPAN_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| ALL_SPANS[i])
    }
}

/// A span start mark. With `telemetry-timing` this holds the start
/// instant; without it, it is a zero-sized token and every elapsed reading
/// is zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStart {
    #[cfg(feature = "telemetry-timing")]
    at: Option<std::time::Instant>,
}

impl SpanStart {
    /// Marks "now". This is the Tier B clock read; compiled out without
    /// the feature.
    #[inline]
    #[must_use]
    pub fn now() -> SpanStart {
        SpanStart {
            #[cfg(feature = "telemetry-timing")]
            // lint: timing-ok(Tier B boundary: feature-gated span clock; results never depend on it)
            at: Some(std::time::Instant::now()),
        }
    }

    /// A start mark that always reads as zero elapsed (used to represent
    /// "timing disabled" uniformly).
    #[inline]
    #[must_use]
    pub fn disabled() -> SpanStart {
        SpanStart::default()
    }

    /// Nanoseconds since [`SpanStart::now`]; zero when timing is disabled
    /// or for a [`SpanStart::disabled`] mark.
    #[inline]
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "telemetry-timing")]
        {
            match self.at {
                // lint: timing-ok(Tier B boundary: feature-gated span clock; results never depend on it)
                Some(t0) => u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                None => 0,
            }
        }
        #[cfg(not(feature = "telemetry-timing"))]
        {
            0
        }
    }
}

/// One span's accumulated statistics: call count, total nanoseconds, and a
/// log2 duration histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHist {
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations in nanoseconds.
    pub total_ns: u64,
    /// `buckets[i]` counts durations with `floor(log2(ns)) == i`.
    pub buckets: [u64; SPAN_BUCKETS],
}

impl Default for SpanHist {
    fn default() -> Self {
        SpanHist {
            count: 0,
            total_ns: 0,
            buckets: [0; SPAN_BUCKETS],
        }
    }
}

impl SpanHist {
    /// Records one duration.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        let bucket = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(SPAN_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
    }

    /// Mean duration in nanoseconds (zero when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A full set of Tier B span histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanSet {
    hists: [SpanHist; NUM_SPANS],
}

impl SpanSet {
    /// All-empty span set.
    #[must_use]
    pub fn new() -> Self {
        SpanSet::default()
    }

    /// Ends a scoped span: records the elapsed time of `start` under `s`.
    /// With timing disabled this records a zero-duration event.
    #[inline]
    pub fn stop(&mut self, start: SpanStart, s: Span) {
        self.record_ns(s, start.elapsed_ns());
    }

    /// Records an externally measured duration under `s`. Deterministic in
    /// its arguments; not feature-gated (see module docs).
    #[inline]
    pub fn record_ns(&mut self, s: Span, ns: u64) {
        self.hists[s as usize].record_ns(ns);
    }

    /// Reads one span's histogram.
    #[must_use]
    pub fn get(&self, s: Span) -> &SpanHist {
        &self.hists[s as usize]
    }

    /// Replaces one span's histogram wholesale (snapshot parsing).
    pub fn set_hist(&mut self, s: Span, h: SpanHist) {
        self.hists[s as usize] = h;
    }

    /// Total seconds recorded under `s`.
    #[must_use]
    pub fn total_secs(&self, s: Span) -> f64 {
        self.hists[s as usize].total_ns as f64 / 1e9
    }

    /// Adds every histogram of `other` into `self`, index by index.
    pub fn merge_from(&mut self, other: &SpanSet) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.count += b.count;
            a.total_ns = a.total_ns.saturating_add(b.total_ns);
            for (x, y) in a.buckets.iter_mut().zip(b.buckets.iter()) {
                *x += *y;
            }
        }
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(|h| h.count == 0)
    }

    /// `(wire name, histogram)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &SpanHist)> + '_ {
        SPAN_NAMES.iter().copied().zip(self.hists.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        for (i, s) in ALL_SPANS.iter().enumerate() {
            assert_eq!(*s as usize, i);
            assert_eq!(Span::from_name(SPAN_NAMES[i]), Some(*s));
        }
        assert_eq!(Span::from_name("bogus"), None);
        let mut names = SPAN_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_SPANS);
    }

    #[test]
    fn log2_buckets_land_where_expected() {
        let mut h = SpanHist::default();
        h.record_ns(0); // bucket 0
        h.record_ns(1); // bucket 0
        h.record_ns(2); // bucket 1
        h.record_ns(3); // bucket 1
        h.record_ns(1024); // bucket 10
        h.record_ns(u64::MAX); // clamps to top bucket
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.buckets[SPAN_BUCKETS - 1], 1);
    }

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = SpanSet::new();
        let mut b = SpanSet::new();
        a.record_ns(Span::PhaseRoute, 100);
        b.record_ns(Span::PhaseRoute, 300);
        b.record_ns(Span::CriticSelect, 50);
        a.merge_from(&b);
        assert_eq!(a.get(Span::PhaseRoute).count, 2);
        assert_eq!(a.get(Span::PhaseRoute).total_ns, 400);
        assert_eq!(a.get(Span::PhaseRoute).mean_ns(), 200);
        assert_eq!(a.get(Span::CriticSelect).count, 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn span_start_respects_the_feature_gate() {
        let t = SpanStart::now();
        let ns = t.elapsed_ns();
        if crate::TIMING_ENABLED {
            // A second reading can only grow.
            assert!(t.elapsed_ns() >= ns);
        } else {
            assert_eq!(ns, 0);
        }
        assert_eq!(SpanStart::disabled().elapsed_ns(), 0);
    }

    #[test]
    fn stop_records_one_event() {
        let mut s = SpanSet::new();
        let t = SpanStart::now();
        s.stop(t, Span::NnConvFwd);
        assert_eq!(s.get(Span::NnConvFwd).count, 1);
    }
}
