//! The CI perf-regression gate: `oarsmt report --check CURRENT BASELINE`.
//!
//! A check compares a freshly produced `BENCH_*.json` artifact against its
//! recorded baseline under a checked-in [`Policy`] (`report.toml`):
//!
//! * **Deterministic work counters must be bit-identical.** The embedded
//!   [`crate::TelemetrySnapshot`]s are parsed out of both artifacts and
//!   every Tier A counter is compared exactly — this machine-enforces the
//!   repo's core invariant. The policy may fold the workspace-pool
//!   hit/miss splits first (the one documented non-invariant pair, see
//!   `CounterSet::fold_pool_splits`) and may list counters whose drift is
//!   tolerated (`allow_drift`).
//! * **Wall-clock metrics stay within a per-metric percentage band.** A
//!   `[[metric]]` policy entry names a top-level artifact field and the
//!   allowed band; a metric present in the baseline but missing from the
//!   current artifact is a violation, one absent from both is skipped (so
//!   one policy file covers every artifact kind).
//!
//! [`summary`] builds the consolidated `BENCH_summary.json` — one row per
//! artifact with its headline metric, an FNV hash over all checksum
//! fields, and an FNV hash of the embedded snapshot — so the perf
//! trajectory is greppable from a single file.

use std::path::Path;

use crate::counters::{Counter, COUNTER_NAMES};
use crate::TelemetrySnapshot;

/// Tolerance policy for one wall-clock metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPolicy {
    /// Top-level artifact field name (e.g. `reused_rps`).
    pub name: String,
    /// Allowed band in percent: current must lie within
    /// `baseline / (1 + pct/100) ..= baseline * (1 + pct/100)`.
    pub band_pct: f64,
}

/// A parsed `report.toml` check policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Fold the pool hit/miss splits before comparing counters.
    pub fold_pool_splits: bool,
    /// Counter wire names whose drift is tolerated.
    pub allow_drift: Vec<String>,
    /// Banded wall-clock metrics.
    pub metrics: Vec<MetricPolicy>,
}

impl Default for Policy {
    /// The no-file default: exact counters with folded pool splits, no
    /// wall-clock bands.
    fn default() -> Self {
        Policy {
            fold_pool_splits: true,
            allow_drift: Vec::new(),
            metrics: Vec::new(),
        }
    }
}

impl Policy {
    /// Parses the `report.toml` subset: a `[counters]` table with
    /// `fold_pool_splits` / `allow_drift`, and repeated `[[metric]]`
    /// tables with `name` / `band_pct`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse(src: &str) -> Result<Policy, String> {
        let mut policy = Policy::default();
        let mut section = String::new();
        for (i, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = i + 1;
            if line.starts_with("[[") && line.ends_with("]]") {
                section = line[2..line.len() - 2].trim().to_string();
                if section == "metric" {
                    policy.metrics.push(MetricPolicy {
                        name: String::new(),
                        band_pct: 0.0,
                    });
                } else {
                    return Err(format!("line {lineno}: unknown array table `{section}`"));
                }
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = line[1..line.len() - 1].trim().to_string();
                if section != "counters" {
                    return Err(format!("line {lineno}: unknown table `{section}`"));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match (section.as_str(), key) {
                ("counters", "fold_pool_splits") => {
                    policy.fold_pool_splits = value == "true";
                }
                ("counters", "allow_drift") => {
                    let inner = value
                        .strip_prefix('[')
                        .and_then(|v| v.strip_suffix(']'))
                        .ok_or_else(|| format!("line {lineno}: allow_drift expects an array"))?;
                    for item in inner.split(',') {
                        let item = item.trim().trim_matches('"');
                        if item.is_empty() {
                            continue;
                        }
                        if Counter::from_name(item).is_none() {
                            return Err(format!("line {lineno}: unknown counter `{item}`"));
                        }
                        policy.allow_drift.push(item.to_string());
                    }
                }
                ("metric", "name") => {
                    let m = policy
                        .metrics
                        .last_mut()
                        .ok_or_else(|| format!("line {lineno}: `name` outside [[metric]]"))?;
                    m.name = value.trim_matches('"').to_string();
                }
                ("metric", "band_pct") => {
                    let m = policy
                        .metrics
                        .last_mut()
                        .ok_or_else(|| format!("line {lineno}: `band_pct` outside [[metric]]"))?;
                    m.band_pct = value
                        .parse()
                        .map_err(|_| format!("line {lineno}: bad band_pct `{value}`"))?;
                }
                _ => {
                    return Err(format!(
                        "line {lineno}: unknown key `{key}` in `[{section}]`"
                    ))
                }
            }
        }
        for (i, m) in policy.metrics.iter().enumerate() {
            if m.name.is_empty() {
                return Err(format!("[[metric]] #{} has no `name`", i + 1));
            }
            if m.band_pct <= 0.0 {
                return Err(format!("metric `{}` has no positive `band_pct`", m.name));
            }
        }
        Ok(policy)
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// `counter`, `metric`, or `manifest`.
    pub kind: &'static str,
    /// The offending counter/metric/field name.
    pub name: String,
    /// Value in the current artifact (`-` when missing).
    pub current: String,
    /// Value in the baseline artifact.
    pub baseline: String,
    /// The policy the pair violated.
    pub policy: String,
}

/// The result of one [`check`] run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckReport {
    /// Violations, counter rows first.
    pub violations: Vec<Violation>,
    /// Counters compared exactly.
    pub counters_checked: usize,
    /// Wall-clock metrics compared against a band.
    pub metrics_checked: usize,
}

impl CheckReport {
    /// Whether the gate passes.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Extracts the *last* `"key": <number>` occurrence from artifact text
/// (top-level summary fields come after the per-rung lines), tolerating
/// whitespace after the colon. Returns the raw value text.
fn last_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let mut found = None;
    let mut from = 0;
    while let Some(pos) = text[from..].find(&pat) {
        let start = from + pos + pat.len();
        from = start;
        let rest = text[start..].trim_start();
        let Some(rest) = rest.strip_prefix(':') else {
            continue;
        };
        let rest = rest.trim_start();
        let value: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            .collect();
        if !value.is_empty() {
            found = Some(value);
        }
    }
    found
}

/// Compares `current` against `baseline` artifact text under `policy`.
///
/// # Errors
///
/// Returns a message when either artifact lacks a parseable telemetry
/// snapshot (that is a hard error, not a violation: the gate cannot run).
pub fn check(current: &str, baseline: &str, policy: &Policy) -> Result<CheckReport, String> {
    let mut cur =
        TelemetrySnapshot::from_jsonl(current).map_err(|e| format!("current artifact: {e}"))?;
    let mut base =
        TelemetrySnapshot::from_jsonl(baseline).map_err(|e| format!("baseline artifact: {e}"))?;
    let mut report = CheckReport::default();

    if cur.manifest.run != base.manifest.run || cur.manifest.mode != base.manifest.mode {
        report.violations.push(Violation {
            kind: "manifest",
            name: "run/mode".to_string(),
            current: format!("{}/{}", cur.manifest.run, cur.manifest.mode),
            baseline: format!("{}/{}", base.manifest.run, base.manifest.mode),
            policy: "same producer".to_string(),
        });
    }

    if policy.fold_pool_splits {
        cur.counters.fold_pool_splits();
        base.counters.fold_pool_splits();
    }
    for (i, name) in COUNTER_NAMES.iter().enumerate() {
        if policy.allow_drift.iter().any(|d| d == name) {
            continue;
        }
        // Folded miss slots compare 0 == 0 and stay in the checked count;
        // the fold is part of the policy, not a skip.
        let (a, b) = (
            cur.counters.get(crate::counters::ALL_COUNTERS[i]),
            base.counters.get(crate::counters::ALL_COUNTERS[i]),
        );
        report.counters_checked += 1;
        if a != b {
            report.violations.push(Violation {
                kind: "counter",
                name: (*name).to_string(),
                current: a.to_string(),
                baseline: b.to_string(),
                policy: "bit-identical".to_string(),
            });
        }
    }

    for m in &policy.metrics {
        let Some(base_raw) = last_field(baseline, &m.name) else {
            continue; // not an artifact of this kind
        };
        let base_val: f64 = base_raw.parse().unwrap_or(f64::NAN);
        report.metrics_checked += 1;
        let Some(cur_raw) = last_field(current, &m.name) else {
            report.violations.push(Violation {
                kind: "metric",
                name: m.name.clone(),
                current: "-".to_string(),
                baseline: base_raw,
                policy: "present".to_string(),
            });
            continue;
        };
        let cur_val: f64 = cur_raw.parse().unwrap_or(f64::NAN);
        let band = 1.0 + m.band_pct / 100.0;
        let ok = base_val.is_finite()
            && cur_val.is_finite()
            && cur_val <= base_val * band
            && cur_val >= base_val / band;
        if !ok {
            report.violations.push(Violation {
                kind: "metric",
                name: m.name.clone(),
                current: cur_raw,
                baseline: base_raw,
                policy: format!("within ±{}%", m.band_pct),
            });
        }
    }

    // Counter rows first, then metrics (stable within each kind).
    report.violations.sort_by_key(|v| match v.kind {
        "manifest" => 0,
        "counter" => 1,
        _ => 2,
    });
    Ok(report)
}

/// Renders a check result as a human-readable table (empty string when the
/// gate passes — callers print their own success line).
#[must_use]
pub fn render_check(report: &CheckReport) -> String {
    if report.ok() {
        return String::new();
    }
    let mut out = format!(
        "regression check FAILED: {} violation(s)\n{:<9} {:<24} {:>16} {:>16}  {}\n",
        report.violations.len(),
        "kind",
        "name",
        "current",
        "baseline",
        "policy"
    );
    for v in &report.violations {
        out.push_str(&format!(
            "{:<9} {:<24} {:>16} {:>16}  {}\n",
            v.kind, v.name, v.current, v.baseline, v.policy
        ));
    }
    out
}

/// FNV-1a 64-bit.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `(key, value-text)` pairs scanned from one artifact line.
fn fields_of(line: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(close) = line[i + 1..].find('"') else {
            break;
        };
        let key = &line[i + 1..i + 1 + close];
        let mut j = i + 1 + close + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b':' {
            i = j;
            continue;
        }
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let vstart = j;
        if j < bytes.len() && bytes[j] == b'"' {
            j += 1;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            j = (j + 1).min(bytes.len());
        } else {
            while j < bytes.len() && !matches!(bytes[j], b',' | b'}' | b']') {
                j += 1;
            }
        }
        out.push((
            key.to_string(),
            line[vstart..j].trim().trim_matches('"').to_string(),
        ));
        i = j;
    }
    out
}

/// Headline-metric priority for the summary rows: the first of these found
/// (last occurrence in the file = top-level summary) names the artifact.
const HEADLINE_METRICS: [&str; 6] = [
    "reused_rps",
    "dial_speedup",
    "total_fwd_per_s",
    "batch_states_per_s",
    "req_per_s",
    "value",
];

/// Builds the consolidated `BENCH_summary.json` text over every
/// `BENCH_*.json` in `dir` (sorted by file name): one row per artifact
/// with its headline metric (name + raw value text), an FNV-1a hash over
/// all checksum-bearing fields (`checksum*`, `cs_*` — result identity,
/// not timing), and an FNV-1a hash of the embedded telemetry snapshot
/// (`-` when the artifact has none). Deterministic for fixed inputs.
///
/// # Errors
///
/// Returns a message when `dir` is unreadable; unreadable files inside it
/// are skipped.
pub fn summary(dir: &Path) -> Result<String, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort_unstable();
    let mut out = String::from("{\n\"artifacts\": [\n");
    let mut rows = Vec::new();
    for name in &names {
        let Ok(text) = std::fs::read_to_string(dir.join(name)) else {
            continue;
        };
        let (metric, value) = HEADLINE_METRICS
            .iter()
            .find_map(|m| last_field(&text, m).map(|v| ((*m).to_string(), v)))
            .unwrap_or_else(|| ("-".to_string(), "0".to_string()));
        let mut checksums = String::new();
        for line in text.lines() {
            for (key, val) in fields_of(line) {
                if key.contains("checksum") || key.starts_with("cs_") {
                    checksums.push_str(&key);
                    checksums.push('=');
                    checksums.push_str(&val);
                    checksums.push(';');
                }
            }
        }
        let snap_hash = match TelemetrySnapshot::from_jsonl(&text) {
            Ok(snap) => format!("fnv:{:016x}", fnv1a(snap.to_jsonl().as_bytes())),
            Err(_) => "-".to_string(),
        };
        rows.push(format!(
            "{{\"file\": \"{name}\", \"metric\": \"{metric}\", \"value\": {value}, \"checksums\": \"fnv:{:016x}\", \"snapshot\": \"{snap_hash}\"}}",
            fnv1a(checksums.as_bytes())
        ));
    }
    for (i, row) in rows.iter().enumerate() {
        out.push_str(row);
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str(&format!("],\n\"count\": {}\n}}\n", rows.len()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Manifest};

    fn snap(run: &str, pops: u64, misses: u64) -> String {
        let mut s = TelemetrySnapshot {
            manifest: Manifest {
                run: run.to_string(),
                mode: "quick".to_string(),
                threads: 1,
                seed: 7,
                timing: false,
            },
            ..TelemetrySnapshot::default()
        };
        s.counters.add(Counter::DijkstraPops, pops);
        s.counters.add(Counter::TreePoolHits, 10 - misses);
        s.counters.add(Counter::TreePoolMisses, misses);
        s.to_jsonl()
    }

    fn artifact(run: &str, pops: u64, misses: u64, rps: f64) -> String {
        format!(
            "{{\n\"rungs\": [\n{{\"name\": \"T32\", \"reused_rps\": 1.0, \"checksum\": 5.000000}}\n],\n\
             \"reused_rps\": {rps},\n\"telemetry\": [\n{}],\n}}\n",
            snap(run, pops, misses)
        )
    }

    fn rps_policy(band: f64) -> Policy {
        Policy {
            metrics: vec![MetricPolicy {
                name: "reused_rps".to_string(),
                band_pct: band,
            }],
            ..Policy::default()
        }
    }

    #[test]
    fn identical_artifacts_pass() {
        let a = artifact("critic", 100, 3, 50.0);
        let report = check(&a, &a, &rps_policy(50.0)).unwrap();
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.counters_checked, crate::NUM_COUNTERS);
        assert_eq!(report.metrics_checked, 1);
    }

    #[test]
    fn counter_perturbation_is_a_violation() {
        let cur = artifact("critic", 101, 3, 50.0);
        let base = artifact("critic", 100, 3, 50.0);
        let report = check(&cur, &base, &rps_policy(50.0)).unwrap();
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!((v.kind, v.name.as_str()), ("counter", "dijkstra_pops"));
        assert_eq!((v.current.as_str(), v.baseline.as_str()), ("101", "100"));
        assert!(render_check(&report).contains("dijkstra_pops"));
    }

    #[test]
    fn pool_split_drift_is_folded_away_by_default() {
        let cur = artifact("critic", 100, 8, 50.0);
        let base = artifact("critic", 100, 1, 50.0);
        assert!(check(&cur, &base, &Policy::default()).unwrap().ok());
        let strict = Policy {
            fold_pool_splits: false,
            ..Policy::default()
        };
        assert!(!check(&cur, &base, &strict).unwrap().ok());
    }

    #[test]
    fn wall_clock_band_is_enforced_both_ways() {
        let base = artifact("critic", 100, 3, 100.0);
        for (rps, ok) in [(100.0, true), (60.0, true), (260.0, false), (30.0, false)] {
            let cur = artifact("critic", 100, 3, rps);
            let report = check(&cur, &base, &rps_policy(100.0)).unwrap();
            assert_eq!(report.ok(), ok, "rps {rps}: {:?}", report.violations);
        }
    }

    #[test]
    fn metric_absent_from_both_sides_is_skipped() {
        let a = artifact("critic", 100, 3, 50.0);
        let mut policy = rps_policy(50.0);
        policy.metrics.push(MetricPolicy {
            name: "dial_speedup".to_string(),
            band_pct: 300.0,
        });
        let report = check(&a, &a, &policy).unwrap();
        assert!(report.ok());
        assert_eq!(report.metrics_checked, 1, "dial_speedup must be skipped");
    }

    #[test]
    fn mismatched_producers_are_flagged() {
        let report = check(
            &artifact("critic", 100, 3, 50.0),
            &artifact("dijkstra", 100, 3, 50.0),
            &Policy::default(),
        )
        .unwrap();
        assert_eq!(report.violations[0].kind, "manifest");
    }

    #[test]
    fn allow_drift_tolerates_a_named_counter() {
        let cur = artifact("critic", 101, 3, 50.0);
        let base = artifact("critic", 100, 3, 50.0);
        let policy = Policy {
            allow_drift: vec!["dijkstra_pops".to_string()],
            ..Policy::default()
        };
        assert!(check(&cur, &base, &policy).unwrap().ok());
    }

    #[test]
    fn policy_file_parses_and_rejects_garbage() {
        let src = "# gate policy\n\
                   [counters]\n\
                   fold_pool_splits = true\n\
                   allow_drift = [\"dijkstra_bucket_scans\"]\n\
                   \n\
                   [[metric]]\n\
                   name = \"reused_rps\"   # wall-clock\n\
                   band_pct = 300.0\n\
                   [[metric]]\n\
                   name = \"dial_speedup\"\n\
                   band_pct = 300\n";
        let p = Policy::parse(src).unwrap();
        assert!(p.fold_pool_splits);
        assert_eq!(p.allow_drift, vec!["dijkstra_bucket_scans".to_string()]);
        assert_eq!(p.metrics.len(), 2);
        assert!((p.metrics[1].band_pct - 300.0).abs() < 1e-12);

        assert!(Policy::parse("[bogus]\n").is_err());
        assert!(Policy::parse("[counters]\nallow_drift = [\"nope\"]\n").is_err());
        assert!(Policy::parse("[[metric]]\nband_pct = 10\n").is_err());
        assert!(Policy::parse("[[metric]]\nname = \"x\"\n").is_err());
    }

    #[test]
    fn last_field_takes_the_top_level_summary_value() {
        let text = artifact("critic", 1, 0, 42.5);
        assert_eq!(last_field(&text, "reused_rps").as_deref(), Some("42.5"));
        assert_eq!(last_field(&text, "missing"), None);
    }

    #[test]
    fn summary_rows_are_deterministic_and_tolerant() {
        let dir = std::env::temp_dir().join(format!("oarsmt_summary_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_b.json"), artifact("critic", 9, 0, 77.0)).unwrap();
        // No telemetry, no headline metric: still a row.
        std::fs::write(dir.join("BENCH_a.json"), "{\n\"other\": 1\n}\n").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let s1 = summary(&dir).unwrap();
        let s2 = summary(&dir).unwrap();
        assert_eq!(s1, s2);
        let a_pos = s1.find("BENCH_a.json").unwrap();
        let b_pos = s1.find("BENCH_b.json").unwrap();
        assert!(a_pos < b_pos, "rows sorted by file name");
        assert!(s1.contains("\"count\": 2"));
        assert!(s1.contains("\"snapshot\": \"-\""));
        assert!(s1.contains("\"metric\": \"reused_rps\", \"value\": 77"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
