//! Persistent run metrics streams: `runs/<run-id>/metrics.jsonl`.
//!
//! A [`RunLogger`] appends one JSONL record per training stage or bench
//! rung into a per-run directory, giving training its loss/throughput
//! *curves* where a [`crate::TelemetrySnapshot`] only keeps the final
//! totals. The wire form follows the snapshot conventions — one tagged
//! JSON object per line, hand-scanned back without a JSON dependency — so
//! the same `oarsmt report` CLI renders and diffs run directories.
//!
//! Record kinds:
//!
//! * `manifest` — the [`Manifest`] of the producing run (same line format
//!   as the snapshot manifest record).
//! * `stage` — one training stage: [`StageStats`] plus the Tier A counter
//!   *delta* of the stage and per-span total nanoseconds.
//! * `rung` — one bench rung: headline metric name/value, wall-clock, and
//!   the rung's counter delta.
//!
//! Every record is flushed as it is written, so a crashed or interrupted
//! run leaves a readable prefix. [`RunLog::load`] parses a run directory
//! back; duplicate stages append in file order (the reader does not
//! dedup — a resumed run's log reads as its full history).

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::counters::{Counter, CounterSet};
use crate::snapshot::{json_f64, json_str, json_u64};
use crate::timing::{Span, SPAN_NAMES};
use crate::Manifest;

/// Scalar statistics of one training stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageStats {
    /// Stage index (0-based).
    pub stage: usize,
    /// Training samples consumed this stage.
    pub samples: usize,
    /// Mean loss over the stage.
    pub loss: f64,
    /// Mean MCTS-cost / baseline-cost ratio of the generated samples.
    pub mcts_cost_ratio: f64,
    /// Sample-generation wall-clock seconds.
    pub gen_secs: f64,
    /// Optimizer-fit wall-clock seconds.
    pub fit_secs: f64,
}

/// Appends run records into `root/<run-id>/metrics.jsonl`.
#[derive(Debug)]
pub struct RunLogger {
    dir: PathBuf,
    file: std::fs::File,
}

/// Escapes the string subset we emit (mirrors the snapshot writer).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes a counter set as an inline `{"name":value,…}` object,
/// omitting zeros.
fn counters_obj(c: &CounterSet) -> String {
    let mut out = String::from("{");
    for (name, value) in c.iter() {
        if value == 0 {
            continue;
        }
        if out.len() > 1 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push('}');
    out
}

/// Parses an inline `{"name":value,…}` object back into a counter set
/// (unknown names are skipped, like the snapshot reader).
fn parse_counters_obj(line: &str) -> CounterSet {
    let mut set = CounterSet::new();
    let Some(start) = line.find("\"counters\":{") else {
        return set;
    };
    let body = &line[start + "\"counters\":{".len()..];
    let Some(end) = body.find('}') else {
        return set;
    };
    for piece in body[..end].split(',') {
        let Some((k, v)) = piece.split_once(':') else {
            continue;
        };
        let name = k.trim().trim_matches('"');
        if let (Some(c), Ok(value)) = (Counter::from_name(name), v.trim().parse::<u64>()) {
            set.set(c, value);
        }
    }
    set
}

impl RunLogger {
    /// Creates (or truncates) `root/<run-id>/metrics.jsonl`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation / file-creation failures.
    pub fn create(root: &Path, run_id: &str) -> std::io::Result<RunLogger> {
        let dir = root.join(run_id);
        std::fs::create_dir_all(&dir)?;
        let file = std::fs::File::create(dir.join("metrics.jsonl"))?;
        Ok(RunLogger { dir, file })
    }

    /// The run directory this logger writes into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }

    /// Writes the run manifest (once, first).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn log_manifest(&mut self, m: &Manifest) -> std::io::Result<()> {
        self.write_line(&format!(
            "{{\"record\":\"manifest\",\"run\":\"{}\",\"mode\":\"{}\",\"threads\":{},\"seed\":{},\"timing\":{}}}",
            esc(&m.run),
            esc(&m.mode),
            m.threads,
            m.seed,
            m.timing
        ))
    }

    /// Appends one training-stage record: scalar stats, the stage's
    /// counter delta, and per-span total nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn log_stage(
        &mut self,
        stats: &StageStats,
        counter_delta: &CounterSet,
        span_totals: &[(Span, u64)],
    ) -> std::io::Result<()> {
        let mut spans = String::from("{");
        for (s, ns) in span_totals {
            if spans.len() > 1 {
                spans.push(',');
            }
            spans.push_str(&format!("\"{}\":{ns}", SPAN_NAMES[*s as usize]));
        }
        spans.push('}');
        self.write_line(&format!(
            "{{\"record\":\"stage\",\"stage\":{},\"samples\":{},\"loss\":{},\"mcts_cost_ratio\":{},\"gen_secs\":{},\"fit_secs\":{},\"counters\":{},\"spans\":{}}}",
            stats.stage,
            stats.samples,
            stats.loss,
            stats.mcts_cost_ratio,
            stats.gen_secs,
            stats.fit_secs,
            counters_obj(counter_delta),
            spans
        ))
    }

    /// Appends one bench-rung record: headline metric, wall-clock, and the
    /// rung's counter delta.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn log_rung(
        &mut self,
        name: &str,
        metric: &str,
        value: f64,
        secs: f64,
        counter_delta: &CounterSet,
    ) -> std::io::Result<()> {
        self.write_line(&format!(
            "{{\"record\":\"rung\",\"name\":\"{}\",\"metric\":\"{}\",\"value\":{value},\"secs\":{secs},\"counters\":{}}}",
            esc(name),
            esc(metric),
            counters_obj(counter_delta)
        ))
    }
}

/// One parsed `stage` record.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRecord {
    /// Scalar stats.
    pub stats: StageStats,
    /// Tier A counter delta of the stage.
    pub counters: CounterSet,
    /// Per-span total nanoseconds, in file order.
    pub spans: Vec<(Span, u64)>,
}

/// One parsed `rung` record.
#[derive(Debug, Clone, PartialEq)]
pub struct RungRecord {
    /// Rung name (e.g. `T64`).
    pub name: String,
    /// Headline metric name (e.g. `reused_rps`).
    pub metric: String,
    /// Headline metric value.
    pub value: f64,
    /// Wall-clock seconds of the rung.
    pub secs: f64,
    /// Tier A counter delta of the rung.
    pub counters: CounterSet,
}

/// A parsed run directory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunLog {
    /// The run manifest, when the log has one.
    pub manifest: Option<Manifest>,
    /// Stage records in file order.
    pub stages: Vec<StageRecord>,
    /// Rung records in file order.
    pub rungs: Vec<RungRecord>,
}

impl RunLog {
    /// Loads `dir/metrics.jsonl`.
    ///
    /// # Errors
    ///
    /// Returns a message when the file is unreadable or a record is
    /// malformed (line number + truncated payload, like the snapshot
    /// parser).
    pub fn load(dir: &Path) -> Result<RunLog, String> {
        let path = dir.join("metrics.jsonl");
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        RunLog::parse(&text)
    }

    /// Parses metrics JSONL text (see [`RunLog::load`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed record.
    pub fn parse(text: &str) -> Result<RunLog, String> {
        let mut log = RunLog::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim().trim_end_matches(',');
            let Some(kind) = json_str(line, "record") else {
                continue;
            };
            let lineno = i + 1;
            let bad = |what: &str| {
                let mut payload: String = line.chars().take(60).collect();
                if payload.len() < line.len() {
                    payload.push('…');
                }
                format!("line {lineno}: {what} in `{payload}`")
            };
            match kind.as_str() {
                "manifest" => {
                    log.manifest = Some(Manifest {
                        run: json_str(line, "run").ok_or_else(|| bad("manifest missing `run`"))?,
                        mode: json_str(line, "mode").unwrap_or_default(),
                        threads: json_u64(line, "threads").unwrap_or(0) as usize,
                        seed: json_u64(line, "seed").unwrap_or(0),
                        timing: line.contains("\"timing\":true"),
                    });
                }
                "stage" => {
                    let stats = StageStats {
                        stage: json_u64(line, "stage")
                            .ok_or_else(|| bad("stage missing `stage`"))?
                            as usize,
                        samples: json_u64(line, "samples").unwrap_or(0) as usize,
                        loss: json_f64(line, "loss").ok_or_else(|| bad("stage missing `loss`"))?,
                        mcts_cost_ratio: json_f64(line, "mcts_cost_ratio").unwrap_or(0.0),
                        gen_secs: json_f64(line, "gen_secs").unwrap_or(0.0),
                        fit_secs: json_f64(line, "fit_secs").unwrap_or(0.0),
                    };
                    let mut spans = Vec::new();
                    if let Some(start) = line.find("\"spans\":{") {
                        let body = &line[start + "\"spans\":{".len()..];
                        if let Some(end) = body.find('}') {
                            for piece in body[..end].split(',') {
                                if let Some((k, v)) = piece.split_once(':') {
                                    let name = k.trim().trim_matches('"');
                                    if let (Some(s), Ok(ns)) =
                                        (Span::from_name(name), v.trim().parse::<u64>())
                                    {
                                        spans.push((s, ns));
                                    }
                                }
                            }
                        }
                    }
                    log.stages.push(StageRecord {
                        stats,
                        counters: parse_counters_obj(line),
                        spans,
                    });
                }
                "rung" => {
                    log.rungs.push(RungRecord {
                        name: json_str(line, "name").ok_or_else(|| bad("rung missing `name`"))?,
                        metric: json_str(line, "metric").unwrap_or_default(),
                        value: json_f64(line, "value")
                            .ok_or_else(|| bad("rung missing `value`"))?,
                        secs: json_f64(line, "secs").unwrap_or(0.0),
                        counters: parse_counters_obj(line),
                    });
                }
                _ => {} // unknown record kinds: forward compatibility
            }
        }
        Ok(log)
    }

    /// The element-wise sum of every stage and rung counter delta.
    #[must_use]
    pub fn counters_total(&self) -> CounterSet {
        let mut total = CounterSet::new();
        for s in &self.stages {
            total.merge_from(&s.counters);
        }
        for r in &self.rungs {
            total.merge_from(&r.counters);
        }
        total
    }
}

/// Renders a run log: manifest header, stage table (loss / wall-clock /
/// throughput curves), rung table, and the run's counter totals.
#[must_use]
pub fn render(log: &RunLog) -> String {
    let mut out = String::new();
    if let Some(m) = &log.manifest {
        out.push_str(&format!(
            "run {}  mode {}  threads {}  seed {}  timing {}\n",
            m.run, m.mode, m.threads, m.seed, m.timing
        ));
    }
    if !log.stages.is_empty() {
        out.push_str(&format!(
            "{:>5} {:>9} {:>12} {:>8} {:>9} {:>9} {:>11}\n",
            "stage", "samples", "loss", "ratio", "gen s", "fit s", "samples/s"
        ));
        for s in &log.stages {
            let st = &s.stats;
            let total = st.gen_secs + st.fit_secs;
            let rate = if total > 0.0 {
                st.samples as f64 / total
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:>5} {:>9} {:>12.6} {:>8.4} {:>9.3} {:>9.3} {:>11.1}\n",
                st.stage, st.samples, st.loss, st.mcts_cost_ratio, st.gen_secs, st.fit_secs, rate
            ));
        }
    }
    if !log.rungs.is_empty() {
        out.push_str(&format!(
            "{:<12} {:<16} {:>14} {:>9}\n",
            "rung", "metric", "value", "secs"
        ));
        for r in &log.rungs {
            out.push_str(&format!(
                "{:<12} {:<16} {:>14.3} {:>9.3}\n",
                r.name, r.metric, r.value, r.secs
            ));
        }
    }
    let totals = log.counters_total();
    if !totals.is_zero() {
        out.push_str("counter totals (nonzero):\n");
        for (name, value) in totals.iter() {
            if value > 0 {
                out.push_str(&format!("  {name:<24} {value}\n"));
            }
        }
    }
    out
}

/// Renders a stage-by-stage / rung-by-rung diff of two run logs (`b`
/// relative to `a`): loss deltas and wall-clock ratios.
#[must_use]
pub fn diff(a: &RunLog, b: &RunLog) -> String {
    let mut out = String::new();
    let ratio = |x: f64, y: f64| if x > 0.0 { y / x } else { f64::NAN };
    if !a.stages.is_empty() || !b.stages.is_empty() {
        out.push_str(&format!(
            "{:>5} {:>12} {:>12} {:>9} {:>9} {:>9}\n",
            "stage", "loss a", "loss b", "Δloss", "gen×", "fit×"
        ));
        for (sa, sb) in a.stages.iter().zip(b.stages.iter()) {
            out.push_str(&format!(
                "{:>5} {:>12.6} {:>12.6} {:>+9.6} {:>9.3} {:>9.3}\n",
                sa.stats.stage,
                sa.stats.loss,
                sb.stats.loss,
                sb.stats.loss - sa.stats.loss,
                ratio(sa.stats.gen_secs, sb.stats.gen_secs),
                ratio(sa.stats.fit_secs, sb.stats.fit_secs),
            ));
        }
        let (la, lb) = (a.stages.len(), b.stages.len());
        if la != lb {
            out.push_str(&format!("(stage count differs: {la} vs {lb})\n"));
        }
    }
    for rb in &b.rungs {
        if let Some(ra) = a.rungs.iter().find(|r| r.name == rb.name) {
            out.push_str(&format!(
                "rung {:<12} {}: {:.3} -> {:.3} ({:.3}x)\n",
                rb.name,
                rb.metric,
                ra.value,
                rb.value,
                ratio(ra.value, rb.value)
            ));
        } else {
            out.push_str(&format!("rung {:<12} only in b\n", rb.name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(stage: usize) -> StageStats {
        StageStats {
            stage,
            samples: 128,
            loss: 0.25 / (stage + 1) as f64,
            mcts_cost_ratio: 1.05,
            gen_secs: 1.5,
            fit_secs: 0.5,
        }
    }

    #[test]
    fn round_trip_through_a_run_directory() {
        let root = std::env::temp_dir().join(format!("oarsmt_runlog_{}", std::process::id()));
        let mut logger = RunLogger::create(&root, "test-run").unwrap();
        let manifest = Manifest {
            run: "train".to_string(),
            mode: "laptop".to_string(),
            threads: 2,
            seed: 7,
            timing: false,
        };
        logger.log_manifest(&manifest).unwrap();
        let mut delta = CounterSet::new();
        delta.add(Counter::DijkstraPops, 1000);
        delta.add(Counter::MctsRollouts, 64);
        logger
            .log_stage(&sample_stats(0), &delta, &[(Span::TrainGen, 1_500_000_000)])
            .unwrap();
        logger
            .log_stage(&sample_stats(1), &delta, &[(Span::TrainGen, 1_400_000_000)])
            .unwrap();
        logger
            .log_rung("T64", "reused_rps", 65.4, 2.5, &delta)
            .unwrap();

        let log = RunLog::load(logger.dir()).unwrap();
        assert_eq!(log.manifest.as_ref(), Some(&manifest));
        assert_eq!(log.stages.len(), 2);
        assert_eq!(log.stages[0].stats, sample_stats(0));
        assert_eq!(log.stages[0].counters.get(Counter::DijkstraPops), 1000);
        assert_eq!(log.stages[1].spans, vec![(Span::TrainGen, 1_400_000_000)]);
        assert_eq!(log.rungs.len(), 1);
        assert_eq!(log.rungs[0].name, "T64");
        assert!((log.rungs[0].value - 65.4).abs() < 1e-12);
        assert_eq!(log.counters_total().get(Counter::MctsRollouts), 192);

        let rendered = render(&log);
        assert!(rendered.contains("run train"));
        assert!(rendered.contains("reused_rps"));
        assert!(rendered.contains("dijkstra_pops"));

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn diff_lines_up_stages_and_rungs() {
        let mk = |loss_scale: f64, rps: f64| {
            let mut log = RunLog::default();
            let mut stats = sample_stats(0);
            stats.loss *= loss_scale;
            log.stages.push(StageRecord {
                stats,
                counters: CounterSet::new(),
                spans: Vec::new(),
            });
            log.rungs.push(RungRecord {
                name: "T64".to_string(),
                metric: "reused_rps".to_string(),
                value: rps,
                secs: 1.0,
                counters: CounterSet::new(),
            });
            log
        };
        let d = diff(&mk(1.0, 60.0), &mk(0.5, 66.0));
        assert!(d.contains("1.100x"), "{d}");
        assert!(d.contains("-0.125"), "{d}");
    }

    #[test]
    fn malformed_records_name_line_and_payload() {
        let text = "{\"record\":\"stage\",\"stage\":0,\"samples\":1}\n";
        let err = RunLog::parse(text).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("loss"), "{err}");
    }

    #[test]
    fn unknown_records_are_skipped() {
        let log = RunLog::parse("{\"record\":\"future\",\"x\":1}\nnot json\n").unwrap();
        assert!(log.manifest.is_none());
        assert!(log.stages.is_empty());
    }
}
