//! The paper's 16-fold data augmentation (Section 3.6): rotations of 0°,
//! 90°, 180°, 270° in the H–V plane, combined with reflections across the
//! y axis and across the z (layer) axis — `4 × 2 × 2 = 16` variants per
//! generated sample.
//!
//! Transforms act on the *layout level* (the Hanan graph's costs, pins and
//! obstacles all move together) and the label array is permuted with the
//! same vertex mapping, so augmented samples are exactly as consistent as
//! the originals.

use oarsmt_geom::{GridPoint, HananGraph};

use crate::sample::TrainingSample;

/// One symmetry of the augmentation group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Symmetry {
    /// Number of 90° counter-clockwise rotations (0–3).
    pub rotations: u8,
    /// Reflect across the y axis (reverse rows) after rotating.
    pub reflect_v: bool,
    /// Reflect across the z axis (reverse layers) after rotating.
    pub reflect_m: bool,
}

impl Symmetry {
    /// All 16 group elements.
    pub fn all() -> Vec<Symmetry> {
        let mut out = Vec::with_capacity(16);
        for rotations in 0..4 {
            for reflect_v in [false, true] {
                for reflect_m in [false, true] {
                    out.push(Symmetry {
                        rotations,
                        reflect_v,
                        reflect_m,
                    });
                }
            }
        }
        out
    }

    /// The identity element.
    pub fn identity() -> Symmetry {
        Symmetry {
            rotations: 0,
            reflect_v: false,
            reflect_m: false,
        }
    }

    /// Maps a point of the original graph to its image. `dims` are the
    /// dimensions of the graph *before* the transform.
    pub fn map_point(&self, dims: (usize, usize, usize), p: GridPoint) -> GridPoint {
        let (mut h, mut v, m) = dims;
        let mut q = p;
        for _ in 0..self.rotations {
            q = GridPoint::new(q.v, h - 1 - q.h, q.m);
            std::mem::swap(&mut h, &mut v);
        }
        if self.reflect_v {
            q = GridPoint::new(q.h, v - 1 - q.v, q.m);
        }
        if self.reflect_m {
            q = GridPoint::new(q.h, q.v, m - 1 - q.m);
        }
        q
    }

    /// Applies the symmetry to a graph.
    pub fn apply_graph(&self, graph: &HananGraph) -> HananGraph {
        let mut g = graph.clone();
        for _ in 0..self.rotations {
            g = g.rotate90();
        }
        if self.reflect_v {
            g = g.reflect_v();
        }
        if self.reflect_m {
            g = g.reflect_m();
        }
        g
    }
}

/// Applies one symmetry to a whole training sample.
pub fn transform_sample(sample: &TrainingSample, sym: Symmetry) -> TrainingSample {
    let dims = sample.graph.dims();
    let graph = sym.apply_graph(&sample.graph);
    let state = sample
        .state
        .iter()
        .map(|&p| sym.map_point(dims, p))
        .collect();
    let mut label = vec![0.0f32; graph.len()];
    for idx in 0..sample.graph.len() {
        let p = sample.graph.point(idx);
        let q = sym.map_point(dims, p);
        label[graph.index(q)] = sample.label[idx];
    }
    TrainingSample::new(graph, state, label)
}

/// Produces the 16 augmented variants of a sample (the identity included).
pub fn augment_16(sample: &TrainingSample) -> Vec<TrainingSample> {
    Symmetry::all()
        .into_iter()
        .map(|sym| transform_sample(sample, sym))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainingSample {
        let mut g =
            HananGraph::with_costs(3, 4, 2, vec![1.0, 5.0], vec![2.0, 3.0, 4.0], 3.0).unwrap();
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(2, 3, 1)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(1, 2, 0)).unwrap();
        let mut label = vec![0.0; g.len()];
        label[g.index(GridPoint::new(1, 1, 1))] = 0.8;
        label[g.index(GridPoint::new(2, 0, 0))] = 0.3;
        TrainingSample::new(g, vec![GridPoint::new(0, 3, 0)], label)
    }

    #[test]
    fn there_are_sixteen_distinct_symmetries() {
        let all = Symmetry::all();
        assert_eq!(all.len(), 16);
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn identity_preserves_the_sample() {
        let s = sample();
        let t = transform_sample(&s, Symmetry::identity());
        assert_eq!(s, t);
    }

    #[test]
    fn augmentation_yields_16_valid_samples() {
        let s = sample();
        let augmented = augment_16(&s);
        assert_eq!(augmented.len(), 16);
        for a in &augmented {
            // Label mass is preserved by permutation.
            let mass: f32 = a.label.iter().sum();
            assert!((mass - 1.1).abs() < 1e-6);
            // Pins/obstacle counts preserved.
            assert_eq!(a.graph.pins().len(), 2);
            assert_eq!(a.graph.obstacle_count(), 1);
        }
    }

    #[test]
    fn label_follows_vertices_under_rotation() {
        let s = sample();
        let sym = Symmetry {
            rotations: 1,
            reflect_v: false,
            reflect_m: false,
        };
        let t = transform_sample(&s, sym);
        let dims = s.graph.dims();
        let src = GridPoint::new(1, 1, 1);
        let dst = sym.map_point(dims, src);
        assert_eq!(t.label[t.graph.index(dst)], 0.8);
        // Kind follows too.
        let ob_dst = sym.map_point(dims, GridPoint::new(1, 2, 0));
        assert_eq!(t.graph.kind(ob_dst), oarsmt_geom::VertexKind::Obstacle);
    }

    #[test]
    fn double_v_reflection_is_identity() {
        let s = sample();
        let refl = Symmetry {
            rotations: 0,
            reflect_v: true,
            reflect_m: false,
        };
        let once = transform_sample(&s, refl);
        let twice = transform_sample(&once, refl);
        assert_eq!(s.label, twice.label);
        assert_eq!(s.state, twice.state);
    }

    #[test]
    fn four_rotations_compose_to_identity() {
        let s = sample();
        let rot = Symmetry {
            rotations: 1,
            reflect_v: false,
            reflect_m: false,
        };
        let mut t = s.clone();
        for _ in 0..4 {
            t = transform_sample(&t, rot);
        }
        assert_eq!(s.label, t.label);
        assert_eq!(s.graph.dims(), t.graph.dims());
    }

    #[test]
    fn map_point_matches_graph_transform_for_pins() {
        let s = sample();
        for sym in Symmetry::all() {
            let g2 = sym.apply_graph(&s.graph);
            let mapped: Vec<GridPoint> = s
                .graph
                .pins()
                .iter()
                .map(|&p| sym.map_point(s.graph.dims(), p))
                .collect();
            assert_eq!(g2.pins(), mapped.as_slice(), "symmetry {sym:?}");
        }
    }
}
