//! The paper's training-schedule constants (Section 3.6) and the scaled
//! laptop schedule used by this reproduction.
//!
//! | knob | paper | this reproduction |
//! |---|---|---|
//! | layout sizes | 16/24/32 squared × 4/6/8/10 layers (12 sizes) | 6/8/10 squared × 1/2 layers |
//! | layouts per size per stage | 1000 | a handful |
//! | stages | 32 (159 h of training) | single-digit |
//! | batch | 256 | ≤ 32 |
//! | epochs per stage | 4 | 1–2 |
//! | augmentation | 16× | 16× (unchanged) |
//! | curriculum | 4 stages, 3→6 pins, critic off | 1–2 stages |

use oarsmt_mcts::MctsConfig;

use crate::trainer::TrainerConfig;

/// The paper's 12 layout sizes: `{16, 24, 32}² × {4, 6, 8, 10}` layers.
pub fn paper_sizes() -> Vec<(usize, usize, usize)> {
    let mut sizes = Vec::with_capacity(12);
    for hv in [16, 24, 32] {
        for m in [4, 6, 8, 10] {
            sizes.push((hv, hv, m));
        }
    }
    sizes
}

/// The paper's schedule verbatim (Section 3.6) — provided for reference and
/// for anyone reproducing at full scale on a large machine. Running this on
/// one CPU core is not practical; prefer [`laptop_schedule`].
pub fn paper_schedule() -> TrainerConfig {
    TrainerConfig {
        sizes: paper_sizes(),
        layouts_per_size: 1000,
        stages: 32,
        curriculum_stages: 4,
        pin_range: (3, 6),
        epochs_per_stage: 4,
        batch_size: 256,
        learning_rate: 1e-3,
        augment: true,
        mcts: MctsConfig {
            base_iterations: 2000,
            base_size: 16 * 16 * 4,
            ..MctsConfig::default()
        },
        seed: 0,
        threads: 0,
    }
}

/// The scaled schedule used by this reproduction's experiments: same
/// structure (mixed sizes, curriculum, 16× augmentation, stage loop),
/// laptop-scale budgets.
pub fn laptop_schedule(seed: u64) -> TrainerConfig {
    TrainerConfig {
        sizes: vec![(6, 6, 1), (6, 6, 2), (8, 8, 2)],
        layouts_per_size: 24,
        stages: 16,
        curriculum_stages: 4,
        pin_range: (3, 6),
        epochs_per_stage: 3,
        batch_size: 32,
        learning_rate: 1e-3,
        augment: true,
        mcts: MctsConfig {
            // ~8 exploration iterations per vertex, the same
            // iterations-to-size ratio family as the paper's alpha = 2000
            // on 16x16x4.
            base_iterations: 576,
            base_size: 72,
            ..MctsConfig::default()
        },
        seed,
        threads: 0,
    }
}

/// An even smaller schedule for quick smoke runs (examples, CI).
pub fn smoke_schedule(seed: u64) -> TrainerConfig {
    TrainerConfig {
        sizes: vec![(5, 5, 1)],
        layouts_per_size: 2,
        stages: 2,
        curriculum_stages: 1,
        pin_range: (3, 4),
        epochs_per_stage: 1,
        batch_size: 8,
        learning_rate: 1e-3,
        augment: false,
        mcts: MctsConfig {
            base_iterations: 8,
            base_size: 25,
            ..MctsConfig::default()
        },
        seed,
        threads: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_has_twelve_sizes() {
        let sizes = paper_sizes();
        assert_eq!(sizes.len(), 12);
        assert!(sizes.contains(&(16, 16, 4)));
        assert!(sizes.contains(&(32, 32, 10)));
    }

    #[test]
    fn paper_schedule_matches_section_3_6() {
        let s = paper_schedule();
        assert_eq!(s.layouts_per_size, 1000);
        assert_eq!(s.stages, 32);
        assert_eq!(s.curriculum_stages, 4);
        assert_eq!(s.pin_range, (3, 6));
        assert_eq!(s.epochs_per_stage, 4);
        assert_eq!(s.batch_size, 256);
        assert_eq!(s.mcts.base_iterations, 2000);
        assert_eq!(s.mcts.base_size, 1024);
    }

    #[test]
    fn scaled_schedules_preserve_the_structure() {
        for cfg in [laptop_schedule(0), smoke_schedule(0)] {
            assert!(cfg.curriculum_stages < cfg.stages);
            assert!(cfg.pin_range.0 >= 3);
            assert!(!cfg.sizes.is_empty());
        }
    }
}
