//! Training loops for the Steiner-point selector.
//!
//! * [`sample`] — training samples (a layout plus a dense probability
//!   label) and their tensor encoding,
//! * [`augment`] — the paper's 16-fold data augmentation: 4 rotations × 2
//!   y-reflections × 2 layer-reflections (Section 3.6),
//! * [`dataset`] — same-size batching ("placing samples with the same
//!   layout size in a batch", Fig. 9),
//! * [`trainer`] — the stage loop of Fig. 8: combinatorial MCTS generates
//!   samples, the selector is fitted with BCE, and the upgraded selector
//!   powers the next stage's actor and critic; includes the curriculum of
//!   Section 3.6 and an AlphaGo-like baseline trainer,
//! * [`ppo`] — the PPO baseline router-trainer of Section 4.2,
//! * [`schedule`] — the paper's training-schedule constants and the scaled
//!   laptop defaults used by this reproduction.

#![forbid(unsafe_code)]

pub mod augment;
pub mod dataset;
pub mod ppo;
pub mod sample;
pub mod schedule;
pub mod trainer;

pub use augment::augment_16;
pub use dataset::Dataset;
pub use ppo::{PpoConfig, PpoTrainer};
pub use sample::TrainingSample;
pub use trainer::{StageReport, Trainer, TrainerConfig};
