//! Training samples: a layout, an optional partial state, and a dense
//! per-vertex probability label.

use std::fmt;

use oarsmt::features::{encode_features, from_graph_order, valid_mask};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_nn::Tensor;

/// One supervised training sample for the Steiner-point selector.
///
/// For the combinatorial scheme, `state` is empty and `label` is the
/// `L_fsp` array of one whole search tree; for the AlphaGo-like baseline,
/// `state` holds the Steiner points selected before the move and `label`
/// the per-move visit distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingSample {
    /// The layout.
    pub graph: HananGraph,
    /// Already-selected Steiner points (encoded as pins).
    pub state: Vec<GridPoint>,
    /// Per-vertex target in `[0, 1]`, indexed like
    /// [`HananGraph::index`].
    pub label: Vec<f32>,
}

impl TrainingSample {
    /// Creates a sample, validating the label length.
    ///
    /// # Panics
    ///
    /// Panics if `label.len() != graph.len()` or a label value is outside
    /// `[0, 1]`.
    pub fn new(graph: HananGraph, state: Vec<GridPoint>, label: Vec<f32>) -> Self {
        assert_eq!(label.len(), graph.len(), "label must cover every vertex");
        assert!(
            label.iter().all(|l| (0.0..=1.0).contains(l)),
            "labels are probabilities"
        );
        TrainingSample {
            graph,
            state,
            label,
        }
    }

    /// The layout dimensions, used for same-size batching.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.graph.dims()
    }

    /// Encodes the sample as `(features, targets, mask)` tensors for BCE
    /// training: features `[7, M, H, V]`, targets and mask `[1, M, H, V]`
    /// (the tensor layout of [`oarsmt::features`]).
    pub fn to_tensors(&self) -> (Tensor, Tensor, Tensor) {
        let features = encode_features(&self.graph, &self.state);
        let targets = from_graph_order(&self.label, &self.graph);
        let mask = valid_mask(&self.graph, &self.state);
        (features, targets, mask)
    }
}

impl fmt::Display for TrainingSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (h, v, m) = self.dims();
        write!(
            f,
            "sample {h}x{v}x{m}, {} state points, label mass {:.3}",
            self.state.len(),
            self.label.iter().sum::<f32>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> HananGraph {
        let mut g = HananGraph::uniform(3, 3, 2, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(2, 2, 1)).unwrap();
        g
    }

    #[test]
    fn tensors_have_matching_shapes() {
        let g = graph();
        let label = vec![0.25; g.len()];
        let s = TrainingSample::new(g, vec![], label);
        let (x, t, m) = s.to_tensors();
        assert_eq!(x.shape(), &[7, 2, 3, 3]);
        assert_eq!(t.shape(), &[1, 2, 3, 3]);
        assert_eq!(m.shape(), &[1, 2, 3, 3]);
    }

    #[test]
    fn state_points_are_masked_out() {
        let g = graph();
        let state = vec![GridPoint::new(1, 1, 0)];
        let label = vec![0.0; g.len()];
        let s = TrainingSample::new(g.clone(), state.clone(), label);
        let (x, _, m) = s.to_tensors();
        let off = oarsmt::features::tensor_offset(&g, state[0]);
        assert_eq!(m.data()[off], 0.0);
        // And encoded as a pin in channel 0.
        assert_eq!(x.data()[off], 1.0);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn out_of_range_labels_panic() {
        let g = graph();
        let mut label = vec![0.0; g.len()];
        label[0] = 1.5;
        TrainingSample::new(g, vec![], label);
    }

    #[test]
    #[should_panic(expected = "every vertex")]
    fn short_label_panics() {
        let g = graph();
        TrainingSample::new(g, vec![], vec![0.0; 3]);
    }
}
