//! Same-size batching of training samples (Fig. 9 of the paper).
//!
//! A GPU (and our CPU loops) process a batch efficiently only when all
//! samples share one layout size, so the dataset groups samples by their
//! `(H, V, M)` dimensions, shuffles within groups, and emits size-
//! homogeneous batches; an epoch ends when every sample has appeared in a
//! batch.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::sample::TrainingSample;

/// A shuffled, size-grouped dataset of training samples.
#[derive(Debug, Clone)]
pub struct Dataset {
    samples: Vec<TrainingSample>,
    rng: StdRng,
}

impl Dataset {
    /// Creates a dataset with a shuffle seed.
    pub fn new(samples: Vec<TrainingSample>, seed: u64) -> Self {
        Dataset {
            samples,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Adds more samples.
    pub fn extend<I: IntoIterator<Item = TrainingSample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }

    /// One epoch of size-homogeneous batches: every sample appears exactly
    /// once; batch order and in-group order are reshuffled per call. The
    /// final batch of a size group may be smaller than `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn epoch_batches(&mut self, batch_size: usize) -> Vec<Vec<&TrainingSample>> {
        assert!(batch_size > 0, "batch size must be positive");
        // Group indices by dims.
        let mut groups: Vec<((usize, usize, usize), Vec<usize>)> = Vec::new();
        for (i, s) in self.samples.iter().enumerate() {
            let d = s.dims();
            match groups.iter_mut().find(|(gd, _)| *gd == d) {
                Some((_, v)) => v.push(i),
                None => groups.push((d, vec![i])),
            }
        }
        let mut batches: Vec<Vec<usize>> = Vec::new();
        for (_, mut idxs) in groups {
            idxs.shuffle(&mut self.rng);
            for chunk in idxs.chunks(batch_size) {
                batches.push(chunk.to_vec());
            }
        }
        batches.shuffle(&mut self.rng);
        batches
            .into_iter()
            .map(|b| b.into_iter().map(|i| &self.samples[i]).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::HananGraph;

    fn sample(h: usize, v: usize, m: usize) -> TrainingSample {
        let g = HananGraph::uniform(h, v, m, 1.0, 1.0, 3.0);
        let label = vec![0.0; g.len()];
        TrainingSample::new(g, vec![], label)
    }

    #[test]
    fn batches_are_size_homogeneous() {
        let mut ds = Dataset::new(
            vec![
                sample(4, 4, 1),
                sample(6, 6, 2),
                sample(4, 4, 1),
                sample(6, 6, 2),
                sample(4, 4, 1),
            ],
            0,
        );
        for batch in ds.epoch_batches(2) {
            let d = batch[0].dims();
            assert!(batch.iter().all(|s| s.dims() == d));
        }
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let mut ds = Dataset::new((0..7).map(|_| sample(4, 4, 1)).collect::<Vec<_>>(), 1);
        let batches = ds.epoch_batches(3);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 7);
        // 3 + 3 + 1.
        assert_eq!(batches.len(), 3);
    }

    #[test]
    fn shuffling_changes_between_epochs() {
        let mut ds = Dataset::new(
            (0..16)
                .map(|i| {
                    let mut s = sample(3, 3, 1);
                    s.label[0] = i as f32 / 16.0;
                    s
                })
                .collect::<Vec<_>>(),
            2,
        );
        let order = |batches: Vec<Vec<&TrainingSample>>| -> Vec<u32> {
            batches
                .iter()
                .flat_map(|b| b.iter().map(|s| (s.label[0] * 16.0) as u32))
                .collect()
        };
        let e1 = order(ds.epoch_batches(4));
        let e2 = order(ds.epoch_batches(4));
        assert_ne!(e1, e2, "epochs reshuffle");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_size_panics() {
        Dataset::new(vec![sample(3, 3, 1)], 0).epoch_batches(0);
    }
}
