//! The stage-based training loop of Fig. 8: combinatorial MCTS generates
//! labelled samples on random layouts, the selector is fitted with BCE, and
//! the upgraded selector powers the actor and critic of the next stage.
//! Includes the mixed-size schedule and curriculum of Section 3.6, plus an
//! AlphaGo-like baseline trainer (per-move samples, Section 4.2).

use std::fmt;
use std::time::{Duration, Instant};

use oarsmt::parallel;
use oarsmt::selector::{NeuralSelector, Selector};
use oarsmt::topk::steiner_budget;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::HananGraph;
use oarsmt_mcts::alphago::{sequential_select, AlphaGoMcts};
use oarsmt_mcts::{CombinatorialMcts, MctsConfig};
use oarsmt_nn::layer::Layer;
use oarsmt_nn::loss::{bce_with_logits, bce_with_logits_batch};
use oarsmt_nn::optim::Adam;
use oarsmt_nn::NnWorkspace;
use oarsmt_nn::Tensor;
use oarsmt_router::OarmstRouter;
use oarsmt_telemetry::CounterSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::augment::augment_16;
use crate::dataset::Dataset;
use crate::sample::TrainingSample;

/// Which policy-optimization scheme generates the samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's combinatorial MCTS (one dense label per search tree).
    Combinatorial,
    /// The conventional AlphaGo-like MCTS (one label per executed move).
    AlphaGo,
}

/// Trainer configuration. Defaults are the laptop-scale equivalent of the
/// paper's Section 3.6 schedule (see
/// [`schedule`](crate::schedule) for the paper's original constants).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Layout sizes per stage (the paper mixes 12 sizes; scaled here).
    pub sizes: Vec<(usize, usize, usize)>,
    /// Random layouts generated per size per stage (paper: 1000).
    pub layouts_per_size: usize,
    /// Total training stages (paper: 32).
    pub stages: usize,
    /// Stages of curriculum learning with fixed pin counts and no critic
    /// (paper: 4).
    pub curriculum_stages: usize,
    /// Pin-count range after the curriculum (paper: 3–6).
    pub pin_range: (usize, usize),
    /// Epochs per stage (paper: 4).
    pub epochs_per_stage: usize,
    /// Batch size (paper: 256).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Whether to apply the 16-fold augmentation.
    pub augment: bool,
    /// MCTS budget.
    pub mcts: MctsConfig,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for sample generation (`0` = auto: the
    /// `OARSMT_THREADS` environment variable, else all cores). Generated
    /// samples are bit-identical for every thread count — each layout's
    /// seed is derived from its index, and one MCTS search runs per worker
    /// at a time (see [`oarsmt::parallel`]).
    pub threads: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            sizes: vec![(8, 8, 2)],
            layouts_per_size: 4,
            stages: 3,
            curriculum_stages: 1,
            pin_range: (3, 5),
            epochs_per_stage: 2,
            batch_size: 16,
            learning_rate: 1e-3,
            augment: true,
            mcts: MctsConfig::tiny(),
            seed: 0,
            threads: 0,
        }
    }
}

/// Statistics of one training stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage index (0-based).
    pub stage: usize,
    /// Samples fitted this stage (after augmentation).
    pub samples: usize,
    /// Mean BCE loss over the stage's final epoch.
    pub avg_loss: f32,
    /// Mean `final/initial` routing-cost ratio achieved by the searches
    /// (how good the generated combinations were).
    pub mcts_cost_ratio: f64,
    /// Wall-clock time spent generating samples.
    pub sample_gen_time: Duration,
    /// Wall-clock time spent fitting.
    pub train_time: Duration,
}

impl fmt::Display for StageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {}: {} samples, loss {:.4}, mcts ratio {:.4}, gen {:?}, fit {:?}",
            self.stage,
            self.samples,
            self.avg_loss,
            self.mcts_cost_ratio,
            self.sample_gen_time,
            self.train_time
        )
    }
}

/// The stage trainer.
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    scheme: Scheme,
    optimizer: Adam,
    rng: StdRng,
    /// NN scratch arena reused across every fitted sample (see
    /// `oarsmt_nn::NnWorkspace`); sample *generation* workers each carry
    /// their own inside their `RouteContext`.
    ws: NnWorkspace,
    /// Telemetry counters from sample generation, folded from the per-job
    /// deltas in index order (thread-count invariant).
    gen_counters: CounterSet,
}

impl Trainer {
    /// Creates a trainer for the paper's combinatorial scheme.
    pub fn new(config: TrainerConfig) -> Self {
        let optimizer = Adam::new(config.learning_rate);
        let rng = StdRng::seed_from_u64(config.seed);
        Trainer {
            config,
            scheme: Scheme::Combinatorial,
            optimizer,
            rng,
            ws: NnWorkspace::new(),
            gen_counters: CounterSet::new(),
        }
    }

    /// Creates a trainer using the AlphaGo-like baseline scheme.
    pub fn new_alphago(config: TrainerConfig) -> Self {
        Trainer {
            scheme: Scheme::AlphaGo,
            ..Trainer::new(config)
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Telemetry counters accumulated so far: MCTS/routing work from sample
    /// generation (per-job deltas folded in index order, so totals are
    /// bit-identical for any thread count) plus the fit loop's NN workspace
    /// counters (MACs, pool traffic, GEMM dispatch).
    #[must_use]
    pub fn counters(&self) -> CounterSet {
        let mut total = self.gen_counters;
        total.merge_from(&self.ws.counters);
        total
    }

    /// Sets the GEMM kernel policy for the fit loop's reused workspace
    /// (see `oarsmt_nn::KernelPolicy`). Sample-generation workers keep
    /// the scalar default — their searches feed the replay buffer, and
    /// the thread-count bit-identity guarantee is anchored there. With
    /// `KernelPolicy::Simd` the fitted weights follow the documented
    /// ULP-bounded opt-out (DESIGN.md §9): deterministic for a fixed
    /// policy, not bit-identical across policies.
    pub fn set_kernel_policy(&mut self, policy: oarsmt_nn::KernelPolicy) {
        self.ws.set_kernel_policy(policy);
    }

    /// Runs all configured stages, returning one report per stage.
    ///
    /// # Errors
    ///
    /// Propagates routing failures from sample generation (rare: a random
    /// layout whose pins are walled off is skipped, not fatal; only
    /// systematic failures surface).
    pub fn run(
        &mut self,
        selector: &mut NeuralSelector,
    ) -> Result<Vec<StageReport>, oarsmt_router::RouteError> {
        let mut reports = Vec::with_capacity(self.config.stages);
        for stage in 0..self.config.stages {
            reports.push(self.run_stage(selector, stage)?);
        }
        Ok(reports)
    }

    /// Runs a single stage: generate samples with the current selector,
    /// then fit.
    ///
    /// # Errors
    ///
    /// See [`Trainer::run`].
    pub fn run_stage(
        &mut self,
        selector: &mut NeuralSelector,
        stage: usize,
    ) -> Result<StageReport, oarsmt_router::RouteError> {
        // lint: timing-ok(reported wall-clock metadata; never feeds results)
        let gen_start = Instant::now();
        let (samples, mcts_cost_ratio) = self.generate_samples(selector, stage)?;
        let sample_gen_time = gen_start.elapsed();

        // lint: timing-ok(reported wall-clock metadata; never feeds results)
        let fit_start = Instant::now();
        let expanded: Vec<TrainingSample> = if self.config.augment {
            samples.iter().flat_map(augment_16).collect()
        } else {
            samples
        };
        let sample_count = expanded.len();
        let mut dataset = Dataset::new(expanded, self.config.seed ^ stage as u64);
        let mut last_epoch_loss = 0.0f32;
        for _epoch in 0..self.config.epochs_per_stage {
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for batch in dataset.epoch_batches(self.config.batch_size) {
                epoch_loss += f64::from(self.fit_batch(selector, &batch));
                batches += 1;
            }
            last_epoch_loss = (epoch_loss / batches.max(1) as f64) as f32;
        }
        Ok(StageReport {
            stage,
            samples: sample_count,
            avg_loss: last_epoch_loss,
            mcts_cost_ratio,
            sample_gen_time,
            train_time: fit_start.elapsed(),
        })
    }

    /// Saves a training checkpoint: the selector weights, the optimizer
    /// moments and the next stage index, so a long run (the paper trains
    /// for 159 hours) can resume exactly where it stopped.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn save_checkpoint<P: AsRef<std::path::Path>>(
        &self,
        selector: &mut NeuralSelector,
        next_stage: usize,
        path: P,
    ) -> std::io::Result<()> {
        use std::io::Write;
        let mut weights = Vec::new();
        oarsmt_nn::serialize::save_params(selector.net_mut(), &mut weights)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        file.write_all(b"OARSMTCK")?;
        file.write_all(&(next_stage as u64).to_le_bytes())?;
        file.write_all(&(weights.len() as u64).to_le_bytes())?;
        file.write_all(&weights)?;
        self.optimizer.save_state(&mut file)?;
        Ok(())
    }

    /// Restores a checkpoint written by [`Trainer::save_checkpoint`] into
    /// this trainer and selector, returning the next stage index to run.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or a malformed/incompatible file.
    pub fn load_checkpoint<P: AsRef<std::path::Path>>(
        &mut self,
        selector: &mut NeuralSelector,
        path: P,
    ) -> std::io::Result<usize> {
        use std::io::Read;
        let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != b"OARSMTCK" {
            return Err(std::io::Error::other("not a trainer checkpoint"));
        }
        let mut b8 = [0u8; 8];
        file.read_exact(&mut b8)?;
        let next_stage = u64::from_le_bytes(b8) as usize;
        file.read_exact(&mut b8)?;
        let len = u64::from_le_bytes(b8) as usize;
        let mut weights = vec![0u8; len];
        file.read_exact(&mut weights)?;
        oarsmt_nn::serialize::load_params(selector.net_mut(), weights.as_slice())
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        self.optimizer.load_state(&mut file)?;
        Ok(next_stage)
    }

    /// Runs stages `start_stage..config.stages` (the resume companion of
    /// [`Trainer::run`]).
    ///
    /// # Errors
    ///
    /// See [`Trainer::run`].
    pub fn run_from(
        &mut self,
        selector: &mut NeuralSelector,
        start_stage: usize,
    ) -> Result<Vec<StageReport>, oarsmt_router::RouteError> {
        let mut reports = Vec::new();
        for stage in start_stage..self.config.stages {
            reports.push(self.run_stage(selector, stage)?);
        }
        Ok(reports)
    }

    /// The curriculum of Section 3.6: fixed pin counts and no critic during
    /// the first stages, then random pin counts with the critic.
    fn stage_settings(&self, stage: usize) -> ((usize, usize), bool) {
        if stage < self.config.curriculum_stages {
            let pins = (3 + stage).min(self.config.pin_range.1).max(3);
            ((pins, pins), false)
        } else {
            (self.config.pin_range, true)
        }
    }

    fn generate_samples(
        &mut self,
        selector: &mut NeuralSelector,
        stage: usize,
    ) -> Result<(Vec<TrainingSample>, f64), oarsmt_router::RouteError> {
        let (pins, use_critic) = self.stage_settings(stage);
        let mcts_config = MctsConfig {
            use_critic,
            ..self.config.mcts.clone()
        };
        let scheme = self.scheme;
        let threads = parallel::thread_count(Some(self.config.threads));
        // Workers share the stage's frozen selector read-only: a
        // `&NeuralSelector` is itself a `Selector` (the cache-free
        // inference path, bit-identical to the owned path), so no worker
        // clones the weight set. The caller's selector is only updated by
        // the subsequent fit. Each worker also carries one RouteContext,
        // reused across all of its layouts (the per-layout results are
        // bit-identical either way).
        let proto: &NeuralSelector = selector;
        let mut samples = Vec::new();
        let mut ratio_sum = 0.0f64;
        let mut ratio_count = 0usize;
        for &(h, v, m) in &self.config.sizes.clone() {
            let cfg = GeneratorConfig::paper_costs(h, v, m, pins);
            // One draw per size, exactly like the sequential schedule, so
            // the master RNG advances identically for any thread count.
            let size_seed: u64 = self.rng.gen();
            type LayoutSamples =
                Result<(Option<(Vec<TrainingSample>, f64)>, CounterSet), oarsmt_router::RouteError>;
            let per_layout = parallel::run_seeded_with(
                self.config.layouts_per_size,
                size_seed,
                threads,
                || (proto, oarsmt_router::RouteContext::new()),
                |(sel, ctx), _idx, layout_seed| -> LayoutSamples {
                    let graph = CaseGenerator::new(cfg.clone(), layout_seed).generate();
                    // Contexts are reused across a worker's layouts, so
                    // each job reports its counter *delta*; the index-order
                    // fold below makes the totals partition-independent.
                    let before = ctx.counters_total();
                    let payload = match scheme {
                        Scheme::Combinatorial => {
                            let mcts = CombinatorialMcts::new(mcts_config.clone());
                            match mcts.search_in(ctx, &graph, sel) {
                                Ok(out) => {
                                    let ratio = out.final_cost / out.initial_cost;
                                    let sample = TrainingSample::new(graph, vec![], out.label);
                                    Some((vec![sample], ratio))
                                }
                                Err(oarsmt_router::RouteError::Disconnected { .. }) => None,
                                Err(e) => return Err(e),
                            }
                        }
                        Scheme::AlphaGo => {
                            let mcts = AlphaGoMcts::new(mcts_config.clone());
                            match mcts.search_in(ctx, &graph, sel) {
                                Ok(out) => {
                                    let ratio = out.final_cost / out.initial_cost;
                                    let per_move = out
                                        .samples
                                        .into_iter()
                                        .map(|s| {
                                            TrainingSample::new(graph.clone(), s.state, s.label)
                                        })
                                        .collect();
                                    Some((per_move, ratio))
                                }
                                Err(oarsmt_router::RouteError::Disconnected { .. }) => None,
                                Err(e) => return Err(e),
                            }
                        }
                    };
                    Ok((payload, ctx.counters_total().delta_since(&before)))
                },
            );
            // Fold in index order: sample order, float accumulation, and
            // counter totals are independent of the worker partition.
            for item in per_layout {
                let (payload, delta) = item?;
                self.gen_counters.merge_from(&delta);
                if let Some((layout_samples, ratio)) = payload {
                    ratio_sum += ratio;
                    ratio_count += 1;
                    samples.extend(layout_samples);
                }
            }
        }
        let ratio = if ratio_count == 0 {
            1.0
        } else {
            ratio_sum / ratio_count as f64
        };
        Ok((samples, ratio))
    }

    /// Fits one batch with accumulated gradients; returns the mean loss.
    ///
    /// When every sample shares the same layout dimensions (and the batch
    /// holds more than one sample), the batch is stacked channel-major and
    /// driven through the network's batched forward/backward — one GEMM
    /// with `N = B·spatial` per conv instead of `B` — which is bit-identical
    /// to [`Trainer::fit_batch_sequential`]: same loss, same post-step
    /// weights (see `crates/rl/tests/batch_equivalence.rs`). Mixed-size
    /// batches fall back to the sequential path, so training trajectories
    /// never depend on how the mixed-size schedule happens to batch.
    pub fn fit_batch(&mut self, selector: &mut NeuralSelector, batch: &[&TrainingSample]) -> f32 {
        let homogeneous = batch.len() > 1 && batch.windows(2).all(|w| w[0].dims() == w[1].dims());
        if !homogeneous {
            return self.fit_batch_sequential(selector, batch);
        }
        let ws = &mut self.ws;
        let net = selector.net_mut();
        net.zero_grad();
        let scale = 1.0 / batch.len() as f32;
        // Per-sample encoding is identical to the sequential path; only the
        // stacking into the rank-5 [7, B, M, H, V] layout is new.
        let encoded: Vec<(Tensor, Tensor, Tensor)> = batch.iter().map(|s| s.to_tensors()).collect();
        let xs: Vec<&Tensor> = encoded.iter().map(|(x, _, _)| x).collect();
        let x = Tensor::stack_batch(&xs);
        let logits = net.forward_batch_in(&x, ws);
        let targets: Vec<&Tensor> = encoded.iter().map(|(_, t, _)| t).collect();
        let masks: Vec<&Tensor> = encoded.iter().map(|(_, _, m)| m).collect();
        let out = bce_with_logits_batch(&logits, &targets, &masks);
        let mut grad = out.grad;
        grad.scale(scale);
        let grad_in = net.backward_batch_in(grad, ws);
        ws.free(grad_in);
        ws.free(logits);
        ws.free(x);
        self.optimizer.step(net);
        out.loss * scale
    }

    /// The reference batch fit: one forward/backward per sample, gradients
    /// accumulated in sample order. [`Trainer::fit_batch`] must match this
    /// bit-for-bit on homogeneous batches; it also serves as the fallback
    /// for mixed-size batches and as the baseline arm of
    /// `selector_batch_bench`.
    pub fn fit_batch_sequential(
        &mut self,
        selector: &mut NeuralSelector,
        batch: &[&TrainingSample],
    ) -> f32 {
        let ws = &mut self.ws;
        let net = selector.net_mut();
        net.zero_grad();
        let scale = 1.0 / batch.len() as f32;
        let mut loss_sum = 0.0f32;
        for sample in batch {
            let (x, targets, mask) = sample.to_tensors();
            let logits = net.forward_in(&x, ws);
            let out = bce_with_logits(&logits, &targets, Some(&mask));
            loss_sum += out.loss;
            let mut grad = out.grad;
            grad.scale(scale);
            let grad_in = net.backward_in(grad, ws);
            ws.free(grad_in);
            ws.free(logits);
            ws.free(x);
        }
        self.optimizer.step(net);
        loss_sum * scale
    }
}

/// How a trained selector is applied at test time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceMode {
    /// One inference selects all `n − 2` points (the paper's router).
    OneShot,
    /// One inference per point, each selection fed back as a pin (the
    /// AlphaGo-like / PPO baselines).
    Sequential,
}

/// Evaluates a selector's average **ST-to-MST ratio** over layouts — the
/// metric of Figs. 11–12. Lower is better; 1.0 means the Steiner points
/// bought nothing. Layouts whose pins cannot be connected are skipped.
pub fn st_to_mst_over_cases<S: Selector>(
    selector: &mut S,
    mode: InferenceMode,
    cases: &[HananGraph],
) -> f64 {
    // The figs isolate *selector* quality: use the bare OARMST constructor
    // (no path-assessed polish) for both the Steiner tree and the MST so
    // the measured difference comes from the selected points alone.
    let oarmst = OarmstRouter::new().with_polish_rounds(0);
    let mut ctx = oarsmt_router::RouteContext::new();
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for graph in cases {
        let Ok(mst) = oarmst.route_in(&mut ctx, graph, &[]) else {
            continue;
        };
        let points = match mode {
            InferenceMode::OneShot => {
                selector.fsp_into_ws(graph, &[], &mut ctx.fsp, &mut ctx.nn);
                let k = steiner_budget(graph.pins().len());
                oarsmt::topk::select_top_k(graph, &ctx.fsp, k, &[])
            }
            InferenceMode::Sequential => sequential_select(graph, selector),
        };
        let Ok(st) = oarmst.route_in(&mut ctx, graph, &points) else {
            continue;
        };
        sum += st.cost() / mst.cost();
        count += 1;
    }
    if count == 0 {
        1.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_nn::unet::UNetConfig;

    fn tiny_selector(seed: u64) -> NeuralSelector {
        NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed,
        })
    }

    fn tiny_config() -> TrainerConfig {
        TrainerConfig {
            sizes: vec![(5, 5, 1)],
            layouts_per_size: 2,
            stages: 2,
            curriculum_stages: 1,
            pin_range: (3, 4),
            epochs_per_stage: 1,
            batch_size: 8,
            augment: false,
            mcts: MctsConfig {
                base_iterations: 8,
                base_size: 25,
                ..MctsConfig::default()
            },
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn trainer_runs_stages_and_reports() {
        let mut trainer = Trainer::new(tiny_config());
        let mut selector = tiny_selector(0);
        let reports = trainer.run(&mut selector).unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.samples > 0);
            assert!(r.avg_loss.is_finite());
            assert!(r.mcts_cost_ratio.is_finite() && r.mcts_cost_ratio > 0.0);
        }
    }

    #[test]
    fn training_reduces_loss_on_repeated_data() {
        // Two stages on the same seed: the second stage's loss should not
        // blow up (and usually decreases).
        let mut cfg = tiny_config();
        cfg.stages = 1;
        cfg.epochs_per_stage = 6;
        let mut trainer = Trainer::new(cfg);
        let mut selector = tiny_selector(1);
        let r = trainer.run_stage(&mut selector, 1).unwrap();
        assert!(r.avg_loss.is_finite());
        assert!(r.avg_loss < 1.0, "BCE on sparse labels settles below 1");
    }

    #[test]
    fn alphago_trainer_produces_per_move_samples() {
        let mut trainer = Trainer::new_alphago(tiny_config());
        let mut selector = tiny_selector(2);
        let r = trainer.run_stage(&mut selector, 1).unwrap();
        // Per-move sampling yields at least as many samples as layouts.
        assert!(r.samples >= 1);
    }

    #[test]
    fn sample_generation_is_thread_count_invariant() {
        // One full stage (generation + fit) with 1 worker and with 4
        // workers: identical samples in identical order imply bit-identical
        // weights afterwards.
        let g = oarsmt_geom::HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        let mut outputs = Vec::new();
        for threads in [1usize, 4] {
            let mut cfg = tiny_config();
            cfg.layouts_per_size = 6;
            cfg.threads = threads;
            let mut trainer = Trainer::new(cfg);
            let mut selector = tiny_selector(11);
            let report = trainer.run_stage(&mut selector, 1).unwrap();
            outputs.push((
                report.samples,
                report.mcts_cost_ratio,
                selector.fsp(&g, &[]),
            ));
        }
        assert_eq!(outputs[0].0, outputs[1].0, "sample counts differ");
        assert_eq!(outputs[0].1.to_bits(), outputs[1].1.to_bits());
        assert_eq!(outputs[0].2, outputs[1].2, "weights diverged");
    }

    #[test]
    fn curriculum_fixes_pins_and_disables_critic() {
        let trainer = Trainer::new(TrainerConfig {
            curriculum_stages: 4,
            pin_range: (3, 6),
            ..tiny_config()
        });
        assert_eq!(trainer.stage_settings(0), ((3, 3), false));
        assert_eq!(trainer.stage_settings(1), ((4, 4), false));
        assert_eq!(trainer.stage_settings(3), ((6, 6), false));
        assert_eq!(trainer.stage_settings(4), ((3, 6), true));
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted_training() {
        let dir = std::env::temp_dir().join("oarsmt_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trainer.ckpt");
        let mut cfg = tiny_config();
        cfg.stages = 4;

        // Straight-through run.
        let mut t1 = Trainer::new(cfg.clone());
        let mut s1 = tiny_selector(5);
        t1.run(&mut s1).unwrap();

        // Interrupted run: 2 stages, checkpoint, fresh trainer, resume.
        let mut t2 = Trainer::new(cfg.clone());
        let mut s2 = tiny_selector(5);
        for stage in 0..2 {
            t2.run_stage(&mut s2, stage).unwrap();
        }
        t2.save_checkpoint(&mut s2, 2, &path).unwrap();
        let mut t3 = Trainer::new(cfg);
        let mut s3 = tiny_selector(999); // wrong init, overwritten by load
        let next = t3.load_checkpoint(&mut s3, &path).unwrap();
        assert_eq!(next, 2);
        t3.run_from(&mut s3, next).unwrap();

        // Same seeds after resume would require RNG state capture too; the
        // meaningful guarantee is that weights+optimizer round-trip exactly
        // at the checkpoint boundary.
        let g = oarsmt_geom::HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        use oarsmt::selector::Selector;
        let before = s2.fsp(&g, &[]);
        let mut s4 = tiny_selector(999);
        let mut t4 = Trainer::new(tiny_config());
        t4.load_checkpoint(&mut s4, &path).unwrap();
        assert_eq!(before, s4.fsp(&g, &[]));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn st_to_mst_evaluation_is_at_most_one_for_good_selectors() {
        use oarsmt::selector::MedianHeuristicSelector;
        use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
        let cases = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 1, (4, 5)), 9).generate_many(6);
        let mut sel = MedianHeuristicSelector::new();
        let one_shot = st_to_mst_over_cases(&mut sel, InferenceMode::OneShot, &cases);
        let sequential = st_to_mst_over_cases(&mut sel, InferenceMode::Sequential, &cases);
        assert!(one_shot <= 1.1, "one_shot {one_shot}");
        assert!(sequential <= 1.5);
    }
}
