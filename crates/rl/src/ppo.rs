//! PPO baseline trainer (Section 4.2).
//!
//! The paper compares its combinatorial MCTS against a PPO-trained router
//! whose agent is a *sequential* Steiner-point selector: at every step the
//! policy network scores all vertices, a masked softmax over the valid ones
//! defines the action distribution, one vertex is sampled, and the
//! selection is fed back as a pin. The episode return is the relative
//! routing-cost reduction of the final tree; a separate value network
//! (actor-critic) provides the baseline, and updates use the clipped
//! surrogate objective of Schulman et al.

use std::fmt;

use oarsmt::features::{encode_features, tensor_offset, to_graph_order, valid_mask};
use oarsmt::selector::NeuralSelector;
use oarsmt::topk::steiner_budget;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_nn::layer::Layer;
use oarsmt_nn::optim::Adam;
use oarsmt_nn::tensor::Tensor;
use oarsmt_nn::unet::{UNet3d, UNetConfig};
use oarsmt_router::OarmstRouter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// PPO hyperparameters.
#[derive(Debug, Clone)]
pub struct PpoConfig {
    /// Training iterations (collect + update cycles).
    pub iterations: usize,
    /// Episodes collected per iteration.
    pub episodes_per_iter: usize,
    /// PPO epochs over the collected steps.
    pub epochs: usize,
    /// Clipping parameter ε.
    pub clip: f32,
    /// Policy learning rate.
    pub lr_policy: f32,
    /// Value learning rate.
    pub lr_value: f32,
    /// Layout size for episode generation.
    pub size: (usize, usize, usize),
    /// Pin-count range.
    pub pin_range: (usize, usize),
    /// Master seed.
    pub seed: u64,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            iterations: 2,
            episodes_per_iter: 4,
            epochs: 2,
            clip: 0.2,
            lr_policy: 1e-3,
            lr_value: 1e-3,
            size: (6, 6, 1),
            pin_range: (3, 5),
            seed: 0,
        }
    }
}

/// Statistics of one PPO iteration.
#[derive(Debug, Clone, Copy)]
pub struct PpoReport {
    /// Iteration index.
    pub iteration: usize,
    /// Mean episode return (relative cost reduction; higher is better).
    pub avg_return: f64,
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f32,
    /// Mean value-function MSE.
    pub value_loss: f32,
}

impl fmt::Display for PpoReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ppo iter {}: return {:.4}, policy loss {:.4}, value loss {:.4}",
            self.iteration, self.avg_return, self.policy_loss, self.value_loss
        )
    }
}

/// One stored transition of a collected episode.
#[derive(Debug, Clone)]
struct Step {
    graph_idx: usize,
    state: Vec<GridPoint>,
    action: usize,
    old_logp: f32,
    ret: f32,
}

/// The PPO trainer: a policy network (the usual selector architecture) and
/// a value network.
#[derive(Debug)]
pub struct PpoTrainer {
    config: PpoConfig,
    policy: NeuralSelector,
    value: UNet3d,
    opt_policy: Adam,
    opt_value: Adam,
    rng: StdRng,
}

impl PpoTrainer {
    /// Creates a trainer with fresh networks.
    pub fn new(config: PpoConfig, net_config: UNetConfig) -> Self {
        let policy = NeuralSelector::with_config(net_config);
        let value = UNet3d::new(UNetConfig {
            seed: net_config.seed ^ 0x5eed,
            ..net_config
        });
        PpoTrainer {
            opt_policy: Adam::new(config.lr_policy),
            opt_value: Adam::new(config.lr_value),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            policy,
            value,
        }
    }

    /// The trained policy, usable as a sequential [`Selector`]
    /// (via [`NeuralSelector`]'s implementation).
    ///
    /// [`Selector`]: oarsmt::selector::Selector
    pub fn policy_mut(&mut self) -> &mut NeuralSelector {
        &mut self.policy
    }

    /// Runs all configured iterations.
    pub fn run(&mut self) -> Vec<PpoReport> {
        (0..self.config.iterations)
            .map(|i| self.run_iteration(i))
            .collect()
    }

    /// One collect + update cycle.
    pub fn run_iteration(&mut self, iteration: usize) -> PpoReport {
        let (graphs, steps, avg_return) = self.collect();
        let (policy_loss, value_loss) = self.update(&graphs, &steps);
        PpoReport {
            iteration,
            avg_return,
            policy_loss,
            value_loss,
        }
    }

    /// Collects episodes with the current policy.
    fn collect(&mut self) -> (Vec<HananGraph>, Vec<Step>, f64) {
        let (h, v, m) = self.config.size;
        let mut gen = CaseGenerator::new(
            GeneratorConfig::paper_costs(h, v, m, self.config.pin_range),
            self.rng.gen(),
        );
        let oarmst = OarmstRouter::new();
        // One reusable routing workspace for the whole collection phase.
        let mut ctx = oarsmt_router::RouteContext::new();
        let mut graphs = Vec::new();
        let mut steps = Vec::new();
        let mut return_sum = 0.0f64;
        let mut episodes = 0usize;
        while episodes < self.config.episodes_per_iter {
            let graph = gen.generate();
            let Ok(base) = oarmst.route_in(&mut ctx, &graph, &[]) else {
                continue; // unroutable layout; draw another
            };
            let budget = steiner_budget(graph.pins().len());
            let mut state: Vec<GridPoint> = Vec::new();
            let mut episode: Vec<(Vec<GridPoint>, usize, f32)> = Vec::new();
            for _ in 0..budget {
                let (probs, valid) = self.policy_distribution(&graph, &state);
                if valid.is_empty() {
                    break;
                }
                let action = sample_index(&probs, &valid, &mut self.rng);
                let logp = probs[action].max(1e-12).ln();
                episode.push((state.clone(), action, logp));
                state.push(graph.point(action));
            }
            let Ok(tree) = oarmst.route_in(&mut ctx, &graph, &state) else {
                continue;
            };
            let ret = ((base.cost() - tree.cost()) / base.cost()) as f32;
            return_sum += f64::from(ret);
            episodes += 1;
            let graph_idx = graphs.len();
            graphs.push(graph);
            for (s, a, logp) in episode {
                steps.push(Step {
                    graph_idx,
                    state: s,
                    action: a,
                    old_logp: logp,
                    ret,
                });
            }
        }
        (graphs, steps, return_sum / episodes.max(1) as f64)
    }

    /// Clipped-surrogate policy update plus value regression.
    fn update(&mut self, graphs: &[HananGraph], steps: &[Step]) -> (f32, f32) {
        if steps.is_empty() {
            return (0.0, 0.0);
        }
        let clip = self.config.clip;
        let mut policy_loss_sum = 0.0f64;
        let mut value_loss_sum = 0.0f64;
        let mut updates = 0usize;
        for _ in 0..self.config.epochs {
            for step in steps {
                let graph = &graphs[step.graph_idx];
                let x = encode_features(graph, &step.state);

                // ---- value network: V(s) = masked mean of its output.
                let value_logits = self.value.forward(&x);
                let mask = valid_mask(graph, &step.state);
                let mask_sum: f32 = mask.data().iter().sum();
                let v: f32 = value_logits
                    .data()
                    .iter()
                    .zip(mask.data())
                    .map(|(&o, &w)| o * w)
                    .sum::<f32>()
                    / mask_sum.max(1.0);
                let v_err = v - step.ret;
                value_loss_sum += f64::from(v_err * v_err);
                let mut v_grad = Tensor::zeros(value_logits.shape());
                for (g, &w) in v_grad.data_mut().iter_mut().zip(mask.data()) {
                    *g = 2.0 * v_err * w / mask_sum.max(1.0);
                }
                self.value.zero_grad();
                self.value.backward(&v_grad);
                self.opt_value.step(&mut self.value);

                // ---- policy network: clipped surrogate on the advantage.
                let advantage = step.ret - v;
                let net = self.policy.net_mut();
                let logits = net.forward(&x);
                let (probs, valid) = masked_softmax(&logits, graph, &step.state);
                let new_logp = probs[step.action].max(1e-12).ln();
                let ratio = (new_logp - step.old_logp).exp();
                let surrogate =
                    (ratio * advantage).min(ratio.clamp(1.0 - clip, 1.0 + clip) * advantage);
                policy_loss_sum += f64::from(-surrogate);
                // Gradient is zero when the clip is active against us.
                let active = (advantage > 0.0 && ratio < 1.0 + clip)
                    || (advantage < 0.0 && ratio > 1.0 - clip);
                let mut p_grad = Tensor::zeros(logits.shape());
                if active {
                    let coeff = -advantage * ratio;
                    for &i in &valid {
                        let onehot = if i == step.action { 1.0 } else { 0.0 };
                        let off = tensor_offset(graph, graph.point(i));
                        p_grad.data_mut()[off] = coeff * (onehot - probs[i]);
                    }
                }
                net.zero_grad();
                net.backward(&p_grad);
                self.opt_policy.step(net);
                updates += 1;
            }
        }
        (
            (policy_loss_sum / updates.max(1) as f64) as f32,
            (value_loss_sum / updates.max(1) as f64) as f32,
        )
    }

    /// The policy's masked action distribution for a state.
    fn policy_distribution(
        &mut self,
        graph: &HananGraph,
        state: &[GridPoint],
    ) -> (Vec<f32>, Vec<usize>) {
        let x = encode_features(graph, state);
        let net = self.policy.net_mut();
        let logits = net.forward(&x);
        masked_softmax(&logits, graph, state)
    }
}

/// Softmax over the valid (empty, unselected) vertices; invalid vertices
/// get probability zero. `logits` arrive in tensor layout (`[1, M, H, V]`);
/// the returned probabilities and indices are in **graph-index order**.
fn masked_softmax(
    logits: &Tensor,
    graph: &HananGraph,
    state: &[GridPoint],
) -> (Vec<f32>, Vec<usize>) {
    let lg = to_graph_order(logits.data(), graph);
    let selected: Vec<usize> = state.iter().map(|&p| graph.index(p)).collect();
    let valid: Vec<usize> = (0..graph.len())
        .filter(|&i| graph.kind_at(i) == oarsmt_geom::VertexKind::Empty && !selected.contains(&i))
        .collect();
    let mut probs = vec![0.0f32; graph.len()];
    if valid.is_empty() {
        return (probs, valid);
    }
    let max = valid
        .iter()
        .map(|&i| lg[i])
        .fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for &i in &valid {
        let e = (lg[i] - max).exp();
        probs[i] = e;
        total += e;
    }
    for &i in &valid {
        probs[i] /= total;
    }
    (probs, valid)
}

/// Samples a vertex index from the masked distribution.
fn sample_index(probs: &[f32], valid: &[usize], rng: &mut StdRng) -> usize {
    let r: f32 = rng.gen();
    let mut acc = 0.0f32;
    for &i in valid {
        acc += probs[i];
        if r <= acc {
            return i;
        }
    }
    *valid.last().expect("valid set is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net() -> UNetConfig {
        UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed: 0,
        }
    }

    #[test]
    fn ppo_runs_and_reports_finite_losses() {
        let mut t = PpoTrainer::new(PpoConfig::default(), tiny_net());
        let reports = t.run();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.policy_loss.is_finite());
            assert!(r.value_loss.is_finite());
            assert!(r.avg_return.is_finite());
        }
    }

    #[test]
    fn masked_softmax_is_a_distribution_over_valid_vertices() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(2, 2, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(1, 0, 0)).unwrap();
        let logits = Tensor::from_vec(&[1, 1, 3, 3], (0..9).map(|i| i as f32).collect()).unwrap();
        let (probs, valid) = masked_softmax(&logits, &g, &[]);
        assert_eq!(valid.len(), 6);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(probs[g.index(GridPoint::new(0, 0, 0))], 0.0);
        assert_eq!(probs[g.index(GridPoint::new(1, 0, 0))], 0.0);
    }

    #[test]
    fn sampling_respects_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = vec![0.0, 0.5, 0.0, 0.5];
        let valid = vec![1, 3];
        for _ in 0..20 {
            let i = sample_index(&probs, &valid, &mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn value_losses_shrink_on_fixed_data() {
        // Running more iterations on the same distribution should not make
        // the value loss explode.
        let mut t = PpoTrainer::new(
            PpoConfig {
                iterations: 3,
                episodes_per_iter: 3,
                epochs: 2,
                ..PpoConfig::default()
            },
            tiny_net(),
        );
        let reports = t.run();
        let first = reports.first().unwrap().value_loss;
        let last = reports.last().unwrap().value_loss;
        assert!(last <= first * 10.0 + 1.0, "value loss stays bounded");
    }
}
