//! Property tests pinning the tentpole guarantee of the batched training
//! path: `Trainer::fit_batch` on a homogeneous batch is **bit-identical**
//! to `Trainer::fit_batch_sequential` — same reported loss, same weights
//! after the optimizer step — for any batch size and layout shape.
//!
//! The batched path folds the batch into the GEMM N axis (one matrix
//! multiply with N = B·spatial per conv instead of B), so this is the
//! training-trajectory-level counterpart of the per-layer bitwise tests in
//! `oarsmt-nn`: if it holds, switching batching on or off can never change
//! what a training run learns.

use oarsmt::selector::NeuralSelector;
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_nn::serialize::save_params;
use oarsmt_nn::unet::UNetConfig;
use oarsmt_rl::sample::TrainingSample;
use oarsmt_rl::trainer::{Trainer, TrainerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn tiny_selector(seed: u64, levels: usize) -> NeuralSelector {
    NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 2,
        levels,
        seed,
    })
}

/// A random layout with `pins` pins and a random probability label.
fn random_sample(h: usize, v: usize, m: usize, pins: usize, seed: u64) -> TrainingSample {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = HananGraph::uniform(h, v, m, 1.0, 1.0, 3.0);
    let mut placed = 0;
    while placed < pins {
        let p = GridPoint::new(
            rng.gen_range(0..h),
            rng.gen_range(0..v),
            rng.gen_range(0..m),
        );
        if g.add_pin(p).is_ok() {
            placed += 1;
        }
    }
    let label: Vec<f32> = (0..g.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
    TrainingSample::new(g, vec![], label)
}

fn weight_bytes(sel: &mut NeuralSelector) -> Vec<u8> {
    let mut bytes = Vec::new();
    save_params(sel.net_mut(), &mut bytes).unwrap();
    bytes
}

/// Runs one fit step with each path on identical trainers/selectors and
/// asserts bitwise-equal losses and post-step weights.
fn assert_paths_match(samples: &[TrainingSample], seed: u64, levels: usize) {
    let refs: Vec<&TrainingSample> = samples.iter().collect();
    let cfg = TrainerConfig::default();
    let mut t_batch = Trainer::new(cfg.clone());
    let mut t_seq = Trainer::new(cfg);
    let mut s_batch = tiny_selector(seed, levels);
    let mut s_seq = tiny_selector(seed, levels);

    let l_batch = t_batch.fit_batch(&mut s_batch, &refs);
    let l_seq = t_seq.fit_batch_sequential(&mut s_seq, &refs);

    assert_eq!(
        l_batch.to_bits(),
        l_seq.to_bits(),
        "loss diverged: batched {l_batch} vs sequential {l_seq}"
    );
    assert_eq!(
        weight_bytes(&mut s_batch),
        weight_bytes(&mut s_seq),
        "post-step weights diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fit_batch_matches_sequential_bitwise(
        h in 3usize..6,
        v in 3usize..6,
        m in 1usize..3,
        bsz in 2usize..6,
        levels in 1usize..3,
        seed in 0u64..1000,
    ) {
        let samples: Vec<TrainingSample> = (0..bsz)
            .map(|b| random_sample(h, v, m, 3, seed ^ (b as u64) << 17))
            .collect();
        assert_paths_match(&samples, seed, levels);
    }
}

#[test]
fn fit_batch_matches_sequential_at_table1_like_shapes() {
    // A deterministic sweep over batch sizes on one fixed shape, so the
    // B ∈ {1, 4, 16} acceptance row does not depend on proptest's draws.
    for bsz in [1usize, 4, 16] {
        let samples: Vec<TrainingSample> = (0..bsz)
            .map(|b| random_sample(5, 5, 2, 4, 0xB0 + b as u64))
            .collect();
        assert_paths_match(&samples, 7, 2);
    }
}

#[test]
fn mixed_size_batches_fall_back_to_sequential() {
    // Heterogeneous dims: fit_batch must take the sequential path and
    // therefore still match fit_batch_sequential exactly.
    let samples = vec![
        random_sample(4, 4, 1, 3, 1),
        random_sample(5, 3, 2, 3, 2),
        random_sample(4, 4, 1, 3, 3),
    ];
    assert_paths_match(&samples, 11, 1);
}
