//! Finding aggregation: stable baseline keys, human-readable output and
//! machine-readable JSON (hand-rolled — the environment has no serde_json).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::rules::Finding;

/// A finding plus its computed baseline key and suppression state.
#[derive(Debug, Clone)]
pub struct Keyed {
    /// The underlying finding.
    pub finding: Finding,
    /// `rule|path|ident|occurrence#` — stable under unrelated edits
    /// (line numbers are deliberately not part of the key).
    pub key: String,
    /// Whether the committed baseline suppresses this finding.
    pub baselined: bool,
}

/// The complete result of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings in (path, line, rule) order.
    pub findings: Vec<Keyed>,
    /// Baseline entries that matched no finding (stale — safe to drop).
    pub stale_baseline: Vec<String>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not suppressed by the baseline.
    pub fn new_findings(&self) -> impl Iterator<Item = &Keyed> {
        self.findings.iter().filter(|k| !k.baselined)
    }

    /// Count of findings not suppressed by the baseline.
    pub fn new_count(&self) -> usize {
        self.new_findings().count()
    }

    /// Process exit code: nonzero iff any non-baselined finding exists.
    pub fn exit_code(&self) -> i32 {
        i32::from(self.new_count() > 0)
    }
}

/// Assigns baseline keys (per-`(rule, path, ident)` occurrence counters in
/// file order) and marks findings present in `baseline`.
pub fn keyed(mut findings: Vec<Finding>, baseline: &BTreeSet<String>) -> Report {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.ident.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.ident.as_str(),
        ))
    });
    let mut seen: std::collections::BTreeMap<(String, String, String), usize> =
        std::collections::BTreeMap::new();
    let mut used: BTreeSet<String> = BTreeSet::new();
    let keyed: Vec<Keyed> = findings
        .into_iter()
        .map(|f| {
            let slot = seen
                .entry((f.rule.to_string(), f.path.clone(), f.ident.clone()))
                .or_insert(0);
            let key = format!("{}|{}|{}|{}", f.rule, f.path, f.ident, *slot);
            *slot += 1;
            let baselined = baseline.contains(&key);
            if baselined {
                used.insert(key.clone());
            }
            Keyed {
                finding: f,
                key,
                baselined,
            }
        })
        .collect();
    let stale = baseline.difference(&used).cloned().collect();
    Report {
        findings: keyed,
        stale_baseline: stale,
        files_scanned: 0,
    }
}

/// Parses a baseline file: one key per line, `#` comments and blank lines
/// ignored.
pub fn parse_baseline(src: &str) -> BTreeSet<String> {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

/// Renders the baseline file content for `--write-baseline`.
pub fn render_baseline(report: &Report) -> String {
    let mut out = String::from(
        "# oarsmt-lint baseline: accepted findings, one `rule|path|ident|occurrence` key\n\
         # per line. Regenerate with `cargo run -p oarsmt-lint -- --write-baseline`.\n",
    );
    for k in &report.findings {
        out.push_str(&k.key);
        out.push('\n');
    }
    out
}

/// Human-readable report.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for k in &report.findings {
        let tag = if k.baselined { " (baselined)" } else { "" };
        let _ = writeln!(
            out,
            "{}:{}: [{}]{} {}",
            k.finding.path, k.finding.line, k.finding.rule, tag, k.finding.message
        );
        if let Some(chain) = &k.finding.chain {
            let _ = writeln!(out, "    via {chain}");
        }
    }
    for stale in &report.stale_baseline {
        let _ = writeln!(out, "note: stale baseline entry `{stale}` matched nothing");
    }
    let _ = writeln!(
        out,
        "oarsmt-lint: {} finding(s) ({} new, {} baselined) across {} file(s)",
        report.findings.len(),
        report.new_count(),
        report.findings.len() - report.new_count(),
        report.files_scanned,
    );
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable JSON report.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (n, k) in report.findings.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        // `chain` is present on every row (null for per-file findings) so
        // consumers can rely on a fixed shape.
        let chain = match &k.finding.chain {
            Some(c) => format!("\"{}\"", json_escape(c)),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"ident\": \"{}\", \
             \"key\": \"{}\", \"baselined\": {}, \"chain\": {}, \"message\": \"{}\"}}",
            json_escape(k.finding.rule),
            json_escape(&k.finding.path),
            k.finding.line,
            json_escape(&k.finding.ident),
            json_escape(&k.key),
            k.baselined,
            chain,
            json_escape(&k.finding.message),
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"total\": {},\n  \"new\": {},\n  \"files_scanned\": {}\n}}\n",
        report.findings.len(),
        report.new_count(),
        report.files_scanned,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, line: u32, ident: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            ident: ident.to_string(),
            message: format!("msg for {ident}"),
            chain: None,
        }
    }

    #[test]
    fn occurrence_counters_disambiguate_repeats() {
        let report = keyed(
            vec![
                f("D2-alloc", "a.rs", 10, "hot"),
                f("D2-alloc", "a.rs", 20, "hot"),
                f("D2-alloc", "b.rs", 5, "hot"),
            ],
            &BTreeSet::new(),
        );
        let keys: Vec<_> = report.findings.iter().map(|k| k.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "D2-alloc|a.rs|hot|0",
                "D2-alloc|a.rs|hot|1",
                "D2-alloc|b.rs|hot|0"
            ]
        );
        assert_eq!(report.exit_code(), 1);
    }

    #[test]
    fn baseline_suppresses_and_reports_stale_entries() {
        let baseline = parse_baseline("# comment\nD2-alloc|a.rs|hot|0\nD2-alloc|gone.rs|x|0\n\n");
        let report = keyed(vec![f("D2-alloc", "a.rs", 10, "hot")], &baseline);
        assert_eq!(report.new_count(), 0);
        assert_eq!(report.exit_code(), 0);
        assert_eq!(report.stale_baseline, vec!["D2-alloc|gone.rs|x|0"]);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = keyed(
            vec![f("D1-timing", "a \"q\".rs", 3, "Instant")],
            &BTreeSet::new(),
        );
        let js = render_json(&report);
        assert!(js.contains("\"new\": 1"));
        assert!(js.contains("a \\\"q\\\".rs"));
        assert!(js.ends_with("}\n"));
    }
}
