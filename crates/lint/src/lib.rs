//! `oarsmt-lint` — offline token-level static analysis for the OARSMT
//! workspace.
//!
//! The reproduction's headline invariants — bit-stable results, zero
//! steady-state allocation on the routing/inference hot paths, the
//! `foo`/`foo_in` workspace API convention, and an unsafe-free codebase —
//! are all easy to regress silently: a stray `HashMap` iteration or a
//! `clone()` in a hot loop compiles fine and only shows up as noise in
//! benchmarks or cross-run diffs. This crate enforces them statically,
//! with no dependency on `syn` or rustc internals: a hand-rolled lexer
//! ([`lexer`]), four rule families ([`rules`]), a checked-in scope
//! registry (`lint.toml`, parsed by [`config`]) and a baseline mechanism
//! ([`report`]) so pre-existing accepted findings never fail CI while new
//! ones do.
//!
//! The companion `alloc-count` feature builds a counting global allocator
//! test (`tests/alloc_sanitizer.rs`) that *measures* what rule D2 only
//! proves syntactically: repeated `route_in`/`predict_with_fsp_in` calls
//! perform zero heap allocation after warm-up.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use callgraph::CallGraph;
use config::Config;
use report::{keyed, Report};
use rules::{
    check_file, check_hot_closure, has_forbid_unsafe, has_gated_forbid_unsafe, has_unsafe,
    hash_returning_fns, FileAnalysis, Finding,
};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", ".claude"];

/// Recursively collects `.rs` files under `dir` (sorted, repo-relative
/// forward-slash paths), skipping [`SKIP_DIRS`].
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative forward-slash form of `path`.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Loads and analyzes every source file under `root`.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn analyze_tree(root: &Path) -> std::io::Result<Vec<FileAnalysis>> {
    let mut paths = Vec::new();
    walk_rs(root, &mut paths)?;
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let src = fs::read_to_string(&p)?;
        files.push(FileAnalysis::new(rel(root, &p), &src));
    }
    Ok(files)
}

/// The D4 package pass over every package (a directory holding
/// `Cargo.toml` and `src/`):
///
/// * unsafe-free packages must declare `#![forbid(unsafe_code)]` in each
///   crate/binary root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`) —
///   rule `D4-forbid`;
/// * packages whose `src/` tree *does* contain `unsafe` must still gate
///   it: each crate/binary root needs either the plain forbid or the
///   feature-gated form
///   `#![cfg_attr(not(feature = "…"), forbid(unsafe_code))]`, so the
///   default build stays unsafe-free and the opt-in lane keeps per-site
///   `// SAFETY:` duty under `D4-safety` — rule `D4-gate`.
///
/// Integration tests and benches are separate crates and intentionally
/// out of scope (the alloc sanitizer itself needs `unsafe` for its
/// `GlobalAlloc`).
pub fn check_forbid_unsafe(root: &Path, files: &[FileAnalysis], findings: &mut Vec<Finding>) {
    let mut pkg_dirs: Vec<String> = Vec::new();
    collect_packages(root, root, &mut pkg_dirs);
    pkg_dirs.sort();
    for pkg in pkg_dirs {
        let prefix = if pkg.is_empty() {
            "src/".to_string()
        } else {
            format!("{pkg}/src/")
        };
        let src_files: Vec<&FileAnalysis> = files
            .iter()
            .filter(|f| f.path.starts_with(&prefix))
            .collect();
        if src_files.is_empty() {
            continue;
        }
        let pkg_has_unsafe = src_files.iter().any(|f| has_unsafe(f));
        for f in &src_files {
            let is_root = f.path == format!("{prefix}lib.rs")
                || f.path == format!("{prefix}main.rs")
                || (f.path.starts_with(&format!("{prefix}bin/"))
                    && f.path.matches('/').count() == prefix.matches('/').count() + 1);
            if !is_root {
                continue;
            }
            let ident = if pkg.is_empty() {
                "workspace-root".to_string()
            } else {
                pkg.rsplit('/').next().unwrap_or(&pkg).to_string()
            };
            if pkg_has_unsafe {
                if !has_forbid_unsafe(f) && !has_gated_forbid_unsafe(f) {
                    findings.push(Finding {
                        rule: "D4-gate",
                        path: f.path.clone(),
                        line: 1,
                        ident,
                        message: "package uses `unsafe`; this crate/binary root must gate it \
                                  behind an opt-in feature with `#![cfg_attr(not(feature = \
                                  \"…\"), forbid(unsafe_code))]` (or forbid it outright)"
                            .to_string(),
                        chain: None,
                    });
                }
            } else if !has_forbid_unsafe(f) {
                findings.push(Finding {
                    rule: "D4-forbid",
                    path: f.path.clone(),
                    line: 1,
                    ident,
                    message: "unsafe-free package must declare `#![forbid(unsafe_code)]` in \
                              this crate/binary root"
                        .to_string(),
                    chain: None,
                });
            }
        }
    }
}

/// Finds package directories (repo-relative, `""` for the root package).
fn collect_packages(root: &Path, dir: &Path, out: &mut Vec<String>) {
    if dir.join("Cargo.toml").is_file() && dir.join("src").is_dir() {
        out.push(rel(root, dir));
    }
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() && !SKIP_DIRS.contains(&name.to_string_lossy().as_ref()) {
            collect_packages(root, &path, out);
        }
    }
}

/// Runs the full lint over `root` with `cfg` against `baseline`.
///
/// # Errors
///
/// Propagates I/O errors from the source walk.
pub fn run(root: &Path, cfg: &Config, baseline: &BTreeSet<String>) -> std::io::Result<Report> {
    let files = analyze_tree(root)?;
    let global_hash_fns = hash_returning_fns(&files);
    let mut findings = Vec::new();
    for f in &files {
        check_file(f, cfg, &global_hash_fns, &mut findings);
    }
    check_forbid_unsafe(root, &files, &mut findings);
    // The interprocedural pass: build the workspace call graph, propagate
    // hot-path membership from the lint.toml roots (missing files/fns
    // surface as D2-missing), then run the transitive rules over the
    // closure.
    let graph = CallGraph::build(&files);
    let closure = graph.propagate(&files, cfg, &mut findings);
    check_hot_closure(&files, &graph, &closure, cfg, &mut findings);
    let mut report = keyed(findings, baseline);
    report.files_scanned = files.len();
    Ok(report)
}

/// Renders the transitive hot closure of root function `fn_name` as a
/// Graphviz digraph (`callgraph --dot ROOT`). Returns `Err` with a usage
/// message when no non-test definition of `fn_name` exists.
///
/// # Errors
///
/// Propagates I/O errors from the source walk.
pub fn render_dot(root: &Path, fn_name: &str) -> std::io::Result<Result<String, String>> {
    let files = analyze_tree(root)?;
    let graph = CallGraph::build(&files);
    let roots = graph.defs_named(fn_name);
    if roots.is_empty() {
        return Ok(Err(format!(
            "no function named `{fn_name}` found in the workspace (test code is excluded)"
        )));
    }
    Ok(Ok(graph.to_dot(roots)))
}
