//! Workspace call graph: which function calls which, and what is
//! *transitively* hot.
//!
//! The interprocedural rules (transitive D2 zero-alloc, D5 panic-freedom,
//! D1 clock-reach) need to know the call closure of the registered hot
//! roots, not just their own bodies. This module resolves `fn`
//! definitions per file (with their enclosing `impl`/`trait` owner),
//! extracts call edges from every body, and propagates hot-path
//! membership breadth-first from the `lint.toml` roots, recording one
//! shortest `root → … → offender` chain per reached function for
//! attribution.
//!
//! Resolution is token-level and deliberately conservative — when the
//! receiver type of a method call cannot be inferred from scoped
//! `name: Type` bindings (function scope, then file scope, then a
//! workspace-wide annotation map), the call resolves to *every* known
//! definition of that name, which can only widen the checked closure.
//! The known blind spots are explicit, not silent:
//!
//! * calls through trait objects, `impl Fn…` parameters and fn pointers
//!   are reported as `callgraph-unresolved` findings inside the hot
//!   closure (escape: `// lint: dyncall-ok(reason)`);
//! * method calls on receivers that resolve to std/primitive types are
//!   treated as external leaves — their allocating behaviour is covered
//!   by the direct construct scan (`.collect()`, `.to_vec()`, …) at the
//!   call site, and ultimately by the runtime alloc sanitizer.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::{Config, ZeroAllocEntry};
use crate::lexer::{Token, TokenKind};
use crate::rules::{matching, matching_angle, FileAnalysis, Finding};

/// Std-library / primitive type names whose methods never resolve into
/// the workspace: a receiver of one of these types (with no workspace
/// `impl`) makes the call an external leaf, not an unresolved edge.
const STD_TYPES: [&str; 38] = [
    "Vec",
    "VecDeque",
    "String",
    "str",
    "Box",
    "Rc",
    "Arc",
    "Cell",
    "RefCell",
    "Option",
    "Result",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Instant",
    "Duration",
    "SystemTime",
    "Ordering",
    "Range",
    "PathBuf",
    "Path",
    "[T]",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "f32",
    "f64",
];

/// Common std iterator/collection/numeric method names that never fall
/// back to by-name resolution on an *untyped* receiver: an untyped
/// `.map(…)` or `.collect(…)` is overwhelmingly a std call, and by-name
/// fallback here would drag same-named workspace impls (`Tensor::map`,
/// a trainer's `collect`) into every closure. Typed receivers still
/// resolve these names precisely — only the unknown-receiver fallback is
/// suppressed, which is the documented soundness trade.
const STD_METHOD_NAMES: [&str; 78] = [
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "and_then",
    "or_else",
    "chain",
    "zip",
    "fold",
    "for_each",
    "collect",
    "extend",
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "len",
    "is_empty",
    "push",
    "pop",
    "push_back",
    "pop_front",
    "insert",
    "remove",
    "get",
    "get_mut",
    "first",
    "last",
    "contains",
    "contains_key",
    "clear",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "sum",
    "product",
    "count",
    "rev",
    "take",
    "skip",
    "find",
    "position",
    "any",
    "all",
    "enumerate",
    "next",
    "windows",
    "chunks",
    "split_at",
    "join",
    "resize",
    "truncate",
    "reserve",
    "retain",
    "copy_from_slice",
    "fill",
    "swap",
    "binary_search",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map_err",
    "ok_or",
    "as_ref",
    "as_mut",
    "as_slice",
    "to_string",
    "cmp",
    "partial_cmp",
    "fmt",
];

/// Keywords that can precede `(` without being a call.
const KEYWORDS: [&str; 28] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "move", "let", "mut",
    "ref", "break", "continue", "where", "impl", "dyn", "fn", "pub", "use", "mod", "struct",
    "enum", "union", "trait", "unsafe", "await",
];

/// One resolved `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index into the analyzed-files slice.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any (method / associated
    /// fn vs free fn).
    pub owner: Option<String>,
    /// Token span from the `fn` keyword to the body's opening brace
    /// (exclusive) — the signature, used for parameter bindings.
    pub sig: (usize, usize),
    /// Inclusive token span of the body, braces excluded.
    pub body: (usize, usize),
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the definition sits under `#[cfg(test)]`/`#[test]` — such
    /// definitions never participate in resolution.
    pub in_test: bool,
}

impl FnDef {
    /// `Owner::name` for methods, `name` for free functions.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `name: Type` (or `let name = Type::…`) binding.
#[derive(Debug, Clone, Default)]
pub struct Binding {
    /// The principal type name (last segment of the leading type path),
    /// when one could be read off the tokens.
    pub principal: Option<String>,
    /// Whether the annotation mentions `HashMap`/`HashSet` anywhere —
    /// the D1 hash-receiver signal.
    pub is_hash: bool,
    /// Whether the annotation mentions `dyn` (trait object).
    pub is_dyn: bool,
    /// Whether the annotation is `Fn`/`FnMut`/`FnOnce`/`fn(…)`-like.
    pub is_callable: bool,
}

/// Scope-resolved typed bindings of one file: function scopes first,
/// file scope (struct fields, consts) as fallback. This is the PR-4
/// caveat fix: a `BTreeMap` local can share a name with a `HashMap`
/// elsewhere in the file without cross-contaminating.
#[derive(Debug, Default)]
pub struct FileScopes {
    /// Bindings declared outside any `fn` (struct fields, consts).
    file_level: BTreeMap<String, Binding>,
    /// Per-`fn` spans (signature start through body end, token indices)
    /// with the bindings declared inside them, sorted by span start.
    fns: Vec<(usize, usize, BTreeMap<String, Binding>)>,
}

impl FileScopes {
    /// Collects bindings for `f`, scoping them by the `fn` spans in
    /// `defs` (pre-filtered to this file).
    pub fn build(f: &FileAnalysis, defs: &[&FnDef]) -> FileScopes {
        let mut scopes = FileScopes {
            file_level: BTreeMap::new(),
            fns: defs
                .iter()
                .map(|d| (d.sig.0, d.body.1, BTreeMap::new()))
                .collect(),
        };
        scopes.fns.sort_unstable_by_key(|&(s, _, _)| s);
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            // `name : Type` (params, lets, struct fields) — excluding the
            // `::` path separator on both sides.
            if toks[i].kind == TokenKind::Ident
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && !(i > 0 && toks[i - 1].is_punct(':'))
            {
                if let Some(b) = parse_type_annotation(toks, i + 2) {
                    scopes.insert(toks[i].text.clone(), i, b);
                }
            }
            // `let [mut] name = …` constructions.
            if toks[i].is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if toks.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                {
                    if let Some(b) = parse_ctor_binding(toks, j + 2) {
                        scopes.insert(toks[j].text.clone(), j, b);
                    }
                }
            }
        }
        scopes
    }

    fn insert(&mut self, name: String, tok: usize, b: Binding) {
        // Innermost fn span containing the token, else file level. Later
        // bindings of the same name in the same scope win (closest to a
        // "last write" reading without real flow analysis).
        let mut target: Option<usize> = None;
        for (n, &(s, e, _)) in self.fns.iter().enumerate() {
            if (s..=e).contains(&tok) && target.is_none_or(|p| self.fns[p].0 < s) {
                target = Some(n);
            }
        }
        match target {
            Some(n) => {
                self.fns[n].2.insert(name, b);
            }
            None => {
                self.file_level.insert(name, b);
            }
        }
    }

    /// Looks `name` up at token position `tok`: innermost enclosing `fn`
    /// scope first, then file scope.
    pub fn lookup(&self, name: &str, tok: usize) -> Option<&Binding> {
        let mut best: Option<&BTreeMap<String, Binding>> = None;
        let mut best_start = 0usize;
        for (s, e, map) in &self.fns {
            if (*s..=*e).contains(&tok) && (best.is_none() || *s >= best_start) {
                best = Some(map);
                best_start = *s;
            }
        }
        if let Some(map) = best {
            if let Some(b) = map.get(name) {
                return Some(b);
            }
        }
        self.file_level.get(name)
    }
}

/// Reads a type annotation starting at `j` (just past `name :`).
fn parse_type_annotation(toks: &[Token], j: usize) -> Option<Binding> {
    let mut b = Binding::default();
    let mut k = j;
    // Skip reference/mutability/lifetime prefixes.
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime {
            k += 1;
        } else {
            break;
        }
    }
    match toks.get(k) {
        Some(t) if t.is_punct('[') => b.principal = Some("[T]".to_string()), // slice/array
        Some(t) if t.is_punct('(') => b.principal = Some("[T]".to_string()), // tuple: external
        Some(t) if t.is_ident("dyn") => b.is_dyn = true,
        Some(t) if t.is_ident("fn") => b.is_callable = true,
        Some(t) if t.is_ident("impl") => {}
        Some(t) if t.kind == TokenKind::Ident => {
            // Leading path: `a::b::C` — principal is the last segment.
            let mut last = t.text.clone();
            let mut p = k + 1;
            while toks.get(p).is_some_and(|t| t.is_punct(':'))
                && toks.get(p + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(p + 2).is_some_and(|t| t.kind == TokenKind::Ident)
            {
                last = toks[p + 2].text.clone();
                p += 3;
            }
            b.principal = Some(last);
        }
        _ => return None,
    }
    // Window scan for the hash / dyn / callable signals (bounded, stops
    // at statement-ish delimiters at angle depth 0 — same bounds the
    // old file-wide pass used).
    let mut angle = 0i32;
    for p in j..(j + 22).min(toks.len()) {
        let t = &toks[p];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if !(p > 0 && toks[p - 1].is_punct('-')) {
                angle = (angle - 1).max(0);
            }
        } else if t.is_punct(';')
            || t.is_punct('=')
            || t.is_punct('{')
            || (angle == 0 && (t.is_punct(',') || t.is_punct(')')))
        {
            break;
        } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
            b.is_hash = true;
        } else if t.is_ident("dyn") {
            b.is_dyn = true;
        } else if t.is_ident("Fn") || t.is_ident("FnMut") || t.is_ident("FnOnce") {
            b.is_callable = true;
        }
    }
    Some(b)
}

/// Reads a `let name = <expr>` initializer for a constructor-shaped type
/// (`Type::ctor(…)`, `Type { … }`, possibly path-qualified).
fn parse_ctor_binding(toks: &[Token], j: usize) -> Option<Binding> {
    let mut b = Binding::default();
    let mut principal: Option<String> = None;
    let mut k = j;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('&') || t.is_ident("mut") {
            k += 1;
            continue;
        }
        break;
    }
    // Walk a leading path, remembering the last uppercase-initial segment.
    while toks.get(k).is_some_and(|t| t.kind == TokenKind::Ident) {
        let text = &toks[k].text;
        if text.chars().next().is_some_and(char::is_uppercase) {
            principal = Some(text.clone());
        }
        if toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
        {
            k += 3;
            // Skip a turbofish between segments.
            if toks.get(k).is_some_and(|t| t.is_punct('<')) {
                match matching_angle(toks, k) {
                    Some(close)
                        if toks.get(close + 1).is_some_and(|t| t.is_punct(':'))
                            && toks.get(close + 2).is_some_and(|t| t.is_punct(':')) =>
                    {
                        k = close + 3;
                    }
                    _ => break,
                }
            }
        } else {
            break;
        }
    }
    // Hash signal within a short window, as the old pass did.
    for t in toks.iter().take((j + 10).min(toks.len())).skip(j) {
        if t.is_punct(';') {
            break;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            b.is_hash = true;
        }
    }
    b.principal = principal;
    if b.principal.is_none() && !b.is_hash {
        return None;
    }
    Some(b)
}

/// One call the resolver cannot see through (trait object, `impl Fn…`,
/// fn pointer).
#[derive(Debug, Clone)]
pub struct OpaqueCall {
    /// Caller definition index.
    pub caller: usize,
    /// Token index of the call (for escape-marker coverage).
    pub tok: usize,
    /// 1-based line.
    pub line: u32,
    /// Short description (`f (impl Fn param)` …).
    pub what: String,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every `fn` definition, in (file, position) order.
    pub defs: Vec<FnDef>,
    /// Callee definition indices per definition (deduplicated, body
    /// order).
    pub edges: Vec<Vec<usize>>,
    /// Calls through opaque callables, per caller.
    pub opaque: Vec<OpaqueCall>,
    /// Per-file scope-resolved bindings, parallel to the files slice.
    pub scopes: Vec<FileScopes>,
    /// Repo-relative paths, parallel to the files slice.
    paths: Vec<String>,
    by_name: BTreeMap<String, Vec<usize>>,
    owners: BTreeSet<String>,
    global_types: BTreeMap<String, BTreeSet<String>>,
}

/// How far a hot root's closure reaches one definition.
#[derive(Debug, Clone)]
pub struct Reach {
    /// BFS parent (`None` for roots) — the chain back to the root.
    pub parent: Option<usize>,
    /// Whether a `[[zero_alloc]]` root reaches this definition (D2
    /// applies); `[[panic_free]]`-only reachability checks D5/clock only.
    pub zero_alloc: bool,
}

/// The transitive hot closure: definition index → reach info.
pub type HotClosure = BTreeMap<usize, Reach>;

impl CallGraph {
    /// Builds the graph over every analyzed file.
    pub fn build(files: &[FileAnalysis]) -> CallGraph {
        let mut g = CallGraph::default();
        for (fi, f) in files.iter().enumerate() {
            g.paths.push(f.path.clone());
            let defs = extract_defs(fi, f);
            g.defs.extend(defs);
        }
        for (n, d) in g.defs.iter().enumerate() {
            if !d.in_test {
                g.by_name.entry(d.name.clone()).or_default().push(n);
            }
            if let Some(o) = &d.owner {
                g.owners.insert(o.clone());
            }
        }
        for (fi, f) in files.iter().enumerate() {
            let file_defs: Vec<&FnDef> = g.defs.iter().filter(|d| d.file == fi).collect();
            let scopes = FileScopes::build(f, &file_defs);
            for (name, b) in scopes
                .file_level
                .iter()
                .chain(scopes.fns.iter().flat_map(|(_, _, m)| m.iter()))
            {
                if let Some(p) = &b.principal {
                    g.global_types
                        .entry(name.clone())
                        .or_default()
                        .insert(p.clone());
                }
            }
            g.scopes.push(scopes);
        }
        g.edges = vec![Vec::new(); g.defs.len()];
        let def_ids: Vec<usize> = (0..g.defs.len()).collect();
        for n in def_ids {
            if g.defs[n].in_test {
                continue;
            }
            let (callees, opaque) = g.extract_calls(files, n);
            g.edges[n] = callees;
            g.opaque.extend(opaque);
        }
        g
    }

    /// Definitions named `name` (resolution index, test code excluded).
    pub fn defs_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    fn is_known_concrete(&self, ty: &str) -> bool {
        self.owners.contains(ty) || STD_TYPES.contains(&ty)
    }

    /// Resolves one method call by name against a set of candidate
    /// receiver types (empty = unknown receiver).
    fn resolve_method(&self, name: &str, recv_types: &[String]) -> Vec<usize> {
        let all = self.defs_named(name);
        if !recv_types.is_empty() {
            let matched: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&d| {
                    self.defs[d]
                        .owner
                        .as_ref()
                        .is_some_and(|o| recv_types.iter().any(|t| t == o))
                })
                .collect();
            if !matched.is_empty() {
                return matched;
            }
            if recv_types.iter().all(|t| self.is_known_concrete(t)) {
                return Vec::new(); // external (std) method
            }
        }
        // Untyped call to a ubiquitous std method name: external.
        if STD_METHOD_NAMES.contains(&name) {
            return Vec::new();
        }
        // Unknown receiver: every method definition of that name; free
        // fns as a last resort (trait methods brought in via `use`).
        let methods: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&d| self.defs[d].owner.is_some())
            .collect();
        if methods.is_empty() {
            all.to_vec()
        } else {
            methods
        }
    }

    /// Extracts resolved callees + opaque calls from one body.
    #[allow(clippy::too_many_lines)]
    fn extract_calls(
        &self,
        files: &[FileAnalysis],
        caller: usize,
    ) -> (Vec<usize>, Vec<OpaqueCall>) {
        let def = &self.defs[caller];
        let f = &files[def.file];
        let toks = &f.lexed.tokens;
        let scopes = &self.scopes[def.file];
        let mut callees: Vec<usize> = Vec::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut opaque = Vec::new();
        let add = |targets: Vec<usize>, callees: &mut Vec<usize>, seen: &mut BTreeSet<usize>| {
            for t in targets {
                if t != caller && seen.insert(t) {
                    callees.push(t);
                }
            }
        };
        let (start, end) = def.body;
        let mut i = start;
        while i <= end.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            // Attribute contents are not code: `#[cfg(all(feature = …))]`
            // would otherwise read as a call to `all`.
            if t.is_punct('#') && toks.get(i + 1).is_some_and(|n| n.is_punct('[')) {
                if let Some(close) = crate::rules::matching(toks, i + 1, '[', ']') {
                    i = close + 1;
                    continue;
                }
            }
            // Method call: `.name(` or `.name::<…>(`.
            if t.is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                && call_paren(toks, i + 2).is_some()
            {
                let name = toks[i + 1].text.clone();
                let recv_types: Vec<String> = if i > start {
                    let r = &toks[i - 1];
                    if r.is_ident("self") && !(i >= 2 && toks[i - 2].is_punct('.')) {
                        def.owner.clone().into_iter().collect()
                    } else if r.kind == TokenKind::Ident {
                        match scopes.lookup(&r.text, i) {
                            Some(b) if b.is_dyn || b.is_callable => {
                                if !f.covered(crate::lexer::MarkerKind::DynOk, i) {
                                    opaque.push(OpaqueCall {
                                        caller,
                                        tok: i,
                                        line: toks[i + 1].line,
                                        what: format!(
                                            "`.{name}()` on opaque receiver `{}`",
                                            r.text
                                        ),
                                    });
                                }
                                i += 1;
                                continue;
                            }
                            Some(b) => b.principal.clone().into_iter().collect(),
                            None => self
                                .global_types
                                .get(&r.text)
                                .map(|s| s.iter().cloned().collect())
                                .unwrap_or_default(),
                        }
                    } else {
                        Vec::new()
                    }
                } else {
                    Vec::new()
                };
                add(
                    self.resolve_method(&name, &recv_types),
                    &mut callees,
                    &mut seen,
                );
                i += 2;
                continue;
            }
            // Free / path / associated call: `name(`, `a::b::name(`,
            // `Type::name(`, `Self::name(`, `name::<T>(`.
            if t.kind == TokenKind::Ident
                && !KEYWORDS.contains(&t.text.as_str())
                && call_paren(toks, i + 1).is_some()
                && !(i > start && (toks[i - 1].is_punct('.') || toks[i - 1].is_ident("fn")))
            {
                // Gather leading `seg::seg::` qualifiers.
                let mut segments: Vec<&str> = vec![&t.text];
                let mut k = i;
                while k >= start + 3
                    && toks[k - 1].is_punct(':')
                    && toks[k - 2].is_punct(':')
                    && toks[k - 3].kind == TokenKind::Ident
                {
                    segments.insert(0, &toks[k - 3].text);
                    k -= 3;
                }
                let name = t.text.clone();
                let first = segments[0];
                if matches!(first, "std" | "core" | "alloc") {
                    i += 1;
                    continue; // std leaf
                }
                let targets = if segments.len() >= 2 {
                    let qual = segments[segments.len() - 2];
                    if qual == "Self" {
                        let ty: Vec<String> = def.owner.clone().into_iter().collect();
                        self.resolve_assoc(&name, &ty)
                    } else if qual.chars().next().is_some_and(char::is_uppercase) {
                        self.resolve_assoc(&name, &[qual.to_string()])
                    } else {
                        self.resolve_qualified(&name, qual)
                    }
                } else {
                    // Unqualified: a local callable binding shadows any
                    // same-named fn definition.
                    match scopes.lookup(&name, i) {
                        Some(b) if b.is_callable || b.is_dyn => {
                            if !f.covered(crate::lexer::MarkerKind::DynOk, i) {
                                opaque.push(OpaqueCall {
                                    caller,
                                    tok: i,
                                    line: t.line,
                                    what: format!("`{name}(…)` through an opaque callable"),
                                });
                            }
                            i += 1;
                            continue;
                        }
                        _ => self.resolve_free(&name),
                    }
                };
                add(targets, &mut callees, &mut seen);
            }
            i += 1;
        }
        (callees, opaque)
    }

    /// Associated-fn resolution: `Type::name` must match an impl of that
    /// type; no match means an external (derive/std-trait) call.
    fn resolve_assoc(&self, name: &str, tys: &[String]) -> Vec<usize> {
        self.defs_named(name)
            .iter()
            .copied()
            .filter(|&d| {
                self.defs[d]
                    .owner
                    .as_ref()
                    .is_some_and(|o| tys.iter().any(|t| t == o))
            })
            .collect()
    }

    /// Module-qualified resolution: prefer definitions whose file stem or
    /// crate directory matches the qualifier, fall back to every free fn
    /// of that name (conservative over-approximation).
    fn resolve_qualified(&self, name: &str, module: &str) -> Vec<usize> {
        let all = self.defs_named(name);
        let matched: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&d| {
                let def = &self.defs[d];
                module_matches(self.def_path(def), module)
            })
            .collect();
        if matched.is_empty() {
            self.resolve_free(name)
        } else {
            matched
        }
    }

    /// Repo-relative path of the file a definition lives in.
    pub fn def_path(&self, def: &FnDef) -> &str {
        self.paths.get(def.file).map_or("", String::as_str)
    }

    /// Free-fn resolution: free definitions first, any definition as the
    /// conservative fallback.
    fn resolve_free(&self, name: &str) -> Vec<usize> {
        let all = self.defs_named(name);
        let free: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&d| self.defs[d].owner.is_none())
            .collect();
        if free.is_empty() {
            all.to_vec()
        } else {
            free
        }
    }

    /// Finds root definitions for registry `entries` (path + fn names),
    /// reporting missing files / functions as `D2-missing` findings.
    pub fn roots_for(
        &self,
        files: &[FileAnalysis],
        entries: &[ZeroAllocEntry],
        findings: &mut Vec<Finding>,
    ) -> Vec<usize> {
        let mut roots = Vec::new();
        for entry in entries {
            let Some(fi) = files.iter().position(|f| f.path == entry.path) else {
                findings.push(Finding {
                    rule: "D2-missing",
                    path: entry.path.clone(),
                    line: 1,
                    ident: "file".to_string(),
                    message: format!(
                        "lint.toml registers `{}` but the file does not exist",
                        entry.path
                    ),
                    chain: None,
                });
                continue;
            };
            for fname in &entry.functions {
                let matched: Vec<usize> = (0..self.defs.len())
                    .filter(|&d| {
                        self.defs[d].file == fi
                            && self.defs[d].name == *fname
                            && !self.defs[d].in_test
                    })
                    .collect();
                if matched.is_empty() {
                    findings.push(Finding {
                        rule: "D2-missing",
                        path: entry.path.clone(),
                        line: 1,
                        ident: fname.clone(),
                        message: format!(
                            "lint.toml registers hot root `{fname}` but `{}` does not define \
                             it — update the registry",
                            entry.path
                        ),
                        chain: None,
                    });
                } else {
                    roots.extend(matched);
                }
            }
        }
        roots
    }

    /// Propagates hot-path membership from the configured roots:
    /// `[[zero_alloc]]` roots first (D2 + D5 + clock-reach), then
    /// `[[panic_free]]` roots (D5 + clock-reach only) over whatever the
    /// first pass did not already reach.
    pub fn propagate(
        &self,
        files: &[FileAnalysis],
        cfg: &Config,
        findings: &mut Vec<Finding>,
    ) -> HotClosure {
        let mut closure: HotClosure = BTreeMap::new();
        for (entries, zero_alloc) in [(&cfg.zero_alloc, true), (&cfg.panic_free, false)] {
            let roots = self.roots_for(files, entries, findings);
            let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
            for r in roots {
                if let std::collections::btree_map::Entry::Vacant(e) = closure.entry(r) {
                    e.insert(Reach {
                        parent: None,
                        zero_alloc,
                    });
                    queue.push_back(r);
                }
            }
            while let Some(d) = queue.pop_front() {
                for &callee in &self.edges[d] {
                    if let std::collections::btree_map::Entry::Vacant(e) = closure.entry(callee) {
                        e.insert(Reach {
                            parent: Some(d),
                            zero_alloc,
                        });
                        queue.push_back(callee);
                    }
                }
            }
        }
        closure
    }

    /// The `root → … → def` attribution chain for a reached definition.
    pub fn chain(&self, closure: &HotClosure, def: usize) -> String {
        let mut names = vec![self.defs[def].display()];
        let mut cur = def;
        while let Some(reach) = closure.get(&cur) {
            match reach.parent {
                Some(p) => {
                    names.push(self.defs[p].display());
                    cur = p;
                }
                None => break,
            }
        }
        names.reverse();
        names.join(" → ")
    }

    /// Renders the transitive closure of `roots` as a Graphviz digraph.
    pub fn to_dot(&self, roots: &[usize]) -> String {
        use std::fmt::Write as _;
        let mut reached: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = roots.to_vec();
        while let Some(d) = queue.pop() {
            if reached.insert(d) {
                queue.extend(self.edges[d].iter().copied());
            }
        }
        let mut out = String::from(
            "digraph hot_closure {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
        );
        for &d in &reached {
            let def = &self.defs[d];
            let style = if roots.contains(&d) {
                ", style=filled, fillcolor=lightgoldenrod"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{d} [label=\"{}\\n{}:{}\"{style}];",
                def.display().replace('"', "\\\""),
                self.def_path(def),
                def.line,
            );
        }
        for &d in &reached {
            for &c in &self.edges[d] {
                if reached.contains(&c) {
                    let _ = writeln!(out, "  n{d} -> n{c};");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Whether the qualifier `module` plausibly names the file a definition
/// lives in (`retrace` → `…/retrace.rs` or `…/retrace/mod.rs`) or its
/// crate (`oarsmt_graph` → `crates/graph/…`).
fn module_matches(path: &str, module: &str) -> bool {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    if stem == module || (stem == "mod" && path.contains(&format!("/{module}/"))) {
        return true;
    }
    if module == "crate" || module == "super" || module == "self" {
        return true; // same-workspace path; name match is the filter
    }
    let crate_name = module
        .strip_prefix("oarsmt_")
        .map(|m| m.replace('_', "-"))
        .unwrap_or_default();
    !crate_name.is_empty()
        && (path.starts_with(&format!("crates/{crate_name}/"))
            || path.starts_with(&format!("crates/{}/", crate_name.replace('-', "_"))))
}

/// `(` directly at `i`, or after a `::<…>` turbofish ending at `(`.
fn call_paren(toks: &[Token], i: usize) -> Option<usize> {
    let t = toks.get(i)?;
    if t.is_punct('(') {
        return Some(i);
    }
    if t.is_punct(':')
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct('<'))
    {
        let close = matching_angle(toks, i + 2)?;
        if toks.get(close + 1).is_some_and(|t| t.is_punct('(')) {
            return Some(close + 1);
        }
    }
    None
}

/// Extracts every `fn` definition in one file, with impl/trait owners.
pub fn extract_defs(file_idx: usize, f: &FileAnalysis) -> Vec<FnDef> {
    let toks = &f.lexed.tokens;
    let mut owners: Vec<(String, usize)> = Vec::new();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while owners.last().is_some_and(|&(_, e)| i > e) {
            owners.pop();
        }
        let t = &toks[i];
        // `impl …` block at item position (not `-> impl Trait` / `&impl T`).
        if t.is_ident("impl") && at_item_position(toks, i) {
            if let Some((owner, open, close)) = parse_impl_header(toks, i) {
                owners.push((owner, close));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("trait") && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            let name = toks[i + 1].text.clone();
            if let Some(open) = (i + 2..toks.len()).find(|&j| toks[j].is_punct('{')) {
                // Stop at `;` first: `trait Alias = …;` has no block.
                let semi = (i + 2..open).find(|&j| toks[j].is_punct(';'));
                if semi.is_none() {
                    if let Some(close) = matching(toks, open, '{', '}') {
                        owners.push((name, close));
                        i = open + 1;
                        continue;
                    }
                }
            }
        }
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident) {
            let name = toks[i + 1].text.clone();
            let mut depth_p = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let tj = &toks[j];
                if tj.is_punct('(') {
                    depth_p += 1;
                } else if tj.is_punct(')') {
                    depth_p -= 1;
                } else if depth_p == 0 && tj.is_punct(';') {
                    break; // bodyless declaration
                } else if depth_p == 0 && tj.is_punct('{') {
                    if let Some(close) = matching(toks, j, '{', '}') {
                        out.push(FnDef {
                            file: file_idx,
                            name,
                            owner: owners.last().map(|(o, _)| o.clone()),
                            sig: (i, j),
                            body: (j + 1, close.saturating_sub(1)),
                            line: toks[i].line,
                            in_test: f.is_test(i),
                        });
                        i = j; // descend into the body for nested fns
                    }
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Whether the token before `i` allows an item (`impl` block) here.
fn at_item_position(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = &toks[i - 1];
    p.is_punct('{') || p.is_punct('}') || p.is_punct(';') || p.is_punct(']') || p.is_ident("unsafe")
}

/// Parses an `impl` header: returns (owner type name, body `{` index,
/// body `}` index).
fn parse_impl_header(toks: &[Token], i: usize) -> Option<(String, usize, usize)> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('<')) {
        j = matching_angle(toks, j)? + 1;
    }
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut open = None;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            if !(j > 0 && toks[j - 1].is_punct('-')) {
                angle = (angle - 1).max(0);
            }
        } else if angle == 0 && t.is_punct('{') {
            open = Some(j);
            break;
        } else if angle == 0 && t.is_punct(';') {
            return None; // `impl Trait for Type;` — not a block
        } else if angle == 0 && t.is_ident("for") {
            last_ident = None; // the implementing type follows
        } else if angle == 0 && t.is_ident("where") {
            break; // bound idents are not the type name
        } else if angle == 0 && t.kind == TokenKind::Ident && !t.is_ident("dyn") {
            last_ident = Some(t.text.clone());
        }
        j += 1;
    }
    let open = open.or_else(|| (j..toks.len()).find(|&k| toks[k].is_punct('{')))?;
    let close = matching(toks, open, '{', '}')?;
    Some((last_ident?, open, close))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(sources: &[(&str, &str)]) -> Vec<FileAnalysis> {
        sources
            .iter()
            .map(|(p, s)| FileAnalysis::new(*p, s))
            .collect()
    }

    fn names(g: &CallGraph, ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&d| g.defs[d].display()).collect()
    }

    fn edges_of(g: &CallGraph, name: &str) -> Vec<String> {
        let d = g.defs.iter().position(|d| d.name == name).unwrap();
        names(g, &g.edges[d])
    }

    #[test]
    fn free_method_and_path_calls_resolve() {
        let files = analyze(&[(
            "crates/a/src/lib.rs",
            "
            pub struct Ctx { buf: Vec<u32> }
            impl Ctx {
                pub fn bind(&mut self) { self.helper(); init(); }
                fn helper(&mut self) {}
            }
            pub fn init() {}
            pub fn top(ctx: &mut Ctx) { ctx.bind(); crate::init(); }
            ",
        )]);
        let g = CallGraph::build(&files);
        assert_eq!(edges_of(&g, "bind"), vec!["Ctx::helper", "init"]);
        assert_eq!(edges_of(&g, "top"), vec!["Ctx::bind", "init"]);
    }

    #[test]
    fn method_vs_free_fn_disambiguation() {
        // A free `step` and a method `step` coexist: `self.step()` takes
        // the method of the enclosing impl, a bare `step()` the free fn.
        let files = analyze(&[(
            "crates/a/src/lib.rs",
            "
            pub fn step() {}
            pub struct M;
            impl M {
                fn step(&self) {}
                fn run(&self) { self.step(); step(); }
            }
            ",
        )]);
        let g = CallGraph::build(&files);
        assert_eq!(edges_of(&g, "run"), vec!["M::step", "step"]);
    }

    #[test]
    fn typed_receivers_resolve_precisely_and_std_receivers_are_leaves() {
        let files = analyze(&[(
            "crates/a/src/lib.rs",
            "
            pub struct Pool;
            impl Pool { pub fn acquire(&mut self) {} }
            pub struct Other;
            impl Other { pub fn acquire(&mut self) {} }
            pub fn use_pool(p: &mut Pool, v: &mut Vec<u32>) {
                p.acquire();
                v.clear();
            }
            ",
        )]);
        let g = CallGraph::build(&files);
        // Only Pool::acquire, not Other::acquire; Vec::clear is external.
        assert_eq!(edges_of(&g, "use_pool"), vec!["Pool::acquire"]);
    }

    #[test]
    fn recursive_cycles_terminate() {
        let files = analyze(&[(
            "crates/a/src/lib.rs",
            "
            pub fn a(n: u32) { if n > 0 { b(n - 1); } }
            pub fn b(n: u32) { a(n); }
            pub fn looper(n: u32) { if n > 0 { looper(n - 1); } }
            ",
        )]);
        let g = CallGraph::build(&files);
        let cfg = crate::config::parse(
            "[[zero_alloc]]\npath = \"crates/a/src/lib.rs\"\nfunctions = [\"a\", \"looper\"]\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        let closure = g.propagate(&files, &cfg, &mut findings);
        assert!(findings.is_empty());
        assert_eq!(closure.len(), 3); // a, b, looper — each exactly once
        let b = g.defs.iter().position(|d| d.name == "b").unwrap();
        assert_eq!(g.chain(&closure, b), "a → b");
    }

    #[test]
    fn shadowed_fn_names_across_modules_over_approximate() {
        // Two modules both define `helper`; an unqualified call links to
        // both (conservative), a module-qualified call to exactly one.
        let files = analyze(&[
            ("crates/a/src/alpha.rs", "pub fn helper() {}"),
            ("crates/a/src/beta.rs", "pub fn helper() {}"),
            (
                "crates/a/src/lib.rs",
                "pub fn go() { helper(); beta::helper(); }",
            ),
        ]);
        let g = CallGraph::build(&files);
        let d = g.defs.iter().position(|d| d.name == "go").unwrap();
        let mut targets = names(&g, &g.edges[d]);
        targets.sort();
        assert_eq!(targets, vec!["helper", "helper"]); // both modules
        let qualified = g.resolve_qualified("helper", "beta");
        assert_eq!(qualified.len(), 1);
        assert_eq!(g.defs[qualified[0]].file, 1);
    }

    #[test]
    fn opaque_callables_are_reported_not_silently_dropped() {
        let files = analyze(&[(
            "crates/a/src/lib.rs",
            "
            pub fn apply(f: impl Fn(u32) -> u32, x: u32) -> u32 { f(x) }
            pub fn dispatch(obj: &dyn std::fmt::Debug) { obj.fmt_it(); }
            pub fn marked(f: impl Fn()) {
                // lint: dyncall-ok(closure is pure arithmetic by contract)
                f();
            }
            ",
        )]);
        let g = CallGraph::build(&files);
        assert_eq!(g.opaque.len(), 2, "{:?}", g.opaque);
        assert!(g.opaque[0].what.contains("opaque callable"));
        assert!(g.opaque[1].what.contains("opaque receiver"));
    }

    #[test]
    fn test_code_never_participates_in_resolution() {
        let files = analyze(&[(
            "crates/a/src/lib.rs",
            "
            pub fn go() { helper(); }
            #[cfg(test)]
            mod tests {
                fn helper() { let v = Vec::new(); drop(v); }
            }
            ",
        )]);
        let g = CallGraph::build(&files);
        let d = g.defs.iter().position(|d| d.name == "go").unwrap();
        assert!(g.edges[d].is_empty(), "{:?}", names(&g, &g.edges[d]));
    }

    #[test]
    fn scoped_bindings_shadow_per_fn() {
        let f = FileAnalysis::new(
            "x.rs",
            "
            pub fn a(m: &std::collections::HashMap<u32, u32>) -> usize { m.len() }
            pub fn b(m: &std::collections::BTreeMap<u32, u32>) -> usize { m.len() }
            ",
        );
        let defs = extract_defs(0, &f);
        let refs: Vec<&FnDef> = defs.iter().collect();
        let scopes = FileScopes::build(&f, &refs);
        let a_tok = defs[0].body.0;
        let b_tok = defs[1].body.0;
        assert!(scopes.lookup("m", a_tok).unwrap().is_hash);
        assert!(!scopes.lookup("m", b_tok).unwrap().is_hash);
        assert_eq!(
            scopes.lookup("m", b_tok).unwrap().principal.as_deref(),
            Some("BTreeMap")
        );
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let files = analyze(&[(
            "crates/a/src/lib.rs",
            "pub fn root() { leaf(); }\npub fn leaf() {}",
        )]);
        let g = CallGraph::build(&files);
        let root = g.defs.iter().position(|d| d.name == "root").unwrap();
        let dot = g.to_dot(&[root]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("root"));
        assert!(dot.contains("leaf"));
        assert!(dot.contains("->"));
    }
}
