//! The four rule families (DESIGN.md §10):
//!
//! * **D1 determinism** — no iteration over `HashMap`/`HashSet` in
//!   result-affecting crates (hash order is arbitrary), no
//!   `Instant`/`SystemTime` reads on result paths. Escapes:
//!   `// lint: ordered-ok(reason)` / `// lint: timing-ok(reason)`.
//!   The clock-read half also propagates transitively through the call
//!   graph from the hot roots (`D1-clock-reach`).
//! * **D2 zero-alloc** — the *transitive call closure* of every
//!   `[[zero_alloc]]` root in `lint.toml` must contain no allocating
//!   calls outside `// lint: alloc-ok(reason)` escapes; findings carry
//!   the `root → … → offender` chain.
//! * **D5 panic-freedom** — the hot closure (zero-alloc roots plus
//!   `[[panic_free]]` roots) must not contain `unwrap`/`expect`,
//!   `panic!`-family macros, or (opt-in) postfix indexing. Escape:
//!   `// lint: panic-ok(reason)`; pre-existing cold sites live in the
//!   baseline.
//! * **D3 wrapper conformance** — a `pub fn foo` with a `foo_in`/`foo_into`
//!   sibling in the same file must be a thin delegating wrapper.
//! * **D4 unsafe policy** — every `unsafe` needs a nearby `// SAFETY:`
//!   comment; packages whose `src/` tree is unsafe-free must declare
//!   `#![forbid(unsafe_code)]` in every crate/binary root.
//!
//! Everything here is a token-level approximation, tuned to be
//! conservative: a false positive costs one escape marker or baseline
//! entry; a false negative is what the fixtures in `tests/fixtures/`
//! guard against.

use std::collections::BTreeSet;

use crate::config::Config;
use crate::lexer::{lex, LexedFile, Marker, MarkerKind, Token, TokenKind};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule identifier (`D1-hash-iter`, `D1-timing`, `D2-alloc`,
    /// `D2-missing`, `D3-wrapper`, `D4-safety`, `D4-forbid`, `D4-gate`,
    /// `marker`).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// The identifier the finding anchors to (loop source, function name,
    /// package name, …) — part of the baseline key, so it must be stable
    /// under unrelated edits.
    pub ident: String,
    /// Human-readable explanation.
    pub message: String,
    /// Call-chain attribution `root → … → offender` for findings the
    /// interprocedural rules reached transitively (`None` for per-file
    /// rules and for findings directly inside a registered root).
    pub chain: Option<String>,
}

/// The lexed + pre-analyzed view of one source file.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Token stream, markers, SAFETY lines.
    pub lexed: LexedFile,
    /// Whether each token sits under a `#[cfg(test)]`/`#[test]` item.
    in_test: Vec<bool>,
    /// Covered token span (inclusive) per marker, parallel to
    /// `lexed.markers`: a marker covers the first token at or after its
    /// line through the end of the next statement.
    marker_spans: Vec<(usize, usize)>,
}

impl FileAnalysis {
    /// Lexes and pre-analyzes one file.
    pub fn new(path: impl Into<String>, src: &str) -> Self {
        let lexed = lex(src);
        let in_test = test_spans(&lexed.tokens);
        let marker_spans = lexed
            .markers
            .iter()
            .map(|m| marker_span(&lexed.tokens, m))
            .collect();
        FileAnalysis {
            path: path.into(),
            lexed,
            in_test,
            marker_spans,
        }
    }

    /// Whether token `idx` sits under a `#[cfg(test)]`/`#[test]` item.
    pub(crate) fn is_test(&self, idx: usize) -> bool {
        self.in_test.get(idx).copied().unwrap_or(false)
    }

    /// Whether a marker of `kind` covers token `idx`.
    pub(crate) fn covered(&self, kind: MarkerKind, idx: usize) -> bool {
        self.lexed
            .markers
            .iter()
            .zip(&self.marker_spans)
            .any(|(m, &(s, e))| m.kind == kind && (s..=e).contains(&idx))
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.lexed.tokens.get(i)
    }

    fn is_ident_at(&self, i: usize, s: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_ident(s))
    }

    fn is_punct_at(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }
}

/// Marks every token belonging to a `#[cfg(test)]`- or `#[test]`-attributed
/// item (attribute through the item's closing `}` or `;`).
fn test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut out = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching(tokens, i + 1, '[', ']') else {
            break;
        };
        let is_test = tokens[attr_start + 2..attr_end]
            .iter()
            .any(|t| t.is_ident("test"));
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip further attributes on the same item.
        let mut j = attr_end + 1;
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching(tokens, j + 1, '[', ']') {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // Only items and statements terminate at a `;` or brace block. A
        // test attribute on anything else — a struct/struct-literal field,
        // enum variant, or match arm, all `,`-terminated — must not start
        // the end-scan: it would overrun the comma and swallow the next
        // unrelated brace block (e.g. a whole `impl`). Mark the attribute
        // alone in that case.
        const SPAN_STARTERS: [&str; 22] = [
            "pub",
            "fn",
            "mod",
            "struct",
            "enum",
            "union",
            "trait",
            "impl",
            "type",
            "const",
            "static",
            "use",
            "unsafe",
            "async",
            "extern",
            "macro_rules",
            "let",
            "if",
            "for",
            "while",
            "loop",
            "match",
        ];
        let scans = tokens
            .get(j)
            .is_some_and(|t| t.is_punct('{') || SPAN_STARTERS.iter().any(|s| t.is_ident(s)));
        // The item runs to its first top-level `;` or brace block.
        let mut end = if scans { tokens.len() - 1 } else { attr_end };
        let mut k = j;
        while scans && k < tokens.len() {
            if tokens[k].is_punct(';') {
                end = k;
                break;
            }
            if tokens[k].is_punct('{') {
                end = matching(tokens, k, '{', '}').unwrap_or(tokens.len() - 1);
                break;
            }
            k += 1;
        }
        for flag in out.iter_mut().take(end + 1).skip(attr_start) {
            *flag = true;
        }
        i = end + 1;
    }
    out
}

/// Index of the delimiter matching `tokens[open]`.
pub(crate) fn matching(
    tokens: &[Token],
    open: usize,
    open_c: char,
    close_c: char,
) -> Option<usize> {
    debug_assert!(tokens[open].is_punct(open_c));
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Token span (inclusive) a marker covers: from the first token at or
/// after the marker's line through the end of the next statement — the
/// next `;` at the statement's brace depth, or the `}` closing a block
/// opened at that depth. Robust to rustfmt splitting a method chain over
/// several lines below the marker.
fn marker_span(tokens: &[Token], marker: &Marker) -> (usize, usize) {
    let Some(start) = tokens.iter().position(|t| t.line >= marker.line) else {
        return (usize::MAX, usize::MAX); // marker after all code: covers nothing
    };
    let mut rel = 0i32;
    // Paren/bracket nesting: the `;` in an array type like `[f32; SEG]`
    // (or inside a nested closure argument) is not a statement end.
    let mut grouped = 0i32;
    let mut opened = false;
    for (i, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct('(') || t.is_punct('[') {
            grouped += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            grouped -= 1;
        } else if t.is_punct('{') && grouped <= 0 {
            rel += 1;
            opened = true;
        } else if t.is_punct('}') && grouped <= 0 {
            if rel == 0 {
                return (start, i); // enclosing block closed first
            }
            rel -= 1;
            if rel == 0 && opened {
                return (start, i);
            }
        } else if t.is_punct(';') && rel == 0 && grouped <= 0 {
            return (start, i);
        }
    }
    (start, tokens.len().saturating_sub(1))
}

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 8] = [
    "iter",
    "into_iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

// Hash-typed-receiver inference lives in [`crate::callgraph::FileScopes`]:
// bindings are resolved at block/fn scope (innermost `fn` first, file
// level as fallback), so a `BTreeMap` local sharing a name with a
// `HashMap` in another function no longer false-positives D1.

/// Collects names of functions returning `HashMap`/`HashSet` — gathered
/// across the whole workspace, because hash-returning accessors (e.g. a
/// tree's `vertices()`) are usually iterated from *other* crates.
pub fn hash_returning_fns(files: &[FileAnalysis]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for f in files {
        let toks = &f.lexed.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") {
                continue;
            }
            let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            // Find the parameter list, then scan the return type.
            let Some(open) = (i + 2..(i + 30).min(toks.len())).find(|&j| toks[j].is_punct('('))
            else {
                continue;
            };
            let Some(close) = matching(toks, open, '(', ')') else {
                continue;
            };
            if !(f.is_punct_at(close + 1, '-') && f.is_punct_at(close + 2, '>')) {
                continue;
            }
            for t in toks
                .iter()
                .take((close + 40).min(toks.len()))
                .skip(close + 3)
            {
                if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                    break;
                }
                if HASH_TYPES.iter().any(|h| t.is_ident(h)) {
                    out.insert(name.text.clone());
                    break;
                }
            }
        }
    }
    out
}

/// D1: hash iteration and timing reads in a determinism-scoped file.
pub fn check_determinism(
    f: &FileAnalysis,
    global_hash_fns: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let toks = &f.lexed.tokens;
    let defs = crate::callgraph::extract_defs(0, f);
    let def_refs: Vec<&crate::callgraph::FnDef> = defs.iter().collect();
    let scopes = crate::callgraph::FileScopes::build(f, &def_refs);
    let is_hash_source = |j: usize, t: &Token, next_is_call: bool| -> bool {
        t.kind == TokenKind::Ident
            && (scopes.lookup(&t.text, j).is_some_and(|b| b.is_hash)
                || (next_is_call && global_hash_fns.contains(&t.text))
                || HASH_TYPES.iter().any(|h| t.is_ident(h)))
    };

    // For-loop header spans (`for` through the body `{`), so the
    // method-call rule below never double-reports a header already
    // handled by the for-loop rule.
    let mut for_headers: Vec<(usize, usize)> = Vec::new();

    for i in 0..toks.len() {
        if f.in_test[i] {
            continue;
        }
        // D1a: `for pat in <expr> {` where the expr mentions a hash source.
        if toks[i].is_ident("for") {
            // Distinguish loops from `impl Trait for Type` / `for<'a>`:
            // a loop has `in` at bracket depth 0 before its `{`.
            let mut depth_pb = 0i32;
            let mut in_at = None;
            for (j, t) in toks
                .iter()
                .enumerate()
                .take((i + 60).min(toks.len()))
                .skip(i + 1)
            {
                if t.is_punct('(') || t.is_punct('[') {
                    depth_pb += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth_pb -= 1;
                } else if depth_pb == 0 && t.is_punct('{') {
                    break;
                } else if depth_pb == 0 && t.is_ident("in") {
                    in_at = Some(j);
                    break;
                }
            }
            if let Some(in_at) = in_at {
                // Header expr: everything up to the body `{` at depth 0.
                let limit = (in_at + 60).min(toks.len());
                let mut depth_pb = 0i32;
                let mut header_end = limit.saturating_sub(1);
                for (j, t) in toks.iter().enumerate().take(limit).skip(in_at + 1) {
                    if t.is_punct('(') || t.is_punct('[') {
                        depth_pb += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth_pb -= 1;
                    } else if depth_pb == 0 && t.is_punct('{') {
                        header_end = j;
                        break;
                    }
                }
                for_headers.push((i, header_end));
                for j in in_at + 1..header_end {
                    let t = &toks[j];
                    let next_is_call = f.is_punct_at(j + 1, '(');
                    if is_hash_source(j, t, next_is_call) {
                        if !f.covered(MarkerKind::OrderedOk, i) {
                            findings.push(Finding {
                                rule: "D1-hash-iter",
                                path: f.path.clone(),
                                line: toks[i].line,
                                ident: t.text.clone(),
                                message: format!(
                                    "`for` loop over hash-ordered `{}` — iteration order is \
                                     arbitrary; sort first or mark `// lint: ordered-ok(reason)`",
                                    t.text
                                ),
                                chain: None,
                            });
                        }
                        break;
                    }
                }
            }
        }
        // D1b: `.iter()`-family calls whose receiver mentions a hash source
        // (for-loop headers are already handled by D1a above).
        if toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| ITER_METHODS.iter().any(|m| t.is_ident(m)))
            && f.is_punct_at(i + 2, '(')
            && !for_headers.iter().any(|&(s, e)| (s..=e).contains(&i))
        {
            let mut j = i;
            let mut matched: Option<String> = None;
            for _ in 0..10 {
                if j == 0 {
                    break;
                }
                j -= 1;
                let t = &toks[j];
                if t.is_punct(';')
                    || t.is_punct('{')
                    || t.is_punct('}')
                    || t.is_punct('=')
                    || t.is_punct(',')
                {
                    break;
                }
                let next_is_call = f.is_punct_at(j + 1, '(');
                if is_hash_source(j, t, next_is_call) {
                    matched = Some(t.text.clone());
                    break;
                }
            }
            if let Some(name) = matched {
                if !f.covered(MarkerKind::OrderedOk, i) {
                    findings.push(Finding {
                        rule: "D1-hash-iter",
                        path: f.path.clone(),
                        line: toks[i + 1].line,
                        ident: name.clone(),
                        message: format!(
                            "`.{}()` over hash-ordered `{}` — iteration order is arbitrary; \
                             sort first or mark `// lint: ordered-ok(reason)`",
                            toks[i + 1].text,
                            name
                        ),
                        chain: None,
                    });
                }
            }
        }
        // D1c: wall-clock reads.
        if (toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime"))
            && f.is_punct_at(i + 1, ':')
            && f.is_punct_at(i + 2, ':')
            && f.is_ident_at(i + 3, "now")
            && !f.covered(MarkerKind::TimingOk, i)
        {
            findings.push(Finding {
                rule: "D1-timing",
                path: f.path.clone(),
                line: toks[i].line,
                ident: toks[i].text.clone(),
                message: format!(
                    "`{}::now()` in a result-affecting crate — wall-clock must never feed \
                     results; mark `// lint: timing-ok(reason)` if it is reporting-only",
                    toks[i].text
                ),
                chain: None,
            });
        }
    }
}

/// Finds the body token span (exclusive of braces) of every `fn name` in
/// the file.
fn fn_bodies(f: &FileAnalysis, name: &str) -> Vec<(usize, usize)> {
    let toks = &f.lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(name) {
            // Scan past generics/params/return type to the body brace; a
            // `;` at paren depth 0 first means a bodyless declaration.
            let mut depth_p = 0i32;
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') {
                    depth_p += 1;
                } else if t.is_punct(')') {
                    depth_p -= 1;
                } else if depth_p == 0 && t.is_punct(';') {
                    break;
                } else if depth_p == 0 && t.is_punct('{') {
                    if let Some(close) = matching(toks, j, '{', '}') {
                        out.push((j + 1, close.saturating_sub(1)));
                        i = close;
                    }
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

const ALLOC_TYPES: [&str; 8] = [
    "Vec", "VecDeque", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];
const ALLOC_CTORS: [&str; 6] = [
    "new",
    "from",
    "with_capacity",
    "from_iter",
    "from_vec",
    "default",
];
const ALLOC_METHODS: [&str; 4] = ["to_vec", "to_owned", "to_string", "collect"];

/// Allocating constructs inside the token span `[start, end]`, as
/// `(token index, description)` pairs. Escape markers are *not* applied
/// here — callers filter with [`FileAnalysis::covered`].
pub(crate) fn alloc_constructs(f: &FileAnalysis, start: usize, end: usize) -> Vec<(usize, String)> {
    let toks = &f.lexed.tokens;
    let mut out = Vec::new();
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        if (t.is_ident("vec") || t.is_ident("format")) && f.is_punct_at(i + 1, '!') {
            out.push((i, format!("{}!", t.text)));
        }
        if t.is_punct('.') && f.is_ident_at(i + 1, "clone") && f.is_punct_at(i + 2, '(') {
            out.push((i, ".clone()".to_string()));
        }
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| ALLOC_METHODS.iter().any(|m| t.is_ident(m)))
        {
            out.push((i, format!(".{}()", toks[i + 1].text)));
        }
        if ALLOC_TYPES.iter().any(|ty| t.is_ident(ty))
            && f.is_punct_at(i + 1, ':')
            && f.is_punct_at(i + 2, ':')
        {
            // Skip an optional turbofish: `Vec::<u32>::new()`.
            let mut j = i + 3;
            if f.is_punct_at(j, '<') {
                if let Some(close) = matching_angle(toks, j) {
                    if f.is_punct_at(close + 1, ':') && f.is_punct_at(close + 2, ':') {
                        j = close + 3;
                    }
                }
            }
            if toks
                .get(j)
                .is_some_and(|c| ALLOC_CTORS.iter().any(|m| c.is_ident(m)))
            {
                out.push((i, format!("{}::{}", t.text, toks[j].text)));
            }
        }
    }
    out
}

/// D2, *intraprocedural* form: allocating calls inside one registered
/// function's own body only. The engine proper uses the transitive
/// [`check_hot_closure`]; this entry point is kept for the paired
/// regression test proving what the per-fn engine misses.
pub fn check_zero_alloc(f: &FileAnalysis, fname: &str, findings: &mut Vec<Finding>) {
    let bodies = fn_bodies(f, fname);
    if bodies.is_empty() {
        findings.push(Finding {
            rule: "D2-missing",
            path: f.path.clone(),
            line: 1,
            ident: fname.to_string(),
            message: format!(
                "lint.toml registers zero-alloc fn `{fname}` but this file does not define it \
                 — update the registry"
            ),
            chain: None,
        });
        return;
    }
    let toks = &f.lexed.tokens;
    for (start, end) in bodies {
        for (i, what) in alloc_constructs(f, start, end) {
            if f.covered(MarkerKind::AllocOk, i) {
                continue;
            }
            findings.push(Finding {
                rule: "D2-alloc",
                path: f.path.clone(),
                line: toks[i].line,
                ident: fname.to_string(),
                message: format!(
                    "allocating call `{what}` inside zero-alloc fn `{fname}` — reuse a \
                     workspace buffer or mark `// lint: alloc-ok(reason)`"
                ),
                chain: None,
            });
        }
    }
}

/// Panic-raising macros D5 polices on the hot closure.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
/// Panic-on-failure methods D5 polices (`assert!`-family is deliberately
/// *not* listed: asserting an invariant early is the sanctioned guard
/// idiom, panicking on a fallible value is not).
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// The interprocedural rules over the transitive hot closure: transitive
/// D2 (`D2-alloc` with chain attribution), D5 panic-freedom
/// (`D5-panic`, opt-in `D5-index`), the transitive clock-read check
/// (`D1-clock-reach`), and `callgraph-unresolved` notes for calls the
/// resolver cannot see through.
pub fn check_hot_closure(
    files: &[FileAnalysis],
    graph: &crate::callgraph::CallGraph,
    closure: &crate::callgraph::HotClosure,
    cfg: &Config,
    findings: &mut Vec<Finding>,
) {
    for (&d, reach) in closure {
        let def = &graph.defs[d];
        let f = &files[def.file];
        let toks = &f.lexed.tokens;
        let chain = graph.chain(closure, d);
        // Roots carry no chain (the finding is directly inside them);
        // transitively-reached functions always do.
        let attr = reach.parent.is_some().then(|| chain.clone());
        let (start, end) = def.body;
        if reach.zero_alloc {
            for (i, what) in alloc_constructs(f, start, end) {
                if f.covered(MarkerKind::AllocOk, i) {
                    continue;
                }
                findings.push(Finding {
                    rule: "D2-alloc",
                    path: f.path.clone(),
                    line: toks[i].line,
                    ident: def.name.clone(),
                    message: format!(
                        "allocating call `{what}` on the zero-alloc hot path ({chain}) — \
                         reuse a workspace buffer or mark `// lint: alloc-ok(reason)`"
                    ),
                    chain: attr.clone(),
                });
            }
        }
        for i in start..=end.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            // D5a: `.unwrap()`-family calls.
            if t.is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|n| PANIC_METHODS.iter().any(|m| n.is_ident(m)))
                && f.is_punct_at(i + 2, '(')
                && !f.covered(MarkerKind::PanicOk, i)
            {
                findings.push(Finding {
                    rule: "D5-panic",
                    path: f.path.clone(),
                    line: toks[i + 1].line,
                    ident: def.name.clone(),
                    message: format!(
                        "`.{}()` on the panic-free hot path ({chain}) — handle the None/Err \
                         case or mark `// lint: panic-ok(reason)`",
                        toks[i + 1].text
                    ),
                    chain: attr.clone(),
                });
            }
            // D5b: panic-raising macros.
            if PANIC_MACROS.iter().any(|m| t.is_ident(m))
                && f.is_punct_at(i + 1, '!')
                && !f.covered(MarkerKind::PanicOk, i)
            {
                findings.push(Finding {
                    rule: "D5-panic",
                    path: f.path.clone(),
                    line: t.line,
                    ident: def.name.clone(),
                    message: format!(
                        "`{}!` on the panic-free hot path ({chain}) — return an error or \
                         mark `// lint: panic-ok(reason)`",
                        t.text
                    ),
                    chain: attr.clone(),
                });
            }
            // D5c (opt-in via `[panic_freedom] indexing = true`): postfix
            // indexing, which panics on out-of-bounds.
            if cfg.panic_indexing
                && t.is_punct('[')
                && i > 0
                && (toks[i - 1].kind == TokenKind::Ident
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']'))
                && !f.covered(MarkerKind::PanicOk, i)
            {
                findings.push(Finding {
                    rule: "D5-index",
                    path: f.path.clone(),
                    line: t.line,
                    ident: def.name.clone(),
                    message: format!(
                        "postfix indexing on the panic-free hot path ({chain}) — use `get` or \
                         mark `// lint: panic-ok(reason)`"
                    ),
                    chain: attr.clone(),
                });
            }
            // D1 transitive: clock reads anywhere in the hot closure,
            // even outside the determinism-scoped crates.
            if (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && f.is_punct_at(i + 1, ':')
                && f.is_punct_at(i + 2, ':')
                && f.is_ident_at(i + 3, "now")
                && !f.covered(MarkerKind::TimingOk, i)
            {
                findings.push(Finding {
                    rule: "D1-clock-reach",
                    path: f.path.clone(),
                    line: t.line,
                    ident: def.name.clone(),
                    message: format!(
                        "`{}::now()` reachable from a hot root ({chain}) — wall-clock must \
                         never feed results; mark `// lint: timing-ok(reason)` if \
                         reporting-only",
                        t.text
                    ),
                    chain: attr.clone(),
                });
            }
        }
    }
    for oc in &graph.opaque {
        if let Some(reach) = closure.get(&oc.caller) {
            let def = &graph.defs[oc.caller];
            let f = &files[def.file];
            let chain = graph.chain(closure, oc.caller);
            findings.push(Finding {
                rule: "callgraph-unresolved",
                path: f.path.clone(),
                line: oc.line,
                ident: def.name.clone(),
                message: format!(
                    "cannot resolve {} inside the hot closure ({chain}) — the callee is \
                     invisible to the interprocedural rules; audit it and mark \
                     `// lint: dyncall-ok(reason)`",
                    oc.what
                ),
                chain: reach.parent.is_some().then_some(chain),
            });
        }
    }
}

/// Rationale + escape syntax for `--explain RULE`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "D1-hash-iter" => {
            "D1-hash-iter — iteration over HashMap/HashSet in a result-affecting crate.\n\
             Hash iteration order is arbitrary (and randomized across platforms), so any\n\
             result derived from it breaks bit-stable reproducibility. Sort the entries or\n\
             use a BTreeMap/BTreeSet. Receiver types are resolved at block/fn scope.\n\
             Escape: `// lint: ordered-ok(reason)` when the consumer is order-insensitive."
        }
        "D1-timing" => {
            "D1-timing — Instant::now()/SystemTime::now() in a result-affecting crate.\n\
             Wall-clock reads must never feed routing/search results: time-based budgets\n\
             make runs irreproducible. Use node/iteration budgets instead.\n\
             Escape: `// lint: timing-ok(reason)` for reporting-only uses."
        }
        "D1-clock-reach" => {
            "D1-clock-reach — a clock read transitively reachable from a hot root.\n\
             Same policy as D1-timing, but propagated through the workspace call graph\n\
             from the [[zero_alloc]]/[[panic_free]] roots in lint.toml, so helpers in\n\
             crates outside the determinism list are still caught. The finding carries\n\
             the `root → … → offender` chain.\n\
             Escape: `// lint: timing-ok(reason)`."
        }
        "D2-alloc" => {
            "D2-alloc — an allocating construct on the zero-alloc hot path.\n\
             The transitive call closure of every [[zero_alloc]] root must stay\n\
             allocation-free after warm-up: Vec::new/with_capacity/from, vec!/format!,\n\
             .clone()/.to_vec()/.to_owned()/.to_string()/.collect() are all findings,\n\
             attributed with the call chain from the root. The runtime alloc sanitizer\n\
             (tests/alloc_sanitizer.rs) measures what this rule proves syntactically.\n\
             Escape: `// lint: alloc-ok(reason)` for one-time bind/warm-up growth."
        }
        "D2-missing" => {
            "D2-missing — lint.toml registers a hot root that no longer exists.\n\
             The registry names `path` + `functions`; a rename/move must update\n\
             lint.toml in the same change, or the engine would silently check nothing."
        }
        "D3-wrapper" => {
            "D3-wrapper — a `pub fn foo` with a `foo_in`/`foo_into` sibling must be a\n\
             thin delegating wrapper (the `_in` variant holds the real logic and takes\n\
             the caller-owned workspace). This keeps the allocating convenience API and\n\
             the zero-alloc API from drifting apart."
        }
        "D4-safety" | "D4-forbid" | "D4-gate" => {
            "D4 — unsafe hygiene. Every `unsafe` token needs a `// SAFETY:` comment on\n\
             the same or the three preceding lines (D4-safety). Unsafe-free packages\n\
             must declare `#![forbid(unsafe_code)]` in every crate/binary root\n\
             (D4-forbid); packages with opt-in unsafe (e.g. simd kernels) must gate it:\n\
             `#![cfg_attr(not(feature = \"…\"), forbid(unsafe_code))]` (D4-gate)."
        }
        "D5-panic" => {
            "D5-panic — a panic-capable construct on the hot closure: .unwrap()/.expect()\n\
             (and _err variants), panic!/unreachable!/todo!/unimplemented!. A panic in a\n\
             long-lived serving worker tears down its warm RouteContext/NnWorkspace\n\
             state; hot code must handle the None/Err case or document why it cannot\n\
             occur. assert!-family guards are deliberately allowed.\n\
             Escape: `// lint: panic-ok(reason)`; pre-existing cold-path sites live in\n\
             lint-baseline.txt."
        }
        "D5-index" => {
            "D5-index — postfix indexing (`xs[i]`) on the hot closure; panics when out\n\
             of bounds. Off by default (`[panic_freedom] indexing = false` in lint.toml)\n\
             because bounds-checked indexing is the dominant idiom in the numeric\n\
             kernels; enable it to audit a closure exhaustively.\n\
             Escape: `// lint: panic-ok(reason)`."
        }
        "callgraph-unresolved" => {
            "callgraph-unresolved — a call through a trait object, `impl Fn` parameter\n\
             or fn pointer inside the hot closure. The resolver cannot see the callee,\n\
             so the transitive rules are blind past this point; the note makes the\n\
             blind spot explicit instead of silent.\n\
             Escape: `// lint: dyncall-ok(reason)` after auditing the possible callees."
        }
        "marker" => {
            "marker — a malformed `// lint:` escape comment. A typo in a marker must\n\
             not silently disable the escape, so the lexer reports it as a finding.\n\
             Valid shape: `// lint: kind-ok(reason)` with kind one of alloc, ordered,\n\
             timing, panic, dyncall."
        }
        _ => return None,
    })
}

/// Index of the `>` matching `tokens[open]` (`<`), `->`-aware.
pub(crate) fn matching_angle(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && tokens[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// How many body tokens a delegating wrapper may have before D3 flags it.
const WRAPPER_MAX_TOKENS: usize = 80;

/// D3: `pub fn foo` with a `foo_in`/`foo_into` sibling must delegate.
pub fn check_wrappers(f: &FileAnalysis, findings: &mut Vec<Finding>) {
    let toks = &f.lexed.tokens;
    let mut fn_names: BTreeSet<String> = BTreeSet::new();
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].is_ident("fn") && toks[i + 1].kind == TokenKind::Ident {
            fn_names.insert(toks[i + 1].text.clone());
        }
    }
    for i in 0..toks.len().saturating_sub(2) {
        if f.in_test[i] {
            continue;
        }
        if !(toks[i].is_ident("pub") && toks[i + 1].is_ident("fn")) {
            continue; // `pub(crate) fn` is not public API
        }
        let name = &toks[i + 2];
        if name.kind != TokenKind::Ident {
            continue;
        }
        let sib_in = format!("{}_in", name.text);
        let sib_into = format!("{}_into", name.text);
        if !fn_names.contains(&sib_in) && !fn_names.contains(&sib_into) {
            continue;
        }
        let Some(&(start, end)) = fn_bodies(f, &name.text)
            .iter()
            .find(|&&(s, _)| s > i)
            .filter(|&&(s, _)| {
                // The body must belong to *this* `fn` occurrence: no other
                // `fn` token between the name and the body open brace.
                !toks[i + 3..s].iter().any(|t| t.is_ident("fn"))
            })
        else {
            continue; // declaration without body
        };
        let body = &toks[start..=end.min(toks.len().saturating_sub(1))];
        let delegates = body
            .iter()
            .any(|t| t.is_ident(&name.text) || t.is_ident(&sib_in) || t.is_ident(&sib_into));
        if body.len() > WRAPPER_MAX_TOKENS || !delegates {
            findings.push(Finding {
                rule: "D3-wrapper",
                path: f.path.clone(),
                line: name.line,
                ident: name.text.clone(),
                message: format!(
                    "`pub fn {}` has a `{}`/`{}` sibling but is not a thin delegating wrapper \
                     ({} body tokens{}) — the `_in`/`_into` variant must hold the real logic",
                    name.text,
                    sib_in,
                    sib_into,
                    body.len(),
                    if delegates { "" } else { ", no delegation" },
                ),
                chain: None,
            });
        }
    }
}

/// D4 (comment half): every `unsafe` token needs a `// SAFETY:` comment on
/// the same or one of the three preceding lines.
pub fn check_unsafe_comments(f: &FileAnalysis, findings: &mut Vec<Finding>) {
    for t in &f.lexed.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        if !f
            .lexed
            .safety_lines
            .iter()
            .any(|&l| (lo..=t.line).contains(&l))
        {
            findings.push(Finding {
                rule: "D4-safety",
                path: f.path.clone(),
                line: t.line,
                ident: "unsafe".to_string(),
                message: "`unsafe` without a `// SAFETY:` comment on the preceding lines"
                    .to_string(),
                chain: None,
            });
        }
    }
}

/// Whether a crate/binary root declares `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe(f: &FileAnalysis) -> bool {
    let toks = &f.lexed.tokens;
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// Whether a crate/binary root declares a *feature-gated* forbid:
/// `#![cfg_attr(not(feature = "…"), forbid(unsafe_code))]`. This is the
/// sanctioned shape for a crate whose `unsafe` is confined to an opt-in
/// feature (e.g. `oarsmt-nn`'s `simd` kernels): the default build still
/// forbids `unsafe_code` outright, and the feature build keeps per-site
/// `// SAFETY:` duty under D4-safety. The scan is token-order based
/// (inner `cfg_attr` attribute containing `not`, `feature`, `forbid`,
/// `unsafe_code` in sequence), so formatting does not matter.
pub fn has_gated_forbid_unsafe(f: &FileAnalysis) -> bool {
    let toks = &f.lexed.tokens;
    for i in 0..toks.len().saturating_sub(4) {
        if !(toks[i].is_punct('#')
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('[')
            && toks[i + 3].is_ident("cfg_attr"))
        {
            continue;
        }
        let Some(close) = matching(toks, i + 2, '[', ']') else {
            continue;
        };
        let mut want = ["not", "feature", "forbid", "unsafe_code"].iter();
        let mut next = want.next();
        for t in &toks[i + 4..close] {
            if let Some(&w) = next {
                if t.is_ident(w) {
                    next = want.next();
                }
            }
        }
        if next.is_none() {
            return true;
        }
    }
    false
}

/// Whether a file contains any `unsafe` token.
pub fn has_unsafe(f: &FileAnalysis) -> bool {
    f.lexed.tokens.iter().any(|t| t.is_ident("unsafe"))
}

/// Malformed `// lint:` comments are findings too — a typo must not
/// silently disable an escape.
pub fn check_bad_markers(f: &FileAnalysis, findings: &mut Vec<Finding>) {
    for (line, message) in &f.lexed.bad_markers {
        findings.push(Finding {
            rule: "marker",
            path: f.path.clone(),
            line: *line,
            ident: "lint".to_string(),
            message: message.clone(),
            chain: None,
        });
    }
}

/// Runs every per-file rule with the scoping rules of [`Config`]; the
/// caller supplies the workspace-global hash-returning-function set.
pub fn check_file(
    f: &FileAnalysis,
    cfg: &Config,
    global_hash_fns: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    check_bad_markers(f, findings);
    check_unsafe_comments(f, findings);
    let in_src_of = |dirs: &[String]| {
        dirs.iter().any(|d| {
            // `"src"` scopes the workspace-root package; crate entries
            // (`"crates/router"`) scope that crate's `src/` tree.
            let d = d.trim_end_matches('/');
            let prefix = if d == "src" {
                "src/".to_string()
            } else {
                format!("{d}/src/")
            };
            f.path.starts_with(&prefix)
        })
    };
    if in_src_of(&cfg.determinism_crates) {
        check_determinism(f, global_hash_fns, findings);
    }
    if in_src_of(&cfg.wrapper_paths) {
        check_wrappers(f, findings);
    }
    // D2/D5/clock-reach run interprocedurally over the call graph — see
    // [`check_hot_closure`], driven from `lib::run`.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_d1(src: &str) -> Vec<Finding> {
        let f = FileAnalysis::new("crates/x/src/lib.rs", src);
        let fns = hash_returning_fns(std::slice::from_ref(&f));
        let mut out = Vec::new();
        check_determinism(&f, &fns, &mut out);
        out
    }

    #[test]
    fn for_loop_over_hash_map_is_flagged_and_marker_silences() {
        let bad = "
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u32>) -> u32 {
                let mut s = 0;
                for (k, v) in m.iter() { s += k + v; }
                s
            }
        ";
        let found = run_d1(bad);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "D1-hash-iter");

        let ok = bad.replace(
            "for (k, v) in m.iter()",
            "// lint: ordered-ok(sum is order-insensitive)\n for (k, v) in m.iter()",
        );
        assert!(run_d1(&ok).is_empty());
    }

    #[test]
    fn hash_returning_fn_iterated_cross_file_is_flagged() {
        let provider = FileAnalysis::new(
            "crates/a/src/lib.rs",
            "pub fn vertices(&self) -> HashSet<u32> { self.v.clone() }",
        );
        let consumer = FileAnalysis::new(
            "crates/b/src/lib.rs",
            "fn g(t: &T) { for v in t.vertices() { use_it(v); } }",
        );
        let fns = hash_returning_fns(&[provider, FileAnalysis::new("x", "")]);
        assert!(fns.contains("vertices"));
        let mut out = Vec::new();
        check_determinism(&consumer, &fns, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn impl_for_and_test_modules_are_not_loops() {
        let src = "
            impl Display for Foo { fn fmt(&self) {} }
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn t(m: &HashMap<u32, u32>) { for k in m.keys() { drop(k); } }
            }
        ";
        assert!(run_d1(src).is_empty());
    }

    #[test]
    fn timing_rule_flags_instant_now() {
        let found = run_d1("fn f() { let t = Instant::now(); }");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "D1-timing");
        let ok = run_d1("fn f() {\n// lint: timing-ok(reporting only)\nlet t = Instant::now(); }");
        assert!(ok.is_empty());
    }

    #[test]
    fn zero_alloc_flags_and_escapes() {
        let src = "
            fn hot(&mut self) {
                self.buf.clear();
                let v = Vec::new();
                let w: Vec<u32> = xs.iter().collect();
                // lint: alloc-ok(grows once at bind time)
                self.big = vec![0; n];
            }
        ";
        let f = FileAnalysis::new("crates/x/src/lib.rs", src);
        let mut out = Vec::new();
        check_zero_alloc(&f, "hot", &mut out);
        let rules: Vec<_> = out.iter().map(|x| x.message.clone()).collect();
        assert_eq!(out.len(), 2, "{rules:?}"); // Vec::new + .collect; vec! escaped
    }

    #[test]
    fn missing_registered_fn_is_reported() {
        let f = FileAnalysis::new("crates/x/src/lib.rs", "fn other() {}");
        let mut out = Vec::new();
        check_zero_alloc(&f, "gone", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "D2-missing");
    }

    #[test]
    fn wrapper_rule_accepts_thin_delegation_only() {
        let good = "
            pub fn route(&self) -> T { self.route_in(&mut Ctx::new()) }
            pub fn route_in(&self, ctx: &mut Ctx) -> T { long_body(); long_body(); T }
        ";
        let f = FileAnalysis::new("crates/x/src/lib.rs", good);
        let mut out = Vec::new();
        check_wrappers(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");

        let bad = "
            pub fn route(&self) -> T { completely_inline_logic(); other_stuff() }
            fn route_in(&self, ctx: &mut Ctx) -> T { T }
        ";
        let f = FileAnalysis::new("crates/x/src/lib.rs", bad);
        let mut out = Vec::new();
        check_wrappers(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "D3-wrapper");
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = FileAnalysis::new("x", "fn f() { unsafe { danger() } }");
        let mut out = Vec::new();
        check_unsafe_comments(&bad, &mut out);
        assert_eq!(out.len(), 1);

        let good = FileAnalysis::new(
            "x",
            "fn f() {\n // SAFETY: danger() has no preconditions here\n unsafe { danger() } }",
        );
        let mut out = Vec::new();
        check_unsafe_comments(&good, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn forbid_attribute_is_detected() {
        assert!(has_forbid_unsafe(&FileAnalysis::new(
            "x",
            "//! docs\n#![forbid(unsafe_code)]\nfn f() {}"
        )));
        assert!(!has_forbid_unsafe(&FileAnalysis::new("x", "fn f() {}")));
    }

    #[test]
    fn gated_forbid_attribute_is_detected() {
        assert!(has_gated_forbid_unsafe(&FileAnalysis::new(
            "x",
            "//! docs\n#![cfg_attr(not(feature = \"simd\"), forbid(unsafe_code))]\nfn f() {}"
        )));
        // Outer attribute on an item is not a crate-root gate.
        assert!(!has_gated_forbid_unsafe(&FileAnalysis::new(
            "x",
            "#[cfg_attr(not(feature = \"simd\"), forbid(unsafe_code))]\nfn f() {}"
        )));
        // A cfg_attr that gates something else does not count.
        assert!(!has_gated_forbid_unsafe(&FileAnalysis::new(
            "x",
            "#![cfg_attr(not(feature = \"simd\"), deny(missing_docs))]\nfn f() {}"
        )));
        // Plain forbid is the other sanctioned shape, not this one.
        assert!(!has_gated_forbid_unsafe(&FileAnalysis::new(
            "x",
            "#![forbid(unsafe_code)]\nfn f() {}"
        )));
    }
}
