//! The `oarsmt-lint` CLI.
//!
//! ```text
//! oarsmt-lint [--root DIR] [--config PATH] [--baseline PATH]
//!             [--json] [--write-baseline] [--deny-stale]
//! oarsmt-lint --explain RULE
//! oarsmt-lint callgraph --dot ROOT [--root DIR]
//! ```
//!
//! Exits 0 when every finding is covered by the baseline, 1 when new
//! findings exist (or, with `--deny-stale`, when the baseline holds stale
//! entries), 2 on usage/configuration errors. CI runs it from the
//! repository root with `--deny-stale --json` (`lint.toml`,
//! `lint-baseline.txt`).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use oarsmt_lint::report::{parse_baseline, render_baseline, render_human, render_json};
use oarsmt_lint::{config, render_dot, rules, run};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
    deny_stale: bool,
    explain: Option<String>,
    dot: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: oarsmt-lint [--root DIR] [--config PATH] [--baseline PATH] \
         [--json] [--write-baseline] [--deny-stale]\n\
         \x20      oarsmt-lint --explain RULE\n\
         \x20      oarsmt-lint callgraph --dot ROOT [--root DIR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        root: PathBuf::from("."),
        config: None,
        baseline: None,
        json: false,
        write_baseline: false,
        deny_stale: false,
        explain: None,
        dot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => out.root = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--config" => out.config = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--baseline" => {
                out.baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--json" => out.json = true,
            "--write-baseline" => out.write_baseline = true,
            "--deny-stale" => out.deny_stale = true,
            "--explain" => out.explain = Some(it.next().unwrap_or_else(|| usage())),
            "callgraph" => {} // subcommand marker; expects --dot next
            "--dot" => out.dot = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some(rule) = &args.explain {
        return match rules::explain(rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "oarsmt-lint: unknown rule `{rule}` — known rules: D1-hash-iter, \
                     D1-timing, D1-clock-reach, D2-alloc, D2-missing, D3-wrapper, \
                     D4-safety, D4-forbid, D4-gate, D5-panic, D5-index, \
                     callgraph-unresolved, marker"
                );
                ExitCode::from(2)
            }
        };
    }

    if let Some(fn_name) = &args.dot {
        return match render_dot(&args.root, fn_name) {
            Ok(Ok(dot)) => {
                print!("{dot}");
                ExitCode::SUCCESS
            }
            Ok(Err(msg)) => {
                eprintln!("oarsmt-lint: {msg}");
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("oarsmt-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let config_path = args.config.unwrap_or_else(|| args.root.join("lint.toml"));
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| args.root.join("lint-baseline.txt"));

    let cfg_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oarsmt-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match config::parse(&cfg_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("oarsmt-lint: {e}");
            return ExitCode::from(2);
        }
    };
    // A missing baseline file means an empty baseline, not an error.
    let baseline: BTreeSet<String> = std::fs::read_to_string(&baseline_path)
        .map(|s| parse_baseline(&s))
        .unwrap_or_default();

    let report = match run(&args.root, &cfg, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("oarsmt-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, render_baseline(&report)) {
            eprintln!("oarsmt-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "oarsmt-lint: wrote {} finding key(s) to {}",
            report.findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    let mut code = report.exit_code();
    if args.deny_stale && !report.stale_baseline.is_empty() {
        // A fixed finding whose key lingers in lint-baseline.txt is rot:
        // CI fails until the entry is removed.
        for stale in &report.stale_baseline {
            eprintln!("oarsmt-lint: stale baseline entry `{stale}` — remove it");
        }
        code = 1;
    }
    ExitCode::from(u8::try_from(code).unwrap_or(1))
}
