//! The `oarsmt-lint` CLI.
//!
//! ```text
//! oarsmt-lint [--root DIR] [--config PATH] [--baseline PATH]
//!             [--json] [--write-baseline]
//! ```
//!
//! Exits 0 when every finding is covered by the baseline, 1 when new
//! findings exist, 2 on usage/configuration errors. CI runs it from the
//! repository root with all defaults (`lint.toml`, `lint-baseline.txt`).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use oarsmt_lint::report::{parse_baseline, render_baseline, render_human, render_json};
use oarsmt_lint::{config, run};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    write_baseline: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: oarsmt-lint [--root DIR] [--config PATH] [--baseline PATH] \
         [--json] [--write-baseline]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut out = Args {
        root: PathBuf::from("."),
        config: None,
        baseline: None,
        json: false,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => out.root = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--config" => out.config = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--baseline" => {
                out.baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())));
            }
            "--json" => out.json = true,
            "--write-baseline" => out.write_baseline = true,
            _ => usage(),
        }
    }
    out
}

fn main() -> ExitCode {
    let args = parse_args();
    let config_path = args.config.unwrap_or_else(|| args.root.join("lint.toml"));
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| args.root.join("lint-baseline.txt"));

    let cfg_src = match std::fs::read_to_string(&config_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oarsmt-lint: cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match config::parse(&cfg_src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("oarsmt-lint: {e}");
            return ExitCode::from(2);
        }
    };
    // A missing baseline file means an empty baseline, not an error.
    let baseline: BTreeSet<String> = std::fs::read_to_string(&baseline_path)
        .map(|s| parse_baseline(&s))
        .unwrap_or_default();

    let report = match run(&args.root, &cfg, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("oarsmt-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, render_baseline(&report)) {
            eprintln!("oarsmt-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "oarsmt-lint: wrote {} finding key(s) to {}",
            report.findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}
