//! `lint.toml` — the checked-in lint configuration.
//!
//! The build environment has no crates.io access, so instead of a TOML
//! dependency this module hand-parses the small TOML subset the config
//! actually uses: `[section]` tables, `[[section]]` arrays-of-tables,
//! string values and (possibly multi-line) string arrays, with `#`
//! comments.

use std::fmt;

/// One `[[zero_alloc]]` registry entry: functions in `path` that must not
/// allocate outside `// lint: alloc-ok(…)` escapes.
#[derive(Debug, Clone, Default)]
pub struct ZeroAllocEntry {
    /// Repo-relative source path (`crates/router/src/oarmst.rs`).
    pub path: String,
    /// Function names inside that file.
    pub functions: Vec<String>,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crate directories whose `src/` trees the determinism rules (D1)
    /// apply to.
    pub determinism_crates: Vec<String>,
    /// Directories whose `src/` trees the wrapper-conformance rule (D3)
    /// applies to.
    pub wrapper_paths: Vec<String>,
    /// The zero-allocation root registry (D2): the transitive call closure
    /// of every registered function must stay allocation-free.
    pub zero_alloc: Vec<ZeroAllocEntry>,
    /// Additional panic-freedom roots (D5/clock-reach only, no D2) — hot
    /// entry points that allocate by contract, e.g. an MCTS `search_in`
    /// whose outcome owns its label vectors.
    pub panic_free: Vec<ZeroAllocEntry>,
    /// Whether D5 also flags `expr[idx]` indexing in the hot closure
    /// (`[panic_freedom] indexing = true`). Off by default: bounds-checked
    /// indexing is the dominant idiom in the numeric kernels, and the
    /// explicit-panic constructs are the enforced phase of the policy.
    pub panic_indexing: bool,
}

/// A config-file syntax error with its 1-based line.
#[derive(Debug, Clone)]
pub struct ConfigError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strips a `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a TOML string scalar (`"…"`, no escapes beyond `\"`).
fn parse_string(raw: &str, line: usize) -> Result<String, ConfigError> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected a quoted string, got `{raw}`")))?;
    Ok(inner.replace("\\\"", "\""))
}

/// Parses a TOML string array (`["a", "b"]`, already joined to one line).
fn parse_string_array(raw: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let raw = raw.trim();
    let inner = raw
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected an array, got `{raw}`")))?;
    let mut out = Vec::new();
    for piece in inner.split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(piece, line)?);
    }
    Ok(out)
}

/// Parses the `lint.toml` subset described in the module docs.
///
/// # Errors
///
/// Returns a [`ConfigError`] on malformed syntax or unknown sections/keys
/// (unknown names are errors, not warnings — a typo must not silently
/// drop a rule's scope).
pub fn parse(src: &str) -> Result<Config, ConfigError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Determinism,
        Wrappers,
        ZeroAlloc,
        PanicFree,
        PanicFreedom,
    }
    let mut cfg = Config::default();
    let mut section = Section::None;

    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let mut text = strip_comment(lines[i]).trim().to_string();
        if text.is_empty() {
            i += 1;
            continue;
        }
        if text.starts_with("[[") {
            let name = text
                .strip_prefix("[[")
                .and_then(|t| t.strip_suffix("]]"))
                .ok_or_else(|| err(lineno, "malformed [[section]] header"))?;
            match name.trim() {
                "zero_alloc" => {
                    cfg.zero_alloc.push(ZeroAllocEntry::default());
                    section = Section::ZeroAlloc;
                }
                "panic_free" => {
                    cfg.panic_free.push(ZeroAllocEntry::default());
                    section = Section::PanicFree;
                }
                other => return Err(err(lineno, format!("unknown section [[{other}]]"))),
            }
            i += 1;
            continue;
        }
        if text.starts_with('[') {
            let name = text
                .strip_prefix('[')
                .and_then(|t| t.strip_suffix(']'))
                .ok_or_else(|| err(lineno, "malformed [section] header"))?;
            section = match name.trim() {
                "determinism" => Section::Determinism,
                "wrappers" => Section::Wrappers,
                "panic_freedom" => Section::PanicFreedom,
                other => return Err(err(lineno, format!("unknown section [{other}]"))),
            };
            i += 1;
            continue;
        }
        let Some(eq) = text.find('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{text}`")));
        };
        let key = text[..eq].trim().to_string();
        let mut value = text[eq + 1..].trim().to_string();
        // Multi-line arrays: keep appending lines until brackets balance.
        if value.starts_with('[') {
            while value.matches('[').count() > value.matches(']').count() {
                i += 1;
                if i >= lines.len() {
                    return Err(err(lineno, "unterminated array"));
                }
                value.push(' ');
                value.push_str(strip_comment(lines[i]).trim());
            }
        }
        text.clear();
        match (&section, key.as_str()) {
            (Section::Determinism, "crates") => {
                cfg.determinism_crates = parse_string_array(&value, lineno)?;
            }
            (Section::Wrappers, "paths") => {
                cfg.wrapper_paths = parse_string_array(&value, lineno)?;
            }
            (Section::ZeroAlloc, "path") => {
                let entry = cfg
                    .zero_alloc
                    .last_mut()
                    .ok_or_else(|| err(lineno, "key outside [[zero_alloc]]"))?;
                entry.path = parse_string(&value, lineno)?;
            }
            (Section::ZeroAlloc, "functions") => {
                let entry = cfg
                    .zero_alloc
                    .last_mut()
                    .ok_or_else(|| err(lineno, "key outside [[zero_alloc]]"))?;
                entry.functions = parse_string_array(&value, lineno)?;
            }
            (Section::PanicFree, "path") => {
                let entry = cfg
                    .panic_free
                    .last_mut()
                    .ok_or_else(|| err(lineno, "key outside [[panic_free]]"))?;
                entry.path = parse_string(&value, lineno)?;
            }
            (Section::PanicFree, "functions") => {
                let entry = cfg
                    .panic_free
                    .last_mut()
                    .ok_or_else(|| err(lineno, "key outside [[panic_free]]"))?;
                entry.functions = parse_string_array(&value, lineno)?;
            }
            (Section::PanicFreedom, "indexing") => {
                cfg.panic_indexing = match value.trim() {
                    "true" => true,
                    "false" => false,
                    other => {
                        return Err(err(lineno, format!("expected true/false, got `{other}`")))
                    }
                };
            }
            _ => return Err(err(lineno, format!("unknown key `{key}` in this section"))),
        }
        i += 1;
    }
    for (name, entries) in [
        ("zero_alloc", &cfg.zero_alloc),
        ("panic_free", &cfg.panic_free),
    ] {
        for (n, entry) in entries.iter().enumerate() {
            if entry.path.is_empty() {
                return Err(err(0, format!("[[{name}]] entry {n} is missing `path`")));
            }
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_shape() {
        let src = r#"
            # comment
            [determinism]
            crates = ["crates/geom", "crates/graph"] # trailing comment

            [wrappers]
            paths = [
                "crates/router",
                "src",
            ]

            [[zero_alloc]]
            path = "crates/router/src/oarmst.rs"
            functions = ["route_in", "build_once_in"]

            [[zero_alloc]]
            path = "crates/nn/src/conv3d.rs"
            functions = ["forward_in"]
        "#;
        let cfg = parse(src).unwrap();
        assert_eq!(cfg.determinism_crates, vec!["crates/geom", "crates/graph"]);
        assert_eq!(cfg.wrapper_paths, vec!["crates/router", "src"]);
        assert_eq!(cfg.zero_alloc.len(), 2);
        assert_eq!(cfg.zero_alloc[0].functions.len(), 2);
        assert_eq!(cfg.zero_alloc[1].path, "crates/nn/src/conv3d.rs");
    }

    #[test]
    fn unknown_keys_and_sections_are_errors() {
        assert!(parse("[nope]\n").is_err());
        assert!(parse("[determinism]\nbogus = \"x\"\n").is_err());
        assert!(parse("[[zero_alloc]]\nfunctions = [\"f\"]\n").is_err());
        assert!(parse("[[panic_free]]\nfunctions = [\"f\"]\n").is_err());
        assert!(parse("[panic_freedom]\nindexing = maybe\n").is_err());
    }

    #[test]
    fn panic_freedom_sections_parse() {
        let src = r#"
            [panic_freedom]
            indexing = true

            [[panic_free]]
            path = "crates/mcts/src/search.rs"
            functions = ["search_in"]
        "#;
        let cfg = parse(src).unwrap();
        assert!(cfg.panic_indexing);
        assert_eq!(cfg.panic_free.len(), 1);
        assert_eq!(cfg.panic_free[0].functions, vec!["search_in"]);
        // Default is off.
        assert!(!parse("").unwrap().panic_indexing);
    }
}
