//! A hand-rolled token-level Rust lexer.
//!
//! The lint rules need far less than a full parse: identifier/punctuation
//! streams with line numbers, plus the comments (which carry the
//! `// lint: …-ok(reason)` escape markers and `// SAFETY:` justifications).
//! The lexer therefore understands exactly the lexical structure that can
//! hide token look-alikes — strings (including raw and byte strings), char
//! literals vs lifetimes, nested block comments — and flattens everything
//! else to four token kinds.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `for`, `unsafe`, `HashMap`, …).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// String/char/numeric literal (content is not interpreted).
    Literal,
    /// A lifetime such as `'a` (so `'a>` never reads as a char literal).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Source text (for [`TokenKind::Literal`], a placeholder is enough
    /// for the rules, but the raw text is kept for messages).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// The kind of a `// lint: …-ok(reason)` escape marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// `ordered-ok`: hash-order iteration whose effect is order-insensitive.
    OrderedOk,
    /// `timing-ok`: wall-clock reads that never feed results.
    TimingOk,
    /// `alloc-ok`: an allocation a registered zero-alloc function may keep.
    AllocOk,
    /// `panic-ok`: a panic construct the hot closure may keep (D5), with
    /// the justification recorded in the reason.
    PanicOk,
    /// `dyncall-ok`: an opaque callable (trait object, `impl Fn`, fn
    /// pointer) the call-graph resolver is allowed to stay blind to.
    DynOk,
}

impl MarkerKind {
    /// The marker's spelling inside the comment.
    pub fn as_str(self) -> &'static str {
        match self {
            MarkerKind::OrderedOk => "ordered-ok",
            MarkerKind::TimingOk => "timing-ok",
            MarkerKind::AllocOk => "alloc-ok",
            MarkerKind::PanicOk => "panic-ok",
            MarkerKind::DynOk => "dyncall-ok",
        }
    }
}

/// One parsed `// lint: kind-ok(reason)` escape marker.
#[derive(Debug, Clone)]
pub struct Marker {
    /// Which rule family the marker silences.
    pub kind: MarkerKind,
    /// The justification inside the parentheses.
    pub reason: String,
    /// 1-based line the marker comment appears on.
    pub line: u32,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All `// lint: …-ok(…)` markers.
    pub markers: Vec<Marker>,
    /// 1-based lines of comments containing `SAFETY:`.
    pub safety_lines: Vec<u32>,
    /// Markers whose comment could not be parsed (`// lint:` prefix with
    /// an unknown kind or missing parentheses) — reported as findings so
    /// typos never silently disable a rule.
    pub bad_markers: Vec<(u32, String)>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses the text after `//` for lint markers and SAFETY comments.
fn process_comment(out: &mut LexedFile, text: &str, line: u32) {
    if text.contains("SAFETY:") {
        out.safety_lines.push(line);
    }
    let Some(rest) = text
        .trim_start_matches(['/', '!'])
        .trim_start()
        .strip_prefix("lint:")
    else {
        return;
    };
    let rest = rest.trim();
    let kinds = [
        MarkerKind::OrderedOk,
        MarkerKind::TimingOk,
        MarkerKind::AllocOk,
        MarkerKind::PanicOk,
        MarkerKind::DynOk,
    ];
    for kind in kinds {
        if let Some(tail) = rest.strip_prefix(kind.as_str()) {
            let tail = tail.trim();
            if let Some(reason) = tail.strip_prefix('(').and_then(|t| t.strip_suffix(')')) {
                if !reason.trim().is_empty() {
                    out.markers.push(Marker {
                        kind,
                        reason: reason.trim().to_string(),
                        line,
                    });
                    return;
                }
            }
            out.bad_markers
                .push((line, format!("malformed `lint: {}` marker", kind.as_str())));
            return;
        }
    }
    out.bad_markers
        .push((line, format!("unknown lint marker `{rest}`")));
}

/// Lexes `src` into tokens, markers and SAFETY-comment lines.
///
/// The lexer never fails: any character it does not understand becomes a
/// one-character [`TokenKind::Punct`] token, which at worst makes a rule
/// conservative.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;

    let push = |out: &mut LexedFile, kind: TokenKind, text: String, line: u32| {
        out.tokens.push(Token { kind, text, line });
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (incl. /// and //! doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            process_comment(&mut out, &text, line);
            i = j;
            continue;
        }
        // Block comment; Rust block comments nest.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let comment_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let start = j;
            while j < chars.len() && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 1;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 1;
                }
                j += 1;
            }
            let text: String = chars[start..j.saturating_sub(2).max(start)]
                .iter()
                .collect();
            // Block comments carry SAFETY text too, but never lint markers
            // (markers are line-comment-only by convention).
            if text.contains("SAFETY:") {
                out.safety_lines.push(comment_line);
            }
            i = j;
            continue;
        }
        // String literal (plain, byte, raw; prefix handled at ident path).
        if c == '"' {
            let tok_line = line;
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            push(&mut out, TokenKind::Literal, "\"…\"".to_string(), tok_line);
            i = j;
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            if let Some(n) = next {
                if is_ident_start(n) && after != Some('\'') {
                    // Lifetime: 'a, 'static, …
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    let text: String = chars[i..j].iter().collect();
                    push(&mut out, TokenKind::Lifetime, text, line);
                    i = j;
                    continue;
                }
            }
            // Char literal: 'x', '\n', '\u{…}'.
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            push(&mut out, TokenKind::Literal, "'…'".to_string(), line);
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            while j < chars.len() {
                let d = chars[j];
                let exp_sign = (d == '+' || d == '-')
                    && j > i
                    && matches!(chars[j - 1], 'e' | 'E')
                    && chars[i..j].iter().take(2).collect::<String>() != "0x";
                if d.is_alphanumeric() || d == '_' || d == '.' || exp_sign {
                    j += 1;
                } else {
                    break;
                }
            }
            // `1..n` range: don't swallow the second dot.
            let mut text: String = chars[i..j].iter().collect();
            if let Some(pos) = text.find("..") {
                text.truncate(pos);
                j = i + text.chars().count();
            }
            push(&mut out, TokenKind::Literal, text, line);
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            // Raw/byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
            if matches!(text.as_str(), "r" | "b" | "br")
                && matches!(chars.get(j), Some('"') | Some('#'))
            {
                let tok_line = line;
                let mut hashes = 0usize;
                let mut k = j;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if chars.get(k) == Some(&'"') {
                    k += 1;
                    let raw = text.starts_with('r') || text == "br";
                    loop {
                        match chars.get(k) {
                            None => break,
                            Some('\n') => {
                                line += 1;
                                k += 1;
                            }
                            Some('\\') if !raw => k += 2,
                            Some('"') => {
                                k += 1;
                                let mut closing = 0usize;
                                while closing < hashes && chars.get(k) == Some(&'#') {
                                    closing += 1;
                                    k += 1;
                                }
                                if closing == hashes {
                                    break;
                                }
                            }
                            Some(_) => k += 1,
                        }
                    }
                    push(&mut out, TokenKind::Literal, "\"…\"".to_string(), tok_line);
                    i = k;
                    continue;
                }
                // `b'x'` byte char.
            }
            if text == "b" && chars.get(j) == Some(&'\'') {
                let mut k = j + 1;
                while k < chars.len() {
                    match chars[k] {
                        '\\' => k += 2,
                        '\'' => {
                            k += 1;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                push(&mut out, TokenKind::Literal, "b'…'".to_string(), line);
                i = k;
                continue;
            }
            push(&mut out, TokenKind::Ident, text, line);
            i = j;
            continue;
        }
        push(&mut out, TokenKind::Punct, c.to_string(), line);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // for x in map.iter()
            /* unsafe { } */
            let s = "for x in map"; let r = r#"unsafe"#;
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"map".to_string()));
        assert_eq!(
            ids,
            vec!["let", "s", "let", "r", "fn", "real"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'…'"));
    }

    #[test]
    fn markers_and_safety_comments_are_collected() {
        let src = "
            // lint: ordered-ok(drained and sorted before use)
            for v in set.iter() {}
            // SAFETY: the pointer outlives the call
            // lint: bogus-ok(nope)
        ";
        let lexed = lex(src);
        assert_eq!(lexed.markers.len(), 1);
        assert_eq!(lexed.markers[0].kind, MarkerKind::OrderedOk);
        assert_eq!(lexed.markers[0].line, 2);
        assert_eq!(lexed.safety_lines, vec![4]);
        assert_eq!(lexed.bad_markers.len(), 1);
    }

    #[test]
    fn nested_block_comments_terminate() {
        let lexed = lex("/* a /* b */ c */ fn f() {}");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("c")));
    }

    #[test]
    fn numeric_range_does_not_swallow_dots() {
        let lexed = lex("for i in 0..10 {}");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"10"));
        assert_eq!(texts.iter().filter(|&&t| t == ".").count(), 2);
    }
}
