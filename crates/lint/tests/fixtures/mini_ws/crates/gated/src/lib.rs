//! Clean counterpart of D4-gate: this crate confines its `unsafe` to the
//! opt-in `wide` feature and gates the default build back to
//! unsafe-free, so the package produces no findings.

#![cfg_attr(not(feature = "wide"), forbid(unsafe_code))]

/// Safe default-build implementation.
pub fn first(xs: &[u32]) -> u32 {
    xs[0]
}

/// CLEAN: feature-gated `unsafe` with a per-site justification, as
/// D4-safety requires.
#[cfg(feature = "wide")]
pub fn first_unchecked(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *xs.as_ptr() }
}
