//! D5 / call-graph fixtures: panic-capable constructs on registered
//! `[[panic_free]]` roots, an opaque `impl Fn` call that must degrade to
//! an explicit `callgraph-unresolved` note, a recursion pair proving
//! propagation terminates, and escaped counterparts that must stay
//! silent.

/// VIOLATION (D5-panic ×2): `.unwrap()` and `panic!` on a panic-free
/// root.
pub fn lookup_hot(xs: &[u32]) -> u32 {
    let first = *xs.first().unwrap(); // VIOLATION (occurrence 0)
    if first == u32::MAX {
        panic!("saturated lookup"); // VIOLATION (occurrence 1)
    }
    first
}

/// CLEAN: the escaped counterpart — same construct, audited reason.
pub fn lookup_guarded(xs: &[u32]) -> u32 {
    // lint: panic-ok(callers guarantee non-empty input; checked at bind)
    let first = *xs.first().unwrap();
    first
}

/// CLEAN by default; VIOLATION (D5-index) only when the fixture config
/// opts in with `[panic_freedom] indexing = true`.
pub fn probe(xs: &[u32], i: usize) -> u32 {
    if i < xs.len() {
        xs[i]
    } else {
        0
    }
}

/// VIOLATION (callgraph-unresolved): the resolver cannot see through an
/// `impl Fn` parameter, so the transitive rules are blind past it.
pub fn dispatch_hot(score: impl Fn(u32) -> u32, x: u32) -> u32 {
    score(x)
}

/// CLEAN: the audited counterpart.
pub fn dispatch_audited(score: impl Fn(u32) -> u32, x: u32) -> u32 {
    // lint: dyncall-ok(selector closures are pure arithmetic by contract)
    score(x)
}

/// CLEAN: a registered root heading a mutual-recursion cycle —
/// propagation must terminate and draw no findings.
pub fn descend(n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        bounce(n - 1)
    }
}

/// The other half of the cycle.
fn bounce(n: u32) -> u32 {
    descend(n)
}
