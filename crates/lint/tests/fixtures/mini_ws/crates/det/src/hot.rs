//! D2 fixtures: allocating calls inside registered zero-alloc functions
//! (`hot_in` is registered in the fixture `lint.toml`; `cold` is not), a
//! registered-but-missing function (`phantom_in`), and escapes.

/// Registered zero-alloc fn with three violations and one escape.
pub fn hot_in(out: &mut Vec<u32>, xs: &[u32]) -> usize {
    out.clear();
    let tmp = Vec::new(); // VIOLATION (D2-alloc occurrence 0)
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect(); // VIOLATION (occurrence 1)
    let owned = doubled.clone(); // VIOLATION (occurrence 2)
    // lint: alloc-ok(grows once at bind time, amortized across queries)
    let big = vec![0u32; xs.len()];
    out.extend_from_slice(&owned);
    tmp.len() + big.len()
}

/// NOT registered: the same allocations draw no findings here.
pub fn cold(xs: &[u32]) -> Vec<u32> {
    let mut v = Vec::new();
    v.extend(xs.iter().map(|x| x * 2));
    v
}

/// Registered root whose own body is clean — the allocation hides one
/// call deep in `stage_buffer`, which the per-fn engine provably misses
/// (see the paired `transitive_d2_catches_what_per_fn_missed` test).
pub fn deep_in(out: &mut Vec<u32>, xs: &[u32]) -> usize {
    out.clear();
    stage_buffer(out, xs)
}

/// Unregistered helper: VIOLATION (transitive D2-alloc, attributed with
/// the chain `deep_in → stage_buffer`).
fn stage_buffer(out: &mut Vec<u32>, xs: &[u32]) -> usize {
    let staged: Vec<u32> = xs.to_vec(); // VIOLATION (one call deep)
    out.extend_from_slice(&staged);
    staged.len()
}
