//! D4 fixtures: `unsafe` with and without a `// SAFETY:` justification.
//!
//! This file makes the fixture crate "unsafe-using", so the crate root is
//! exercised by D4-safety, not skipped — the companion `clean` package
//! exercises the unsafe-free D4-forbid path.

/// VIOLATION (D4-safety): no SAFETY comment anywhere nearby.
pub fn read_first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}

/// CLEAN: justified on the preceding line.
pub fn read_first_justified(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *xs.as_ptr() }
}
