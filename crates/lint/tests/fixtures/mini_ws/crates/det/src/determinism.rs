//! D1 fixtures: one hash iteration violation, one timing violation, plus
//! escaped and inherently-clean counterparts that must stay silent.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Instant;

/// VIOLATION (D1-hash-iter occurrence 0): `for` over a `HashMap`.
pub fn sum_values(m: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_, v) in m.iter() {
        total += v;
    }
    total
}

/// VIOLATION (D1-hash-iter occurrence 1): `.drain()` on a local `HashSet`.
pub fn drain_all(mut s: HashSet<u32>) -> usize {
    let mut n = 0;
    s.drain().for_each(|_| n += 1);
    n
}

/// VIOLATION (D1-timing): wall-clock read without a marker.
pub fn stamp() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

/// CLEAN: same iteration, escaped with a marker (order-insensitive sum).
pub fn sum_values_marked(m: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    // lint: ordered-ok(summation is order-insensitive)
    for (_, v) in m.iter() {
        total += v;
    }
    total
}

/// CLEAN: a multi-line chain below the marker stays covered through the
/// end of the statement.
pub fn collect_sorted(m: &HashMap<u32, u32>) -> Vec<u32> {
    // lint: ordered-ok(drained into a Vec and sorted before return)
    let mut keys: Vec<u32> = m
        .keys()
        .copied()
        .collect();
    keys.sort_unstable();
    keys
}

/// CLEAN: `BTreeMap` iterates in key order — no finding.
pub fn ordered_sum(b: &BTreeMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_, v) in b.iter() {
        total += v;
    }
    total
}

/// CLEAN (regression for the PR 4 caveat): reuses the name `m` — a
/// `HashMap` parameter in `sum_values` above — for a `BTreeMap`.
/// Receiver types resolve at block/fn scope, so the hash-typed `m`
/// elsewhere in this file must not contaminate this function.
pub fn ordered_reuse(m: &BTreeMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_, v) in m.iter() {
        total += v;
    }
    total
}

/// CLEAN: timing escaped with a marker.
pub fn stamp_marked() -> f64 {
    // lint: timing-ok(reported metadata; never feeds results)
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CLEAN: test code is out of D1 scope even when it iterates hashes.
    #[test]
    fn hash_iteration_in_tests_is_fine() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_, v) in m.iter() {
            drop(v);
        }
    }
}
