//! Tier-boundary fixtures: a deterministic counter helper that smuggles a
//! wall-clock read past the Tier A contract (violation), plus the marked
//! Tier-B recorder that is allowed to touch the clock. Both are registered
//! zero-alloc in the fixture `lint.toml` and must stay silent under D2.

use std::time::Instant;

/// Miniature Tier-A/Tier-B telemetry block.
pub struct Counters {
    pub bumps: u64,
    pub span_ns: u64,
}

/// VIOLATION (D1-timing): a Tier-A counter bump must never read the
/// clock — the "count" silently becomes environment-dependent.
pub fn bump_smuggled(c: &mut Counters) -> u64 {
    let t0 = Instant::now();
    c.bumps += 1;
    c.span_ns += t0.elapsed().as_nanos() as u64;
    c.bumps
}

/// CLEAN: the Tier-B span recorder reads the clock behind an audited
/// marker — recorded durations never feed back into results.
pub fn record_span(c: &mut Counters) -> u64 {
    c.bumps += 1;
    // lint: timing-ok(Tier B span clock; feature-gated, never feeds results)
    let t0 = Instant::now();
    c.span_ns = c.span_ns.saturating_add(t0.elapsed().as_nanos() as u64);
    c.bumps
}
