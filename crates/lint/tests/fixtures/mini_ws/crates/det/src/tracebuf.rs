//! Flight-recorder fixtures: a trace-record path that allocates per event
//! (violation — recording rides inside the warm routing loop), and the
//! bounded ring-buffer counterpart that overwrites preallocated slots
//! (clean). Both are registered zero-alloc in the fixture `lint.toml`.

/// Miniature trace event.
#[derive(Clone, Copy, Default)]
pub struct Event {
    pub span: u32,
    pub ts: u64,
}

/// Miniature flight recorder.
#[derive(Default)]
pub struct Recorder {
    pub events: Vec<Event>,
    pub labels: Vec<String>,
    pub next: usize,
    pub dropped: u64,
}

/// VIOLATION (D2-alloc): formats a label per event — the warm record path
/// allocates a fresh `String` on every call.
pub fn record_labeled(r: &mut Recorder, span: u32, ts: u64) {
    r.labels.push(format!("span{span}"));
    r.events.push(Event { span, ts });
}

/// CLEAN: the ring overwrites its preallocated slots (capacity is fixed
/// when the recorder is enabled); a full ring drops the event instead of
/// growing.
pub fn record_ring(r: &mut Recorder, span: u32, ts: u64) {
    let cap = r.events.len();
    if cap == 0 {
        r.dropped += 1;
        return;
    }
    if let Some(slot) = r.events.get_mut(r.next) {
        *slot = Event { span, ts };
    }
    r.next = (r.next + 1) % cap;
}
