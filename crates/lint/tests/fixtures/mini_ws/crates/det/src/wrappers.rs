//! D3 fixtures: a fat `pub fn` shadowing its `_in` sibling (violation),
//! a thin delegating wrapper (clean), and a pub fn with no sibling.

/// Workspace type stand-in.
pub struct Ctx {
    buf: Vec<u32>,
}

impl Ctx {
    /// VIOLATION (D3-wrapper): re-implements the logic instead of
    /// delegating to `route_in`.
    pub fn route(&mut self, xs: &[u32]) -> u32 {
        let mut total = 0;
        for &x in xs {
            if x % 2 == 0 {
                total += x;
            } else {
                total += 2 * x;
            }
        }
        self.buf.push(total);
        total
    }

    /// The workspace variant holding the real logic.
    pub fn route_in(&mut self, xs: &[u32], scratch: &mut Vec<u32>) -> u32 {
        scratch.clear();
        scratch.extend_from_slice(xs);
        scratch.iter().sum()
    }

    /// CLEAN: thin wrapper delegating to its `_into` sibling.
    pub fn fsp(&mut self, xs: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        self.fsp_into(xs, &mut out);
        out
    }

    /// The `_into` variant holding the real logic.
    pub fn fsp_into(&mut self, xs: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(xs);
        out.reverse();
    }

    /// CLEAN: no `_in`/`_into` sibling — arbitrary body allowed.
    pub fn standalone(&self, xs: &[u32]) -> u32 {
        let mut total = 0;
        for &x in xs {
            total = total.max(x);
        }
        total
    }
}
