//! Fixture crate root. This crate *uses* `unsafe` (see `unsafety`), so
//! D4-forbid demands nothing here — the unsafe-free `clean` package next
//! door is the one that must carry `#![forbid(unsafe_code)]` (and
//! deliberately does not).

pub mod determinism;
pub mod hot;
pub mod telemetry;
pub mod unsafety;
pub mod wrappers;
