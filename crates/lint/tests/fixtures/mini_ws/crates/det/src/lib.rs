//! Fixture crate root. This crate *uses* `unsafe` (see `unsafety`), so
//! D4-gate demands a feature-gated forbid here —
//! `#![cfg_attr(not(feature = "…"), forbid(unsafe_code))]` — and this
//! root deliberately omits it (the `gated` package next door is the
//! clean counterpart). The unsafe-free `clean` package is likewise the
//! deliberate D4-forbid violation.

pub mod determinism;
pub mod hot;
pub mod panics;
pub mod telemetry;
pub mod tracebuf;
pub mod unsafety;
pub mod wrappers;
