//! Binary root of the unsafe-free fixture package: carries the attribute,
//! so only the package's `lib.rs` draws the D4-forbid finding.

#![forbid(unsafe_code)]

fn main() {}
