//! Unsafe-free fixture package deliberately missing
//! `#![forbid(unsafe_code)]` — exactly one D4-forbid finding, anchored
//! here at the crate root.

/// Nothing interesting; the finding is about the missing crate attribute.
pub fn noop() {}
