//! End-to-end lint runs over the fixture workspace in
//! `tests/fixtures/mini_ws` (one deliberate violation per rule family plus
//! clean counterparts), and over the real repository (which must be clean
//! against the committed `lint.toml`/`lint-baseline.txt`).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use oarsmt_lint::report::{parse_baseline, render_json};
use oarsmt_lint::{config, render_dot, rules, run};

fn mini_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini_ws")
}

fn mini_cfg() -> config::Config {
    let src = std::fs::read_to_string(mini_root().join("lint.toml")).unwrap();
    config::parse(&src).unwrap()
}

/// The exact baseline keys the fixture workspace must produce — one entry
/// per deliberate violation; every clean counterpart must stay silent.
/// Order follows the report sort: (path, line, rule, ident), with
/// file-level findings (D2-missing, D4-forbid) anchored at line 1.
const EXPECTED_KEYS: [&str; 18] = [
    "D4-forbid|crates/clean/src/lib.rs|clean|0",
    "D1-hash-iter|crates/det/src/determinism.rs|m|0",
    "D1-hash-iter|crates/det/src/determinism.rs|s|0",
    "D1-timing|crates/det/src/determinism.rs|Instant|0",
    "D2-missing|crates/det/src/hot.rs|phantom_in|0",
    "D2-alloc|crates/det/src/hot.rs|hot_in|0",
    "D2-alloc|crates/det/src/hot.rs|hot_in|1",
    "D2-alloc|crates/det/src/hot.rs|hot_in|2",
    "D2-alloc|crates/det/src/hot.rs|stage_buffer|0",
    "D4-gate|crates/det/src/lib.rs|det|0",
    "D5-panic|crates/det/src/panics.rs|lookup_hot|0",
    "D5-panic|crates/det/src/panics.rs|lookup_hot|1",
    "callgraph-unresolved|crates/det/src/panics.rs|dispatch_hot|0",
    "D1-clock-reach|crates/det/src/telemetry.rs|bump_smuggled|0",
    "D1-timing|crates/det/src/telemetry.rs|Instant|0",
    "D2-alloc|crates/det/src/tracebuf.rs|record_labeled|0",
    "D4-safety|crates/det/src/unsafety.rs|unsafe|0",
    "D3-wrapper|crates/det/src/wrappers.rs|route|0",
];

#[test]
fn fixture_workspace_produces_exactly_the_expected_findings() {
    let report = run(&mini_root(), &mini_cfg(), &BTreeSet::new()).unwrap();
    let keys: Vec<&str> = report.findings.iter().map(|k| k.key.as_str()).collect();
    assert_eq!(keys, EXPECTED_KEYS, "finding set drifted");
    assert_eq!(report.new_count(), EXPECTED_KEYS.len());
    assert_eq!(report.exit_code(), 1);
}

/// The acceptance pair for the interprocedural engine: the per-fn D2 pass
/// sees nothing in `deep_in` (its own body is clean), while the
/// call-graph engine attributes the allocation one call deep with the
/// `root → … → offender` chain.
#[test]
fn transitive_d2_catches_what_per_fn_missed() {
    let src = std::fs::read_to_string(mini_root().join("crates/det/src/hot.rs")).unwrap();
    let f = rules::FileAnalysis::new("crates/det/src/hot.rs", &src);
    let mut old = Vec::new();
    rules::check_zero_alloc(&f, "deep_in", &mut old);
    assert!(old.is_empty(), "per-fn engine must see nothing: {old:#?}");

    let report = run(&mini_root(), &mini_cfg(), &BTreeSet::new()).unwrap();
    let hit = report
        .findings
        .iter()
        .find(|k| k.key == "D2-alloc|crates/det/src/hot.rs|stage_buffer|0")
        .expect("transitive engine must find the staged allocation");
    assert_eq!(
        hit.finding.chain.as_deref(),
        Some("deep_in → stage_buffer"),
        "chain attribution"
    );
    // Findings directly inside a root carry no chain.
    let direct = report
        .findings
        .iter()
        .find(|k| k.key == "D2-alloc|crates/det/src/hot.rs|hot_in|0")
        .unwrap();
    assert!(direct.finding.chain.is_none());
}

/// D5-index is opt-in: the default config draws no indexing findings,
/// `[panic_freedom] indexing = true` flags the postfix index in `probe`.
#[test]
fn indexing_policy_is_config_gated() {
    let report = run(&mini_root(), &mini_cfg(), &BTreeSet::new()).unwrap();
    assert!(
        !report.findings.iter().any(|k| k.finding.rule == "D5-index"),
        "indexing findings with the policy off"
    );

    let mut src = std::fs::read_to_string(mini_root().join("lint.toml")).unwrap();
    src.push_str("\n[panic_freedom]\nindexing = true\n");
    let cfg = config::parse(&src).unwrap();
    let report = run(&mini_root(), &cfg, &BTreeSet::new()).unwrap();
    assert!(
        report
            .findings
            .iter()
            .any(|k| k.key == "D5-index|crates/det/src/panics.rs|probe|0"),
        "indexing finding missing with the policy on"
    );
}

#[test]
fn dot_subcommand_renders_the_closure() {
    let dot = render_dot(&mini_root(), "deep_in").unwrap().unwrap();
    assert!(dot.starts_with("digraph"), "{dot}");
    assert!(dot.contains("deep_in") && dot.contains("stage_buffer"));
    assert!(dot.contains("->"));
    assert!(render_dot(&mini_root(), "no_such_fn").unwrap().is_err());
}

#[test]
fn baseline_suppresses_fixture_findings() {
    let full: BTreeSet<String> = EXPECTED_KEYS.iter().map(|s| s.to_string()).collect();
    let report = run(&mini_root(), &mini_cfg(), &full).unwrap();
    assert_eq!(report.new_count(), 0);
    assert_eq!(report.exit_code(), 0);
    assert!(report.stale_baseline.is_empty());

    // A partial baseline leaves the rest failing, and an extra stale key
    // is reported as stale without affecting the exit code.
    let mut partial: BTreeSet<String> = EXPECTED_KEYS[..4].iter().map(|s| s.to_string()).collect();
    partial.insert("D1-timing|crates/det/src/gone.rs|Instant|0".to_string());
    let report = run(&mini_root(), &mini_cfg(), &partial).unwrap();
    assert_eq!(report.new_count(), EXPECTED_KEYS.len() - 4);
    assert_eq!(
        report.stale_baseline,
        vec!["D1-timing|crates/det/src/gone.rs|Instant|0".to_string()]
    );
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn json_report_has_the_machine_readable_shape() {
    let report = run(&mini_root(), &mini_cfg(), &BTreeSet::new()).unwrap();
    let js = render_json(&report);
    assert!(js.starts_with("{\n"));
    assert!(js.ends_with("}\n"));
    assert!(js.contains(&format!("\"total\": {}", EXPECTED_KEYS.len())));
    assert!(js.contains(&format!("\"new\": {}", EXPECTED_KEYS.len())));
    for key in EXPECTED_KEYS {
        assert!(js.contains(key), "missing key {key} in JSON");
    }
    // Every finding row carries the full field set — `chain` included,
    // null for per-file findings and a string for transitive ones.
    for field in [
        "\"rule\"",
        "\"path\"",
        "\"line\"",
        "\"ident\"",
        "\"baselined\"",
        "\"chain\"",
        "\"message\"",
    ] {
        assert_eq!(
            js.matches(field).count(),
            EXPECTED_KEYS.len(),
            "field {field} count"
        );
    }
    assert!(js.contains("\"chain\": null"));
    assert!(js.contains("\"chain\": \"deep_in → stage_buffer\""));
}

#[test]
fn real_repository_is_clean_against_its_committed_config() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_src = std::fs::read_to_string(repo.join("lint.toml")).unwrap();
    let cfg = config::parse(&cfg_src).unwrap();
    let baseline = std::fs::read_to_string(repo.join("lint-baseline.txt"))
        .map(|s| parse_baseline(&s))
        .unwrap_or_default();
    let report = run(&repo, &cfg, &baseline).unwrap();
    let new: Vec<String> = report
        .new_findings()
        .map(|k| format!("{}:{} {}", k.finding.path, k.finding.line, k.key))
        .collect();
    assert!(new.is_empty(), "new lint findings in the repo:\n{new:#?}");
    // The committed baseline must hold no stale entries either — CI runs
    // with --deny-stale.
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries:\n{:#?}",
        report.stale_baseline
    );
}
