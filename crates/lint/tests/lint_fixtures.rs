//! End-to-end lint runs over the fixture workspace in
//! `tests/fixtures/mini_ws` (one deliberate violation per rule family plus
//! clean counterparts), and over the real repository (which must be clean
//! against the committed `lint.toml`/`lint-baseline.txt`).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use oarsmt_lint::report::{parse_baseline, render_json};
use oarsmt_lint::{config, run};

fn mini_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini_ws")
}

fn mini_cfg() -> config::Config {
    let src = std::fs::read_to_string(mini_root().join("lint.toml")).unwrap();
    config::parse(&src).unwrap()
}

/// The exact baseline keys the fixture workspace must produce — one entry
/// per deliberate violation; every clean counterpart must stay silent.
/// Order follows the report sort: (path, line, rule, ident), with
/// file-level findings (D2-missing, D4-forbid) anchored at line 0.
const EXPECTED_KEYS: [&str; 12] = [
    "D4-forbid|crates/clean/src/lib.rs|clean|0",
    "D1-hash-iter|crates/det/src/determinism.rs|m|0",
    "D1-hash-iter|crates/det/src/determinism.rs|s|0",
    "D1-timing|crates/det/src/determinism.rs|Instant|0",
    "D2-missing|crates/det/src/hot.rs|phantom_in|0",
    "D2-alloc|crates/det/src/hot.rs|hot_in|0",
    "D2-alloc|crates/det/src/hot.rs|hot_in|1",
    "D2-alloc|crates/det/src/hot.rs|hot_in|2",
    "D4-gate|crates/det/src/lib.rs|det|0",
    "D1-timing|crates/det/src/telemetry.rs|Instant|0",
    "D4-safety|crates/det/src/unsafety.rs|unsafe|0",
    "D3-wrapper|crates/det/src/wrappers.rs|route|0",
];

#[test]
fn fixture_workspace_produces_exactly_the_expected_findings() {
    let report = run(&mini_root(), &mini_cfg(), &BTreeSet::new()).unwrap();
    let keys: Vec<&str> = report.findings.iter().map(|k| k.key.as_str()).collect();
    assert_eq!(keys, EXPECTED_KEYS, "finding set drifted");
    assert_eq!(report.new_count(), EXPECTED_KEYS.len());
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn baseline_suppresses_fixture_findings() {
    let full: BTreeSet<String> = EXPECTED_KEYS.iter().map(|s| s.to_string()).collect();
    let report = run(&mini_root(), &mini_cfg(), &full).unwrap();
    assert_eq!(report.new_count(), 0);
    assert_eq!(report.exit_code(), 0);
    assert!(report.stale_baseline.is_empty());

    // A partial baseline leaves the rest failing, and an extra stale key
    // is reported as stale without affecting the exit code.
    let mut partial: BTreeSet<String> = EXPECTED_KEYS[..4].iter().map(|s| s.to_string()).collect();
    partial.insert("D1-timing|crates/det/src/gone.rs|Instant|0".to_string());
    let report = run(&mini_root(), &mini_cfg(), &partial).unwrap();
    assert_eq!(report.new_count(), EXPECTED_KEYS.len() - 4);
    assert_eq!(
        report.stale_baseline,
        vec!["D1-timing|crates/det/src/gone.rs|Instant|0".to_string()]
    );
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn json_report_has_the_machine_readable_shape() {
    let report = run(&mini_root(), &mini_cfg(), &BTreeSet::new()).unwrap();
    let js = render_json(&report);
    assert!(js.starts_with("{\n"));
    assert!(js.ends_with("}\n"));
    assert!(js.contains(&format!("\"total\": {}", EXPECTED_KEYS.len())));
    assert!(js.contains(&format!("\"new\": {}", EXPECTED_KEYS.len())));
    for key in EXPECTED_KEYS {
        assert!(js.contains(key), "missing key {key} in JSON");
    }
    // Every finding row carries the full field set.
    for field in [
        "\"rule\"",
        "\"path\"",
        "\"line\"",
        "\"ident\"",
        "\"baselined\"",
        "\"message\"",
    ] {
        assert_eq!(
            js.matches(field).count(),
            EXPECTED_KEYS.len(),
            "field {field} count"
        );
    }
}

#[test]
fn real_repository_is_clean_against_its_committed_config() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg_src = std::fs::read_to_string(repo.join("lint.toml")).unwrap();
    let cfg = config::parse(&cfg_src).unwrap();
    let baseline = std::fs::read_to_string(repo.join("lint-baseline.txt"))
        .map(|s| parse_baseline(&s))
        .unwrap_or_default();
    let report = run(&repo, &cfg, &baseline).unwrap();
    let new: Vec<String> = report
        .new_findings()
        .map(|k| format!("{}:{} {}", k.finding.path, k.finding.line, k.key))
        .collect();
    assert!(new.is_empty(), "new lint findings in the repo:\n{new:#?}");
}
