//! Dynamic counterpart of the static D2 zero-alloc rule: a counting
//! `#[global_allocator]` proves the registered hot paths (`route_in`,
//! `predict_with_fsp_in`, the batched `fsp_batch_into_ws` flush) perform
//! **zero** heap allocations in steady state,
//! and that `search_in` reaches a stable per-call allocation count
//! (its [`SearchOutcome`] owns freshly allocated label/counter vectors, so
//! zero is not the target there — stability across identical runs is).
//! It also proves the always-on Tier A telemetry counters advance *inside*
//! those zero-alloc windows: observability costs no heap traffic.
//!
//! Build and run with:
//!
//! ```text
//! cargo test --release -p oarsmt-lint --features alloc-count --test alloc_sanitizer
//! ```
//!
//! Everything runs inside one `#[test]` so no concurrent test thread can
//! touch the process-global counter mid-measurement.

#![cfg(feature = "alloc-count")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use oarsmt::selector::{MedianHeuristicSelector, NeuralSelector, Selector, UniformSelector};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_mcts::{CombinatorialMcts, Critic, MctsConfig};
use oarsmt_nn::NnWorkspace;
use oarsmt_router::{OarmstRouter, RouteContext};
use oarsmt_telemetry::Counter;

/// Counts every allocation and reallocation made through the global
/// allocator. Deallocations are not counted: a hot path that frees memory
/// it did not allocate would already show up as an alloc elsewhere.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a relaxed atomic counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged to the system allocator.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: inherits the caller's `GlobalAlloc::dealloc` contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from this allocator, which always
        // delegates to `System`, so freeing through `System` is valid.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: inherits the caller's `GlobalAlloc::realloc` contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same provenance argument as `dealloc`; `new_size`
        // obeys the caller's `GlobalAlloc::realloc` contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation count attributable to `f` (single-threaded by construction).
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let out = f();
    (ALLOCATIONS.load(Ordering::SeqCst) - before, out)
}

fn graph() -> HananGraph {
    let mut g = HananGraph::uniform(6, 6, 2, 1.0, 1.0, 3.0);
    g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
    g.add_pin(GridPoint::new(5, 5, 0)).unwrap();
    g.add_pin(GridPoint::new(0, 5, 1)).unwrap();
    g.add_pin(GridPoint::new(5, 0, 1)).unwrap();
    g
}

#[test]
fn hot_paths_are_allocation_free_in_steady_state() {
    // The counter must actually count, or the zero assertions below would
    // pass vacuously.
    let (n, buf) = allocs_during(|| vec![0u8; 4096]);
    assert!(n >= 1, "counting allocator is not wired in");
    drop(buf);

    let g = graph();
    let mut ctx = RouteContext::new();

    // --- route_in: zero allocations once the context is warm. ---
    let router = OarmstRouter::new();
    let candidates = [GridPoint::new(2, 2, 0), GridPoint::new(3, 3, 1)];
    let mut warm_cost = 0.0;
    for _ in 0..3 {
        let tree = router.route_in(&mut ctx, &g, &candidates).unwrap();
        warm_cost = tree.cost();
        ctx.recycle_tree(tree);
    }
    let pops_before = ctx.counters_total().get(Counter::DijkstraPops);
    let (n, steady_cost) = allocs_during(|| {
        let mut cost = 0.0;
        for _ in 0..8 {
            let tree = router.route_in(&mut ctx, &g, &candidates).unwrap();
            cost = tree.cost();
            ctx.recycle_tree(tree);
        }
        cost
    });
    assert_eq!(n, 0, "route_in allocated {n} times in steady state");
    assert_eq!(steady_cost, warm_cost, "steady-state result drifted");
    // The always-on Tier A counters advanced inside that zero-alloc window:
    // counting is free, not just cheap.
    assert!(
        ctx.counters_total().get(Counter::DijkstraPops) > pops_before,
        "Tier A counters did not advance during the zero-alloc routes"
    );

    // --- route_in with the flight recorder live: recording begin/end
    // events into the preallocated ring is free — the warm loop stays at
    // zero allocations with tracing enabled, and events actually land. ---
    ctx.trace.enable(1024); // the one allocating call, outside the window
    let tree = router.route_in(&mut ctx, &g, &candidates).unwrap();
    ctx.recycle_tree(tree); // warm again post-enable
    let traced_before = ctx.trace.len();
    let (n, traced_cost) = allocs_during(|| {
        let mut cost = 0.0;
        for _ in 0..8 {
            let tree = router.route_in(&mut ctx, &g, &candidates).unwrap();
            cost = tree.cost();
            ctx.recycle_tree(tree);
        }
        cost
    });
    assert_eq!(n, 0, "route_in allocated {n} times with tracing enabled");
    assert_eq!(traced_cost, warm_cost, "tracing changed routing results");
    assert!(
        ctx.trace.len() > traced_before || ctx.trace.dropped() > 0,
        "flight recorder recorded nothing during the traced routes"
    );
    ctx.trace.disable();

    // --- route_in under QueuePolicy::AStar: the f = g + h heap search and
    // its per-iteration target-hint rebuild are also allocation-free once
    // warm (the Auto default above already exercised the Dial bucket
    // queue — integral costs make this graph Dial-eligible). ---
    let astar = OarmstRouter::new().with_queue_policy(oarsmt_router::QueuePolicy::AStar);
    let mut warm_astar = 0.0;
    for _ in 0..3 {
        let tree = astar.route_in(&mut ctx, &g, &candidates).unwrap();
        warm_astar = tree.cost();
        ctx.recycle_tree(tree);
    }
    let (n, steady_astar) = allocs_during(|| {
        let mut cost = 0.0;
        for _ in 0..8 {
            let tree = astar.route_in(&mut ctx, &g, &candidates).unwrap();
            cost = tree.cost();
            ctx.recycle_tree(tree);
        }
        cost
    });
    assert_eq!(n, 0, "A* route_in allocated {n} times in steady state");
    assert_eq!(steady_astar, warm_astar, "steady-state A* result drifted");

    // --- predict_with_fsp_in: zero allocations with a precomputed fsp. ---
    let critic = Critic::new();
    let mut median = MedianHeuristicSelector::new();
    let selected = [GridPoint::new(2, 2, 0)];
    let fsp = median.fsp(&g, &selected);
    let mut warm_value = 0.0;
    for _ in 0..3 {
        warm_value = critic
            .predict_with_fsp_in(&mut ctx, &g, &selected, &fsp)
            .unwrap();
    }
    let rollout_pops_before = ctx.counters_total().get(Counter::DijkstraPops);
    let (n, steady_value) = allocs_during(|| {
        let mut value = 0.0;
        for _ in 0..8 {
            value = critic
                .predict_with_fsp_in(&mut ctx, &g, &selected, &fsp)
                .unwrap();
        }
        value
    });
    assert_eq!(
        n, 0,
        "predict_with_fsp_in allocated {n} times in steady state"
    );
    assert_eq!(steady_value, warm_value, "steady-state result drifted");
    assert!(
        ctx.counters_total().get(Counter::DijkstraPops) > rollout_pops_before,
        "rollout counters did not advance during the zero-alloc predicts"
    );

    // --- fsp_batch_into_ws: the batched GEMM flush (DESIGN.md §13) is
    // allocation-free once the workspace pools and the output vector are
    // warm, at B = 1 (the single-state fast path) and B = 4 alike. ---
    let mut neural = NeuralSelector::random(0xA110C);
    let mut ws = NnWorkspace::new();
    let states: Vec<Vec<GridPoint>> = vec![
        vec![],
        vec![GridPoint::new(1, 1, 0)],
        vec![GridPoint::new(2, 3, 1), GridPoint::new(4, 2, 0)],
        vec![GridPoint::new(3, 3, 0)],
    ];
    let mut pts = Vec::new();
    let mut lens = Vec::new();
    for s in &states {
        pts.extend_from_slice(s);
        lens.push(s.len() as u32);
    }
    let mut batch_out = Vec::new();
    let mut warm_sum = 0.0f32;
    for _ in 0..3 {
        neural.fsp_batch_into_ws(&g, &pts, &lens, &mut batch_out, &mut ws);
        neural.fsp_batch_into_ws(&g, &pts[..1], &lens[1..2], &mut batch_out, &mut ws);
        warm_sum = batch_out.iter().sum();
    }
    let flushes_before = ws.counters.get(Counter::BatchFlushes);
    let (n, steady_sum) = allocs_during(|| {
        let mut sum = 0.0f32;
        for _ in 0..8 {
            neural.fsp_batch_into_ws(&g, &pts, &lens, &mut batch_out, &mut ws);
            neural.fsp_batch_into_ws(&g, &pts[..1], &lens[1..2], &mut batch_out, &mut ws);
            sum = batch_out.iter().sum();
        }
        sum
    });
    assert_eq!(
        n, 0,
        "fsp_batch_into_ws allocated {n} times in steady state"
    );
    assert_eq!(steady_sum, warm_sum, "steady-state batched result drifted");
    assert!(
        ws.counters.get(Counter::BatchFlushes) > flushes_before,
        "batch-flush counters did not advance during the zero-alloc flushes"
    );

    // --- the AVX2+FMA kernel lane (feature `simd`) allocates nothing
    // either: the wide microkernels write through the same pooled buffers
    // as the scalar path. Skipped silently on non-AVX2 hosts, where the
    // policy resolves back to scalar (already covered above). ---
    #[cfg(feature = "simd")]
    if oarsmt_nn::simd_available() {
        let mut simd_ws = NnWorkspace::new();
        simd_ws.set_kernel_policy(oarsmt_nn::KernelPolicy::Simd);
        let mut warm_simd = 0.0f32;
        for _ in 0..3 {
            neural.fsp_batch_into_ws(&g, &pts, &lens, &mut batch_out, &mut simd_ws);
            warm_simd = batch_out.iter().sum();
        }
        let simd_before = simd_ws.counters.get(Counter::GemmKernelSimd);
        let (n, steady_simd) = allocs_during(|| {
            let mut sum = 0.0f32;
            for _ in 0..8 {
                neural.fsp_batch_into_ws(&g, &pts, &lens, &mut batch_out, &mut simd_ws);
                sum = batch_out.iter().sum();
            }
            sum
        });
        assert_eq!(
            n, 0,
            "SIMD fsp_batch_into_ws allocated {n} times in steady state"
        );
        assert_eq!(steady_simd, warm_simd, "steady-state SIMD result drifted");
        assert!(
            simd_ws.counters.get(Counter::GemmKernelSimd) > simd_before,
            "SIMD dispatch counter did not advance: the lane ran scalar"
        );
    }

    // --- search_in: identical runs must cost an identical (small) number
    // of allocations — the SearchOutcome's owned vectors and nothing that
    // grows run over run. ---
    let mcts = CombinatorialMcts::new(MctsConfig::tiny());
    let mut uniform = UniformSelector::new(0.4);
    for _ in 0..2 {
        mcts.search_in(&mut ctx, &g, &mut uniform).unwrap();
    }
    let c0 = ctx.counters_total();
    let (a, first) = allocs_during(|| mcts.search_in(&mut ctx, &g, &mut uniform).unwrap());
    let c1 = ctx.counters_total();
    let (b, second) = allocs_during(|| mcts.search_in(&mut ctx, &g, &mut uniform).unwrap());
    let c2 = ctx.counters_total();
    assert_eq!(
        a, b,
        "search_in allocation count changed between identical runs ({a} vs {b})"
    );
    assert_eq!(first.final_cost, second.final_cost);
    assert_eq!(first.executed, second.executed);
    // Identical searches on a warm context produce bit-identical counter
    // deltas, and nonzero ones: the counters observed real work.
    let (da, db) = (c1.delta_since(&c0), c2.delta_since(&c1));
    assert_eq!(da, db, "counter deltas differ between identical searches");
    assert!(da.get(Counter::MctsRollouts) > 0);
}
