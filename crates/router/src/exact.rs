//! Exact Steiner minimum trees on Hanan graphs via the Dreyfus–Wagner
//! dynamic program.
//!
//! For layouts with few pins this computes the *optimal* ML-OARSMT cost
//! (optimal with respect to the Hanan graph), which the test-suite and the
//! ablation benches use to measure the optimality gap of the heuristic
//! routers. Complexity is `O(3^t · V + 2^t · V log V)` for `t = n − 1`
//! terminals, so keep `n ≤ ~8` and layouts small.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use oarsmt_geom::{GridPoint, HananGraph};

use crate::error::RouteError;

/// Maximum pin count accepted by [`steiner_exact_cost`]; beyond this the
/// dynamic program's `3^n` term becomes unreasonable.
pub const MAX_EXACT_PINS: usize = 10;

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    v: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes the exact minimum Steiner-tree cost connecting all pins of the
/// graph (the ML-OARSMT optimum on the Hanan graph).
///
/// # Errors
///
/// * [`RouteError::TooFewTerminals`] if the graph has fewer than two pins
///   or more than [`MAX_EXACT_PINS`] (the error carries the pin count).
/// * [`RouteError::BlockedTerminal`] if a pin is blocked.
/// * [`RouteError::Disconnected`] if the pins cannot all be connected.
///
/// # Example
///
/// ```
/// use oarsmt_geom::{HananGraph, GridPoint};
/// use oarsmt_router::exact::steiner_exact_cost;
///
/// // A 4-arm cross: the optimal tree routes through the center, cost 8.
/// let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
/// for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
///     g.add_pin(GridPoint::new(h, v, 0))?;
/// }
/// assert_eq!(steiner_exact_cost(&g)?, 8.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn steiner_exact_cost(graph: &HananGraph) -> Result<f64, RouteError> {
    let pins: Vec<GridPoint> = graph.pins().to_vec();
    let n = pins.len();
    if !(2..=MAX_EXACT_PINS).contains(&n) {
        return Err(RouteError::TooFewTerminals(n));
    }
    for &p in &pins {
        if graph.is_blocked(p) {
            return Err(RouteError::BlockedTerminal(p));
        }
    }
    let vcount = graph.len();
    // Terminals t_1..t_{n-1}; the root terminal t_0 is folded in at the end.
    let t = n - 1;
    let full: usize = (1 << t) - 1;
    let inf = f64::INFINITY;
    // dp[mask][v]: cheapest tree connecting terminal subset `mask` and v.
    let mut dp = vec![vec![inf; vcount]; full + 1];
    for (i, &pin) in pins.iter().skip(1).enumerate() {
        dp[1 << i][graph.index(pin)] = 0.0;
        relax(graph, &mut dp[1 << i]);
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        // Merge step: combine two disjoint submask trees at every vertex.
        let mut sub = (mask - 1) & mask;
        while sub > mask / 2 {
            // Enumerate each unordered pair once (sub > mask ^ sub).
            let other = mask ^ sub;
            // `dp[sub]`/`dp[other]` are read while `dp[mask]` is written, so
            // iterator-based access would need split borrows of `dp`.
            #[allow(clippy::needless_range_loop)]
            for v in 0..vcount {
                let a = dp[sub][v];
                if a == inf {
                    continue;
                }
                let b = dp[other][v];
                if b == inf {
                    continue;
                }
                let c = a + b;
                if c < dp[mask][v] {
                    dp[mask][v] = c;
                }
            }
            sub = (sub - 1) & mask;
        }
        // Grow step: extend the subset trees along shortest paths.
        relax(graph, &mut dp[mask]);
    }
    let root = graph.index(pins[0]);
    let answer = dp[full][root];
    if answer.is_finite() {
        Ok(answer)
    } else {
        Err(RouteError::Disconnected { reached: pins[0] })
    }
}

/// Dijkstra-style relaxation of a dp layer: propagate every finite entry
/// along graph edges until fixpoint.
fn relax(graph: &HananGraph, layer: &mut [f64]) {
    let mut heap: BinaryHeap<HeapEntry> = layer
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c.is_finite())
        .map(|(v, &c)| HeapEntry {
            cost: c,
            v: v as u32,
        })
        .collect();
    while let Some(HeapEntry { cost, v }) = heap.pop() {
        let vi = v as usize;
        if cost > layer[vi] {
            continue;
        }
        let p = graph.point(vi);
        if graph.is_blocked(p) {
            continue;
        }
        for (q, w) in graph.neighbors(p) {
            let qi = graph.index(q);
            let nd = cost + w;
            if nd < layer[qi] {
                layer[qi] = nd;
                heap.push(HeapEntry {
                    cost: nd,
                    v: qi as u32,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin18::Lin18Router;
    use crate::oarmst::OarmstRouter;
    use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};

    fn pins(g: &mut HananGraph, pts: &[(usize, usize, usize)]) {
        for &(h, v, m) in pts {
            g.add_pin(GridPoint::new(h, v, m)).unwrap();
        }
    }

    #[test]
    fn two_pins_equal_shortest_path() {
        let mut g = HananGraph::uniform(6, 4, 2, 2.0, 3.0, 4.0);
        pins(&mut g, &[(0, 0, 0), (5, 3, 1)]);
        let exact = steiner_exact_cost(&g).unwrap();
        assert_eq!(exact, 5.0 * 2.0 + 3.0 * 3.0 + 4.0);
    }

    #[test]
    fn three_pins_on_an_l_share_the_corner() {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        pins(&mut g, &[(0, 0, 0), (4, 0, 0), (0, 4, 0)]);
        // Optimal: both arms from the corner pin = 8.
        assert_eq!(steiner_exact_cost(&g).unwrap(), 8.0);
    }

    #[test]
    fn obstacles_force_detours_in_the_optimum() {
        let mut g = HananGraph::uniform(5, 3, 1, 1.0, 1.0, 3.0);
        for v in 0..2 {
            g.add_obstacle_vertex(GridPoint::new(2, v, 0)).unwrap();
        }
        pins(&mut g, &[(0, 1, 0), (4, 1, 0)]);
        assert_eq!(steiner_exact_cost(&g).unwrap(), 6.0);
    }

    #[test]
    fn disconnected_pins_error() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        for v in 0..3 {
            g.add_obstacle_vertex(GridPoint::new(1, v, 0)).unwrap();
        }
        pins(&mut g, &[(0, 0, 0), (2, 2, 0)]);
        assert!(matches!(
            steiner_exact_cost(&g),
            Err(RouteError::Disconnected { .. })
        ));
    }

    #[test]
    fn too_many_pins_is_rejected() {
        let mut g = HananGraph::uniform(13, 13, 1, 1.0, 1.0, 3.0);
        for i in 0..11 {
            g.add_pin(GridPoint::new(i, i, 0)).unwrap();
        }
        assert!(matches!(
            steiner_exact_cost(&g),
            Err(RouteError::TooFewTerminals(11))
        ));
    }

    #[test]
    fn heuristics_never_beat_the_optimum() {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 2, (3, 5)), 77);
        let mut compared = 0;
        for g in gen.generate_many(12) {
            let Ok(exact) = steiner_exact_cost(&g) else {
                continue;
            };
            let heuristic = OarmstRouter::new().route(&g, &[]).unwrap().cost();
            let lin = Lin18Router::new().route(&g).unwrap().cost();
            assert!(heuristic >= exact - 1e-9, "heuristic below optimum");
            assert!(lin >= exact - 1e-9, "lin18 below optimum");
            // And the heuristics are within a sane factor of optimal.
            assert!(heuristic <= exact * 2.0 + 1e-9);
            compared += 1;
        }
        assert!(compared >= 8);
    }

    #[test]
    fn optimum_is_invariant_under_pin_order() {
        let mut g1 = HananGraph::uniform(6, 6, 1, 1.0, 1.0, 3.0);
        pins(&mut g1, &[(0, 0, 0), (5, 5, 0), (0, 5, 0), (5, 0, 0)]);
        let mut g2 = HananGraph::uniform(6, 6, 1, 1.0, 1.0, 3.0);
        pins(&mut g2, &[(5, 0, 0), (0, 5, 0), (5, 5, 0), (0, 0, 0)]);
        assert_eq!(
            steiner_exact_cost(&g1).unwrap(),
            steiner_exact_cost(&g2).unwrap()
        );
    }
}
