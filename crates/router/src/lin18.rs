//! Re-implementation of the strongest algorithmic baseline \[14\]:
//! K.-W. Lin et al., *"A maze routing-based methodology with bounded
//! exploration and path-assessed retracing for constrained multilayer
//! obstacle-avoiding rectilinear Steiner tree construction"* (TODAES 2018).
//!
//! The paper compares its RL router against \[14\]'s released executable
//! (Tables 2–4); that binary is not redistributable, so this module
//! re-implements the methodology on our shared Hanan-graph substrate
//! (DESIGN.md §5, substitution 2). The two defining ingredients are kept:
//!
//! * **bounded exploration** — every maze-routing query is restricted to the
//!   bounding box of the terminals expanded by a margin, trading a little
//!   solution quality for speed on large layouts;
//! * **path-assessed retracing** — the router rips up each pin's branch and
//!   reroutes it against the rest of the tree, over a number of rounds that
//!   grows with the pin count (and is *not* gated on improvement — the
//!   original executable runs its full schedule, which is what makes it
//!   slow on large layouts, Table 3); afterwards, implied Steiner vertices
//!   (degree ≥ 3) are promoted to candidates and the tree reconstructed,
//!   keeping improvements.

use std::fmt;

use oarsmt_geom::HananGraph;

use crate::error::RouteError;
use crate::oarmst::OarmstRouter;
use crate::sweep::SweepSchedule;
use crate::tree::RouteTree;

/// The \[14\]-style algorithmic ML-OARSMT router.
#[derive(Debug, Clone)]
pub struct Lin18Router {
    /// Bounded-exploration margin in grid steps.
    margin: usize,
    /// Maximum implied-Steiner retracing rounds.
    max_retrace: usize,
    /// Whether to run path-assessed reassessment (alternate construction
    /// orders, rounds scaling with the pin count).
    reassess: bool,
}

impl Default for Lin18Router {
    fn default() -> Self {
        Lin18Router {
            margin: 2,
            max_retrace: 2,
            reassess: true,
        }
    }
}

impl Lin18Router {
    /// Creates the router with the default margin (2) and retrace budget
    /// (2 rounds).
    pub fn new() -> Self {
        Lin18Router::default()
    }

    /// Sets the bounded-exploration margin (builder style).
    #[must_use]
    pub fn with_margin(mut self, margin: usize) -> Self {
        self.margin = margin;
        self
    }

    /// Sets the retracing budget (builder style).
    #[must_use]
    pub fn with_max_retrace(mut self, rounds: usize) -> Self {
        self.max_retrace = rounds;
        self
    }

    /// Disables path-assessed reassessment (builder style). Mostly useful
    /// for ablations: without it the router reduces to a single bounded
    /// construction plus implied-Steiner retracing.
    #[must_use]
    pub fn without_reassess(mut self) -> Self {
        self.reassess = false;
        self
    }

    /// The number of reassessment rounds for a `k`-pin layout. Scales with
    /// the pin count, reflecting \[14\]'s per-path retracing expense.
    pub fn reassess_rounds(&self, pin_count: usize) -> usize {
        if self.reassess {
            (pin_count / 2).clamp(2, 24)
        } else {
            0
        }
    }

    /// Routes the graph's pins, returning the best tree found.
    ///
    /// # Errors
    ///
    /// Same as [`OarmstRouter::route`]; additionally, when bounded
    /// exploration makes pins unreachable, the router automatically falls
    /// back to an unbounded search before reporting
    /// [`RouteError::Disconnected`].
    pub fn route(&self, graph: &HananGraph) -> Result<RouteTree, RouteError> {
        // [14]'s bounded→unbounded fallback, expressed as the general
        // escalating-sweep schedule (identical behaviour: one bounded
        // stage, unbounded only on disconnection).
        let base = OarmstRouter::new();
        let sweep = SweepSchedule::bounded_then_unbounded(self.margin);
        let mut best = sweep.route(&base, graph, &[])?;

        // Path-assessed retracing: for each pin, rip up its branch (the
        // degree-≤2 path from the pin to the first branch vertex or other
        // terminal) and reroute it against the rest of the tree, accepting
        // improvements. Rounds grow with the pin count, mirroring the
        // per-path retracing expense of [14].
        // [14]'s executable runs its full retracing schedule regardless of
        // intermediate improvement, which is what makes it slow on large
        // layouts (Table 3); the rounds are therefore not gated.
        let k = graph.pins().len();
        for _ in 0..self.reassess_rounds(k) {
            for pin_idx in 0..k {
                if let Some(better) =
                    crate::retrace::reroute_terminal(graph, &best, graph.pins(), pin_idx)?
                {
                    if better.cost() + 1e-9 < best.cost() {
                        best = better;
                    }
                }
            }
        }

        // Implied-Steiner retracing: promote degree>=3 vertices and
        // reconstruct, keeping only improvements.
        for _ in 0..self.max_retrace {
            let implied = best.steiner_vertices(graph, graph.pins());
            if implied.is_empty() {
                break;
            }
            let retraced = sweep.route(&base, graph, &implied)?;
            if retraced.cost() + 1e-9 < best.cost() {
                best = retraced;
            } else {
                break;
            }
        }
        Ok(best)
    }
}

impl fmt::Display for Lin18Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lin18 router (margin {}, retrace {})",
            self.margin, self.max_retrace
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::GridPoint;

    fn pins(g: &mut HananGraph, pts: &[(usize, usize, usize)]) {
        for &(h, v, m) in pts {
            g.add_pin(GridPoint::new(h, v, m)).unwrap();
        }
    }

    #[test]
    fn routes_simple_cases_like_oarmst() {
        let mut g = HananGraph::uniform(6, 6, 1, 1.0, 1.0, 3.0);
        pins(&mut g, &[(0, 0, 0), (5, 5, 0)]);
        let t = Lin18Router::new().route(&g).unwrap();
        assert_eq!(t.cost(), 10.0);
        assert!(t.is_tree());
    }

    #[test]
    fn retracing_never_worsens_cost() {
        let mut g = HananGraph::uniform(7, 7, 2, 1.0, 1.0, 3.0);
        pins(&mut g, &[(0, 3, 0), (6, 3, 0), (3, 0, 1), (3, 6, 1)]);
        let plain = OarmstRouter::new().route(&g, &[]).unwrap();
        let lin = Lin18Router::new().route(&g).unwrap();
        assert!(lin.cost() <= plain.cost() + 1e-9);
        assert!(lin.spans_in(&g, g.pins()));
    }

    #[test]
    fn falls_back_to_unbounded_when_bounded_fails() {
        // Two pins in the same rows but separated by a wall that forces a
        // detour far outside the bounding box.
        let mut g = HananGraph::uniform(9, 9, 1, 1.0, 1.0, 3.0);
        for v in 0..8 {
            g.add_obstacle_vertex(GridPoint::new(4, v, 0)).unwrap();
        }
        pins(&mut g, &[(3, 0, 0), (5, 0, 0)]);
        let t = Lin18Router::new().with_margin(1).route(&g).unwrap();
        assert!(t.spans_in(&g, g.pins()));
    }

    #[test]
    fn random_cases_route_validly() {
        use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(10, 10, 2, (3, 6)), 5);
        let r = Lin18Router::new();
        for g in gen.generate_many(10) {
            match r.route(&g) {
                Ok(t) => {
                    assert!(t.is_tree());
                    assert!(t.spans_in(&g, g.pins()));
                }
                Err(RouteError::Disconnected { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod retrace_tests {
    use super::*;

    #[test]
    fn reassess_rounds_scale_with_pins_and_can_be_disabled() {
        let r = Lin18Router::new();
        assert_eq!(r.reassess_rounds(3), 2);
        assert_eq!(r.reassess_rounds(16), 8);
        assert_eq!(r.reassess_rounds(200), 24);
        assert_eq!(Lin18Router::new().without_reassess().reassess_rounds(16), 0);
    }
}
