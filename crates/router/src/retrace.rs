//! Path-assessed retracing: rip up one terminal's branch and reroute it
//! against the remaining tree (\[14\]'s tree-improvement move, used both by
//! the shared OARMST construction's polish pass and by the \[14\] baseline's
//! iterated reassessment).

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_graph::QueuePolicy;

use crate::context::RouteContext;
use crate::error::RouteError;
use crate::tree::{RouteTree, TreeAdjacency};

/// Rips up `terminal`'s branch — the degree-≤2 chain from the terminal to
/// the first branch vertex or other terminal — and reroutes the terminal
/// against the remaining tree.
///
/// Returns `None` when the terminal is an interior vertex (tree degree ≠ 1)
/// or the stripped tree would be empty; the returned tree is never more
/// expensive than the input by more than floating-point noise (the reroute
/// finds a shortest path where the original branch is one candidate).
///
/// # Errors
///
/// Propagates graph-search failures (cannot normally occur: the original
/// branch is always a valid route back).
pub fn reroute_terminal(
    graph: &HananGraph,
    tree: &RouteTree,
    terminals: &[GridPoint],
    terminal_idx: usize,
) -> Result<Option<RouteTree>, RouteError> {
    reroute_terminal_in(
        &mut RouteContext::new(),
        graph,
        tree,
        terminals,
        terminal_idx,
    )
}

/// [`reroute_terminal`] through a caller-owned [`RouteContext`]: the
/// Dijkstra workspace, stamped sets, and candidate tree all come from the
/// context instead of per-call allocation.
///
/// # Errors
///
/// See [`reroute_terminal`].
pub fn reroute_terminal_in(
    ctx: &mut RouteContext,
    graph: &HananGraph,
    tree: &RouteTree,
    terminals: &[GridPoint],
    terminal_idx: usize,
) -> Result<Option<RouteTree>, RouteError> {
    let mut adj = std::mem::take(&mut ctx.tree_adj);
    adj.rebuild(tree);
    let result = reroute_with_adj(
        ctx,
        graph,
        tree,
        &adj,
        terminals,
        terminal_idx,
        QueuePolicy::Auto,
    );
    ctx.tree_adj = adj;
    result
}

/// [`reroute_terminal_in`] against a caller-supplied adjacency of `tree`
/// (the polish loop builds it once per accepted tree instead of once per
/// terminal), under the caller's [`QueuePolicy`].
#[allow(clippy::too_many_arguments)]
fn reroute_with_adj(
    ctx: &mut RouteContext,
    graph: &HananGraph,
    tree: &RouteTree,
    adj: &TreeAdjacency,
    terminals: &[GridPoint],
    terminal_idx: usize,
    policy: QueuePolicy,
) -> Result<Option<RouteTree>, RouteError> {
    let terminal = terminals[terminal_idx];
    let term_v = graph.index(terminal) as u32;
    let neighbors = adj.neighbors(term_v);
    if neighbors.len() != 1 {
        return Ok(None);
    }
    ctx.seen.begin(graph.len());
    for &p in terminals {
        ctx.seen.insert(graph.index(p));
    }

    // Strip the degree-2 chain hanging off the terminal.
    let mut stripped = ctx.take_tree();
    stripped.copy_from(tree);
    let mut prev = term_v;
    let mut cur = neighbors[0].1;
    stripped.remove_edge(graph, prev, cur);
    while !ctx.seen.contains(cur as usize) {
        // Degree-2 chain step: exactly one neighbor differs from `prev`,
        // so the sorted neighbor order cannot change which one is picked.
        let n = adj.neighbors(cur);
        if n.len() != 2 {
            break;
        }
        let Some(&(_, next)) = n.iter().find(|&&(_, x)| x != prev) else {
            break;
        };
        stripped.remove_edge(graph, cur, next);
        prev = cur;
        cur = next;
    }

    // The remaining tree's vertices are the multi-source frontier. Source
    // *order* does not affect the result (the maze heap settles ties by
    // cost then index), so edge-iteration order replaces the old hash-set
    // collection bit-identically.
    ctx.mark.begin(graph.len());
    ctx.tree_vertices.clear();
    for &(a, b) in stripped.edges() {
        if ctx.mark.insert(a as usize) {
            ctx.tree_vertices.push(graph.point(a as usize));
        }
        if ctx.mark.insert(b as usize) {
            ctx.tree_vertices.push(graph.point(b as usize));
        }
    }
    if ctx.tree_vertices.is_empty() {
        ctx.recycle_tree(stripped);
        return Ok(None);
    }
    let target = graph.index(terminal);
    ctx.adj.ensure(graph);
    // Single-target reroute: the terminal itself is the exact A* hint.
    if let Err(e) = ctx.space.shortest_path_to_set_csr_policy_into(
        graph,
        &ctx.adj,
        &ctx.tree_vertices,
        |i| i == target,
        policy,
        std::slice::from_ref(&terminal),
        &mut ctx.path_buf,
    ) {
        ctx.recycle_tree(stripped);
        return Err(RouteError::from(e));
    }
    for w in ctx.path_buf.windows(2) {
        stripped.add_edge(graph, w[0], w[1]);
    }
    Ok(Some(stripped))
}

/// One polish round: reassess every terminal's branch once, keeping
/// improvements. Returns the (possibly unchanged) best tree and whether any
/// reroute improved it.
///
/// # Errors
///
/// See [`reroute_terminal`].
pub fn polish_round(
    graph: &HananGraph,
    tree: RouteTree,
    terminals: &[GridPoint],
) -> Result<(RouteTree, bool), RouteError> {
    polish_round_in(&mut RouteContext::new(), graph, tree, terminals)
}

/// [`polish_round`] through a caller-owned [`RouteContext`]; rejected
/// reroute candidates go back to the context's tree pool.
///
/// # Errors
///
/// See [`reroute_terminal`].
pub fn polish_round_in(
    ctx: &mut RouteContext,
    graph: &HananGraph,
    tree: RouteTree,
    terminals: &[GridPoint],
) -> Result<(RouteTree, bool), RouteError> {
    polish_round_policy_in(ctx, graph, tree, terminals, QueuePolicy::Auto)
}

/// [`polish_round_in`] under an explicit [`QueuePolicy`] (the
/// [`OarmstRouter`](crate::OarmstRouter) threads its configured policy
/// through so an oracle-policy route stays heap-driven end to end).
///
/// # Errors
///
/// See [`reroute_terminal`].
pub fn polish_round_policy_in(
    ctx: &mut RouteContext,
    graph: &HananGraph,
    tree: RouteTree,
    terminals: &[GridPoint],
    policy: QueuePolicy,
) -> Result<(RouteTree, bool), RouteError> {
    let mut best = tree;
    let mut improved = false;
    let mut adj = std::mem::take(&mut ctx.tree_adj);
    adj.rebuild(&best);
    for idx in 0..terminals.len() {
        match reroute_with_adj(ctx, graph, &best, &adj, terminals, idx, policy) {
            Ok(Some(candidate)) => {
                if candidate.cost() + 1e-9 < best.cost() {
                    ctx.recycle_tree(std::mem::replace(&mut best, candidate));
                    adj.rebuild(&best);
                    improved = true;
                } else {
                    ctx.recycle_tree(candidate);
                }
            }
            Ok(None) => {}
            Err(e) => {
                ctx.tree_adj = adj;
                return Err(e);
            }
        }
    }
    ctx.tree_adj = adj;
    Ok((best, improved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oarmst::OarmstRouter;

    #[test]
    fn reroute_preserves_spanning_and_never_worsens() {
        let mut g = HananGraph::uniform(8, 8, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 0), (7, 0), (0, 7), (7, 7), (3, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        let pins = g.pins().to_vec();
        for idx in 0..pins.len() {
            if let Some(t) = reroute_terminal(&g, &tree, &pins, idx).unwrap() {
                assert!(t.spans_in(&g, &pins), "terminal {idx}");
                assert!(t.cost() <= tree.cost() + 1e-9);
            }
        }
    }

    #[test]
    fn polish_round_is_idempotent_at_fixpoint() {
        let mut g = HananGraph::uniform(6, 6, 2, 1.0, 1.0, 3.0);
        for &(h, v, m) in &[(0, 0, 0), (5, 5, 1), (0, 5, 0), (5, 0, 1)] {
            g.add_pin(GridPoint::new(h, v, m)).unwrap();
        }
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        let pins = g.pins().to_vec();
        let (t1, _) = polish_round(&g, tree, &pins).unwrap();
        let (t2, improved2) = polish_round(&g, t1.clone(), &pins).unwrap();
        if !improved2 {
            assert_eq!(t1.cost(), t2.cost());
        }
        assert!(t2.cost() <= t1.cost() + 1e-9);
    }

    #[test]
    fn interior_terminals_are_skipped() {
        // A straight 3-pin line: the middle pin has degree 2.
        let mut g = HananGraph::uniform(5, 1, 1, 1.0, 1.0, 3.0);
        for h in [0, 2, 4] {
            g.add_pin(GridPoint::new(h, 0, 0)).unwrap();
        }
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        let pins = g.pins().to_vec();
        // Middle pin (index 1) is interior.
        assert!(reroute_terminal(&g, &tree, &pins, 1).unwrap().is_none());
    }
}
