//! Obstacle-avoiding rectilinear minimum spanning tree (OARMST)
//! construction: maze-router-based Prim's algorithm with redundant
//! Steiner-point removal, following \[14\] as used by the paper (Fig. 2).
//!
//! Given a Hanan graph and a set of Steiner candidates, the router:
//!
//! 1. runs Prim's algorithm where "expanding the tree" is a multi-source
//!    maze-routing (Dijkstra) query from the current tree to the nearest
//!    unconnected terminal,
//! 2. removes **redundant** Steiner candidates — those with tree degree
//!    less than 3 (Section 2.1: such a point "cannot act as an effective
//!    intermediate vertex"),
//! 3. reconstructs the spanning tree over pins plus the surviving
//!    irredundant candidates, repeating until no candidate is redundant.

use std::collections::HashSet;

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_graph::dijkstra::{SearchBounds, SearchSpace};

use crate::error::RouteError;
use crate::prune::redundant_candidates;
use crate::tree::RouteTree;

/// The OARMST router (maze-router-based Prim plus pruning).
///
/// Construction parameters:
///
/// * `max_prune_rounds` — upper bound on prune/reconstruct iterations
///   (each round removes at least one candidate, so the loop always
///   terminates; the bound is a safety valve, default 8),
/// * `bounds_margin` — optional bounded-exploration margin in grid steps:
///   when set, every maze query is restricted to the bounding box of the
///   remaining terminals expanded by the margin (used by the \[14\]
///   baseline; `None` searches the whole grid).
#[derive(Debug, Clone)]
pub struct OarmstRouter {
    max_prune_rounds: Option<usize>,
    bounds_margin: Option<usize>,
    start: usize,
    polish_rounds: usize,
}

impl Default for OarmstRouter {
    fn default() -> Self {
        OarmstRouter {
            max_prune_rounds: None,
            bounds_margin: None,
            start: 0,
            polish_rounds: 1,
        }
    }
}

impl OarmstRouter {
    /// Creates a router with default settings (unbounded search, up to 8
    /// prune rounds, one path-assessed polish round).
    pub fn new() -> Self {
        OarmstRouter::default()
    }

    /// Sets the number of path-assessed polish rounds run after pruning
    /// (builder style; 0 disables polishing).
    #[must_use]
    pub fn with_polish_rounds(mut self, rounds: usize) -> Self {
        self.polish_rounds = rounds;
        self
    }

    /// Limits prune/reconstruct rounds (builder style).
    #[must_use]
    pub fn with_max_prune_rounds(mut self, rounds: usize) -> Self {
        self.max_prune_rounds = Some(rounds);
        self
    }

    /// Enables bounded exploration with the given margin (builder style).
    #[must_use]
    pub fn with_bounds_margin(mut self, margin: usize) -> Self {
        self.bounds_margin = Some(margin);
        self
    }

    /// Starts Prim's construction from the `start`-th terminal (modulo the
    /// terminal count) instead of the first. Different insertion orders
    /// yield different trees; the \[14\] baseline assesses several
    /// (builder style).
    #[must_use]
    pub fn with_start(mut self, start: usize) -> Self {
        self.start = start;
        self
    }

    /// Builds the OARMST connecting `graph.pins()` plus the given Steiner
    /// `candidates`, pruning redundant candidates.
    ///
    /// Candidates that duplicate a pin or sit on an obstacle are ignored.
    ///
    /// # Errors
    ///
    /// * [`RouteError::TooFewTerminals`] if the graph has fewer than two
    ///   pins.
    /// * [`RouteError::BlockedTerminal`] if a pin is blocked.
    /// * [`RouteError::Disconnected`] if the pins cannot all be connected.
    pub fn route(
        &self,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<RouteTree, RouteError> {
        let pins = graph.pins();
        if pins.len() < 2 {
            return Err(RouteError::TooFewTerminals(pins.len()));
        }
        let mut space = SearchSpace::new();
        let mut kept: Vec<GridPoint> = dedup_candidates(graph, candidates);
        let max_rounds = self.max_prune_rounds.unwrap_or(8);
        let mut tree = self.build_once(graph, pins, &kept, &mut space)?;
        for _ in 0..max_rounds {
            let redundant = redundant_candidates(graph, &tree, &kept);
            if redundant.is_empty() {
                break;
            }
            let redundant: HashSet<GridPoint> = redundant.into_iter().collect();
            kept.retain(|p| !redundant.contains(p));
            tree = self.build_once(graph, pins, &kept, &mut space)?;
        }
        // Path-assessed polish (following [14]'s OARMST step): reassess the
        // branch of every terminal once per round, keeping improvements.
        let mut terminals: Vec<GridPoint> = pins.to_vec();
        terminals.extend(kept.iter().copied());
        for _ in 0..self.polish_rounds {
            let (polished, improved) = crate::retrace::polish_round(graph, tree, &terminals)?;
            tree = polished;
            if !improved {
                break;
            }
        }
        Ok(tree)
    }

    /// Builds the OARMST once, without pruning. Exposed so callers (e.g.
    /// MCTS critics) can price intermediate states cheaply.
    ///
    /// # Errors
    ///
    /// Same as [`OarmstRouter::route`].
    pub fn route_unpruned(
        &self,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<RouteTree, RouteError> {
        let pins = graph.pins();
        if pins.len() < 2 {
            return Err(RouteError::TooFewTerminals(pins.len()));
        }
        let kept = dedup_candidates(graph, candidates);
        self.build_once(graph, pins, &kept, &mut SearchSpace::new())
    }

    /// One maze-based Prim pass over `pins + candidates`.
    fn build_once(
        &self,
        graph: &HananGraph,
        pins: &[GridPoint],
        candidates: &[GridPoint],
        space: &mut SearchSpace,
    ) -> Result<RouteTree, RouteError> {
        let mut terminals: Vec<GridPoint> = Vec::with_capacity(pins.len() + candidates.len());
        terminals.extend_from_slice(pins);
        terminals.extend_from_slice(candidates);

        for &t in pins {
            if graph.is_blocked(t) {
                return Err(RouteError::BlockedTerminal(t));
            }
        }

        let bounds = self
            .bounds_margin
            .map(|m| SearchBounds::around(graph, terminals.iter().copied(), m));

        let first = terminals[self.start % terminals.len()];
        let mut tree = RouteTree::new();
        let mut tree_vertices: Vec<GridPoint> = vec![first];
        let mut in_tree: HashSet<u32> = HashSet::new();
        in_tree.insert(graph.index(first) as u32);
        let mut unconnected: HashSet<u32> =
            terminals.iter().map(|&t| graph.index(t) as u32).collect();
        unconnected.remove(&(graph.index(first) as u32));

        let pin_set: HashSet<u32> = pins.iter().map(|&p| graph.index(p) as u32).collect();
        while !unconnected.is_empty() {
            let path = match space.shortest_path_to_set(
                graph,
                &tree_vertices,
                |i| unconnected.contains(&(i as u32)),
                bounds,
            ) {
                Ok(p) => p,
                Err(e) => {
                    // Candidates sitting in walled-off pockets are simply
                    // dropped; only unreachable *pins* are fatal.
                    if unconnected.iter().any(|t| pin_set.contains(t)) {
                        return Err(RouteError::from(e));
                    }
                    break;
                }
            };
            for (a, b) in path.edges() {
                tree.add_edge(graph, a, b);
            }
            for &p in &path.points {
                let idx = graph.index(p) as u32;
                if in_tree.insert(idx) {
                    tree_vertices.push(p);
                }
                unconnected.remove(&idx);
            }
        }
        Ok(tree)
    }
}

/// Drops candidates that are out of bounds, blocked, or duplicate a
/// pin/another candidate, preserving order.
fn dedup_candidates(graph: &HananGraph, candidates: &[GridPoint]) -> Vec<GridPoint> {
    let mut seen: HashSet<u32> = graph
        .pins()
        .iter()
        .map(|&p| graph.index(p) as u32)
        .collect();
    let mut out = Vec::with_capacity(candidates.len());
    for &c in candidates {
        if !graph.in_bounds(c) || graph.is_blocked(c) {
            continue;
        }
        if seen.insert(graph.index(c) as u32) {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::GeomError;

    fn grid_with_pins(h: usize, v: usize, m: usize, pins: &[(usize, usize, usize)]) -> HananGraph {
        let mut g = HananGraph::uniform(h, v, m, 1.0, 1.0, 3.0);
        for &(a, b, c) in pins {
            g.add_pin(GridPoint::new(a, b, c)).unwrap();
        }
        g
    }

    #[test]
    fn two_pin_route_is_shortest_path() {
        let g = grid_with_pins(6, 6, 1, &[(0, 0, 0), (5, 3, 0)]);
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        assert_eq!(tree.cost(), 8.0);
        assert!(tree.is_tree());
        assert!(tree.spans_in(&g, g.pins()));
    }

    #[test]
    fn steiner_candidate_reduces_three_pin_cost() {
        // Pins at three arms of a cross; the center is the optimal Steiner
        // point.
        let g = grid_with_pins(5, 5, 1, &[(0, 2, 0), (4, 2, 0), (2, 0, 0)]);
        let no_steiner = OarmstRouter::new().route(&g, &[]).unwrap();
        let with_steiner = OarmstRouter::new()
            .route(&g, &[GridPoint::new(2, 2, 0)])
            .unwrap();
        // Both span; with the center the tree is a perfect cross of cost 6.
        assert!(with_steiner.cost() <= no_steiner.cost());
        assert_eq!(with_steiner.cost(), 6.0);
        assert!(with_steiner.is_tree());
    }

    #[test]
    fn redundant_candidate_is_pruned_away() {
        let g = grid_with_pins(6, 1, 1, &[(0, 0, 0), (5, 0, 0)]);
        // A candidate on the straight path has degree 2 -> redundant; one
        // far off the path has degree 1 after routing -> redundant.
        let tree = OarmstRouter::new()
            .route(&g, &[GridPoint::new(2, 0, 0)])
            .unwrap();
        assert_eq!(tree.cost(), 5.0);
        // No degree>=3 vertices at all.
        assert!(tree.steiner_vertices(&g, g.pins()).is_empty());
    }

    #[test]
    fn detour_candidate_does_not_inflate_final_tree() {
        let g = grid_with_pins(6, 6, 1, &[(0, 0, 0), (5, 0, 0)]);
        // A candidate far off the straight path would add a degree-1 stub;
        // pruning must remove it and return the straight route.
        let tree = OarmstRouter::new()
            .route(&g, &[GridPoint::new(2, 5, 0)])
            .unwrap();
        assert_eq!(tree.cost(), 5.0);
    }

    #[test]
    fn route_avoids_obstacles() {
        let mut g = grid_with_pins(5, 3, 1, &[(0, 1, 0), (4, 1, 0)]);
        for v in 0..2 {
            g.add_obstacle_vertex(GridPoint::new(2, v, 0)).unwrap();
        }
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        for &(a, b) in tree.edges() {
            assert!(!g.is_blocked(g.point(a as usize)));
            assert!(!g.is_blocked(g.point(b as usize)));
        }
        // Detour over row 2: 2 right, up, 2 right... cost 6 (4 + 2 vertical).
        assert_eq!(tree.cost(), 6.0);
    }

    #[test]
    fn multilayer_route_uses_vias() {
        let g = grid_with_pins(3, 1, 2, &[(0, 0, 0), (2, 0, 1)]);
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        assert_eq!(tree.via_count(&g), 1);
        assert_eq!(tree.cost(), 5.0); // 2 horizontal + via 3
    }

    #[test]
    fn too_few_pins_is_an_error() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        assert_eq!(
            OarmstRouter::new().route(&g, &[]),
            Err(RouteError::TooFewTerminals(1))
        );
    }

    #[test]
    fn disconnected_pins_is_an_error() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        for v in 0..3 {
            g.add_obstacle_vertex(GridPoint::new(1, v, 0)).unwrap();
        }
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(2, 2, 0)).unwrap();
        assert!(matches!(
            OarmstRouter::new().route(&g, &[]),
            Err(RouteError::Disconnected { .. })
        ));
    }

    #[test]
    fn candidates_on_pins_or_obstacles_are_ignored() {
        let mut g = grid_with_pins(5, 5, 1, &[(0, 0, 0), (4, 4, 0)]);
        g.add_obstacle_vertex(GridPoint::new(2, 3, 0)).unwrap();
        let tree = OarmstRouter::new()
            .route(
                &g,
                &[
                    GridPoint::new(0, 0, 0), // pin
                    GridPoint::new(2, 3, 0), // obstacle
                    GridPoint::new(9, 9, 9), // out of bounds
                ],
            )
            .unwrap();
        assert_eq!(tree.cost(), 8.0);
    }

    #[test]
    fn route_unpruned_keeps_degree_stubs() {
        let g = grid_with_pins(6, 6, 1, &[(0, 0, 0), (5, 0, 0)]);
        let unpruned = OarmstRouter::new()
            .route_unpruned(&g, &[GridPoint::new(2, 3, 0)])
            .unwrap();
        // The stub to the off-path candidate is kept.
        assert!(unpruned.cost() > 5.0);
        assert!(unpruned.spans_in(&g, &[GridPoint::new(2, 3, 0)]));
    }

    #[test]
    fn bounded_margin_still_routes_simple_cases() {
        let g = grid_with_pins(8, 8, 1, &[(0, 0, 0), (7, 7, 0), (0, 7, 0)]);
        let tree = OarmstRouter::new()
            .with_bounds_margin(2)
            .route(&g, &[])
            .unwrap();
        assert!(tree.spans_in(&g, g.pins()));
        assert!(tree.is_tree());
    }

    #[test]
    fn random_cases_yield_valid_trees() {
        use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (3, 6)), 11);
        let router = OarmstRouter::new();
        let mut routed = 0;
        for g in gen.generate_many(15) {
            match router.route(&g, &[]) {
                Ok(tree) => {
                    assert!(tree.is_tree());
                    assert!(tree.spans_in(&g, g.pins()));
                    routed += 1;
                }
                Err(RouteError::Disconnected { .. }) => {} // obstacles may wall off pins
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(routed >= 10, "most random cases should route");
    }

    #[test]
    fn pin_on_obstacle_cannot_be_constructed() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(0, 0, 0)).unwrap();
        assert_eq!(
            g.add_pin(GridPoint::new(0, 0, 0)),
            Err(GeomError::PinOnObstacle(GridPoint::new(0, 0, 0)))
        );
    }
}

#[cfg(test)]
mod pocket_tests {
    use super::*;

    #[test]
    fn unreachable_candidates_are_dropped_not_fatal() {
        // A walled-off pocket in the corner: pins route fine, but a
        // candidate inside the pocket cannot be reached.
        let mut g = HananGraph::uniform(6, 6, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(4, 5, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(4, 4, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(5, 4, 0)).unwrap();
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(0, 5, 0)).unwrap();
        let pocket = GridPoint::new(5, 5, 0);
        let tree = OarmstRouter::new().route(&g, &[pocket]).unwrap();
        assert!(tree.spans_in(&g, g.pins()));
        assert!(!tree.contains_vertex(&g, pocket));
    }

    #[test]
    fn unreachable_pins_are_still_fatal() {
        let mut g = HananGraph::uniform(6, 6, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(4, 5, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(4, 4, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(5, 4, 0)).unwrap();
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(5, 5, 0)).unwrap(); // inside the pocket
        assert!(matches!(
            OarmstRouter::new().route(&g, &[]),
            Err(RouteError::Disconnected { .. })
        ));
    }
}
