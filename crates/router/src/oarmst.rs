//! Obstacle-avoiding rectilinear minimum spanning tree (OARMST)
//! construction: maze-router-based Prim's algorithm with redundant
//! Steiner-point removal, following \[14\] as used by the paper (Fig. 2).
//!
//! Given a Hanan graph and a set of Steiner candidates, the router:
//!
//! 1. runs Prim's algorithm where "expanding the tree" is a multi-source
//!    maze-routing (Dijkstra) query from the current tree to the nearest
//!    unconnected terminal,
//! 2. removes **redundant** Steiner candidates — those with tree degree
//!    less than 3 (Section 2.1: such a point "cannot act as an effective
//!    intermediate vertex"),
//! 3. reconstructs the spanning tree over pins plus the surviving
//!    irredundant candidates, repeating until no candidate is redundant.

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_graph::QueuePolicy;
use oarsmt_telemetry::Span;

use crate::context::RouteContext;
use crate::error::RouteError;
use crate::prune::retain_irredundant_in;
use crate::tree::RouteTree;

/// The OARMST router (maze-router-based Prim plus pruning).
///
/// Construction parameters:
///
/// * `max_prune_rounds` — upper bound on prune/reconstruct iterations
///   (each round removes at least one candidate, so the loop always
///   terminates; the bound is a safety valve, default 8),
/// * `bounds_margin` — optional bounded-exploration margin in grid steps:
///   when set, every maze query is restricted to the bounding box of the
///   remaining terminals expanded by the margin (used by the \[14\]
///   baseline; `None` searches the whole grid),
/// * `queue_policy` — the [`QueuePolicy`] every maze query runs under.
///   The default `Auto` selects Dial's bucket queue on bounded-integer
///   cost models (bit-identical to the heap, DESIGN.md §12.3);
///   `QueuePolicy::Heap` forces the oracle and `QueuePolicy::AStar` opts
///   into the goal-directed search with its documented tie-break
///   divergence (§12.4).
#[derive(Debug, Clone)]
pub struct OarmstRouter {
    max_prune_rounds: Option<usize>,
    bounds_margin: Option<usize>,
    start: usize,
    polish_rounds: usize,
    queue_policy: QueuePolicy,
}

impl Default for OarmstRouter {
    fn default() -> Self {
        OarmstRouter {
            max_prune_rounds: None,
            bounds_margin: None,
            start: 0,
            polish_rounds: 1,
            queue_policy: QueuePolicy::Auto,
        }
    }
}

impl OarmstRouter {
    /// Creates a router with default settings (unbounded search, up to 8
    /// prune rounds, one path-assessed polish round).
    pub fn new() -> Self {
        OarmstRouter::default()
    }

    /// Sets the number of path-assessed polish rounds run after pruning
    /// (builder style; 0 disables polishing).
    #[must_use]
    pub fn with_polish_rounds(mut self, rounds: usize) -> Self {
        self.polish_rounds = rounds;
        self
    }

    /// Limits prune/reconstruct rounds (builder style).
    #[must_use]
    pub fn with_max_prune_rounds(mut self, rounds: usize) -> Self {
        self.max_prune_rounds = Some(rounds);
        self
    }

    /// Enables bounded exploration with the given margin (builder style).
    #[must_use]
    pub fn with_bounds_margin(mut self, margin: usize) -> Self {
        self.bounds_margin = Some(margin);
        self
    }

    /// Removes any bounded-exploration margin, restoring whole-grid
    /// searches (builder style; used by
    /// [`SweepSchedule`](crate::sweep::SweepSchedule) to derive the
    /// unbounded fallback stage from a bounded base router).
    #[must_use]
    pub fn without_bounds_margin(mut self) -> Self {
        self.bounds_margin = None;
        self
    }

    /// Selects the [`QueuePolicy`] for every maze query this router issues,
    /// including the polish pass (builder style; default
    /// [`QueuePolicy::Auto`]).
    #[must_use]
    pub fn with_queue_policy(mut self, policy: QueuePolicy) -> Self {
        self.queue_policy = policy;
        self
    }

    /// The [`QueuePolicy`] this router's maze queries run under.
    #[must_use]
    pub fn queue_policy(&self) -> QueuePolicy {
        self.queue_policy
    }

    /// Starts Prim's construction from the `start`-th terminal (modulo the
    /// terminal count) instead of the first. Different insertion orders
    /// yield different trees; the \[14\] baseline assesses several
    /// (builder style).
    #[must_use]
    pub fn with_start(mut self, start: usize) -> Self {
        self.start = start;
        self
    }

    /// Builds the OARMST connecting `graph.pins()` plus the given Steiner
    /// `candidates`, pruning redundant candidates.
    ///
    /// Candidates that duplicate a pin or sit on an obstacle are ignored.
    ///
    /// # Errors
    ///
    /// * [`RouteError::TooFewTerminals`] if the graph has fewer than two
    ///   pins.
    /// * [`RouteError::BlockedTerminal`] if a pin is blocked.
    /// * [`RouteError::Disconnected`] if the pins cannot all be connected.
    pub fn route(
        &self,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<RouteTree, RouteError> {
        self.route_in(&mut RouteContext::new(), graph, candidates)
    }

    /// [`OarmstRouter::route`] through a caller-owned [`RouteContext`]:
    /// bit-identical results, no per-query allocation of the Dijkstra
    /// arrays, index sets, or scratch buffers.
    ///
    /// # Errors
    ///
    /// Same as [`OarmstRouter::route`].
    pub fn route_in(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<RouteTree, RouteError> {
        let pins = graph.pins();
        if pins.len() < 2 {
            return Err(RouteError::TooFewTerminals(pins.len()));
        }
        ctx.trace.begin(Span::RoutePrepare);
        ctx.bind(graph);
        let mut kept = std::mem::take(&mut ctx.kept);
        dedup_candidates_in(ctx, graph, candidates, &mut kept);
        ctx.trace.end(Span::RoutePrepare);
        let max_rounds = self.max_prune_rounds.unwrap_or(8);
        let mut tree = ctx.take_tree();
        if let Err(e) = self.build_once_in(ctx, graph, &kept, &mut tree) {
            ctx.recycle_tree(tree);
            ctx.kept = kept;
            return Err(e);
        }
        for _ in 0..max_rounds {
            let removed = retain_irredundant_in(&mut ctx.cand_degrees, graph, &tree, &mut kept);
            ctx.counters
                .add(oarsmt_telemetry::Counter::SteinerPruned, removed as u64);
            if removed == 0 {
                break;
            }
            if let Err(e) = self.build_once_in(ctx, graph, &kept, &mut tree) {
                ctx.recycle_tree(tree);
                ctx.kept = kept;
                return Err(e);
            }
        }
        // Path-assessed polish (following [14]'s OARMST step): reassess the
        // branch of every terminal once per round, keeping improvements.
        let mut terminals = std::mem::take(&mut ctx.terminals);
        terminals.clear();
        terminals.extend_from_slice(pins);
        terminals.extend_from_slice(&kept);
        ctx.kept = kept;
        for _ in 0..self.polish_rounds {
            ctx.trace.begin(Span::RouteRetrace);
            let round = crate::retrace::polish_round_policy_in(
                ctx,
                graph,
                tree,
                &terminals,
                self.queue_policy,
            );
            ctx.trace.end(Span::RouteRetrace);
            match round {
                Ok((polished, improved)) => {
                    tree = polished;
                    if !improved {
                        break;
                    }
                }
                Err(e) => {
                    ctx.terminals = terminals;
                    return Err(e);
                }
            }
        }
        ctx.terminals = terminals;
        Ok(tree)
    }

    /// [`OarmstRouter::route_in`] returning only the tree cost, keeping the
    /// tree itself pooled inside the context (the MCTS critic's hot path).
    ///
    /// # Errors
    ///
    /// Same as [`OarmstRouter::route`].
    pub fn route_cost_in(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<f64, RouteError> {
        let tree = self.route_in(ctx, graph, candidates)?;
        let cost = tree.cost();
        ctx.recycle_tree(tree);
        Ok(cost)
    }

    /// Builds the OARMST once, without pruning. Exposed so callers (e.g.
    /// MCTS critics) can price intermediate states cheaply.
    ///
    /// # Errors
    ///
    /// Same as [`OarmstRouter::route`].
    pub fn route_unpruned(
        &self,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<RouteTree, RouteError> {
        self.route_unpruned_in(&mut RouteContext::new(), graph, candidates)
    }

    /// [`OarmstRouter::route_unpruned`] through a caller-owned
    /// [`RouteContext`].
    ///
    /// # Errors
    ///
    /// Same as [`OarmstRouter::route`].
    pub fn route_unpruned_in(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<RouteTree, RouteError> {
        let pins = graph.pins();
        if pins.len() < 2 {
            return Err(RouteError::TooFewTerminals(pins.len()));
        }
        ctx.trace.begin(Span::RoutePrepare);
        ctx.bind(graph);
        let mut kept = std::mem::take(&mut ctx.kept);
        dedup_candidates_in(ctx, graph, candidates, &mut kept);
        ctx.trace.end(Span::RoutePrepare);
        let mut tree = ctx.take_tree();
        let built = self.build_once_in(ctx, graph, &kept, &mut tree);
        ctx.kept = kept;
        match built {
            Ok(()) => Ok(tree),
            Err(e) => {
                ctx.recycle_tree(tree);
                Err(e)
            }
        }
    }

    /// [`OarmstRouter::route_unpruned_in`] returning only the cost, keeping
    /// the tree pooled (used to price MCTS states).
    ///
    /// # Errors
    ///
    /// Same as [`OarmstRouter::route`].
    pub fn cost_unpruned_in(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<f64, RouteError> {
        let tree = self.route_unpruned_in(ctx, graph, candidates)?;
        let cost = tree.cost();
        ctx.recycle_tree(tree);
        Ok(cost)
    }

    /// One maze-based Prim pass over `graph.pins() + candidates`, built
    /// into `tree` (cleared first) using the context's workspaces.
    fn build_once_in(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        candidates: &[GridPoint],
        tree: &mut RouteTree,
    ) -> Result<(), RouteError> {
        let pins = graph.pins();
        ctx.terminals.clear();
        ctx.terminals.extend_from_slice(pins);
        ctx.terminals.extend_from_slice(candidates);

        for &t in pins {
            if graph.is_blocked(t) {
                return Err(RouteError::BlockedTerminal(t));
            }
        }

        let bounds = self
            .bounds_margin
            .map(|m| ctx.bounds_for(graph, candidates, m));
        if bounds.is_none() {
            // Unbounded queries run on the CSR adjacency (bit-identical,
            // but without per-relaxation grid arithmetic).
            ctx.adj.ensure(graph);
        }

        let first = ctx.terminals[self.start % ctx.terminals.len()];
        tree.clear();
        ctx.tree_vertices.clear();
        ctx.tree_vertices.push(first);
        ctx.in_tree.begin(graph.len());
        ctx.in_tree.insert(graph.index(first));
        ctx.unconnected.begin(graph.len());
        // Track how many *pins* remain unconnected separately: only they
        // make an unreachable remainder fatal.
        let mut unconnected_pins = 0usize;
        for &p in pins {
            if ctx.unconnected.insert(graph.index(p)) {
                unconnected_pins += 1;
            }
        }
        for &c in candidates {
            ctx.unconnected.insert(graph.index(c));
        }
        if ctx.unconnected.remove(graph.index(first)) && ctx.is_pin_index(graph.index(first) as u32)
        {
            unconnected_pins -= 1;
        }

        let use_astar = self.queue_policy == QueuePolicy::AStar;
        while !ctx.unconnected.is_empty() {
            if use_astar {
                // The A* target hint: the terminals still unconnected.
                // Exactly the set `is_target` accepts, as the hint
                // contract requires.
                ctx.unconnected_points.clear();
                for k in 0..ctx.terminals.len() {
                    let t = ctx.terminals[k];
                    if ctx.unconnected.contains(graph.index(t)) {
                        ctx.unconnected_points.push(t);
                    }
                }
            }
            ctx.trace.begin(Span::RouteDijkstra);
            let searched = match bounds {
                None => ctx.space.shortest_path_to_set_csr_policy_into(
                    graph,
                    &ctx.adj,
                    &ctx.tree_vertices,
                    |i| ctx.unconnected.contains(i),
                    self.queue_policy,
                    &ctx.unconnected_points,
                    &mut ctx.path_buf,
                ),
                Some(_) => ctx.space.shortest_path_to_set_policy_into(
                    graph,
                    &ctx.tree_vertices,
                    |i| ctx.unconnected.contains(i),
                    bounds,
                    self.queue_policy,
                    &ctx.unconnected_points,
                    &mut ctx.path_buf,
                ),
            };
            ctx.trace.end(Span::RouteDijkstra);
            if let Err(e) = searched {
                // Candidates sitting in walled-off pockets are simply
                // dropped; only unreachable *pins* are fatal.
                if unconnected_pins > 0 {
                    return Err(RouteError::from(e));
                }
                break;
            }
            for w in ctx.path_buf.windows(2) {
                tree.add_edge(graph, w[0], w[1]);
            }
            for k in 0..ctx.path_buf.len() {
                let p = ctx.path_buf[k];
                let idx = graph.index(p);
                if ctx.in_tree.insert(idx) {
                    ctx.tree_vertices.push(p);
                }
                if ctx.unconnected.remove(idx) && ctx.is_pin_index(idx as u32) {
                    unconnected_pins -= 1;
                }
            }
        }
        Ok(())
    }
}

/// Drops candidates that are out of bounds, blocked, or duplicate a
/// pin/another candidate, preserving order; writes the survivors into
/// `out` (cleared first) using the context's stamped scratch set.
fn dedup_candidates_in(
    ctx: &mut RouteContext,
    graph: &HananGraph,
    candidates: &[GridPoint],
    out: &mut Vec<GridPoint>,
) {
    out.clear();
    ctx.seen.begin(graph.len());
    for &i in &ctx.pin_indices {
        ctx.seen.insert(i as usize);
    }
    for &c in candidates {
        if !graph.in_bounds(c) || graph.is_blocked(c) {
            continue;
        }
        if ctx.seen.insert(graph.index(c)) {
            out.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::GeomError;

    fn grid_with_pins(h: usize, v: usize, m: usize, pins: &[(usize, usize, usize)]) -> HananGraph {
        let mut g = HananGraph::uniform(h, v, m, 1.0, 1.0, 3.0);
        for &(a, b, c) in pins {
            g.add_pin(GridPoint::new(a, b, c)).unwrap();
        }
        g
    }

    #[test]
    fn two_pin_route_is_shortest_path() {
        let g = grid_with_pins(6, 6, 1, &[(0, 0, 0), (5, 3, 0)]);
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        assert_eq!(tree.cost(), 8.0);
        assert!(tree.is_tree());
        assert!(tree.spans_in(&g, g.pins()));
    }

    #[test]
    fn steiner_candidate_reduces_three_pin_cost() {
        // Pins at three arms of a cross; the center is the optimal Steiner
        // point.
        let g = grid_with_pins(5, 5, 1, &[(0, 2, 0), (4, 2, 0), (2, 0, 0)]);
        let no_steiner = OarmstRouter::new().route(&g, &[]).unwrap();
        let with_steiner = OarmstRouter::new()
            .route(&g, &[GridPoint::new(2, 2, 0)])
            .unwrap();
        // Both span; with the center the tree is a perfect cross of cost 6.
        assert!(with_steiner.cost() <= no_steiner.cost());
        assert_eq!(with_steiner.cost(), 6.0);
        assert!(with_steiner.is_tree());
    }

    #[test]
    fn redundant_candidate_is_pruned_away() {
        let g = grid_with_pins(6, 1, 1, &[(0, 0, 0), (5, 0, 0)]);
        // A candidate on the straight path has degree 2 -> redundant; one
        // far off the path has degree 1 after routing -> redundant.
        let tree = OarmstRouter::new()
            .route(&g, &[GridPoint::new(2, 0, 0)])
            .unwrap();
        assert_eq!(tree.cost(), 5.0);
        // No degree>=3 vertices at all.
        assert!(tree.steiner_vertices(&g, g.pins()).is_empty());
    }

    #[test]
    fn detour_candidate_does_not_inflate_final_tree() {
        let g = grid_with_pins(6, 6, 1, &[(0, 0, 0), (5, 0, 0)]);
        // A candidate far off the straight path would add a degree-1 stub;
        // pruning must remove it and return the straight route.
        let tree = OarmstRouter::new()
            .route(&g, &[GridPoint::new(2, 5, 0)])
            .unwrap();
        assert_eq!(tree.cost(), 5.0);
    }

    #[test]
    fn route_avoids_obstacles() {
        let mut g = grid_with_pins(5, 3, 1, &[(0, 1, 0), (4, 1, 0)]);
        for v in 0..2 {
            g.add_obstacle_vertex(GridPoint::new(2, v, 0)).unwrap();
        }
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        for &(a, b) in tree.edges() {
            assert!(!g.is_blocked(g.point(a as usize)));
            assert!(!g.is_blocked(g.point(b as usize)));
        }
        // Detour over row 2: 2 right, up, 2 right... cost 6 (4 + 2 vertical).
        assert_eq!(tree.cost(), 6.0);
    }

    #[test]
    fn multilayer_route_uses_vias() {
        let g = grid_with_pins(3, 1, 2, &[(0, 0, 0), (2, 0, 1)]);
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        assert_eq!(tree.via_count(&g), 1);
        assert_eq!(tree.cost(), 5.0); // 2 horizontal + via 3
    }

    #[test]
    fn too_few_pins_is_an_error() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        assert_eq!(
            OarmstRouter::new().route(&g, &[]),
            Err(RouteError::TooFewTerminals(1))
        );
    }

    #[test]
    fn disconnected_pins_is_an_error() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        for v in 0..3 {
            g.add_obstacle_vertex(GridPoint::new(1, v, 0)).unwrap();
        }
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(2, 2, 0)).unwrap();
        assert!(matches!(
            OarmstRouter::new().route(&g, &[]),
            Err(RouteError::Disconnected { .. })
        ));
    }

    #[test]
    fn candidates_on_pins_or_obstacles_are_ignored() {
        let mut g = grid_with_pins(5, 5, 1, &[(0, 0, 0), (4, 4, 0)]);
        g.add_obstacle_vertex(GridPoint::new(2, 3, 0)).unwrap();
        let tree = OarmstRouter::new()
            .route(
                &g,
                &[
                    GridPoint::new(0, 0, 0), // pin
                    GridPoint::new(2, 3, 0), // obstacle
                    GridPoint::new(9, 9, 9), // out of bounds
                ],
            )
            .unwrap();
        assert_eq!(tree.cost(), 8.0);
    }

    #[test]
    fn route_unpruned_keeps_degree_stubs() {
        let g = grid_with_pins(6, 6, 1, &[(0, 0, 0), (5, 0, 0)]);
        let unpruned = OarmstRouter::new()
            .route_unpruned(&g, &[GridPoint::new(2, 3, 0)])
            .unwrap();
        // The stub to the off-path candidate is kept.
        assert!(unpruned.cost() > 5.0);
        assert!(unpruned.spans_in(&g, &[GridPoint::new(2, 3, 0)]));
    }

    #[test]
    fn bounded_margin_still_routes_simple_cases() {
        let g = grid_with_pins(8, 8, 1, &[(0, 0, 0), (7, 7, 0), (0, 7, 0)]);
        let tree = OarmstRouter::new()
            .with_bounds_margin(2)
            .route(&g, &[])
            .unwrap();
        assert!(tree.spans_in(&g, g.pins()));
        assert!(tree.is_tree());
    }

    #[test]
    fn random_cases_yield_valid_trees() {
        use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (3, 6)), 11);
        let router = OarmstRouter::new();
        let mut routed = 0;
        for g in gen.generate_many(15) {
            match router.route(&g, &[]) {
                Ok(tree) => {
                    assert!(tree.is_tree());
                    assert!(tree.spans_in(&g, g.pins()));
                    routed += 1;
                }
                Err(RouteError::Disconnected { .. }) => {} // obstacles may wall off pins
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(routed >= 10, "most random cases should route");
    }

    #[test]
    fn pin_on_obstacle_cannot_be_constructed() {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(0, 0, 0)).unwrap();
        assert_eq!(
            g.add_pin(GridPoint::new(0, 0, 0)),
            Err(GeomError::PinOnObstacle(GridPoint::new(0, 0, 0)))
        );
    }
}

#[cfg(test)]
mod pocket_tests {
    use super::*;

    #[test]
    fn unreachable_candidates_are_dropped_not_fatal() {
        // A walled-off pocket in the corner: pins route fine, but a
        // candidate inside the pocket cannot be reached.
        let mut g = HananGraph::uniform(6, 6, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(4, 5, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(4, 4, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(5, 4, 0)).unwrap();
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(0, 5, 0)).unwrap();
        let pocket = GridPoint::new(5, 5, 0);
        let tree = OarmstRouter::new().route(&g, &[pocket]).unwrap();
        assert!(tree.spans_in(&g, g.pins()));
        assert!(!tree.contains_vertex(&g, pocket));
    }

    #[test]
    fn unreachable_pins_are_still_fatal() {
        let mut g = HananGraph::uniform(6, 6, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(4, 5, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(4, 4, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(5, 4, 0)).unwrap();
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(5, 5, 0)).unwrap(); // inside the pocket
        assert!(matches!(
            OarmstRouter::new().route(&g, &[]),
            Err(RouteError::Disconnected { .. })
        ));
    }
}
