//! The per-layout routing/inference workspace.
//!
//! Combinatorial-MCTS training prices every search node with a full OARMST
//! route, so rollout routing dominates training wall-clock. A
//! [`RouteContext`] owns every piece of reusable state that the pre-refactor
//! pipeline re-allocated per query: the epoch-stamped Dijkstra arrays, the
//! stamped index sets of the Prim construction, cached per-layout pin and
//! valid-vertex index sets, the scratch buffers of the selector/critic
//! inference path, and a pool of [`RouteTree`]s. One context serves one
//! layout at a time and is rebound (cheaply, and automatically) when given
//! a different layout.
//!
//! Ownership model (see DESIGN.md §"Workspace ownership"): contexts are
//! created by the owner of a routing loop — `RlRouter` holds one, each MCTS
//! search creates or borrows one, and every worker thread of the `parallel`
//! pool carries its own — and are never shared across threads. All state in
//! a context is scratch: reusing a context never changes routing results,
//! only allocation behavior (the property tests in
//! `crates/router/tests/context_properties.rs` pin this bit-for-bit).

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_graph::dijkstra::{DijkstraWorkspace, SearchBounds};
use oarsmt_graph::{GridAdjacency, StampMap, StampSet};
use oarsmt_nn::NnWorkspace;
use oarsmt_telemetry::{Counter, CounterSet, TraceRecorder};

use crate::tree::{RouteTree, TreeAdjacency};

/// A queue of same-shape selector states awaiting one batched
/// `fsp` evaluation.
///
/// States are stored flattened in the `Selector::fsp_batch_into_ws`
/// calling convention: `pts` concatenates every queued state's pin list
/// and `lens[i]` records state `i`'s pin count. The queue never drops
/// capacity on [`EvalQueue::clear`], so a steady-state
/// push-flush-clear cycle performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct EvalQueue {
    pts: Vec<GridPoint>,
    lens: Vec<u32>,
}

impl EvalQueue {
    /// Appends one state (its full extra-pin list) to the queue.
    pub fn push_state(&mut self, pins: &[GridPoint]) {
        self.pts.extend_from_slice(pins);
        self.lens.push(pins.len() as u32);
    }

    /// Number of queued states.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// `true` when no states are queued.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Drops all queued states, keeping capacity.
    pub fn clear(&mut self) {
        self.pts.clear();
        self.lens.clear();
    }

    /// Flattened pin lists of all queued states.
    pub fn pts(&self) -> &[GridPoint] {
        &self.pts
    }

    /// Per-state pin counts, parallel to [`EvalQueue::pts`].
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }
}

/// A reusable per-layout routing/inference workspace.
///
/// The context is bound to a layout on first use (see
/// [`RouteContext::bind`]) and rebinds itself whenever it is handed a graph
/// with a different size or pin set. Reuse across queries — and across
/// layouts — is always safe; stale state is invalidated by generation
/// counters rather than cleared.
///
/// ```
/// use oarsmt_geom::{HananGraph, GridPoint};
/// use oarsmt_router::{OarmstRouter, RouteContext};
///
/// let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
/// g.add_pin(GridPoint::new(0, 0, 0))?;
/// g.add_pin(GridPoint::new(4, 4, 0))?;
/// let router = OarmstRouter::new();
/// let mut ctx = RouteContext::new();
/// let first = router.route_in(&mut ctx, &g, &[])?; // allocates workspaces
/// let again = router.route_in(&mut ctx, &g, &[])?; // reuses them
/// assert_eq!(first, again);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// The cached index sets follow the bound layout:
///
/// ```
/// use oarsmt_geom::{HananGraph, GridPoint};
/// use oarsmt_router::RouteContext;
///
/// let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
/// g.add_pin(GridPoint::new(0, 0, 0))?;
/// g.add_pin(GridPoint::new(2, 2, 0))?;
/// let mut ctx = RouteContext::new();
/// ctx.bind(&g);
/// assert_eq!(ctx.pin_indices().len(), 2);
/// assert_eq!(ctx.empty_indices().len(), g.len() - 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouteContext {
    // --- layout binding (recomputed only when the layout changes) ---
    bound_len: usize,
    bound_pin_points: Vec<GridPoint>,
    /// Sorted pin indices of the bound layout.
    pub(crate) pin_indices: Vec<u32>,
    /// Ascending indices of `VertexKind::Empty` vertices at bind time.
    empty_indices: Vec<u32>,
    /// Unmargined bounding box of the pins, `(h_lo, h_hi, v_lo, v_hi)`.
    pin_box: Option<(usize, usize, usize, usize)>,

    // --- routing workspaces (crate-internal) ---
    pub(crate) space: DijkstraWorkspace,
    /// CSR neighbor lists for the bound layout; revalidated against the
    /// live graph (including obstacles) by [`GridAdjacency::ensure`], so
    /// it is *not* tied to the looser pin-set key of [`RouteContext::bind`].
    pub(crate) adj: GridAdjacency,
    pub(crate) in_tree: StampSet,
    pub(crate) unconnected: StampSet,
    pub(crate) seen: StampSet,
    pub(crate) mark: StampSet,
    pub(crate) terminals: Vec<GridPoint>,
    pub(crate) tree_vertices: Vec<GridPoint>,
    pub(crate) kept: Vec<GridPoint>,
    /// Maze-query result buffer (`shortest_path_to_set_*_into` writes
    /// here), so the Prim/retrace loops never allocate a `GridPath`.
    pub(crate) path_buf: Vec<GridPoint>,
    /// Currently-unconnected terminal points, maintained per Prim
    /// iteration as the A\* target hint (only filled under
    /// [`QueuePolicy::AStar`](oarsmt_graph::QueuePolicy)).
    pub(crate) unconnected_points: Vec<GridPoint>,
    /// Sorted-half-edge adjacency of the tree under polish.
    pub(crate) tree_adj: TreeAdjacency,
    /// Per-vertex tree degrees of the redundant-candidate prune.
    pub(crate) cand_degrees: StampMap,
    tree_pool: Vec<RouteTree>,

    // --- inference scratch (public: owned here, filled by oarsmt/oarsmt-mcts) ---
    /// Selector-output scratch (`Selector::fsp_into` writes here).
    pub fsp: Vec<f32>,
    /// Queue of same-shape selector states awaiting a batched `fsp`
    /// flush through `Selector::fsp_batch_into_ws`. MCTS leaf
    /// evaluation pushes states here and flushes; at `B = 1` the flush
    /// is bit- and allocation-identical to the single-sample path.
    pub evals: EvalQueue,
    /// Critic completion buffer: selected Steiner points plus the top-k
    /// completion, reused across rollouts.
    pub completion: Vec<GridPoint>,
    /// `(probability, vertex index)` scratch for top-k selection.
    pub scored: Vec<(f32, u32)>,
    /// Excluded-vertex-index scratch for top-k selection.
    pub excluded: Vec<u32>,
    /// Selected-vertex-index scratch (MCTS parent-pointer reconstruction).
    pub selected_idx: Vec<u32>,
    /// Selected-point scratch mirroring [`RouteContext::selected_idx`].
    pub selected_points: Vec<GridPoint>,
    /// Neural-network scratch arena for the selector inference path
    /// (`Selector::fsp_into_ws` threads this through `UNet3d::predict_in`
    /// so repeated inference performs no tensor allocation).
    pub nn: NnWorkspace,
    /// Tier A telemetry owned at the router level (pruned Steiner points,
    /// tree-pool hits/misses, merged MCTS counters). Read the whole
    /// context's totals with [`RouteContext::counters_total`].
    pub counters: CounterSet,
    /// Flight recorder for the routing phases (prepare / Dijkstra /
    /// retrace). Disabled (capacity 0) by default so the hot path pays one
    /// branch per phase; enable with `ctx.trace.enable(cap)` before the
    /// queries of interest and export via `oarsmt trace`.
    pub trace: TraceRecorder,
}

impl RouteContext {
    /// Creates an empty context; all workspaces grow on first use.
    pub fn new() -> Self {
        RouteContext::default()
    }

    /// Binds the context to `graph`, recomputing the cached per-layout
    /// index sets. A no-op when already bound to a layout with the same
    /// vertex count and pin set, so routers call this unconditionally per
    /// query.
    ///
    /// Obstacle edits to an already-bound graph do not trigger a rebind
    /// (the cached [`RouteContext::empty_indices`] may then contain
    /// vertices that are no longer empty; consumers re-check the live
    /// vertex kind, so this only costs a few wasted scan entries).
    pub fn bind(&mut self, graph: &HananGraph) {
        if self.bound_len == graph.len() && self.bound_pin_points == graph.pins() {
            return;
        }
        self.bound_len = graph.len();
        self.bound_pin_points.clear();
        self.bound_pin_points.extend_from_slice(graph.pins());
        self.pin_indices = graph.pin_index_set();
        self.empty_indices = graph.empty_index_set();
        self.pin_box = {
            let mut lo = (usize::MAX, usize::MAX);
            let mut hi = (0usize, 0usize);
            for p in graph.pins() {
                lo.0 = lo.0.min(p.h);
                hi.0 = hi.0.max(p.h);
                lo.1 = lo.1.min(p.v);
                hi.1 = hi.1.max(p.v);
            }
            (!graph.pins().is_empty()).then_some((lo.0, hi.0, lo.1, hi.1))
        };
    }

    /// Sorted linear indices of the bound layout's pins.
    pub fn pin_indices(&self) -> &[u32] {
        &self.pin_indices
    }

    /// Ascending linear indices of the vertices that were
    /// [`oarsmt_geom::VertexKind::Empty`] at bind time — the valid Steiner
    /// candidates. Consumers must re-check the live vertex kind (see
    /// [`RouteContext::bind`]).
    pub fn empty_indices(&self) -> &[u32] {
        &self.empty_indices
    }

    /// Whether `idx` is a pin of the bound layout.
    #[inline]
    pub fn is_pin_index(&self, idx: u32) -> bool {
        self.pin_indices.binary_search(&idx).is_ok()
    }

    /// The search bounds the bounded-exploration router uses for a query
    /// over the bound pins plus `extra` terminals: their joint bounding box
    /// expanded by `margin` and clipped to the graph (equal to
    /// [`SearchBounds::around`] over pins ∪ extra).
    pub(crate) fn bounds_for(
        &self,
        graph: &HananGraph,
        extra: &[GridPoint],
        margin: usize,
    ) -> SearchBounds {
        let mut pin_box = self.pin_box;
        for p in extra {
            let (h_lo, h_hi, v_lo, v_hi) = pin_box.unwrap_or((usize::MAX, 0, usize::MAX, 0));
            pin_box = Some((h_lo.min(p.h), h_hi.max(p.h), v_lo.min(p.v), v_hi.max(p.v)));
        }
        match pin_box {
            None => SearchBounds {
                h_lo: 0,
                h_hi: graph.h() - 1,
                v_lo: 0,
                v_hi: graph.v() - 1,
            },
            Some((h_lo, h_hi, v_lo, v_hi)) => SearchBounds {
                h_lo: h_lo.saturating_sub(margin),
                h_hi: (h_hi + margin).min(graph.h() - 1),
                v_lo: v_lo.saturating_sub(margin),
                v_hi: (v_hi + margin).min(graph.v() - 1),
            },
        }
    }

    /// Takes a cleared [`RouteTree`] from the pool (or a fresh one when the
    /// pool is empty). Return it with [`RouteContext::recycle_tree`] to keep
    /// its allocations alive for the next query.
    pub fn take_tree(&mut self) -> RouteTree {
        let mut t = match self.tree_pool.pop() {
            Some(t) => {
                self.counters.bump(Counter::TreePoolHits);
                t
            }
            None => {
                self.counters.bump(Counter::TreePoolMisses);
                RouteTree::default()
            }
        };
        t.clear();
        t
    }

    /// The context's merged Tier A counters: router-level counters plus the
    /// embedded Dijkstra and NN workspace counters, summed index by index.
    /// Monotone across queries; callers wanting per-phase numbers take a
    /// reading before and use [`CounterSet::delta_since`].
    #[must_use]
    pub fn counters_total(&self) -> CounterSet {
        let mut total = self.counters;
        total.merge_from(&self.space.counters);
        total.merge_from(&self.nn.counters);
        total
    }

    /// Returns a tree to the pool for later reuse.
    pub fn recycle_tree(&mut self, tree: RouteTree) {
        self.tree_pool.push(tree);
    }
}

// One context travels with each worker of the `parallel` pool.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<RouteContext>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oarmst::OarmstRouter;

    fn pins(g: &mut HananGraph, pts: &[(usize, usize, usize)]) {
        for &(h, v, m) in pts {
            g.add_pin(GridPoint::new(h, v, m)).unwrap();
        }
    }

    #[test]
    fn bind_is_idempotent_and_rebinds_on_layout_change() {
        let mut g1 = HananGraph::uniform(4, 4, 1, 1.0, 1.0, 3.0);
        pins(&mut g1, &[(0, 0, 0), (3, 3, 0)]);
        let mut ctx = RouteContext::new();
        ctx.bind(&g1);
        let pins1 = ctx.pin_indices().to_vec();
        ctx.bind(&g1);
        assert_eq!(ctx.pin_indices(), &pins1[..]);

        let mut g2 = HananGraph::uniform(4, 4, 1, 1.0, 1.0, 3.0);
        pins(&mut g2, &[(1, 1, 0), (2, 3, 0)]);
        ctx.bind(&g2);
        assert_ne!(ctx.pin_indices(), &pins1[..], "different pin set rebinds");
        assert_eq!(ctx.pin_indices().len(), 2);
    }

    #[test]
    fn bounds_for_matches_search_bounds_around() {
        let mut g = HananGraph::uniform(9, 7, 1, 1.0, 1.0, 3.0);
        pins(&mut g, &[(2, 1, 0), (6, 5, 0)]);
        let mut ctx = RouteContext::new();
        ctx.bind(&g);
        let extra = [GridPoint::new(8, 0, 0)];
        for margin in [0, 1, 3, 20] {
            let mut all: Vec<GridPoint> = g.pins().to_vec();
            all.extend_from_slice(&extra);
            let expected = SearchBounds::around(&g, all.iter().copied(), margin);
            assert_eq!(
                ctx.bounds_for(&g, &extra, margin),
                expected,
                "margin {margin}"
            );
        }
    }

    #[test]
    fn tree_pool_round_trips() {
        let mut ctx = RouteContext::new();
        let g = HananGraph::uniform(3, 1, 1, 1.0, 1.0, 3.0);
        let mut t = ctx.take_tree();
        t.add_edge(&g, GridPoint::new(0, 0, 0), GridPoint::new(1, 0, 0));
        ctx.recycle_tree(t);
        let t2 = ctx.take_tree();
        assert!(t2.is_edgeless(), "pooled trees come back cleared");
        assert_eq!(t2.cost(), 0.0);
    }

    #[test]
    fn context_reuse_across_layouts_matches_fresh_routing() {
        let router = OarmstRouter::new();
        let mut ctx = RouteContext::new();
        for seed in 0..4u64 {
            use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
            let mut gen = CaseGenerator::new(GeneratorConfig::tiny(7, 7, 2, (3, 5)), seed);
            for g in gen.generate_many(4) {
                let fresh = router.route(&g, &[]);
                let reused = router.route_in(&mut ctx, &g, &[]);
                match (fresh, reused) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.cost().to_bits(), b.cost().to_bits());
                        assert_eq!(a.edges(), b.edges());
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("fresh {a:?} vs reused {b:?}"),
                }
            }
        }
    }
}
