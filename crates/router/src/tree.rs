//! Routing trees over Hanan grid graphs.

use std::collections::{HashMap, HashSet};
use std::fmt;

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_graph::UnionFind;
use serde::{Deserialize, Serialize};

/// A rectilinear routing tree embedded in a Hanan grid graph: a set of grid
/// edges (each between adjacent vertices) plus the total routing cost.
///
/// The tree is built by routers in this crate; its invariants (acyclicity,
/// connectivity, spanning the terminals) can be checked with
/// [`RouteTree::is_tree`] and [`RouteTree::spans_in`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RouteTree {
    /// Grid edges as `(min_index, max_index)` pairs of linear vertex
    /// indices; each pair appears once.
    edges: Vec<(u32, u32)>,
    edge_set: HashSet<(u32, u32)>,
    cost: f64,
}

impl RouteTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RouteTree::default()
    }

    /// Total routing cost (each shared grid edge counted once).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// Removes all edges, keeping the allocations (used by the
    /// [`crate::context::RouteContext`] tree pool).
    pub fn clear(&mut self) {
        self.edges.clear();
        self.edge_set.clear();
        self.cost = 0.0;
    }

    /// Makes `self` a copy of `other`, reusing `self`'s allocations where
    /// possible (a `clone_from` under a clearer name).
    pub fn copy_from(&mut self, other: &RouteTree) {
        self.edges.clear();
        self.edges.extend_from_slice(&other.edges);
        // Rebuild the set from the edge list rather than `clone_from` it:
        // clearing keeps the table's capacity, so a warm tree performs no
        // hash-table allocation here.
        self.edge_set.clear();
        for &e in &other.edges {
            self.edge_set.insert(e);
        }
        self.cost = other.cost;
    }

    /// Number of grid edges in the tree.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the tree contains no edges.
    pub fn is_edgeless(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges as linear-index pairs.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Adds a grid edge between adjacent vertices `a` and `b` if not already
    /// present, accumulating its cost. Returns `true` if the edge was new.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are not grid neighbors.
    pub fn add_edge(&mut self, graph: &HananGraph, a: GridPoint, b: GridPoint) -> bool {
        // lint: panic-ok(documented caller contract — see # Panics above; a non-adjacent edge is a corrupt tree and must not be silently priced)
        let w = graph
            .edge_cost(a, b)
            .expect("route tree edges must connect grid neighbors");
        let ai = graph.index(a) as u32;
        let bi = graph.index(b) as u32;
        let key = (ai.min(bi), ai.max(bi));
        if self.edge_set.insert(key) {
            self.edges.push(key);
            self.cost += w;
            true
        } else {
            false
        }
    }

    /// Removes a grid edge (given as a vertex-index pair in either order),
    /// subtracting its cost. Returns `true` if the edge was present.
    pub fn remove_edge(&mut self, graph: &HananGraph, a: u32, b: u32) -> bool {
        let key = (a.min(b), a.max(b));
        if self.edge_set.remove(&key) {
            self.edges.retain(|&e| e != key);
            let pa = graph.point(key.0 as usize);
            let pb = graph.point(key.1 as usize);
            // lint: panic-ok(structural: the key came out of edge_set, so add_edge already proved adjacency when it was inserted)
            self.cost -= graph
                .edge_cost(pa, pb)
                .expect("stored edges connect grid neighbors");
            true
        } else {
            false
        }
    }

    /// Adjacency lists of the tree (vertex index → neighbor indices).
    pub fn adjacency(&self) -> HashMap<u32, Vec<u32>> {
        let mut adj: HashMap<u32, Vec<u32>> = HashMap::with_capacity(self.edges.len() + 1);
        for &(a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        adj
    }

    /// Whether the tree uses the given vertex.
    pub fn contains_vertex(&self, graph: &HananGraph, p: GridPoint) -> bool {
        let i = graph.index(p) as u32;
        self.edges.iter().any(|&(a, b)| a == i || b == i)
    }

    /// The set of vertices used by the tree (linear indices).
    pub fn vertices(&self) -> HashSet<u32> {
        let mut s = HashSet::with_capacity(self.edges.len() + 1);
        for &(a, b) in &self.edges {
            s.insert(a);
            s.insert(b);
        }
        s
    }

    /// Degree of every used vertex (linear index → degree).
    pub fn degrees(&self) -> HashMap<u32, u32> {
        let mut d: HashMap<u32, u32> = HashMap::with_capacity(self.edges.len() + 1);
        for &(a, b) in &self.edges {
            *d.entry(a).or_insert(0) += 1;
            *d.entry(b).or_insert(0) += 1;
        }
        d
    }

    /// Degree of one vertex in the tree.
    pub fn degree_of(&self, graph: &HananGraph, p: GridPoint) -> u32 {
        let i = graph.index(p) as u32;
        self.edges
            .iter()
            .map(|&(a, b)| (a == i) as u32 + (b == i) as u32)
            .sum()
    }

    /// Whether the edge set forms a single tree: connected and acyclic
    /// (`|E| = |V| - 1` with all unions succeeding).
    pub fn is_tree(&self) -> bool {
        if self.edges.is_empty() {
            return true; // empty or single-vertex tree
        }
        let verts: Vec<u32> = {
            // lint: ordered-ok(drained into a Vec and sorted before use)
            let mut v: Vec<u32> = self.vertices().into_iter().collect();
            v.sort_unstable();
            v
        };
        let index_of: HashMap<u32, usize> =
            verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut uf = UnionFind::new(verts.len());
        for &(a, b) in &self.edges {
            if !uf.union(index_of[&a], index_of[&b]) {
                return false; // cycle
            }
        }
        uf.components() == 1
    }

    /// Whether every terminal is a vertex of the tree, resolving indices
    /// through `graph`.
    pub fn spans_in(&self, graph: &HananGraph, terminals: &[GridPoint]) -> bool {
        if terminals.len() <= 1 && self.edges.is_empty() {
            return true;
        }
        let verts = self.vertices();
        terminals
            .iter()
            .all(|&t| verts.contains(&(graph.index(t) as u32)))
    }

    /// Grid vertices acting as Steiner vertices of the tree: degree ≥ 3 and
    /// not one of `exclude` (typically the pins).
    pub fn steiner_vertices(&self, graph: &HananGraph, exclude: &[GridPoint]) -> Vec<GridPoint> {
        let excl: HashSet<u32> = exclude.iter().map(|&p| graph.index(p) as u32).collect();
        // lint: ordered-ok(collected into a Vec and sorted before return)
        let mut out: Vec<GridPoint> = self
            .degrees()
            .into_iter()
            .filter(|&(v, d)| d >= 3 && !excl.contains(&v))
            .map(|(v, _)| graph.point(v as usize))
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of via edges (layer changes) in the tree.
    pub fn via_count(&self, graph: &HananGraph) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| {
                let pa = graph.point(a as usize);
                let pb = graph.point(b as usize);
                pa.m != pb.m
            })
            .count()
    }
}

/// Reusable sorted-half-edge adjacency of a [`RouteTree`] — the
/// deterministic, allocation-free replacement for [`RouteTree::adjacency`]
/// in the retrace/polish hot path.
///
/// Rebuilding collects every edge as two `(vertex, neighbor)` half-edges
/// and sorts them; neighbor queries binary-search the sorted list. Neighbor
/// *order* therefore differs from the hash-map adjacency's insertion order,
/// but the retrace consumers only ever inspect degree-1 and degree-2
/// neighborhoods ("the single neighbor", "the neighbor that is not
/// `prev`"), which are order-insensitive, so routing results are
/// bit-identical.
#[derive(Debug, Clone, Default)]
pub struct TreeAdjacency {
    pairs: Vec<(u32, u32)>,
}

impl TreeAdjacency {
    /// Creates an empty adjacency; storage grows on first rebuild.
    pub fn new() -> Self {
        TreeAdjacency::default()
    }

    /// Rebuilds the half-edge list from `tree`, reusing storage.
    pub fn rebuild(&mut self, tree: &RouteTree) {
        self.pairs.clear();
        for &(a, b) in tree.edges() {
            self.pairs.push((a, b));
            self.pairs.push((b, a));
        }
        // Unstable sort: half-edges of a simple graph are unique, so the
        // tuple order is strict (no equal elements) and the result is
        // deterministic; unlike the stable sort it allocates no merge
        // buffer.
        self.pairs.sort_unstable();
    }

    /// The `(vertex, neighbor)` half-edges out of `v`, ascending by
    /// neighbor index.
    pub fn neighbors(&self, v: u32) -> &[(u32, u32)] {
        let lo = self.pairs.partition_point(|&(x, _)| x < v);
        let hi = self.pairs.partition_point(|&(x, _)| x <= v);
        &self.pairs[lo..hi]
    }

    /// Degree of `v` in the underlying tree (0 when absent).
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }
}

impl PartialEq for RouteTree {
    fn eq(&self, other: &Self) -> bool {
        self.edge_set == other.edge_set
    }
}

impl fmt::Display for RouteTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "route tree: {} edges, cost {}",
            self.edges.len(),
            self.cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> HananGraph {
        HananGraph::uniform(4, 4, 2, 1.0, 1.0, 3.0)
    }

    #[test]
    fn add_edge_dedups_and_accumulates_cost() {
        let g = grid();
        let mut t = RouteTree::new();
        let a = GridPoint::new(0, 0, 0);
        let b = GridPoint::new(1, 0, 0);
        assert!(t.add_edge(&g, a, b));
        assert!(!t.add_edge(&g, b, a), "reversed duplicate is rejected");
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.cost(), 1.0);
        assert!(t.add_edge(&g, b, GridPoint::new(1, 0, 1)));
        assert_eq!(t.cost(), 4.0); // via costs 3
    }

    #[test]
    #[should_panic(expected = "grid neighbors")]
    fn add_edge_rejects_non_neighbors() {
        let g = grid();
        let mut t = RouteTree::new();
        t.add_edge(&g, GridPoint::new(0, 0, 0), GridPoint::new(2, 0, 0));
    }

    #[test]
    fn is_tree_detects_cycles_and_disconnection() {
        let g = grid();
        let mut t = RouteTree::new();
        let p = |h, v| GridPoint::new(h, v, 0);
        t.add_edge(&g, p(0, 0), p(1, 0));
        t.add_edge(&g, p(1, 0), p(1, 1));
        assert!(t.is_tree());
        // Disconnect: add a far-away edge.
        t.add_edge(&g, p(3, 3), p(2, 3));
        assert!(!t.is_tree());
        // Close a cycle instead.
        let mut t2 = RouteTree::new();
        t2.add_edge(&g, p(0, 0), p(1, 0));
        t2.add_edge(&g, p(1, 0), p(1, 1));
        t2.add_edge(&g, p(1, 1), p(0, 1));
        t2.add_edge(&g, p(0, 1), p(0, 0));
        assert!(!t2.is_tree());
    }

    #[test]
    fn degrees_and_steiner_vertices() {
        let g = grid();
        let mut t = RouteTree::new();
        let c = GridPoint::new(1, 1, 0);
        t.add_edge(&g, c, GridPoint::new(0, 1, 0));
        t.add_edge(&g, c, GridPoint::new(2, 1, 0));
        t.add_edge(&g, c, GridPoint::new(1, 0, 0));
        assert_eq!(t.degree_of(&g, c), 3);
        assert_eq!(t.steiner_vertices(&g, &[]), vec![c]);
        assert!(t.steiner_vertices(&g, &[c]).is_empty());
    }

    #[test]
    fn spans_in_checks_all_terminals() {
        let g = grid();
        let mut t = RouteTree::new();
        let a = GridPoint::new(0, 0, 0);
        let b = GridPoint::new(1, 0, 0);
        t.add_edge(&g, a, b);
        assert!(t.spans_in(&g, &[a, b]));
        assert!(!t.spans_in(&g, &[a, b, GridPoint::new(3, 3, 0)]));
    }

    #[test]
    fn via_count_counts_layer_changes() {
        let g = grid();
        let mut t = RouteTree::new();
        t.add_edge(&g, GridPoint::new(0, 0, 0), GridPoint::new(0, 0, 1));
        t.add_edge(&g, GridPoint::new(0, 0, 1), GridPoint::new(1, 0, 1));
        assert_eq!(t.via_count(&g), 1);
    }

    #[test]
    fn tree_adjacency_matches_hash_adjacency() {
        let g = grid();
        let p = |h, v| GridPoint::new(h, v, 0);
        let mut t = RouteTree::new();
        t.add_edge(&g, p(1, 1), p(0, 1));
        t.add_edge(&g, p(1, 1), p(2, 1));
        t.add_edge(&g, p(1, 1), p(1, 0));
        t.add_edge(&g, p(2, 1), p(3, 1));
        let mut adj = TreeAdjacency::new();
        adj.rebuild(&t);
        let hash_adj = t.adjacency();
        for (&v, nbrs) in &hash_adj {
            let mut expect: Vec<u32> = nbrs.clone();
            expect.sort_unstable();
            let got: Vec<u32> = adj.neighbors(v).iter().map(|&(_, n)| n).collect();
            assert_eq!(got, expect, "vertex {v}");
            assert_eq!(adj.degree(v), nbrs.len());
        }
        assert!(adj.neighbors(999).is_empty());
        assert_eq!(adj.degree(999), 0);
        // Rebuild on a smaller tree reuses storage and forgets old edges.
        let mut t2 = RouteTree::new();
        t2.add_edge(&g, p(0, 0), p(1, 0));
        adj.rebuild(&t2);
        assert_eq!(adj.degree(g.index(p(1, 1)) as u32), 0);
        assert_eq!(adj.degree(g.index(p(0, 0)) as u32), 1);
    }

    #[test]
    fn copy_from_reuses_storage_and_matches() {
        let g = grid();
        let p = |h, v| GridPoint::new(h, v, 0);
        let mut a = RouteTree::new();
        a.add_edge(&g, p(0, 0), p(1, 0));
        a.add_edge(&g, p(1, 0), p(1, 1));
        let mut b = RouteTree::new();
        b.add_edge(&g, p(3, 3), p(2, 3));
        b.copy_from(&a);
        assert_eq!(a, b);
        assert_eq!(a.cost().to_bits(), b.cost().to_bits());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn equality_ignores_edge_insertion_order() {
        let g = grid();
        let p = |h, v| GridPoint::new(h, v, 0);
        let mut t1 = RouteTree::new();
        t1.add_edge(&g, p(0, 0), p(1, 0));
        t1.add_edge(&g, p(1, 0), p(1, 1));
        let mut t2 = RouteTree::new();
        t2.add_edge(&g, p(1, 0), p(1, 1));
        t2.add_edge(&g, p(0, 0), p(1, 0));
        assert_eq!(t1, t2);
    }
}
