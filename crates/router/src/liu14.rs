//! Geometric-reduction baseline router in the spirit of \[16\]
//! (C.-H. Liu et al., *"Efficient Multilayer Obstacle-Avoiding Rectilinear
//! Steiner Tree Construction Based on Geometric Reduction"*, TCAD 2014).
//!
//! The paper copies \[16\]'s published Table-4 numbers; this module provides
//! a behavioural stand-in (DESIGN.md §5, substitution 3). On top of the
//! spanning-graph construction it performs one geometric-reduction step:
//! grid vertices where embedded MST paths meet with degree ≥ 3 become
//! Steiner candidates, and the tree is reconstructed over pins plus the
//! candidates with redundant-candidate pruning. Quality therefore lands
//! between \[12\] (no Steiner refinement) and \[14\] (iterated retracing),
//! matching the ordering of Table 4.

use std::fmt;

use oarsmt_geom::HananGraph;

use crate::error::RouteError;
use crate::oarmst::OarmstRouter;
use crate::spanning::SpanningRouter;
use crate::tree::RouteTree;

/// The \[16\]-style geometric-reduction router.
#[derive(Debug, Clone, Default)]
pub struct Liu14Router {
    _private: (),
}

impl Liu14Router {
    /// Creates the router.
    pub fn new() -> Self {
        Liu14Router::default()
    }

    /// Routes the graph's pins: spanning construction, then one
    /// Steiner-candidate reduction pass, keeping the cheaper tree.
    ///
    /// # Errors
    ///
    /// Same as [`SpanningRouter::route`].
    pub fn route(&self, graph: &HananGraph) -> Result<RouteTree, RouteError> {
        let base = SpanningRouter::new().route(graph)?;
        let implied = base.steiner_vertices(graph, graph.pins());
        if implied.is_empty() {
            return Ok(base);
        }
        let reduced = OarmstRouter::new().route(graph, &implied)?;
        Ok(if reduced.cost() < base.cost() {
            reduced
        } else {
            base
        })
    }
}

impl fmt::Display for Liu14Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("geometric-reduction router")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
    use oarsmt_geom::GridPoint;

    #[test]
    fn reduction_improves_on_spanning_for_crosses() {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        let span = SpanningRouter::new().route(&g).unwrap();
        let liu = Liu14Router::new().route(&g).unwrap();
        assert!(liu.cost() <= span.cost());
    }

    #[test]
    fn never_worse_than_spanning_on_random_cases() {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(9, 9, 2, (4, 7)), 31);
        for g in gen.generate_many(10) {
            let span = match SpanningRouter::new().route(&g) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let liu = Liu14Router::new().route(&g).unwrap();
            assert!(liu.cost() <= span.cost() + 1e-9);
            assert!(liu.spans_in(&g, g.pins()));
        }
    }
}
