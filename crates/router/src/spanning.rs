//! Spanning-graph baseline router in the spirit of \[12\]
//! (C.-W. Lin et al., *"Multilayer obstacle-avoiding rectilinear Steiner
//! tree construction based on spanning graphs"*, TCAD 2008).
//!
//! The paper copies \[12\]'s published Table-4 numbers; this module provides
//! a behavioural stand-in (DESIGN.md §5, substitution 3): a terminal-level
//! minimum spanning tree whose edge weights are obstacle-avoiding maze
//! distances, with each MST edge embedded independently. No Steiner points
//! are inserted and no retracing is performed, so this router produces the
//! *highest* routing costs of the three baselines — matching its role in
//! Table 4.

use std::fmt;

use oarsmt_geom::HananGraph;
use oarsmt_graph::dijkstra::SearchSpace;
use oarsmt_graph::mst::prim_mst;

use crate::error::RouteError;
use crate::tree::RouteTree;

/// The \[12\]-style spanning-graph router.
#[derive(Debug, Clone, Default)]
pub struct SpanningRouter {
    _private: (),
}

impl SpanningRouter {
    /// Creates the router.
    pub fn new() -> Self {
        SpanningRouter::default()
    }

    /// Routes the graph's pins by embedding each MST edge independently.
    ///
    /// # Errors
    ///
    /// * [`RouteError::TooFewTerminals`] if the graph has fewer than two
    ///   pins.
    /// * [`RouteError::BlockedTerminal`] / [`RouteError::Disconnected`] on
    ///   blocked or mutually unreachable pins.
    pub fn route(&self, graph: &HananGraph) -> Result<RouteTree, RouteError> {
        let pins = graph.pins();
        let n = pins.len();
        if n < 2 {
            return Err(RouteError::TooFewTerminals(n));
        }
        let mut space = SearchSpace::new();

        // Dense pairwise obstacle-avoiding distances.
        let mut dist = vec![0.0f64; n * n];
        for (i, &p) in pins.iter().enumerate() {
            let d = space.distances_from(graph, p).map_err(RouteError::from)?;
            for (j, &q) in pins.iter().enumerate() {
                dist[i * n + j] = d[graph.index(q)];
            }
        }
        let mst = prim_mst(&dist, n).map_err(RouteError::from)?;

        // Embed each MST edge with an independent maze route.
        let mut tree = RouteTree::new();
        for e in &mst {
            let target = graph.index(pins[e.b]);
            let path = space
                .shortest_path_to_set(graph, &[pins[e.a]], |i| i == target, None)
                .map_err(RouteError::from)?;
            for (a, b) in path.edges() {
                tree.add_edge(graph, a, b);
            }
        }
        Ok(tree)
    }
}

impl fmt::Display for SpanningRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("spanning-graph router")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oarmst::OarmstRouter;
    use oarsmt_geom::GridPoint;

    fn pins(g: &mut HananGraph, pts: &[(usize, usize, usize)]) {
        for &(h, v, m) in pts {
            g.add_pin(GridPoint::new(h, v, m)).unwrap();
        }
    }

    #[test]
    fn two_pin_route_matches_shortest_path() {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        pins(&mut g, &[(0, 0, 0), (4, 4, 0)]);
        let t = SpanningRouter::new().route(&g).unwrap();
        assert_eq!(t.cost(), 8.0);
    }

    #[test]
    fn spanning_router_never_beats_oarmst_with_good_candidates() {
        // For a 4-arm cross, OARMST with the center candidate gives cost 8
        // while the spanning tree without Steiner points costs more.
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        pins(&mut g, &[(0, 2, 0), (4, 2, 0), (2, 0, 0), (2, 4, 0)]);
        let span = SpanningRouter::new().route(&g).unwrap();
        let steiner = OarmstRouter::new()
            .route(&g, &[GridPoint::new(2, 2, 0)])
            .unwrap();
        assert_eq!(steiner.cost(), 8.0);
        assert!(span.cost() >= steiner.cost());
    }

    #[test]
    fn spanning_tree_spans_and_connects() {
        use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(9, 9, 2, (4, 7)), 23);
        for g in gen.generate_many(8) {
            match SpanningRouter::new().route(&g) {
                Ok(t) => {
                    assert!(t.spans_in(&g, g.pins()));
                    // Edge-sharing may create degree>=3 joints but the edge
                    // set must still be connected; is_tree can be false only
                    // through cycles formed by overlapping embeddings, which
                    // dedup prevents for distinct MST paths in practice.
                    assert!(t.cost() > 0.0);
                }
                Err(RouteError::Disconnected { .. }) => {}
                Err(e) => panic!("unexpected: {e}"),
            }
        }
    }

    #[test]
    fn too_few_pins_is_an_error() {
        let g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        assert_eq!(
            SpanningRouter::new().route(&g),
            Err(RouteError::TooFewTerminals(0))
        );
    }
}
