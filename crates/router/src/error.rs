//! Error types for routers.

use std::error::Error;
use std::fmt;

use oarsmt_geom::GridPoint;
use oarsmt_graph::GraphError;

/// Errors produced while constructing routing trees.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RouteError {
    /// Fewer than two terminals were supplied.
    TooFewTerminals(usize),
    /// A terminal is blocked by an obstacle.
    BlockedTerminal(GridPoint),
    /// Two terminals cannot be connected without crossing an obstacle.
    Disconnected {
        /// A terminal in the reachable component.
        reached: GridPoint,
    },
    /// An underlying graph search failed.
    Search(GraphError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooFewTerminals(n) => {
                write!(f, "routing needs at least 2 terminals, got {n}")
            }
            RouteError::BlockedTerminal(p) => {
                write!(f, "terminal {p} is blocked by an obstacle")
            }
            RouteError::Disconnected { reached } => write!(
                f,
                "terminals are not all reachable from {reached} without crossing obstacles"
            ),
            RouteError::Search(e) => write!(f, "graph search failed: {e}"),
        }
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RouteError::Search(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for RouteError {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::BlockedSource(p) => RouteError::BlockedTerminal(p),
            GraphError::Unreachable { from, .. } => RouteError::Disconnected { reached: from },
            other => RouteError::Search(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_errors_convert_to_route_errors() {
        let p = GridPoint::new(1, 2, 0);
        assert_eq!(
            RouteError::from(GraphError::BlockedSource(p)),
            RouteError::BlockedTerminal(p)
        );
        assert_eq!(
            RouteError::from(GraphError::Unreachable { from: p, to: None }),
            RouteError::Disconnected { reached: p }
        );
        assert_eq!(
            RouteError::from(GraphError::EmptyTerminalSet),
            RouteError::Search(GraphError::EmptyTerminalSet)
        );
    }

    #[test]
    fn display_and_source() {
        let e = RouteError::Search(GraphError::EmptyTerminalSet);
        assert!(e.to_string().contains("graph search failed"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&RouteError::TooFewTerminals(1)).is_none());
    }
}
