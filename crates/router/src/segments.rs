//! Physical geometry export: converting a routed [`RouteTree`] back into
//! maximal rectilinear wire segments and via stacks in original
//! coordinates — what a downstream flow (DEF writer, DRC, parasitic
//! extraction) consumes.

use std::collections::BTreeMap;
use std::fmt;

use oarsmt_geom::{Coord, GridPoint, HananGraph};
use serde::{Deserialize, Serialize};

use crate::tree::RouteTree;

/// A maximal straight wire segment on one routing layer, in physical
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WireSegment {
    /// Start coordinate (lexicographically smaller end).
    pub from: Coord,
    /// End coordinate.
    pub to: Coord,
    /// Routing layer.
    pub layer: usize,
}

impl WireSegment {
    /// Whether the segment runs horizontally (constant `y`).
    pub fn is_horizontal(&self) -> bool {
        self.from.y == self.to.y
    }

    /// Physical (rectilinear) length of the segment.
    pub fn length(&self) -> i64 {
        self.from.manhattan(self.to)
    }
}

impl fmt::Display for WireSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} on layer {}", self.from, self.to, self.layer)
    }
}

/// A via between two adjacent routing layers at one physical location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Via {
    /// Physical location.
    pub at: Coord,
    /// Lower layer of the pair (`layer` to `layer + 1`).
    pub layer: usize,
}

impl fmt::Display for Via {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "via {} layers {}-{}",
            self.at,
            self.layer,
            self.layer + 1
        )
    }
}

/// The physical geometry of a routed tree: merged wire segments plus vias.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouteGeometry {
    /// Maximal straight wire segments (collinear grid edges merged).
    pub wires: Vec<WireSegment>,
    /// Vias, one per layer change.
    pub vias: Vec<Via>,
}

impl RouteGeometry {
    /// Total physical wirelength (vias not counted).
    pub fn wirelength(&self) -> i64 {
        self.wires.iter().map(WireSegment::length).sum()
    }

    /// Extracts the geometry of a routed tree, merging collinear runs of
    /// grid edges into maximal segments.
    pub fn extract(graph: &HananGraph, tree: &RouteTree) -> RouteGeometry {
        // Collect the grid edges per direction.
        #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
        enum Dir {
            H,
            V,
        }
        // Key: (layer, row-or-col fixed index) -> sorted variable indices
        // of covered gaps. A BTreeMap so the emission order below is the
        // key order, independent of edge insertion order and hasher state.
        let mut runs: BTreeMap<(Dir, usize, usize), Vec<usize>> = BTreeMap::new();
        let mut vias: Vec<Via> = Vec::new();
        for &(a, b) in tree.edges() {
            let pa = graph.point(a as usize);
            let pb = graph.point(b as usize);
            if pa.m != pb.m {
                vias.push(Via {
                    at: graph.physical(pa),
                    layer: pa.m.min(pb.m),
                });
            } else if pa.v == pb.v {
                // Horizontal edge between columns min(h)..min(h)+1.
                runs.entry((Dir::H, pa.m, pa.v))
                    .or_default()
                    .push(pa.h.min(pb.h));
            } else {
                runs.entry((Dir::V, pa.m, pa.h))
                    .or_default()
                    .push(pa.v.min(pb.v));
            }
        }
        let mut wires = Vec::new();
        for ((dir, layer, fixed), mut gaps) in runs {
            gaps.sort_unstable();
            gaps.dedup();
            let mut i = 0;
            while i < gaps.len() {
                let start = gaps[i];
                let mut end = start;
                while i + 1 < gaps.len() && gaps[i + 1] == end + 1 {
                    end = gaps[i + 1];
                    i += 1;
                }
                i += 1;
                let (from, to) = match dir {
                    Dir::H => (
                        Coord::new(graph.xs()[start], graph.ys()[fixed]),
                        Coord::new(graph.xs()[end + 1], graph.ys()[fixed]),
                    ),
                    Dir::V => (
                        Coord::new(graph.xs()[fixed], graph.ys()[start]),
                        Coord::new(graph.xs()[fixed], graph.ys()[end + 1]),
                    ),
                };
                wires.push(WireSegment { from, to, layer });
            }
        }
        wires.sort_by_key(|w| (w.layer, w.from, w.to));
        vias.sort_by_key(|v| (v.layer, v.at));
        RouteGeometry { wires, vias }
    }
}

impl fmt::Display for RouteGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} wire segments (length {}), {} vias",
            self.wires.len(),
            self.wirelength(),
            self.vias.len()
        )
    }
}

/// Renders one layer of a routed tree as ASCII art (debugging aid):
/// `#` obstacles, `o` pins, `+` tree vertices, `-`/`|` tree edges,
/// `.` empty.
pub fn render_layer(graph: &HananGraph, tree: &RouteTree, layer: usize) -> String {
    use oarsmt_geom::VertexKind;
    let (h_dim, v_dim, _) = graph.dims();
    let verts = tree.vertices();
    // Character grid: vertices at even positions, edges between.
    let w = 2 * h_dim - 1;
    let rows = 2 * v_dim - 1;
    let mut canvas = vec![vec![' '; w]; rows];
    for v in 0..v_dim {
        for h in 0..h_dim {
            let p = GridPoint::new(h, v, layer);
            let idx = graph.index(p) as u32;
            canvas[2 * v][2 * h] = match graph.kind(p) {
                VertexKind::Obstacle => '#',
                VertexKind::Pin => 'o',
                VertexKind::Empty if verts.contains(&idx) => '+',
                VertexKind::Empty => '.',
            };
        }
    }
    for &(a, b) in tree.edges() {
        let pa = graph.point(a as usize);
        let pb = graph.point(b as usize);
        if pa.m != layer || pb.m != layer {
            // Mark via endpoints on this layer.
            if pa.m == layer && pa.m != pb.m {
                canvas[2 * pa.v][2 * pa.h] = '*';
            }
            if pb.m == layer && pa.m != pb.m {
                canvas[2 * pb.v][2 * pb.h] = '*';
            }
            continue;
        }
        if pa.v == pb.v {
            canvas[2 * pa.v][pa.h + pb.h] = '-';
        } else {
            canvas[pa.v + pb.v][2 * pa.h] = '|';
        }
    }
    // v grows upward: print top row first.
    let mut out = String::new();
    for row in canvas.iter().rev() {
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oarmst::OarmstRouter;

    fn l_route() -> (HananGraph, RouteTree) {
        let mut g = HananGraph::uniform(4, 4, 2, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 3, 1)).unwrap();
        let t = OarmstRouter::new().route(&g, &[]).unwrap();
        (g, t)
    }

    #[test]
    fn collinear_edges_merge_into_one_segment() {
        let mut g = HananGraph::uniform(5, 1, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(4, 0, 0)).unwrap();
        let t = OarmstRouter::new().route(&g, &[]).unwrap();
        let geo = RouteGeometry::extract(&g, &t);
        assert_eq!(geo.wires.len(), 1);
        assert_eq!(geo.wires[0].length(), 4);
        assert!(geo.vias.is_empty());
    }

    #[test]
    fn vias_are_extracted_with_locations() {
        let (g, t) = l_route();
        let geo = RouteGeometry::extract(&g, &t);
        assert_eq!(geo.vias.len(), t.via_count(&g));
        assert!(!geo.vias.is_empty());
        for v in &geo.vias {
            assert_eq!(v.layer, 0);
        }
    }

    #[test]
    fn wirelength_matches_unit_cost_tree() {
        // With unit costs, the physical wirelength equals the tree cost
        // minus via costs.
        let (g, t) = l_route();
        let geo = RouteGeometry::extract(&g, &t);
        let via_cost_total = geo.vias.len() as f64 * g.via_cost();
        assert!((geo.wirelength() as f64 - (t.cost() - via_cost_total)).abs() < 1e-9);
    }

    #[test]
    fn segments_use_physical_coordinates() {
        use oarsmt_geom::{Layout, Obstacle, Pin, Rect};
        let layout = Layout::new(1)
            .with_pin(Pin::new(Coord::new(0, 0), 0))
            .with_pin(Pin::new(Coord::new(100, 0), 0))
            .with_obstacle(Obstacle::new(Rect::new(40, 10, 60, 20), 0));
        let g = HananGraph::from_layout(&layout).unwrap();
        let t = OarmstRouter::new().route(&g, &[]).unwrap();
        let geo = RouteGeometry::extract(&g, &t);
        assert_eq!(geo.wirelength(), 100);
        let xs: Vec<i64> = geo.wires.iter().flat_map(|w| [w.from.x, w.to.x]).collect();
        assert!(xs.contains(&0) && xs.contains(&100));
    }

    #[test]
    fn extraction_order_is_deterministic_across_rebuilds() {
        use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
        let router = OarmstRouter::new();
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (3, 6)), 23);
        for g in gen.generate_many(6) {
            let Ok(tree) = router.route(&g, &[]) else {
                continue;
            };
            let reference = RouteGeometry::extract(&g, &tree);
            // Same tree re-extracted: identical segment *lists* (order
            // included), run after run.
            for _ in 0..3 {
                assert_eq!(RouteGeometry::extract(&g, &tree), reference);
            }
            // Same edge set inserted in reverse order: still the same list.
            let mut reversed = RouteTree::new();
            for &(a, b) in tree.edges().iter().rev() {
                reversed.add_edge(&g, g.point(a as usize), g.point(b as usize));
            }
            assert_eq!(RouteGeometry::extract(&g, &reversed), reference);
            // And a fresh routing run of the same layout.
            let again = router.route(&g, &[]).unwrap();
            assert_eq!(RouteGeometry::extract(&g, &again), reference);
        }
    }

    #[test]
    fn ascii_rendering_shows_pins_and_edges() {
        let (g, t) = l_route();
        let art = render_layer(&g, &t, 0);
        assert!(art.contains('o'), "pins rendered");
        assert!(art.contains('-') || art.contains('|'), "edges rendered");
        assert_eq!(art.lines().count(), 2 * g.v() - 1);
    }
}
