//! OARMST construction and algorithmic ML-OARSMT baseline routers.
//!
//! The paper's router (Fig. 2) ends with an **OARMST** step: a maze-router
//! based Prim's algorithm connects all pins and selected Steiner points,
//! removes redundant Steiner points (degree < 3), and reconstructs the
//! spanning tree — following \[14\]. That step lives in [`oarmst`].
//!
//! Three algorithmic baselines are re-implemented here (the paper compares
//! against their released binaries / published numbers; see DESIGN.md §5):
//!
//! * [`lin18`] — \[14\], the strongest baseline: maze routing with bounded
//!   exploration and path-assessed retracing (Tables 2–4),
//! * [`liu14`] — \[16\]-like geometric-reduction router (Table 4),
//! * [`spanning`] — \[12\]-like spanning-graph router (Table 4).
//!
//! # Example
//!
//! ```
//! use oarsmt_geom::{HananGraph, GridPoint};
//! use oarsmt_router::oarmst::OarmstRouter;
//!
//! let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
//! g.add_pin(GridPoint::new(0, 0, 0))?;
//! g.add_pin(GridPoint::new(4, 0, 0))?;
//! g.add_pin(GridPoint::new(2, 4, 0))?;
//! let tree = OarmstRouter::new().route(&g, &[])?;
//! assert!(tree.spans_in(&g, g.pins()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod context;
pub mod error;
pub mod exact;
pub mod lin18;
pub mod liu14;
pub mod oarmst;
pub mod prune;
pub mod retrace;
pub mod segments;
pub mod spanning;
pub mod sweep;
pub mod tree;

pub use context::{EvalQueue, RouteContext};
pub use error::RouteError;
pub use lin18::Lin18Router;
pub use liu14::Liu14Router;
pub use oarmst::OarmstRouter;
// Re-exported so routing callers can pick a policy without depending on
// `oarsmt-graph` directly.
pub use oarsmt_graph::QueuePolicy;
pub use spanning::SpanningRouter;
pub use sweep::SweepSchedule;
pub use tree::{RouteTree, TreeAdjacency};
