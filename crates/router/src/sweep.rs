//! Bounded exploration sweeps: escalating search-window schedules over
//! the OARMST router.
//!
//! \[14\]'s bounded exploration (DESIGN.md §5) restricts every maze query
//! to the terminals' bounding box plus a margin — fast, but a layout whose
//! cheapest connection detours outside the window routes worse or not at
//! all. The original baseline hard-codes one recovery: retry unbounded
//! when the bounded pass disconnects. A [`SweepSchedule`] generalizes that
//! into a reusable policy — try a sequence of margins, escalating only
//! when the current window cannot connect the pins, with a final unbounded
//! stage as the safety net. [`SweepSchedule::bounded_then_unbounded`] is
//! exactly the \[14\] behaviour; wider ladders trade extra routing
//! attempts for tighter windows on easy layouts.
//!
//! Escalation triggers **only** on
//! [`RouteError::Disconnected`](crate::RouteError) — a stage that routes
//! successfully is final even if a wider window might be cheaper, which is
//! what keeps the schedule's result deterministic and the \[14\]
//! behaviour unchanged.

use oarsmt_geom::{GridPoint, HananGraph};

use crate::context::RouteContext;
use crate::error::RouteError;
use crate::oarmst::OarmstRouter;
use crate::tree::RouteTree;

/// An escalating bounded-exploration schedule: a sequence of margins to
/// try in order, optionally ending in an unbounded search.
///
/// ```
/// use oarsmt_geom::{GridPoint, HananGraph};
/// use oarsmt_router::{OarmstRouter, SweepSchedule};
///
/// // Two pins whose cheapest route must leave their bounding box: a wall
/// // between them forces a detour around its far end.
/// let mut g = HananGraph::uniform(9, 9, 1, 1.0, 1.0, 3.0);
/// for v in 0..8 {
///     g.add_obstacle_vertex(GridPoint::new(4, v, 0))?;
/// }
/// g.add_pin(GridPoint::new(3, 0, 0))?;
/// g.add_pin(GridPoint::new(5, 0, 0))?;
///
/// // Margin 1 cannot connect them; the schedule escalates to unbounded.
/// let schedule = SweepSchedule::bounded_then_unbounded(1);
/// let tree = schedule.route(&OarmstRouter::new(), &g, &[])?;
/// assert!(tree.spans_in(&g, g.pins()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SweepSchedule {
    /// Margins to try, in order.
    margins: Vec<usize>,
    /// Whether an unbounded stage follows the margins.
    unbounded_fallback: bool,
}

impl SweepSchedule {
    /// The \[14\] schedule: one bounded pass at `margin`, then unbounded
    /// if the window cannot connect the pins.
    #[must_use]
    pub fn bounded_then_unbounded(margin: usize) -> Self {
        SweepSchedule {
            margins: vec![margin],
            unbounded_fallback: true,
        }
    }

    /// A ladder of margins tried in order, then unbounded. Margins should
    /// ascend (not enforced — a descending ladder just wastes stages).
    #[must_use]
    pub fn escalating(margins: &[usize]) -> Self {
        SweepSchedule {
            margins: margins.to_vec(),
            unbounded_fallback: true,
        }
    }

    /// Only the given margins, with **no** unbounded safety net: a layout
    /// no window can connect returns
    /// [`RouteError::Disconnected`](crate::RouteError).
    #[must_use]
    pub fn bounded_only(margins: &[usize]) -> Self {
        SweepSchedule {
            margins: margins.to_vec(),
            unbounded_fallback: false,
        }
    }

    /// A single unbounded search (no windows at all).
    #[must_use]
    pub fn unbounded() -> Self {
        SweepSchedule {
            margins: Vec::new(),
            unbounded_fallback: true,
        }
    }

    /// The number of stages this schedule can run.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.margins.len() + usize::from(self.unbounded_fallback)
    }

    /// Routes `graph.pins()` plus `candidates` through the schedule:
    /// each stage clones `base` with its margin (the final stage, when
    /// enabled, clears the margin) and escalates on
    /// [`RouteError::Disconnected`](crate::RouteError). All other router
    /// settings — prune rounds, polish rounds, start terminal, queue
    /// policy — come from `base` unchanged.
    ///
    /// # Errors
    ///
    /// Same as [`OarmstRouter::route`]; `Disconnected` is only returned
    /// once every stage has failed with it.
    pub fn route(
        &self,
        base: &OarmstRouter,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<RouteTree, RouteError> {
        self.route_in(&mut RouteContext::new(), base, graph, candidates)
    }

    /// [`SweepSchedule::route`] through a caller-owned [`RouteContext`].
    ///
    /// # Errors
    ///
    /// See [`SweepSchedule::route`].
    pub fn route_in(
        &self,
        ctx: &mut RouteContext,
        base: &OarmstRouter,
        graph: &HananGraph,
        candidates: &[GridPoint],
    ) -> Result<RouteTree, RouteError> {
        let mut last_disconnect: Option<RouteError> = None;
        for &margin in &self.margins {
            let stage = base.clone().with_bounds_margin(margin);
            match stage.route_in(ctx, graph, candidates) {
                Err(e @ RouteError::Disconnected { .. }) => last_disconnect = Some(e),
                other => return other,
            }
        }
        if self.unbounded_fallback {
            return base
                .clone()
                .without_bounds_margin()
                .route_in(ctx, graph, candidates);
        }
        Err(last_disconnect.unwrap_or(RouteError::TooFewTerminals(graph.pins().len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::GridPoint;

    /// A wall between two pins that margin 1 cannot route around.
    fn walled() -> HananGraph {
        let mut g = HananGraph::uniform(9, 9, 1, 1.0, 1.0, 3.0);
        for v in 0..8 {
            g.add_obstacle_vertex(GridPoint::new(4, v, 0)).unwrap();
        }
        g.add_pin(GridPoint::new(3, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(5, 0, 0)).unwrap();
        g
    }

    #[test]
    fn matches_manual_bounded_then_unbounded_fallback() {
        let g = walled();
        let base = OarmstRouter::new();
        // The hand-written [14] fallback this schedule replaces.
        let manual = match base.clone().with_bounds_margin(1).route(&g, &[]) {
            Ok(t) => t,
            Err(RouteError::Disconnected { .. }) => base.route(&g, &[]).unwrap(),
            Err(e) => panic!("unexpected: {e}"),
        };
        let swept = SweepSchedule::bounded_then_unbounded(1)
            .route(&base, &g, &[])
            .unwrap();
        assert_eq!(manual.cost().to_bits(), swept.cost().to_bits());
        assert_eq!(manual.edges(), swept.edges());
    }

    #[test]
    fn first_connecting_stage_wins() {
        // An open grid: margin 0 already connects, so the result equals a
        // plain bounded route and no escalation happens.
        let mut g = HananGraph::uniform(7, 7, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(1, 1, 0)).unwrap();
        g.add_pin(GridPoint::new(5, 5, 0)).unwrap();
        let base = OarmstRouter::new();
        let direct = base.clone().with_bounds_margin(0).route(&g, &[]).unwrap();
        let swept = SweepSchedule::escalating(&[0, 2, 4])
            .route(&base, &g, &[])
            .unwrap();
        assert_eq!(direct.cost().to_bits(), swept.cost().to_bits());
        assert_eq!(direct.edges(), swept.edges());
    }

    #[test]
    fn bounded_only_reports_disconnected() {
        let g = walled();
        let err = SweepSchedule::bounded_only(&[0, 1])
            .route(&OarmstRouter::new(), &g, &[])
            .unwrap_err();
        assert!(matches!(err, RouteError::Disconnected { .. }));
    }

    #[test]
    fn unbounded_schedule_equals_plain_route() {
        let g = walled();
        let base = OarmstRouter::new();
        let plain = base.route(&g, &[]).unwrap();
        let swept = SweepSchedule::unbounded().route(&base, &g, &[]).unwrap();
        assert_eq!(plain.cost().to_bits(), swept.cost().to_bits());
        assert_eq!(plain.edges(), swept.edges());
        assert_eq!(SweepSchedule::unbounded().stages(), 1);
    }
}
