//! Redundant Steiner-point detection.
//!
//! A Steiner point with tree degree less than 3 is redundant (Section 2.1 of
//! the paper): it cannot create a routing segment shared by three or more
//! branches, so keeping it as a terminal can only lengthen the tree.

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_graph::StampMap;

use crate::tree::RouteTree;

/// Returns the Steiner candidates whose degree in `tree` is less than 3 —
/// the redundant ones that the OARMST router removes before reconstructing.
///
/// Candidates absent from the tree entirely (degree 0) are also redundant.
///
/// # Example
///
/// ```
/// use oarsmt_geom::{HananGraph, GridPoint};
/// use oarsmt_router::{oarmst::OarmstRouter, prune::redundant_candidates};
///
/// let mut g = HananGraph::uniform(6, 1, 1, 1.0, 1.0, 3.0);
/// g.add_pin(GridPoint::new(0, 0, 0))?;
/// g.add_pin(GridPoint::new(5, 0, 0))?;
/// let cand = [GridPoint::new(3, 0, 0)];
/// let tree = OarmstRouter::new().route_unpruned(&g, &cand)?;
/// // The on-path candidate has degree 2: redundant.
/// assert_eq!(redundant_candidates(&g, &tree, &cand), vec![cand[0]]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn redundant_candidates(
    graph: &HananGraph,
    tree: &RouteTree,
    candidates: &[GridPoint],
) -> Vec<GridPoint> {
    let degrees = tree.degrees();
    candidates
        .iter()
        .copied()
        .filter(|&c| {
            let idx = graph.index(c) as u32;
            degrees.get(&idx).copied().unwrap_or(0) < 3
        })
        .collect()
}

/// In-place counterpart of [`redundant_candidates`] for the routing hot
/// loop: counts tree degrees into the caller's stamped `degrees` map and
/// retains only the irredundant candidates (tree degree ≥ 3) in `kept`,
/// preserving their order. Returns how many candidates were removed — the
/// prune loop stops when this reaches zero, exactly when
/// [`redundant_candidates`] would have returned an empty list.
pub fn retain_irredundant_in(
    degrees: &mut StampMap,
    graph: &HananGraph,
    tree: &RouteTree,
    kept: &mut Vec<GridPoint>,
) -> usize {
    degrees.begin(graph.len());
    for &(a, b) in tree.edges() {
        degrees.add(a as usize, 1);
        degrees.add(b as usize, 1);
    }
    let before = kept.len();
    kept.retain(|&c| degrees.get(graph.index(c)) >= 3);
    before - kept.len()
}

/// Splits candidates into `(irredundant, redundant)` by tree degree.
pub fn partition_candidates(
    graph: &HananGraph,
    tree: &RouteTree,
    candidates: &[GridPoint],
) -> (Vec<GridPoint>, Vec<GridPoint>) {
    let degrees = tree.degrees();
    let mut keep = Vec::new();
    let mut drop = Vec::new();
    for &c in candidates {
        let idx = graph.index(c) as u32;
        if degrees.get(&idx).copied().unwrap_or(0) >= 3 {
            keep.push(c);
        } else {
            drop.push(c);
        }
    }
    (keep, drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oarmst::OarmstRouter;

    #[test]
    fn center_of_a_cross_is_irredundant() {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        let center = GridPoint::new(2, 2, 0);
        let tree = OarmstRouter::new().route_unpruned(&g, &[center]).unwrap();
        let (keep, drop) = partition_candidates(&g, &tree, &[center]);
        assert_eq!(keep, vec![center]);
        assert!(drop.is_empty());
    }

    #[test]
    fn retain_irredundant_in_matches_redundant_candidates() {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        let center = GridPoint::new(2, 2, 0);
        let stray = GridPoint::new(4, 4, 0);
        let cands = [center, stray];
        let tree = OarmstRouter::new().route_unpruned(&g, &cands).unwrap();
        let redundant = redundant_candidates(&g, &tree, &cands);
        let mut kept = cands.to_vec();
        let mut degrees = StampMap::new();
        let removed = retain_irredundant_in(&mut degrees, &g, &tree, &mut kept);
        assert_eq!(removed, redundant.len());
        for c in &cands {
            assert_eq!(kept.contains(c), !redundant.contains(c), "candidate {c}");
        }
    }

    #[test]
    fn absent_candidate_is_redundant() {
        let mut g = HananGraph::uniform(4, 1, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 0, 0)).unwrap();
        let tree = OarmstRouter::new().route_unpruned(&g, &[]).unwrap();
        let ghost = GridPoint::new(1, 0, 0);
        // ghost lies on the path with degree 2 -> redundant; a vertex not in
        // the tree at all is degree 0 -> redundant too.
        assert_eq!(redundant_candidates(&g, &tree, &[ghost]), vec![ghost]);
    }
}
