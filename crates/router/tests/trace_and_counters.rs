//! Observability invariants at the router level: the flight recorder must
//! never perturb routing results, and `CounterSet::fold_pool_splits` must
//! be exactly the normalization that makes a cold context's counters equal
//! a warm context's (the one documented non-invariant pair).

use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::HananGraph;
use oarsmt_router::{OarmstRouter, RouteContext};
use oarsmt_telemetry::tracing::{summarize, to_chrome_json, verify_chrome};
use oarsmt_telemetry::{Counter, Span};

fn cases(n: usize) -> Vec<HananGraph> {
    CaseGenerator::new(GeneratorConfig::paper_costs(8, 7, 2, (3, 6)), 42).generate_many(n)
}

/// Routes every case through `ctx`, recycling trees so the pool warms up.
fn route_all(router: &OarmstRouter, ctx: &mut RouteContext, cases: &[HananGraph]) -> Vec<u64> {
    cases
        .iter()
        .map(|g| {
            let tree = router.route_in(ctx, g, &[]).expect("routable case");
            let bits = tree.cost().to_bits();
            ctx.recycle_tree(tree);
            bits
        })
        .collect()
}

/// A cold context misses the tree pool once per outstanding tree; a warm
/// context hits it. `fold_pool_splits` must erase exactly that difference
/// — after folding, cold and warm counter sets are bit-identical.
#[test]
fn fold_pool_splits_reconciles_cold_and_warm_contexts() {
    let router = OarmstRouter::new();
    let cases = cases(6);

    let mut cold = RouteContext::new();
    let cold_costs = route_all(&router, &mut cold, &cases);

    let mut warm = RouteContext::new();
    route_all(&router, &mut warm, &cases); // warm-up pass
    let warmed = warm.counters_total();
    let warm_costs = route_all(&router, &mut warm, &cases);

    assert_eq!(cold_costs, warm_costs, "warmth never changes results");

    let cold_total = cold.counters_total();
    let mut warm_delta = warm.counters_total().delta_since(&warmed);
    assert!(
        cold_total.get(Counter::TreePoolMisses) > 0,
        "cold pass must actually miss the pool"
    );
    assert!(
        warm_delta.get(Counter::TreePoolHits) > 0,
        "warm pass must actually hit the pool"
    );
    assert_ne!(
        cold_total.get(Counter::TreePoolHits),
        warm_delta.get(Counter::TreePoolHits),
        "the split differs before folding"
    );

    let mut cold_folded = cold_total;
    cold_folded.fold_pool_splits();
    warm_delta.fold_pool_splits();
    assert_eq!(
        cold_folded, warm_delta,
        "after folding, cold and warm counters are bit-identical"
    );
    assert_eq!(cold_folded.get(Counter::TreePoolMisses), 0);
}

/// Routing with the flight recorder enabled records balanced phase spans
/// and changes neither results nor deterministic counters.
#[test]
fn trace_recorder_is_invisible_to_results_and_counters() {
    let router = OarmstRouter::new();
    let cases = cases(4);

    let mut plain = RouteContext::new();
    let plain_costs = route_all(&router, &mut plain, &cases);

    let mut traced = RouteContext::new();
    traced.trace.enable(4096);
    let traced_costs = route_all(&router, &mut traced, &cases);

    assert_eq!(plain_costs, traced_costs, "tracing never changes results");
    assert_eq!(
        plain.counters_total(),
        traced.counters_total(),
        "tracing never changes Tier A counters"
    );

    assert!(!traced.trace.is_empty(), "phases were recorded");
    let events = traced.trace.events_in_order();
    let aggs = summarize(&events);
    for span in [Span::RoutePrepare, Span::RouteDijkstra, Span::RouteRetrace] {
        assert!(
            aggs.iter().any(|a| a.span == span && a.count > 0),
            "{span:?} missing from trace summary"
        );
    }
    let json = to_chrome_json(&events, traced.trace.dropped());
    let check = verify_chrome(&json).expect("recorder output is balanced");
    assert_eq!(check.events, events.len());
}

/// A tiny ring still yields a balanced export: old begin events fall off
/// the front, and the exporter skips their orphaned ends.
#[test]
fn truncated_ring_exports_balanced_chrome_json() {
    let router = OarmstRouter::new();
    let mut ctx = RouteContext::new();
    ctx.trace.enable(8);
    route_all(&router, &mut ctx, &cases(4));
    assert!(ctx.trace.dropped() > 0, "ring must actually overflow");
    let events = ctx.trace.events_in_order();
    let json = to_chrome_json(&events, ctx.trace.dropped());
    verify_chrome(&json).expect("truncated export stays balanced");
}
