//! Property tests pinning the [`QueuePolicy`] contract of DESIGN.md §12:
//!
//! * `Dial` (and `Auto`, which resolves to it on the paper's
//!   bounded-integer cost models) routes **bit-identically** to the
//!   retained binary-heap oracle — same cost bits, same edge list, same
//!   pruned Steiner set — across random layouts, random candidate sets,
//!   and bounded-exploration margins; the Dijkstra op counters
//!   (pops/relaxations/pushes) match the oracle exactly (§12.3).
//! * On cost models that are not bounded-integer, `Dial` falls back to the
//!   heap (zero bucket scans) and stays identical trivially.
//! * `AStar` is a *documented divergence* (§12.4): every maze query
//!   returns the same cost bits as the oracle, but equal-cost tie geometry
//!   may differ, so the grown tree may differ. Golden pins below freeze
//!   its current behaviour so any accidental change to the tie-break rules
//!   is caught.

use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_router::{OarmstRouter, QueuePolicy, RouteContext, RouteError, RouteTree};
use oarsmt_telemetry::Counter;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_case(seed: u64) -> HananGraph {
    CaseGenerator::new(GeneratorConfig::paper_costs(9, 8, 2, (3, 7)), seed).generate()
}

fn random_candidates(graph: &HananGraph, rng: &mut StdRng) -> Vec<GridPoint> {
    let n = rng.gen_range(0..6usize);
    (0..n)
        .map(|_| {
            GridPoint::new(
                rng.gen_range(0..graph.h()),
                rng.gen_range(0..graph.v()),
                rng.gen_range(0..graph.m()),
            )
        })
        .collect()
}

fn assert_identical(
    graph: &HananGraph,
    oracle: &Result<RouteTree, RouteError>,
    tested: &Result<RouteTree, RouteError>,
    label: &str,
) {
    match (oracle, tested) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.cost().to_bits(), b.cost().to_bits(), "{label}: cost bits");
            assert_eq!(a.edges(), b.edges(), "{label}: edge list");
            assert_eq!(
                a.steiner_vertices(graph, graph.pins()),
                b.steiner_vertices(graph, graph.pins()),
                "{label}: pruned Steiner set"
            );
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{label}: error kind"),
        (a, b) => panic!("{label}: oracle {a:?} but tested {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole acceptance property: Dial ≡ heap oracle bit for bit,
    /// and the op-count telemetry (pops, relaxations, pushes) matches the
    /// oracle exactly, on random paper-cost layouts.
    #[test]
    fn dial_routes_bit_identically_to_heap_oracle(seed in 0u64..500) {
        let heap = OarmstRouter::new().with_queue_policy(QueuePolicy::Heap);
        let dial = OarmstRouter::new().with_queue_policy(QueuePolicy::Dial);
        let mut ctx_h = RouteContext::new();
        let mut ctx_d = RouteContext::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1A1);
        let g = random_case(seed);
        for _ in 0..2 {
            let cand = random_candidates(&g, &mut rng);
            let before_h = ctx_h.counters_total();
            let before_d = ctx_d.counters_total();
            let a = heap.route_in(&mut ctx_h, &g, &cand);
            let b = dial.route_in(&mut ctx_d, &g, &cand);
            assert_identical(&g, &a, &b, "dial vs heap");
            let dh = ctx_h.counters_total().delta_since(&before_h);
            let dd = ctx_d.counters_total().delta_since(&before_d);
            for c in [
                Counter::DijkstraPops,
                Counter::DijkstraRelaxations,
                Counter::DijkstraPushes,
            ] {
                prop_assert_eq!(dh.get(c), dd.get(c), "{:?} diverged", c);
            }
            prop_assert_eq!(dh.get(Counter::DijkstraBucketScans), 0);
        }
    }

    /// `Auto` resolves to Dial on paper-cost layouts and must therefore be
    /// bit-identical to the oracle too (the router's new default).
    #[test]
    fn auto_default_matches_heap_oracle(seed in 0u64..500) {
        let g = random_case(seed);
        // The paper's generator always emits integral costs, so Auto is
        // always Dial-eligible here.
        prop_assert!(g.integer_cost_ceiling().is_some());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA070);
        let cand = random_candidates(&g, &mut rng);
        let oracle = OarmstRouter::new()
            .with_queue_policy(QueuePolicy::Heap)
            .route(&g, &cand);
        let auto = OarmstRouter::new().route(&g, &cand); // default policy
        assert_identical(&g, &oracle, &auto, "auto vs heap");
    }

    /// Bounded-exploration queries (the point-based search family) obey
    /// the same equivalence.
    #[test]
    fn bounded_dial_matches_bounded_heap(seed in 0u64..300, margin in 0usize..4) {
        let g = random_case(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0B0);
        let cand = random_candidates(&g, &mut rng);
        let oracle = OarmstRouter::new()
            .with_bounds_margin(margin)
            .with_queue_policy(QueuePolicy::Heap)
            .route(&g, &cand);
        let dial = OarmstRouter::new()
            .with_bounds_margin(margin)
            .with_queue_policy(QueuePolicy::Dial)
            .route(&g, &cand);
        assert_identical(&g, &oracle, &dial, "bounded dial vs heap");
    }

    /// The A* policy always yields a valid spanning tree; its divergence
    /// from the oracle is limited to equal-cost tie geometry, so the tree
    /// cost stays within the sum of per-query optima — checked here as
    /// "never catastrophically worse" (each maze query is individually
    /// optimal, only the growth order can differ).
    #[test]
    fn astar_yields_valid_trees(seed in 0u64..300) {
        let g = random_case(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA57A);
        let cand = random_candidates(&g, &mut rng);
        let astar = OarmstRouter::new().with_queue_policy(QueuePolicy::AStar);
        match astar.route(&g, &cand) {
            Ok(t) => {
                prop_assert!(t.is_tree());
                prop_assert!(t.spans_in(&g, g.pins()));
            }
            Err(RouteError::Disconnected { .. }) => {
                // Must agree with the oracle about unreachability.
                let oracle = OarmstRouter::new().route(&g, &cand);
                prop_assert!(matches!(oracle, Err(RouteError::Disconnected { .. })));
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
}

/// A forced-Dial route on a fractional-cost graph must fall back to the
/// heap (DESIGN.md §12.2 eligibility) and still match the oracle.
#[test]
fn dial_falls_back_on_fractional_costs() {
    let mut g = HananGraph::uniform(7, 7, 2, 1.25, 1.0, 3.5);
    g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
    g.add_pin(GridPoint::new(6, 6, 1)).unwrap();
    g.add_pin(GridPoint::new(0, 6, 0)).unwrap();
    assert_eq!(g.integer_cost_ceiling(), None);
    let mut ctx = RouteContext::new();
    let before = ctx.counters_total();
    let dial = OarmstRouter::new()
        .with_queue_policy(QueuePolicy::Dial)
        .route_in(&mut ctx, &g, &[]);
    let oracle = OarmstRouter::new()
        .with_queue_policy(QueuePolicy::Heap)
        .route(&g, &[]);
    assert_identical(&g, &oracle, &dial, "fractional fallback");
    let delta = ctx.counters_total().delta_since(&before);
    assert_eq!(
        delta.get(Counter::DijkstraBucketScans),
        0,
        "fallback must not touch the bucket queue"
    );
}

/// Golden tie-break pins for the documented A* divergence (DESIGN.md
/// §12.4): the exact tree costs A* produces on fixed seeds. If a change
/// to the search order alters these, it changed the specified tie-break
/// behaviour and must update both this pin and §12.4.
#[test]
fn astar_golden_tie_break_pins() {
    let astar = OarmstRouter::new().with_queue_policy(QueuePolicy::AStar);
    let oracle = OarmstRouter::new();
    let mut lines = Vec::new();
    for seed in [3u64, 11, 42, 77, 123] {
        let g = random_case(seed);
        let a = astar.route(&g, &[]);
        let o = oracle.route(&g, &[]);
        let fmt = |r: &Result<RouteTree, RouteError>| match r {
            Ok(t) => format!("{:.1}", t.cost()),
            Err(_) => "err".to_string(),
        };
        lines.push(format!("seed {seed}: astar {} oracle {}", fmt(&a), fmt(&o)));
    }
    let got = lines.join("; ");
    // On these seeds the A* growth order happens to land on equal-cost
    // trees; divergence would show up as a different astar number with an
    // unchanged oracle number.
    let golden = "seed 3: astar 1826.0 oracle 1826.0; \
                  seed 11: astar 2667.0 oracle 2667.0; \
                  seed 42: astar 9710.0 oracle 9710.0; \
                  seed 77: astar 5362.0 oracle 5362.0; \
                  seed 123: astar 10181.0 oracle 10181.0";
    assert_eq!(got, golden, "A* tie-break behaviour changed");
}
