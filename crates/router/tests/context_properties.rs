//! Property tests pinning the [`RouteContext`] reuse contract: routing
//! through a reused context is *bit-identical* to fresh-allocation routing
//! — same cost bits, same edge list, same pruned Steiner set — for random
//! layouts and random candidate sets, across layout changes, and across
//! interleaved query kinds.

use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_router::{OarmstRouter, RouteContext, RouteError, RouteTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_case(seed: u64) -> HananGraph {
    CaseGenerator::new(GeneratorConfig::paper_costs(8, 7, 2, (3, 6)), seed).generate()
}

/// Random candidate set: arbitrary grid points, intentionally allowed to
/// collide with pins, obstacles, or each other (dedup is part of the
/// contract under test).
fn random_candidates(graph: &HananGraph, rng: &mut StdRng) -> Vec<GridPoint> {
    let n = rng.gen_range(0..6usize);
    (0..n)
        .map(|_| {
            GridPoint::new(
                rng.gen_range(0..graph.h()),
                rng.gen_range(0..graph.v()),
                rng.gen_range(0..graph.m()),
            )
        })
        .collect()
}

fn assert_identical(
    graph: &HananGraph,
    fresh: &Result<RouteTree, RouteError>,
    reused: &Result<RouteTree, RouteError>,
) {
    match (fresh, reused) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.cost().to_bits(), b.cost().to_bits(), "cost bits");
            assert_eq!(a.edges(), b.edges(), "edge list");
            assert_eq!(
                a.steiner_vertices(graph, graph.pins()),
                b.steiner_vertices(graph, graph.pins()),
                "pruned Steiner set"
            );
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "error kind"),
        (a, b) => panic!("fresh {a:?} but reused {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One context serves many layouts and many candidate sets; every
    /// query must match the fresh-allocation route bit for bit.
    #[test]
    fn reused_context_routes_bit_identically(seed in 0u64..600) {
        let router = OarmstRouter::new();
        let mut ctx = RouteContext::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(8, 7, 2, (3, 6)), seed);
        for g in gen.generate_many(3) {
            for _ in 0..2 {
                let cand = random_candidates(&g, &mut rng);
                let fresh = router.route(&g, &cand);
                let reused = router.route_in(&mut ctx, &g, &cand);
                assert_identical(&g, &fresh, &reused);
            }
        }
    }

    /// The cost-only context entry points (the MCTS critic's hot path)
    /// agree bit-for-bit with the tree-returning fresh routes.
    #[test]
    fn cost_only_entry_points_match_fresh_trees(seed in 0u64..600) {
        let g = random_case(seed);
        let router = OarmstRouter::new();
        let mut ctx = RouteContext::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0575);
        for _ in 0..3 {
            let cand = random_candidates(&g, &mut rng);
            match (router.route(&g, &cand), router.route_cost_in(&mut ctx, &g, &cand)) {
                (Ok(t), Ok(c)) => prop_assert_eq!(t.cost().to_bits(), c.to_bits()),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => return Err(TestCaseError::fail(format!("route {a:?} vs cost {b:?}"))),
            }
            match (
                router.route_unpruned(&g, &cand),
                router.cost_unpruned_in(&mut ctx, &g, &cand),
            ) {
                (Ok(t), Ok(c)) => prop_assert_eq!(t.cost().to_bits(), c.to_bits()),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => return Err(TestCaseError::fail(format!("unpruned {a:?} vs {b:?}"))),
            }
        }
    }

    /// Bounded-exploration routing (the one query family that bypasses the
    /// CSR fast path) obeys the same reuse contract.
    #[test]
    fn bounded_router_reuse_is_bit_identical(seed in 0u64..300) {
        let g = random_case(seed);
        let router = OarmstRouter::new().with_bounds_margin(2);
        let mut ctx = RouteContext::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0B);
        let cand = random_candidates(&g, &mut rng);
        let fresh = router.route(&g, &cand);
        let reused = router.route_in(&mut ctx, &g, &cand);
        assert_identical(&g, &fresh, &reused);
    }
}
