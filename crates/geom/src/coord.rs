//! Physical coordinates and Hanan-grid points.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A physical 2D coordinate on a routing layer (database units).
///
/// Physical coordinates describe the original layout before Hanan reduction;
/// after reduction, positions are addressed by [`GridPoint`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Coord {
    /// Horizontal position.
    pub x: i64,
    /// Vertical position.
    pub y: i64,
}

impl Coord {
    /// Creates a coordinate from its `x` and `y` components.
    ///
    /// ```
    /// use oarsmt_geom::coord::Coord;
    /// let c = Coord::new(3, -7);
    /// assert_eq!((c.x, c.y), (3, -7));
    /// ```
    pub fn new(x: i64, y: i64) -> Self {
        Coord { x, y }
    }

    /// Rectilinear (Manhattan) distance to another coordinate.
    ///
    /// ```
    /// use oarsmt_geom::coord::Coord;
    /// assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
    /// ```
    pub fn manhattan(self, other: Coord) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Coord {
    fn from((x, y): (i64, i64)) -> Self {
        Coord::new(x, y)
    }
}

/// A vertex of a 3D Hanan grid graph, addressed by grid indices.
///
/// The triple `(h, v, m)` names the vertex at the `h`-th horizontal grid
/// column, `v`-th vertical grid row, and `m`-th routing layer (all
/// zero-based). The derived [`Ord`] is lexicographic on `(h, v, m)`, which is
/// exactly the **selection priority** of the paper's combinatorial MCTS
/// (Section 3.4): a point with smaller lexicographic order has *higher*
/// selection priority.
///
/// ```
/// use oarsmt_geom::coord::GridPoint;
/// let a = GridPoint::new(1, 9, 9);
/// let b = GridPoint::new(2, 0, 0);
/// assert!(a < b); // a has higher selection priority
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GridPoint {
    /// Horizontal grid index (column), in `0..H`.
    pub h: usize,
    /// Vertical grid index (row), in `0..V`.
    pub v: usize,
    /// Routing layer index, in `0..M`.
    pub m: usize,
}

impl GridPoint {
    /// Creates a grid point from its `(h, v, m)` indices.
    pub fn new(h: usize, v: usize, m: usize) -> Self {
        GridPoint { h, v, m }
    }

    /// Manhattan distance in grid steps, counting the layer axis.
    ///
    /// This is a *grid-step* distance (number of hops), not a routing cost;
    /// edge costs live on the owning
    /// [`HananGraph`](crate::hanan::HananGraph).
    pub fn grid_distance(self, other: GridPoint) -> usize {
        self.h.abs_diff(other.h) + self.v.abs_diff(other.v) + self.m.abs_diff(other.m)
    }
}

impl fmt::Display for GridPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.h, self.v, self.m)
    }
}

impl From<(usize, usize, usize)> for GridPoint {
    fn from((h, v, m): (usize, usize, usize)) -> Self {
        GridPoint::new(h, v, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Coord::new(-3, 10);
        let b = Coord::new(7, -2);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 22);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn grid_point_order_is_lexicographic_hvm() {
        // Priority per the paper: smaller (h, v, m) lexicographic order is
        // higher priority.
        let mut pts = vec![
            GridPoint::new(1, 0, 1),
            GridPoint::new(0, 2, 0),
            GridPoint::new(0, 0, 3),
            GridPoint::new(1, 0, 0),
        ];
        pts.sort();
        assert_eq!(
            pts,
            vec![
                GridPoint::new(0, 0, 3),
                GridPoint::new(0, 2, 0),
                GridPoint::new(1, 0, 0),
                GridPoint::new(1, 0, 1),
            ]
        );
    }

    #[test]
    fn grid_distance_counts_all_axes() {
        let a = GridPoint::new(0, 0, 0);
        let b = GridPoint::new(2, 3, 1);
        assert_eq!(a.grid_distance(b), 6);
        assert_eq!(b.grid_distance(a), 6);
    }

    #[test]
    fn conversions_from_tuples() {
        assert_eq!(Coord::from((1, 2)), Coord::new(1, 2));
        assert_eq!(GridPoint::from((1, 2, 3)), GridPoint::new(1, 2, 3));
    }
}
