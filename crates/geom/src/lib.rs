//! Geometry substrate for the OARSMT RL router reproduction.
//!
//! This crate provides everything "below" the routers and the neural agent:
//!
//! * physical coordinates, rectangles and obstacles ([`coord`], [`rect`]),
//! * physical layouts with pins and multi-layer obstacles ([`layout`]),
//! * construction of **3D Hanan grid graphs** from physical layouts and
//!   directly as synthetic grids ([`hanan`]) — the input representation of
//!   the paper (Section 2.2, Fig. 1),
//! * random workload generators replicating the paper's training schedule
//!   (Section 3.6) and the randomly generated test subsets of Table 1
//!   ([`gen`]),
//! * synthetic re-creations of the public benchmark layouts rt1–rt5 and
//!   ind1–ind3 used in Table 4 ([`benchmarks`]).
//!
//! # Example
//!
//! ```
//! use oarsmt_geom::hanan::{HananGraph, VertexKind};
//! use oarsmt_geom::coord::GridPoint;
//!
//! // A synthetic 4x4 single-layer Hanan graph with unit edge costs.
//! let mut g = HananGraph::uniform(4, 4, 1, 1.0, 1.0, 3.0);
//! g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
//! g.add_pin(GridPoint::new(3, 3, 0)).unwrap();
//! assert_eq!(g.pins().len(), 2);
//! assert_eq!(g.kind(GridPoint::new(0, 0, 0)), VertexKind::Pin);
//! ```

#![forbid(unsafe_code)]

pub mod benchmarks;
pub mod coord;
pub mod error;
pub mod gen;
pub mod hanan;
pub mod io;
pub mod layout;
pub mod rect;

pub use coord::{Coord, GridPoint};
pub use error::GeomError;
pub use gen::{CaseGenerator, GeneratorConfig, TestSubsetSpec};
pub use hanan::{HananGraph, VertexKind};
pub use layout::{Layout, Pin};
pub use rect::{Obstacle, Rect};
