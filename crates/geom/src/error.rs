//! Error types for geometry construction and validation.

use std::error::Error;
use std::fmt;

use crate::coord::GridPoint;

/// Errors produced while building layouts or Hanan grid graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeomError {
    /// A grid point lies outside the `(H, V, M)` dimensions of the graph.
    OutOfBounds {
        /// The offending point.
        point: GridPoint,
        /// Grid dimensions `(h, v, m)` at the time of the access.
        dims: (usize, usize, usize),
    },
    /// A pin was placed on a vertex already occupied by an obstacle.
    PinOnObstacle(GridPoint),
    /// A pin was placed on a vertex that already holds a pin.
    DuplicatePin(GridPoint),
    /// A dimension of the requested grid is zero.
    EmptyDimension {
        /// Requested dimensions `(h, v, m)`.
        dims: (usize, usize, usize),
    },
    /// An edge or via cost is not finite or not positive.
    InvalidCost(f64),
    /// A layout has fewer than two pins, so no routing tree exists.
    TooFewPins(usize),
    /// The layout geometry produced no Hanan cuts (no pins or obstacles).
    NoCuts,
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::OutOfBounds { point, dims } => write!(
                f,
                "grid point {point} is outside dimensions {}x{}x{}",
                dims.0, dims.1, dims.2
            ),
            GeomError::PinOnObstacle(p) => {
                write!(f, "pin at {p} collides with an obstacle vertex")
            }
            GeomError::DuplicatePin(p) => write!(f, "duplicate pin at {p}"),
            GeomError::EmptyDimension { dims } => write!(
                f,
                "grid dimensions {}x{}x{} contain an empty axis",
                dims.0, dims.1, dims.2
            ),
            GeomError::InvalidCost(c) => {
                write!(f, "routing cost {c} is not finite and positive")
            }
            GeomError::TooFewPins(n) => {
                write!(f, "layout has {n} pins but routing needs at least 2")
            }
            GeomError::NoCuts => write!(f, "layout produced no hanan cuts"),
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errors: Vec<GeomError> = vec![
            GeomError::OutOfBounds {
                point: GridPoint::new(9, 9, 9),
                dims: (4, 4, 2),
            },
            GeomError::PinOnObstacle(GridPoint::new(0, 0, 0)),
            GeomError::DuplicatePin(GridPoint::new(1, 1, 0)),
            GeomError::EmptyDimension { dims: (0, 4, 2) },
            GeomError::InvalidCost(f64::NAN),
            GeomError::TooFewPins(1),
            GeomError::NoCuts,
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing period: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}
