//! 3D Hanan grid graphs — the input representation of the router.
//!
//! A Hanan grid graph (Section 2.2 of the paper) is derived by intersecting
//! horizontal and vertical cuts created at every pin and obstacle boundary.
//! The 3D variant first consolidates all objects onto a single layer, builds
//! the 2D Hanan grid for the consolidated layer, and then replicates that
//! grid on every routing layer, relocating each object to its original layer.
//!
//! [`HananGraph`] is the central type of the whole reproduction: routers,
//! the neural Steiner-point selector and the MCTS trainers all consume it.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coord::{Coord, GridPoint};
use crate::error::GeomError;
use crate::layout::Layout;

/// Classification of a Hanan-graph vertex (Section 2.2: "a vertex can be a
/// pin, an obstacle, or an empty location to place a Steiner point").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum VertexKind {
    /// Free vertex; a Steiner point may be placed here.
    #[default]
    Empty,
    /// A pin that must be connected by the routing tree.
    Pin,
    /// Blocked by an obstacle; no wire or via may use this vertex.
    Obstacle,
}

impl fmt::Display for VertexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VertexKind::Empty => "empty",
            VertexKind::Pin => "pin",
            VertexKind::Obstacle => "obstacle",
        };
        f.write_str(s)
    }
}

/// A 3D Hanan grid graph with per-gap routing costs and a uniform via cost.
///
/// Dimensions are `H × V × M`: `H` horizontal grid columns, `V` vertical grid
/// rows, `M` routing layers. Adjacent vertices along `h` at column gap `i`
/// are connected with cost `x_costs[i]`; along `v` at row gap `j` with cost
/// `y_costs[j]`; adjacent layers with the uniform `via_cost` (Section 3.3 —
/// the via cost "is assumed to be the same for all vertices in a layout but
/// its value may vary among different layouts").
///
/// Vertices are addressed either by [`GridPoint`] or by the linear index
/// returned by [`HananGraph::index`], which orders vertices exactly by the
/// paper's lexicographic `(h, v, m)` **selection priority**.
///
/// # Example
///
/// ```
/// use oarsmt_geom::hanan::HananGraph;
/// use oarsmt_geom::coord::GridPoint;
///
/// let mut g = HananGraph::uniform(3, 3, 2, 1.0, 2.0, 3.0);
/// g.add_pin(GridPoint::new(0, 0, 0))?;
/// g.add_pin(GridPoint::new(2, 2, 1))?;
/// // Stepping right costs 1, stepping up costs 2, changing layer costs 3.
/// assert_eq!(g.x_cost(0), 1.0);
/// assert_eq!(g.y_cost(1), 2.0);
/// assert_eq!(g.via_cost(), 3.0);
/// # Ok::<(), oarsmt_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HananGraph {
    h: usize,
    v: usize,
    m: usize,
    /// Physical x coordinate of every grid column (length `h`).
    xs: Vec<i64>,
    /// Physical y coordinate of every grid row (length `v`).
    ys: Vec<i64>,
    /// Cost of the horizontal edge between columns `i` and `i + 1` (length `h - 1`).
    x_costs: Vec<f64>,
    /// Cost of the vertical edge between rows `j` and `j + 1` (length `v - 1`).
    y_costs: Vec<f64>,
    via_cost: f64,
    /// Vertex classification, indexed by [`HananGraph::index`].
    kind: Vec<VertexKind>,
    /// Pins in insertion order.
    pins: Vec<GridPoint>,
}

impl HananGraph {
    /// Creates a synthetic uniform grid: `h × v × m` vertices, every
    /// horizontal gap costing `x_cost`, every vertical gap `y_cost`, and the
    /// given `via_cost`. Physical coordinates default to the grid indices.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or any cost is not finite and
    /// positive; use [`HananGraph::with_costs`] for fallible construction.
    pub fn uniform(h: usize, v: usize, m: usize, x_cost: f64, y_cost: f64, via_cost: f64) -> Self {
        HananGraph::with_costs(
            h,
            v,
            m,
            vec![x_cost; h.saturating_sub(1)],
            vec![y_cost; v.saturating_sub(1)],
            via_cost,
        )
        .expect("uniform grid parameters must be valid")
    }

    /// Creates a synthetic grid with explicit per-gap costs.
    ///
    /// `x_costs` must have length `h - 1` and `y_costs` length `v - 1`.
    ///
    /// # Errors
    ///
    /// * [`GeomError::EmptyDimension`] if any of `h`, `v`, `m` is zero.
    /// * [`GeomError::InvalidCost`] if any gap or via cost is not finite and
    ///   positive, or a cost vector has the wrong length (reported with the
    ///   offending length as the cost value `-1.0`).
    pub fn with_costs(
        h: usize,
        v: usize,
        m: usize,
        x_costs: Vec<f64>,
        y_costs: Vec<f64>,
        via_cost: f64,
    ) -> Result<Self, GeomError> {
        if h == 0 || v == 0 || m == 0 {
            return Err(GeomError::EmptyDimension { dims: (h, v, m) });
        }
        if x_costs.len() != h - 1 || y_costs.len() != v - 1 {
            return Err(GeomError::InvalidCost(-1.0));
        }
        for &c in x_costs.iter().chain(y_costs.iter()) {
            if !c.is_finite() || c <= 0.0 {
                return Err(GeomError::InvalidCost(c));
            }
        }
        if !via_cost.is_finite() || via_cost <= 0.0 {
            return Err(GeomError::InvalidCost(via_cost));
        }
        Ok(HananGraph {
            h,
            v,
            m,
            xs: (0..h as i64).collect(),
            ys: (0..v as i64).collect(),
            x_costs,
            y_costs,
            via_cost,
            kind: vec![VertexKind::Empty; h * v * m],
            pins: Vec::new(),
        })
    }

    /// Builds the 3D Hanan grid graph of a physical [`Layout`], following
    /// Section 2.2: consolidate all objects onto one layer, cut at every pin
    /// coordinate and obstacle boundary, then relocate objects to their
    /// original layers. Gap costs equal physical coordinate distances.
    ///
    /// # Errors
    ///
    /// Propagates [`Layout::validate`] errors, and returns
    /// [`GeomError::NoCuts`] if the layout is empty.
    pub fn from_layout(layout: &Layout) -> Result<Self, GeomError> {
        layout.validate()?;
        let mut xs: Vec<i64> = Vec::new();
        let mut ys: Vec<i64> = Vec::new();
        for pin in layout.pins() {
            xs.push(pin.at.x);
            ys.push(pin.at.y);
        }
        for ob in layout.obstacles() {
            let (x0, x1) = ob.rect.x_range();
            let (y0, y1) = ob.rect.y_range();
            xs.extend([x0, x1]);
            ys.extend([y0, y1]);
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        if xs.is_empty() || ys.is_empty() {
            return Err(GeomError::NoCuts);
        }
        let h = xs.len();
        let v = ys.len();
        let m = layout.layers();
        let x_costs = xs.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let y_costs = ys.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mut g = HananGraph {
            h,
            v,
            m,
            xs,
            ys,
            x_costs,
            y_costs,
            via_cost: layout.via_cost(),
            kind: vec![VertexKind::Empty; h * v * m],
            pins: Vec::new(),
        };
        // Obstacles first so pin/obstacle collisions are caught by add_pin.
        for ob in layout.obstacles() {
            let (x0, x1) = ob.rect.x_range();
            let (y0, y1) = ob.rect.y_range();
            let h0 = g.xs.partition_point(|&x| x < x0);
            let h1 = g.xs.partition_point(|&x| x <= x1);
            let v0 = g.ys.partition_point(|&y| y < y0);
            let v1 = g.ys.partition_point(|&y| y <= y1);
            for hi in h0..h1 {
                for vi in v0..v1 {
                    let p = GridPoint::new(hi, vi, ob.layer);
                    let idx = g.index(p);
                    g.kind[idx] = VertexKind::Obstacle;
                }
            }
        }
        for pin in layout.pins() {
            let hi =
                g.xs.binary_search(&pin.at.x)
                    .expect("pin x coordinate is a hanan cut by construction");
            let vi =
                g.ys.binary_search(&pin.at.y)
                    .expect("pin y coordinate is a hanan cut by construction");
            g.add_pin(GridPoint::new(hi, vi, pin.layer))?;
        }
        Ok(g)
    }

    /// Number of horizontal grid columns `H`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Number of vertical grid rows `V`.
    pub fn v(&self) -> usize {
        self.v
    }

    /// Number of routing layers `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Dimensions as an `(h, v, m)` triple.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.h, self.v, self.m)
    }

    /// Total number of vertices `H * V * M`.
    pub fn len(&self) -> usize {
        self.kind.len()
    }

    /// Whether the graph has zero vertices (never true for a constructed
    /// graph; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.kind.is_empty()
    }

    /// Linear index of a grid point, ordering vertices lexicographically by
    /// `(h, v, m)` — the paper's selection priority.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the point is out of bounds.
    #[inline]
    pub fn index(&self, p: GridPoint) -> usize {
        debug_assert!(self.in_bounds(p), "{p} out of {:?}", self.dims());
        (p.h * self.v + p.v) * self.m + p.m
    }

    /// Inverse of [`HananGraph::index`].
    #[inline]
    pub fn point(&self, idx: usize) -> GridPoint {
        let m = idx % self.m;
        let rest = idx / self.m;
        GridPoint::new(rest / self.v, rest % self.v, m)
    }

    /// Whether the point lies inside the grid dimensions.
    #[inline]
    pub fn in_bounds(&self, p: GridPoint) -> bool {
        p.h < self.h && p.v < self.v && p.m < self.m
    }

    /// The classification of a vertex.
    #[inline]
    pub fn kind(&self, p: GridPoint) -> VertexKind {
        self.kind[self.index(p)]
    }

    /// The classification of a vertex by linear index.
    #[inline]
    pub fn kind_at(&self, idx: usize) -> VertexKind {
        self.kind[idx]
    }

    /// Whether a vertex is blocked by an obstacle.
    #[inline]
    pub fn is_blocked(&self, p: GridPoint) -> bool {
        self.kind(p) == VertexKind::Obstacle
    }

    /// The pins of the graph, in insertion order.
    pub fn pins(&self) -> &[GridPoint] {
        &self.pins
    }

    /// The linear indices of the pins, sorted ascending (= selection
    /// priority order). Derived once per layout by routing workspaces
    /// (`RouteContext` in `oarsmt-router`) so the per-query hot path never
    /// re-walks the pin list.
    pub fn pin_index_set(&self) -> Vec<u32> {
        // lint: alloc-ok(bind-time: RouteContext::bind only calls this on a layout change, never in the warm per-query loop)
        let mut idx: Vec<u32> = self.pins.iter().map(|&p| self.index(p) as u32).collect();
        idx.sort_unstable();
        idx
    }

    /// The linear indices of all blocked (obstacle) vertices, ascending.
    pub fn blocked_index_set(&self) -> Vec<u32> {
        (0..self.kind.len())
            .filter(|&i| self.kind[i] == VertexKind::Obstacle)
            .map(|i| i as u32)
            .collect()
    }

    /// The linear indices of all [`VertexKind::Empty`] vertices, ascending.
    /// These are the valid Steiner candidates: top-k selection only needs
    /// to scan this (often much shorter) list instead of every vertex.
    pub fn empty_index_set(&self) -> Vec<u32> {
        // lint: alloc-ok(bind-time: RouteContext::bind only calls this on a layout change, never in the warm per-query loop)
        (0..self.kind.len())
            .filter(|&i| self.kind[i] == VertexKind::Empty)
            .map(|i| i as u32)
            .collect()
    }

    /// Cost of the horizontal edge between columns `gap` and `gap + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `gap >= h - 1`.
    #[inline]
    pub fn x_cost(&self, gap: usize) -> f64 {
        self.x_costs[gap]
    }

    /// Cost of the vertical edge between rows `gap` and `gap + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `gap >= v - 1`.
    #[inline]
    pub fn y_cost(&self, gap: usize) -> f64 {
        self.y_costs[gap]
    }

    /// The uniform via cost between adjacent layers.
    #[inline]
    pub fn via_cost(&self) -> f64 {
        self.via_cost
    }

    /// All horizontal gap costs (length `h - 1`).
    pub fn x_costs(&self) -> &[f64] {
        &self.x_costs
    }

    /// All vertical gap costs (length `v - 1`).
    pub fn y_costs(&self) -> &[f64] {
        &self.y_costs
    }

    /// The largest edge cost, when **every** edge cost (per-gap and via) is
    /// a positive integer exactly represented in `f64`; `None` otherwise.
    ///
    /// This is the eligibility check of the paper's bounded-integer cost
    /// model (Section 2.2: gap costs in `1..=1000`, via costs in `3..=5`):
    /// when it returns `Some(c)`, every path cost is an exact integer sum
    /// and a Dial bucket queue with span `c` can replace the maze router's
    /// binary heap (see `oarsmt-graph::dijkstra::QueuePolicy` and
    /// DESIGN.md §12). `O(H + V)`, allocation-free.
    #[must_use]
    pub fn integer_cost_ceiling(&self) -> Option<u64> {
        let mut max = self.via_cost;
        for &c in self.x_costs.iter().chain(self.y_costs.iter()) {
            if c.fract() != 0.0 {
                return None;
            }
            max = max.max(c);
        }
        if self.via_cost.fract() != 0.0 || max > (1u64 << 32) as f64 {
            return None;
        }
        Some(max as u64)
    }

    /// Physical x coordinates of the grid columns.
    pub fn xs(&self) -> &[i64] {
        &self.xs
    }

    /// Physical y coordinates of the grid rows.
    pub fn ys(&self) -> &[i64] {
        &self.ys
    }

    /// Physical coordinate of a grid point (layer dropped).
    pub fn physical(&self, p: GridPoint) -> Coord {
        Coord::new(self.xs[p.h], self.ys[p.v])
    }

    /// Marks a vertex as a pin.
    ///
    /// # Errors
    ///
    /// * [`GeomError::OutOfBounds`] if the point is outside the grid.
    /// * [`GeomError::PinOnObstacle`] if the vertex is blocked.
    /// * [`GeomError::DuplicatePin`] if the vertex already holds a pin.
    pub fn add_pin(&mut self, p: GridPoint) -> Result<(), GeomError> {
        if !self.in_bounds(p) {
            return Err(GeomError::OutOfBounds {
                point: p,
                dims: self.dims(),
            });
        }
        let idx = self.index(p);
        match self.kind[idx] {
            VertexKind::Obstacle => Err(GeomError::PinOnObstacle(p)),
            VertexKind::Pin => Err(GeomError::DuplicatePin(p)),
            VertexKind::Empty => {
                self.kind[idx] = VertexKind::Pin;
                self.pins.push(p);
                Ok(())
            }
        }
    }

    /// Marks a vertex as an obstacle.
    ///
    /// # Errors
    ///
    /// * [`GeomError::OutOfBounds`] if the point is outside the grid.
    /// * [`GeomError::PinOnObstacle`] if the vertex holds a pin.
    pub fn add_obstacle_vertex(&mut self, p: GridPoint) -> Result<(), GeomError> {
        if !self.in_bounds(p) {
            return Err(GeomError::OutOfBounds {
                point: p,
                dims: self.dims(),
            });
        }
        let idx = self.index(p);
        if self.kind[idx] == VertexKind::Pin {
            return Err(GeomError::PinOnObstacle(p));
        }
        self.kind[idx] = VertexKind::Obstacle;
        Ok(())
    }

    /// Number of obstacle vertices.
    pub fn obstacle_count(&self) -> usize {
        self.kind
            .iter()
            .filter(|&&k| k == VertexKind::Obstacle)
            .count()
    }

    /// Fraction of vertices blocked by obstacles — the "obstacle ratio" used
    /// by Fig. 10 of the paper.
    pub fn obstacle_ratio(&self) -> f64 {
        self.obstacle_count() as f64 / self.len() as f64
    }

    /// The maximum over all gap costs and the via cost; the normalization
    /// denominator of the feature encoding (Section 3.3).
    pub fn max_cost(&self) -> f64 {
        self.x_costs
            .iter()
            .chain(self.y_costs.iter())
            .copied()
            .fold(self.via_cost, f64::max)
    }

    /// Iterator over the (up to six) unblocked neighbors of `p` with their
    /// edge costs. Blocked (obstacle) neighbors are skipped; the center
    /// vertex itself is *not* checked.
    pub fn neighbors(&self, p: GridPoint) -> Neighbors<'_> {
        Neighbors {
            graph: self,
            center: p,
            dir: 0,
        }
    }

    /// Edge cost between two *adjacent* grid points.
    ///
    /// Returns `None` if the points are not grid neighbors.
    pub fn edge_cost(&self, a: GridPoint, b: GridPoint) -> Option<f64> {
        if a.grid_distance(b) != 1 {
            return None;
        }
        if a.h != b.h {
            Some(self.x_costs[a.h.min(b.h)])
        } else if a.v != b.v {
            Some(self.y_costs[a.v.min(b.v)])
        } else {
            Some(self.via_cost)
        }
    }

    /// Rotates the graph 90° counter-clockwise in the H–V plane, returning a
    /// new graph with `h` and `v` swapped. Used by the 16-fold data
    /// augmentation of the training schedule (Section 3.6).
    pub fn rotate90(&self) -> HananGraph {
        // (h, v) -> (v', h') with v' = v, h' = H-1-h:
        // new dims: h_new = old v, v_new = old h.
        let (oh, ov, om) = self.dims();
        let mut g = HananGraph {
            h: ov,
            v: oh,
            m: om,
            xs: self.ys.clone(),
            ys: self.xs.iter().rev().map(|&x| -x).collect(),
            x_costs: self.y_costs.clone(),
            y_costs: self.x_costs.iter().rev().copied().collect(),
            via_cost: self.via_cost,
            kind: vec![VertexKind::Empty; self.kind.len()],
            pins: Vec::new(),
        };
        for idx in 0..self.kind.len() {
            let p = self.point(idx);
            let q = GridPoint::new(p.v, oh - 1 - p.h, p.m);
            let qi = g.index(q);
            g.kind[qi] = self.kind[idx];
        }
        g.pins = self
            .pins
            .iter()
            .map(|&p| GridPoint::new(p.v, oh - 1 - p.h, p.m))
            .collect();
        g
    }

    /// Reflects the graph across the horizontal axis (reverses the `v` rows).
    pub fn reflect_v(&self) -> HananGraph {
        let (oh, ov, om) = self.dims();
        let mut g = HananGraph {
            h: oh,
            v: ov,
            m: om,
            xs: self.xs.clone(),
            ys: self.ys.iter().rev().map(|&y| -y).collect(),
            x_costs: self.x_costs.clone(),
            y_costs: self.y_costs.iter().rev().copied().collect(),
            via_cost: self.via_cost,
            kind: vec![VertexKind::Empty; self.kind.len()],
            pins: Vec::new(),
        };
        for idx in 0..self.kind.len() {
            let p = self.point(idx);
            let q = GridPoint::new(p.h, ov - 1 - p.v, p.m);
            let qi = g.index(q);
            g.kind[qi] = self.kind[idx];
        }
        g.pins = self
            .pins
            .iter()
            .map(|&p| GridPoint::new(p.h, ov - 1 - p.v, p.m))
            .collect();
        g
    }

    /// Reflects the graph across the layer axis (reverses the `m` layers).
    pub fn reflect_m(&self) -> HananGraph {
        let (oh, ov, om) = self.dims();
        let mut g = self.clone();
        for idx in 0..self.kind.len() {
            let p = self.point(idx);
            let q = GridPoint::new(p.h, p.v, om - 1 - p.m);
            let qi = (q.h * ov + q.v) * om + q.m;
            g.kind[qi] = self.kind[idx];
        }
        let _ = oh;
        g.pins = self
            .pins
            .iter()
            .map(|&p| GridPoint::new(p.h, p.v, om - 1 - p.m))
            .collect();
        g
    }
}

impl fmt::Display for HananGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hanan graph {}x{}x{}: {} pins, {} obstacle vertices, via cost {}",
            self.h,
            self.v,
            self.m,
            self.pins.len(),
            self.obstacle_count(),
            self.via_cost
        )
    }
}

/// Iterator over the unblocked grid neighbors of a vertex; see
/// [`HananGraph::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    graph: &'a HananGraph,
    center: GridPoint,
    dir: u8,
}

impl Iterator for Neighbors<'_> {
    /// A neighboring point plus the cost of the connecting edge.
    type Item = (GridPoint, f64);

    fn next(&mut self) -> Option<(GridPoint, f64)> {
        let g = self.graph;
        let c = self.center;
        while self.dir < 6 {
            let dir = self.dir;
            self.dir += 1;
            let candidate = match dir {
                0 if c.h + 1 < g.h => Some((GridPoint::new(c.h + 1, c.v, c.m), g.x_costs[c.h])),
                1 if c.h > 0 => Some((GridPoint::new(c.h - 1, c.v, c.m), g.x_costs[c.h - 1])),
                2 if c.v + 1 < g.v => Some((GridPoint::new(c.h, c.v + 1, c.m), g.y_costs[c.v])),
                3 if c.v > 0 => Some((GridPoint::new(c.h, c.v - 1, c.m), g.y_costs[c.v - 1])),
                4 if c.m + 1 < g.m => Some((GridPoint::new(c.h, c.v, c.m + 1), g.via_cost)),
                5 if c.m > 0 => Some((GridPoint::new(c.h, c.v, c.m - 1), g.via_cost)),
                _ => None,
            };
            if let Some((p, cost)) = candidate {
                if !g.is_blocked(p) {
                    return Some((p, cost));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Pin;
    use crate::rect::{Obstacle, Rect};

    #[test]
    fn index_sets_partition_the_graph() {
        let mut g = HananGraph::uniform(4, 3, 2, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 2, 1)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(1, 1, 0)).unwrap();
        let pins = g.pin_index_set();
        let blocked = g.blocked_index_set();
        let empty = g.empty_index_set();
        assert_eq!(pins.len() + blocked.len() + empty.len(), g.len());
        for set in [&pins, &blocked, &empty] {
            assert!(set.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
        }
        assert_eq!(
            pins,
            vec![
                g.index(GridPoint::new(0, 0, 0)) as u32,
                g.index(GridPoint::new(3, 2, 1)) as u32,
            ]
        );
        assert_eq!(blocked, vec![g.index(GridPoint::new(1, 1, 0)) as u32]);
        for &i in &empty {
            assert_eq!(g.kind_at(i as usize), VertexKind::Empty);
        }
    }

    #[test]
    fn index_round_trips_and_orders_lexicographically() {
        let g = HananGraph::uniform(3, 4, 2, 1.0, 1.0, 3.0);
        let mut last = None;
        for idx in 0..g.len() {
            let p = g.point(idx);
            assert_eq!(g.index(p), idx);
            if let Some(prev) = last {
                assert!(prev < p, "linear index order must match priority order");
            }
            last = Some(p);
        }
    }

    #[test]
    fn neighbors_of_interior_vertex_are_six() {
        let g = HananGraph::uniform(3, 3, 3, 1.0, 2.0, 5.0);
        let n: Vec<_> = g.neighbors(GridPoint::new(1, 1, 1)).collect();
        assert_eq!(n.len(), 6);
        // Costs: two x edges of 1, two y edges of 2, two vias of 5.
        let mut costs: Vec<f64> = n.iter().map(|&(_, c)| c).collect();
        costs.sort_by(f64::total_cmp);
        assert_eq!(costs, vec![1.0, 1.0, 2.0, 2.0, 5.0, 5.0]);
    }

    #[test]
    fn neighbors_skip_obstacles_and_bounds() {
        let mut g = HananGraph::uniform(2, 2, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(1, 0, 0)).unwrap();
        let n: Vec<_> = g.neighbors(GridPoint::new(0, 0, 0)).collect();
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].0, GridPoint::new(0, 1, 0));
    }

    #[test]
    fn edge_cost_matches_neighbors() {
        let g = HananGraph::with_costs(3, 2, 2, vec![7.0, 9.0], vec![4.0], 2.5).unwrap();
        let a = GridPoint::new(1, 0, 0);
        assert_eq!(g.edge_cost(a, GridPoint::new(2, 0, 0)), Some(9.0));
        assert_eq!(g.edge_cost(a, GridPoint::new(0, 0, 0)), Some(7.0));
        assert_eq!(g.edge_cost(a, GridPoint::new(1, 1, 0)), Some(4.0));
        assert_eq!(g.edge_cost(a, GridPoint::new(1, 0, 1)), Some(2.5));
        assert_eq!(g.edge_cost(a, GridPoint::new(2, 1, 0)), None);
    }

    #[test]
    fn from_layout_reproduces_paper_fig1_reduction() {
        // Fig. 1: a uniform 9x9 grid with 3 pins and 2 obstacles reduces to a
        // small Hanan grid. We check cuts at every pin and obstacle boundary.
        let layout = Layout::new(1)
            .with_pin(Pin::new(Coord::new(0, 0), 0))
            .with_pin(Pin::new(Coord::new(8, 4), 0))
            .with_pin(Pin::new(Coord::new(3, 8), 0))
            .with_obstacle(Obstacle::new(Rect::new(1, 2, 2, 5), 0))
            .with_obstacle(Obstacle::new(Rect::new(5, 5, 7, 7), 0));
        let g = HananGraph::from_layout(&layout).unwrap();
        assert_eq!(g.xs(), &[0, 1, 2, 3, 5, 7, 8]);
        assert_eq!(g.ys(), &[0, 2, 4, 5, 7, 8]);
        assert_eq!(g.dims(), (7, 6, 1));
        // Gap costs equal physical distances.
        assert_eq!(g.x_costs(), &[1.0, 1.0, 1.0, 2.0, 2.0, 1.0]);
        assert_eq!(g.y_costs(), &[2.0, 2.0, 1.0, 2.0, 1.0]);
        // Hanan grid is never larger than the uniform grid.
        assert!(g.len() <= 9 * 9);
        // All pins present.
        assert_eq!(g.pins().len(), 3);
        for &p in g.pins() {
            assert_eq!(g.kind(p), VertexKind::Pin);
        }
    }

    #[test]
    fn from_layout_blocks_obstacle_interior_and_boundary() {
        let layout = Layout::new(2)
            .with_pin(Pin::new(Coord::new(0, 0), 0))
            .with_pin(Pin::new(Coord::new(10, 10), 0))
            .with_obstacle(Obstacle::new(Rect::new(4, 4, 6, 6), 1));
        let g = HananGraph::from_layout(&layout).unwrap();
        // The obstacle occupies layer 1 only.
        let h4 = g.xs().iter().position(|&x| x == 4).unwrap();
        let v4 = g.ys().iter().position(|&y| y == 4).unwrap();
        assert_eq!(g.kind(GridPoint::new(h4, v4, 1)), VertexKind::Obstacle);
        assert_eq!(g.kind(GridPoint::new(h4, v4, 0)), VertexKind::Empty);
    }

    #[test]
    fn from_layout_multilayer_consolidation_shares_cuts() {
        // Objects on different layers all contribute cuts to the shared grid.
        let layout = Layout::new(3)
            .with_pin(Pin::new(Coord::new(0, 0), 0))
            .with_pin(Pin::new(Coord::new(9, 9), 2))
            .with_obstacle(Obstacle::new(Rect::new(3, 1, 5, 2), 1));
        let g = HananGraph::from_layout(&layout).unwrap();
        assert_eq!(g.xs(), &[0, 3, 5, 9]);
        assert_eq!(g.ys(), &[0, 1, 2, 9]);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn add_pin_rejects_conflicts() {
        let mut g = HananGraph::uniform(2, 2, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(0, 0, 0)).unwrap();
        assert_eq!(
            g.add_pin(GridPoint::new(0, 0, 0)),
            Err(GeomError::PinOnObstacle(GridPoint::new(0, 0, 0)))
        );
        g.add_pin(GridPoint::new(1, 1, 0)).unwrap();
        assert_eq!(
            g.add_pin(GridPoint::new(1, 1, 0)),
            Err(GeomError::DuplicatePin(GridPoint::new(1, 1, 0)))
        );
        assert!(matches!(
            g.add_pin(GridPoint::new(5, 0, 0)),
            Err(GeomError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn with_costs_validates() {
        assert!(matches!(
            HananGraph::with_costs(0, 2, 1, vec![], vec![1.0], 3.0),
            Err(GeomError::EmptyDimension { .. })
        ));
        assert!(matches!(
            HananGraph::with_costs(2, 2, 1, vec![], vec![1.0], 3.0),
            Err(GeomError::InvalidCost(_))
        ));
        assert!(matches!(
            HananGraph::with_costs(2, 2, 1, vec![f64::NAN], vec![1.0], 3.0),
            Err(GeomError::InvalidCost(_))
        ));
        assert!(matches!(
            HananGraph::with_costs(2, 2, 1, vec![1.0], vec![1.0], -3.0),
            Err(GeomError::InvalidCost(_))
        ));
    }

    #[test]
    fn max_cost_covers_via() {
        let g = HananGraph::with_costs(2, 2, 2, vec![4.0], vec![2.0], 9.0).unwrap();
        assert_eq!(g.max_cost(), 9.0);
    }

    #[test]
    fn rotate90_four_times_is_identity_on_kinds() {
        let mut g = HananGraph::uniform(3, 5, 2, 1.0, 2.0, 3.0);
        g.add_pin(GridPoint::new(0, 1, 0)).unwrap();
        g.add_pin(GridPoint::new(2, 4, 1)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(1, 3, 0)).unwrap();
        let r = g.rotate90();
        assert_eq!(r.dims(), (5, 3, 2));
        let back = r.rotate90().rotate90().rotate90();
        assert_eq!(back.dims(), g.dims());
        for idx in 0..g.len() {
            assert_eq!(back.kind_at(idx), g.kind_at(idx));
        }
        assert_eq!(back.pins(), g.pins());
        assert_eq!(back.x_costs(), g.x_costs());
        assert_eq!(back.y_costs(), g.y_costs());
    }

    #[test]
    fn reflections_are_involutions() {
        let mut g = HananGraph::uniform(4, 3, 3, 1.0, 2.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 2, 2)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(2, 1, 1)).unwrap();
        let gv = g.reflect_v().reflect_v();
        let gm = g.reflect_m().reflect_m();
        for idx in 0..g.len() {
            assert_eq!(gv.kind_at(idx), g.kind_at(idx));
            assert_eq!(gm.kind_at(idx), g.kind_at(idx));
        }
        assert_eq!(gv.pins(), g.pins());
        assert_eq!(gm.pins(), g.pins());
    }

    #[test]
    fn obstacle_ratio_counts_blocked_fraction() {
        let mut g = HananGraph::uniform(2, 2, 1, 1.0, 1.0, 3.0);
        g.add_obstacle_vertex(GridPoint::new(0, 1, 0)).unwrap();
        assert!((g.obstacle_ratio() - 0.25).abs() < 1e-12);
    }
}
