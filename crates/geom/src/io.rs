//! A small line-oriented text format for routing cases, so layouts can be
//! saved, shared and re-run from the command line.
//!
//! ```text
//! # comments and blank lines are ignored
//! hanan H V M
//! via COST
//! xcosts C0 C1 ... C(H-2)
//! ycosts C0 C1 ... C(V-2)
//! pin H V M
//! obstacle H V M
//! ```
//!
//! `xcosts`/`ycosts` are optional (default: unit costs). Coordinates are
//! grid indices.

use std::fmt::Write as _;
use std::str::FromStr;

use crate::coord::GridPoint;
use crate::error::GeomError;
use crate::hanan::{HananGraph, VertexKind};

/// Serializes a Hanan graph (with pins and obstacles) to the text format.
pub fn write_case(graph: &HananGraph) -> String {
    let (h, v, m) = graph.dims();
    let mut out = String::new();
    let _ = writeln!(out, "hanan {h} {v} {m}");
    let _ = writeln!(out, "via {}", graph.via_cost());
    let _ = write!(out, "xcosts");
    for c in graph.x_costs() {
        let _ = write!(out, " {c}");
    }
    out.push('\n');
    let _ = write!(out, "ycosts");
    for c in graph.y_costs() {
        let _ = write!(out, " {c}");
    }
    out.push('\n');
    for &p in graph.pins() {
        let _ = writeln!(out, "pin {} {} {}", p.h, p.v, p.m);
    }
    for idx in 0..graph.len() {
        if graph.kind_at(idx) == VertexKind::Obstacle {
            let p = graph.point(idx);
            let _ = writeln!(out, "obstacle {} {} {}", p.h, p.v, p.m);
        }
    }
    out
}

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseCaseError {
    /// A line could not be parsed (1-based line number and message).
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The header (`hanan H V M`) is missing or appears after other lines.
    MissingHeader,
    /// The parsed geometry is invalid.
    Geometry(GeomError),
}

impl std::fmt::Display for ParseCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseCaseError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseCaseError::MissingHeader => write!(f, "missing `hanan H V M` header"),
            ParseCaseError::Geometry(e) => write!(f, "invalid geometry: {e}"),
        }
    }
}

impl std::error::Error for ParseCaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseCaseError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for ParseCaseError {
    fn from(e: GeomError) -> Self {
        ParseCaseError::Geometry(e)
    }
}

fn parse_nums<T: FromStr>(
    parts: &[&str],
    line: usize,
    what: &str,
) -> Result<Vec<T>, ParseCaseError> {
    parts
        .iter()
        .map(|s| {
            s.parse::<T>().map_err(|_| ParseCaseError::Syntax {
                line,
                message: format!("bad {what}: {s}"),
            })
        })
        .collect()
}

/// Parses the text format back into a Hanan graph.
///
/// # Errors
///
/// See [`ParseCaseError`].
pub fn parse_case(text: &str) -> Result<HananGraph, ParseCaseError> {
    let mut dims: Option<(usize, usize, usize)> = None;
    let mut via: f64 = 3.0;
    let mut xcosts: Option<Vec<f64>> = None;
    let mut ycosts: Option<Vec<f64>> = None;
    let mut pins: Vec<GridPoint> = Vec::new();
    let mut obstacles: Vec<GridPoint> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = parts.collect();
        match keyword {
            "hanan" => {
                let nums: Vec<usize> = parse_nums(&rest, line_no, "dimension")?;
                if nums.len() != 3 {
                    return Err(ParseCaseError::Syntax {
                        line: line_no,
                        message: "expected `hanan H V M`".into(),
                    });
                }
                dims = Some((nums[0], nums[1], nums[2]));
            }
            "via" => {
                let nums: Vec<f64> = parse_nums(&rest, line_no, "via cost")?;
                via = *nums.first().ok_or(ParseCaseError::Syntax {
                    line: line_no,
                    message: "expected `via COST`".into(),
                })?;
            }
            "xcosts" => xcosts = Some(parse_nums(&rest, line_no, "x cost")?),
            "ycosts" => ycosts = Some(parse_nums(&rest, line_no, "y cost")?),
            "pin" | "obstacle" => {
                let nums: Vec<usize> = parse_nums(&rest, line_no, "coordinate")?;
                if nums.len() != 3 {
                    return Err(ParseCaseError::Syntax {
                        line: line_no,
                        message: format!("expected `{keyword} H V M`"),
                    });
                }
                let p = GridPoint::new(nums[0], nums[1], nums[2]);
                if keyword == "pin" {
                    pins.push(p);
                } else {
                    obstacles.push(p);
                }
            }
            other => {
                return Err(ParseCaseError::Syntax {
                    line: line_no,
                    message: format!("unknown keyword `{other}`"),
                })
            }
        }
    }

    let (h, v, m) = dims.ok_or(ParseCaseError::MissingHeader)?;
    let xcosts = xcosts.unwrap_or_else(|| vec![1.0; h.saturating_sub(1)]);
    let ycosts = ycosts.unwrap_or_else(|| vec![1.0; v.saturating_sub(1)]);
    let mut graph = HananGraph::with_costs(h, v, m, xcosts, ycosts, via)?;
    for p in obstacles {
        graph.add_obstacle_vertex(p)?;
    }
    for p in pins {
        graph.add_pin(p)?;
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HananGraph {
        let mut g =
            HananGraph::with_costs(4, 3, 2, vec![1.0, 5.0, 2.0], vec![3.0, 4.0], 3.5).unwrap();
        g.add_obstacle_vertex(GridPoint::new(1, 1, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(2, 2, 1)).unwrap();
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 2, 0)).unwrap();
        g
    }

    #[test]
    fn round_trips_exactly() {
        let g = sample();
        let text = write_case(&g);
        let back = parse_case(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a case\n\nhanan 3 3 1\n# pins below\npin 0 0 0\npin 2 2 0\n";
        let g = parse_case(text).unwrap();
        assert_eq!(g.dims(), (3, 3, 1));
        assert_eq!(g.pins().len(), 2);
        // Default costs are units.
        assert_eq!(g.x_costs(), &[1.0, 1.0]);
    }

    #[test]
    fn missing_header_is_an_error() {
        assert_eq!(
            parse_case("pin 0 0 0\n"),
            Err(ParseCaseError::MissingHeader)
        );
    }

    #[test]
    fn bad_tokens_report_the_line() {
        let err = parse_case("hanan 3 3 1\npin a b c\n").unwrap_err();
        assert!(matches!(err, ParseCaseError::Syntax { line: 2, .. }));
        let err = parse_case("hanan 3 3\n").unwrap_err();
        assert!(matches!(err, ParseCaseError::Syntax { line: 1, .. }));
        let err = parse_case("hanan 3 3 1\nwires 1 2\n").unwrap_err();
        assert!(matches!(err, ParseCaseError::Syntax { line: 2, .. }));
    }

    #[test]
    fn geometry_errors_propagate() {
        // Pin on an obstacle.
        let err = parse_case("hanan 3 3 1\nobstacle 0 0 0\npin 0 0 0\n").unwrap_err();
        assert!(matches!(err, ParseCaseError::Geometry(_)));
        // Out-of-bounds pin.
        let err = parse_case("hanan 3 3 1\npin 9 9 9\n").unwrap_err();
        assert!(matches!(err, ParseCaseError::Geometry(_)));
    }

    #[test]
    fn wrong_cost_count_is_a_geometry_error() {
        let err = parse_case("hanan 3 3 1\nxcosts 1\n").unwrap_err();
        assert!(matches!(err, ParseCaseError::Geometry(_)));
    }
}
