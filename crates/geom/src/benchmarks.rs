//! Synthetic re-creations of the public ML-OARSMT benchmark layouts.
//!
//! The paper's Table 4 evaluates on eight public benchmarks (rt1–rt5 from
//! the OARSMT literature, ind1–ind3 industrial cases) whose original files
//! ship with \[12\]'s artifact, which is not available offline. Following the
//! substitution rule in DESIGN.md §5, each benchmark is re-created
//! synthetically with the published Hanan-graph dimensions, layer count,
//! pin count and obstacle count (down-scaled by [`SCALE`] to fit the CPU
//! budget), using a fixed per-benchmark seed so results are reproducible.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::coord::GridPoint;
use crate::hanan::{HananGraph, VertexKind};

/// Down-scaling factor applied to the published benchmark dimensions and
/// pin/obstacle counts (e.g. rt3's `294×285` Hanan graph becomes `~37×36`).
pub const SCALE: usize = 8;

/// Static description of one public benchmark layout (one row of Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name (`rt1`…`rt5`, `ind1`…`ind3`).
    pub name: &'static str,
    /// Published Hanan-graph `H` dimension.
    pub paper_h: usize,
    /// Published Hanan-graph `V` dimension.
    pub paper_v: usize,
    /// Published layer count `M`.
    pub paper_m: usize,
    /// Published pin count.
    pub paper_pins: usize,
    /// Published obstacle count.
    pub paper_obstacles: usize,
}

impl BenchmarkSpec {
    /// The eight benchmarks of Table 4 with their published parameters.
    pub fn all() -> [BenchmarkSpec; 8] {
        fn spec(
            name: &'static str,
            h: usize,
            v: usize,
            m: usize,
            pins: usize,
            obstacles: usize,
        ) -> BenchmarkSpec {
            BenchmarkSpec {
                name,
                paper_h: h,
                paper_v: v,
                paper_m: m,
                paper_pins: pins,
                paper_obstacles: obstacles,
            }
        }
        [
            spec("rt1", 45, 44, 10, 25, 10),
            spec("rt2", 136, 131, 10, 100, 20),
            spec("rt3", 294, 285, 10, 250, 50),
            spec("rt4", 458, 449, 10, 500, 50),
            spec("rt5", 702, 707, 4, 1000, 1000),
            spec("ind1", 33, 28, 4, 50, 6),
            spec("ind2", 83, 191, 5, 200, 85),
            spec("ind3", 221, 223, 9, 250, 13),
        ]
    }

    /// Scaled dimensions `(h, v, m, pins, obstacles)` actually used by this
    /// reproduction. Dimensions shrink by [`SCALE`]; pins shrink with area so
    /// pin *density* is preserved; layer counts shrink by half (min 2).
    pub fn scaled(&self) -> (usize, usize, usize, usize, usize) {
        let h = (self.paper_h / SCALE).max(6);
        let v = (self.paper_v / SCALE).max(6);
        let m = (self.paper_m / 2).max(2);
        // Pins scale with the *linear* factor so the benchmarks keep enough
        // pins to exercise Steiner selection (the paper's rt2 has 100 pins;
        // an area-ratio scaling would leave 2).
        let pins = (self.paper_pins / SCALE).clamp(4, h * v / 6);
        let obstacles = (self.paper_obstacles / SCALE).clamp(2, h * v / 4);
        (h, v, m, pins, obstacles)
    }

    /// Builds the synthetic benchmark layout: a Hanan graph with the scaled
    /// dimensions, distance-like gap costs, via cost 3 (as in Table 4), and
    /// deterministically placed pins and rectangular obstacle clusters.
    pub fn build(&self) -> HananGraph {
        let (h, v, m, pins, obstacles) = self.scaled();
        let mut rng = StdRng::seed_from_u64(fxhash(self.name));
        // Distance-like gap costs: mostly 1–4 units, mimicking non-uniform
        // Hanan gaps of a physical layout.
        let x_costs = (0..h - 1).map(|_| rng.gen_range(1..=4) as f64).collect();
        let y_costs = (0..v - 1).map(|_| rng.gen_range(1..=4) as f64).collect();
        let mut g = HananGraph::with_costs(h, v, m, x_costs, y_costs, 3.0)
            .expect("scaled benchmark dims are valid");

        // Obstacles: rectangular clusters up to 3x3 on random layers.
        for _ in 0..obstacles {
            let w = rng.gen_range(1..=3usize);
            let d = rng.gen_range(1..=3usize);
            let layer = rng.gen_range(0..m);
            let h0 = rng.gen_range(0..h.saturating_sub(w).max(1));
            let v0 = rng.gen_range(0..v.saturating_sub(d).max(1));
            for dh in 0..w {
                for dv in 0..d {
                    let p = GridPoint::new(h0 + dh, v0 + dv, layer);
                    if g.in_bounds(p) {
                        let _ = g.add_obstacle_vertex(p);
                    }
                }
            }
        }

        // Pins: uniformly scattered over free vertices.
        let mut placed = 0;
        while placed < pins {
            let p = GridPoint::new(
                rng.gen_range(0..h),
                rng.gen_range(0..v),
                rng.gen_range(0..m),
            );
            if g.kind(p) == VertexKind::Empty && g.add_pin(p).is_ok() {
                placed += 1;
            }
        }
        g
    }
}

impl fmt::Display for BenchmarkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (h, v, m, pins, obs) = self.scaled();
        write!(
            f,
            "{}: paper {}x{}x{} ({} pins, {} obstacles) -> scaled {}x{}x{} ({} pins, {} obstacles)",
            self.name,
            self.paper_h,
            self.paper_v,
            self.paper_m,
            self.paper_pins,
            self.paper_obstacles,
            h,
            v,
            m,
            pins,
            obs
        )
    }
}

/// Stable tiny string hash for per-benchmark seeds (FNV-1a).
fn fxhash(s: &str) -> u64 {
    let mut x: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        x ^= b as u64;
        x = x.wrapping_mul(0x1000_0000_01b3);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_and_are_deterministic() {
        for spec in BenchmarkSpec::all() {
            let a = spec.build();
            let b = spec.build();
            assert_eq!(a, b, "{} must be deterministic", spec.name);
            let (h, v, m, pins, _) = spec.scaled();
            assert_eq!(a.dims(), (h, v, m));
            assert_eq!(a.pins().len(), pins);
            assert!(a.pins().len() >= 3);
        }
    }

    #[test]
    fn scaled_preserves_relative_sizes() {
        let all = BenchmarkSpec::all();
        let rt1 = all[0].scaled();
        let rt5 = all[4].scaled();
        assert!(rt5.0 > rt1.0, "rt5 remains the largest rt benchmark");
        assert!(rt5.3 > rt1.3, "rt5 keeps more pins than rt1");
    }

    #[test]
    fn benchmark_names_are_unique() {
        let all = BenchmarkSpec::all();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i].name, all[j].name);
            }
        }
    }

    #[test]
    fn via_cost_is_three_as_in_table4() {
        for spec in BenchmarkSpec::all() {
            assert_eq!(spec.build().via_cost(), 3.0);
        }
    }
}
