//! Axis-aligned rectangles and routing obstacles.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coord::Coord;

/// A closed axis-aligned rectangle `[x_lo, x_hi] × [y_lo, y_hi]` in physical
/// coordinates.
///
/// Rectangles are used for macros, routing blockages and pre-routed wires —
/// collectively "obstacles" in the ML-OARSMT formulation. A rectangle is
/// allowed to be degenerate (a segment or a point), which models pre-routed
/// wires of zero width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    x_lo: i64,
    y_lo: i64,
    x_hi: i64,
    y_hi: i64,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    ///
    /// ```
    /// use oarsmt_geom::rect::Rect;
    /// let r = Rect::new(5, 9, 1, 2);
    /// assert_eq!(r.x_range(), (1, 5));
    /// assert_eq!(r.y_range(), (2, 9));
    /// ```
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Rect {
            x_lo: x0.min(x1),
            y_lo: y0.min(y1),
            x_hi: x0.max(x1),
            y_hi: y0.max(y1),
        }
    }

    /// The inclusive `x` extent `(x_lo, x_hi)`.
    pub fn x_range(&self) -> (i64, i64) {
        (self.x_lo, self.x_hi)
    }

    /// The inclusive `y` extent `(y_lo, y_hi)`.
    pub fn y_range(&self) -> (i64, i64) {
        (self.y_lo, self.y_hi)
    }

    /// Width along `x` (zero for degenerate rectangles).
    pub fn width(&self) -> i64 {
        self.x_hi - self.x_lo
    }

    /// Height along `y` (zero for degenerate rectangles).
    pub fn height(&self) -> i64 {
        self.y_hi - self.y_lo
    }

    /// Area of the rectangle, treating degenerate extents as zero.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Whether the closed rectangle contains the coordinate.
    ///
    /// ```
    /// use oarsmt_geom::{rect::Rect, coord::Coord};
    /// let r = Rect::new(0, 0, 4, 2);
    /// assert!(r.contains(Coord::new(4, 2))); // boundary counts
    /// assert!(!r.contains(Coord::new(5, 0)));
    /// ```
    pub fn contains(&self, c: Coord) -> bool {
        self.x_lo <= c.x && c.x <= self.x_hi && self.y_lo <= c.y && c.y <= self.y_hi
    }

    /// Whether two closed rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x_lo <= other.x_hi
            && other.x_lo <= self.x_hi
            && self.y_lo <= other.y_hi
            && other.y_lo <= self.y_hi
    }

    /// The four corner coordinates, counter-clockwise from the lower-left.
    pub fn corners(&self) -> [Coord; 4] {
        [
            Coord::new(self.x_lo, self.y_lo),
            Coord::new(self.x_hi, self.y_lo),
            Coord::new(self.x_hi, self.y_hi),
            Coord::new(self.x_lo, self.y_hi),
        ]
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}]x[{}, {}]",
            self.x_lo, self.x_hi, self.y_lo, self.y_hi
        )
    }
}

/// A routing obstacle: a rectangle on a specific routing layer.
///
/// Obstacles block both wire segments crossing them on their layer and vias
/// landing on them. A multi-layer macro is modelled as one `Obstacle` per
/// occupied layer, and obstacles are allowed to overlap, forming rectilinear
/// shapes (Section 3.6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Obstacle {
    /// The blocked region in physical coordinates.
    pub rect: Rect,
    /// The routing layer the obstacle occupies.
    pub layer: usize,
}

impl Obstacle {
    /// Creates an obstacle covering `rect` on `layer`.
    pub fn new(rect: Rect, layer: usize) -> Self {
        Obstacle { rect, layer }
    }
}

impl fmt::Display for Obstacle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on layer {}", self.rect, self.layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corner_order() {
        let r = Rect::new(10, 10, 0, 0);
        assert_eq!(r.x_range(), (0, 10));
        assert_eq!(r.y_range(), (0, 10));
        assert_eq!(r.area(), 100);
    }

    #[test]
    fn degenerate_rect_models_wires() {
        let wire = Rect::new(2, 5, 9, 5);
        assert_eq!(wire.height(), 0);
        assert_eq!(wire.area(), 0);
        assert!(wire.contains(Coord::new(4, 5)));
        assert!(!wire.contains(Coord::new(4, 6)));
    }

    #[test]
    fn intersection_includes_touching_edges() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(2, 2, 4, 4);
        let c = Rect::new(3, 0, 5, 1);
        assert!(a.intersects(&b)); // shared corner
        assert!(!a.intersects(&c));
        assert!(!b.intersects(&c)); // x ranges overlap but y ranges do not
    }

    #[test]
    fn corners_are_distinct_for_proper_rects() {
        let r = Rect::new(0, 0, 3, 4);
        let cs = r.corners();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(cs[i], cs[j]);
            }
        }
        for c in cs {
            assert!(r.contains(c));
        }
    }
}
