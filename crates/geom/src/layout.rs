//! Physical multi-layer layouts: pins plus obstacles in database units.
//!
//! A [`Layout`] is the "original coordinates" view of a routing problem. It
//! is reduced to a [`HananGraph`](crate::hanan::HananGraph) — the input
//! representation of the paper — via
//! [`HananGraph::from_layout`](crate::hanan::HananGraph::from_layout).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::coord::Coord;
use crate::error::GeomError;
use crate::rect::Obstacle;

/// A pin to be connected: a physical coordinate on a routing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pin {
    /// Physical position of the pin.
    pub at: Coord,
    /// Routing layer of the pin.
    pub layer: usize,
}

impl Pin {
    /// Creates a pin at `at` on `layer`.
    pub fn new(at: Coord, layer: usize) -> Self {
        Pin { at, layer }
    }
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on layer {}", self.at, self.layer)
    }
}

/// A physical ML-OARSMT routing problem: pins, obstacles, a via cost, and a
/// number of routing layers.
///
/// The builder-style `with_*` methods make construction readable:
///
/// ```
/// use oarsmt_geom::{Layout, Pin, Coord, Obstacle, Rect};
///
/// let layout = Layout::new(2)
///     .with_pin(Pin::new(Coord::new(0, 0), 0))
///     .with_pin(Pin::new(Coord::new(10, 10), 1))
///     .with_obstacle(Obstacle::new(Rect::new(4, 4, 6, 6), 0))
///     .with_via_cost(3.0);
/// assert_eq!(layout.pins().len(), 2);
/// layout.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    layers: usize,
    pins: Vec<Pin>,
    obstacles: Vec<Obstacle>,
    via_cost: f64,
}

impl Layout {
    /// Creates an empty layout with `layers` routing layers and the default
    /// via cost of `3.0` (the value used for the public benchmarks of
    /// Table 4).
    pub fn new(layers: usize) -> Self {
        Layout {
            layers,
            pins: Vec::new(),
            obstacles: Vec::new(),
            via_cost: 3.0,
        }
    }

    /// Adds a pin (builder style).
    #[must_use]
    pub fn with_pin(mut self, pin: Pin) -> Self {
        self.pins.push(pin);
        self
    }

    /// Adds an obstacle (builder style).
    #[must_use]
    pub fn with_obstacle(mut self, ob: Obstacle) -> Self {
        self.obstacles.push(ob);
        self
    }

    /// Sets the via cost (builder style).
    #[must_use]
    pub fn with_via_cost(mut self, cost: f64) -> Self {
        self.via_cost = cost;
        self
    }

    /// The pins of the layout.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// The obstacles of the layout.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// The number of routing layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The uniform via cost `C_via` between adjacent layers.
    pub fn via_cost(&self) -> f64 {
        self.via_cost
    }

    /// Checks that the layout is routable.
    ///
    /// # Errors
    ///
    /// * [`GeomError::TooFewPins`] if there are fewer than two pins.
    /// * [`GeomError::EmptyDimension`] if there are zero layers.
    /// * [`GeomError::InvalidCost`] if the via cost is not finite/positive.
    /// * [`GeomError::OutOfBounds`] if a pin or obstacle names a layer `>=
    ///   layers`.
    /// * [`GeomError::PinOnObstacle`] if a pin lies inside an obstacle on the
    ///   same layer.
    pub fn validate(&self) -> Result<(), GeomError> {
        if self.layers == 0 {
            return Err(GeomError::EmptyDimension { dims: (0, 0, 0) });
        }
        if self.pins.len() < 2 {
            return Err(GeomError::TooFewPins(self.pins.len()));
        }
        if !self.via_cost.is_finite() || self.via_cost <= 0.0 {
            return Err(GeomError::InvalidCost(self.via_cost));
        }
        for pin in &self.pins {
            if pin.layer >= self.layers {
                return Err(GeomError::OutOfBounds {
                    point: crate::coord::GridPoint::new(0, 0, pin.layer),
                    dims: (usize::MAX, usize::MAX, self.layers),
                });
            }
        }
        for ob in &self.obstacles {
            if ob.layer >= self.layers {
                return Err(GeomError::OutOfBounds {
                    point: crate::coord::GridPoint::new(0, 0, ob.layer),
                    dims: (usize::MAX, usize::MAX, self.layers),
                });
            }
        }
        for pin in &self.pins {
            for ob in &self.obstacles {
                if ob.layer == pin.layer && ob.rect.contains(pin.at) {
                    return Err(GeomError::PinOnObstacle(crate::coord::GridPoint::new(
                        0, 0, pin.layer,
                    )));
                }
            }
        }
        Ok(())
    }

    /// Bounding box `(min, max)` of all pins and obstacle corners, or `None`
    /// for an empty layout.
    pub fn bounding_box(&self) -> Option<(Coord, Coord)> {
        let mut it = self
            .pins
            .iter()
            .map(|p| p.at)
            .chain(self.obstacles.iter().flat_map(|o| o.rect.corners()));
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for c in it {
            lo.x = lo.x.min(c.x);
            lo.y = lo.y.min(c.y);
            hi.x = hi.x.max(c.x);
            hi.y = hi.y.max(c.y);
        }
        Some((lo, hi))
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "layout: {} pins, {} obstacles, {} layers, via cost {}",
            self.pins.len(),
            self.obstacles.len(),
            self.layers,
            self.via_cost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn two_pin_layout() -> Layout {
        Layout::new(2)
            .with_pin(Pin::new(Coord::new(0, 0), 0))
            .with_pin(Pin::new(Coord::new(8, 8), 1))
    }

    #[test]
    fn validate_accepts_simple_layout() {
        two_pin_layout().validate().unwrap();
    }

    #[test]
    fn validate_rejects_single_pin() {
        let l = Layout::new(1).with_pin(Pin::new(Coord::new(0, 0), 0));
        assert_eq!(l.validate(), Err(GeomError::TooFewPins(1)));
    }

    #[test]
    fn validate_rejects_zero_layers() {
        let l = Layout::new(0)
            .with_pin(Pin::new(Coord::new(0, 0), 0))
            .with_pin(Pin::new(Coord::new(1, 1), 0));
        assert!(matches!(
            l.validate(),
            Err(GeomError::EmptyDimension { .. })
        ));
    }

    #[test]
    fn validate_rejects_pin_inside_obstacle() {
        let l = two_pin_layout().with_obstacle(Obstacle::new(Rect::new(-1, -1, 1, 1), 0));
        assert!(matches!(l.validate(), Err(GeomError::PinOnObstacle(_))));
    }

    #[test]
    fn validate_allows_pin_over_obstacle_on_other_layer() {
        let l = two_pin_layout().with_obstacle(Obstacle::new(Rect::new(-1, -1, 1, 1), 1));
        l.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_via_cost() {
        let l = two_pin_layout().with_via_cost(0.0);
        assert_eq!(l.validate(), Err(GeomError::InvalidCost(0.0)));
    }

    #[test]
    fn validate_rejects_out_of_range_layers() {
        let l = two_pin_layout().with_pin(Pin::new(Coord::new(4, 4), 7));
        assert!(matches!(l.validate(), Err(GeomError::OutOfBounds { .. })));
    }

    #[test]
    fn bounding_box_covers_pins_and_obstacles() {
        let l = two_pin_layout().with_obstacle(Obstacle::new(Rect::new(-5, 2, 3, 20), 0));
        let (lo, hi) = l.bounding_box().unwrap();
        assert_eq!(lo, Coord::new(-5, 0));
        assert_eq!(hi, Coord::new(8, 20));
    }

    #[test]
    fn bounding_box_empty_layout_is_none() {
        assert!(Layout::new(1).bounding_box().is_none());
    }
}
