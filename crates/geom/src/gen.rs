//! Random workload generators.
//!
//! Two families of random layouts are generated here, both directly on the
//! Hanan grid (the paper's training data and test subsets are specified at
//! the Hanan-graph level, Section 3.6 and Table 1):
//!
//! * training-style layouts with `16×16…32×32` grids, 4–10 layers, edge
//!   costs 1–1000, via costs 3–5, and overlapping 1×3 / 1×4 obstacles;
//! * the randomly generated test subsets T32…T512 of Table 1, re-scaled for
//!   CPU-budget reproduction (the structure — the size ladder and the
//!   pin/obstacle growth — is preserved; see DESIGN.md §5).

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::coord::GridPoint;
use crate::hanan::{HananGraph, VertexKind};

/// Configuration of the random Hanan-graph generator.
///
/// Defaults mirror the paper's `16×16×4` training configuration
/// (Section 3.6): edge costs 1–1000, via cost 3–5, obstacles of length 3 or
/// 4 placed horizontally or vertically, possibly overlapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Horizontal grid dimension `H`.
    pub h: usize,
    /// Vertical grid dimension `V`.
    pub v: usize,
    /// Number of routing layers `M`.
    pub m: usize,
    /// Inclusive range of the number of pins.
    pub pins: (usize, usize),
    /// Inclusive range of the number of obstacle strips.
    pub obstacles: (usize, usize),
    /// Inclusive range of per-gap edge costs.
    pub edge_cost: (f64, f64),
    /// Inclusive range of the via cost.
    pub via_cost: (f64, f64),
    /// Inclusive range of obstacle strip lengths (the paper uses 3–4).
    pub obstacle_len: (usize, usize),
}

impl GeneratorConfig {
    /// The paper's `16×16×4` training configuration: 3–6 pins, 32–64
    /// obstacles, edge costs 1–1000, via cost 3–5, obstacle strips of
    /// length 3–4.
    pub fn training_16x16x4() -> Self {
        GeneratorConfig {
            h: 16,
            v: 16,
            m: 4,
            pins: (3, 6),
            obstacles: (32, 64),
            edge_cost: (1.0, 1000.0),
            via_cost: (3.0, 5.0),
            obstacle_len: (3, 4),
        }
    }

    /// A training configuration for arbitrary dimensions, scaling the
    /// obstacle count with the area exactly as the paper scales it from the
    /// `16×16×4` base (32–64 obstacles per `16·16·4` vertices).
    pub fn training(h: usize, v: usize, m: usize) -> Self {
        let base = GeneratorConfig::training_16x16x4();
        let scale = (h * v * m) as f64 / (16.0 * 16.0 * 4.0);
        GeneratorConfig {
            h,
            v,
            m,
            obstacles: (
                ((32.0 * scale).round() as usize).max(1),
                ((64.0 * scale).round() as usize).max(2),
            ),
            ..base
        }
    }

    /// Laptop-scale dimensions with the paper's cost texture: edge costs
    /// 1–1000 and via costs 3–5 (Section 3.6). High cost variance is what
    /// makes Steiner-point sharing pay off, so trainers and the Figs. 11–12
    /// experiments use this preset.
    pub fn paper_costs(h: usize, v: usize, m: usize, pins: (usize, usize)) -> Self {
        GeneratorConfig {
            edge_cost: (1.0, 1000.0),
            via_cost: (3.0, 5.0),
            ..GeneratorConfig::tiny(h, v, m, pins)
        }
    }

    /// A small, fast configuration for unit tests and laptop-scale
    /// experiments.
    pub fn tiny(h: usize, v: usize, m: usize, pins: (usize, usize)) -> Self {
        GeneratorConfig {
            h,
            v,
            m,
            pins,
            obstacles: ((h * v * m / 16).max(1), (h * v * m / 8).max(2)),
            edge_cost: (1.0, 10.0),
            via_cost: (3.0, 5.0),
            obstacle_len: (2, 3),
        }
    }
}

impl fmt::Display for GeneratorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{} grid, {}..={} pins, {}..={} obstacles",
            self.h, self.v, self.m, self.pins.0, self.pins.1, self.obstacles.0, self.obstacles.1
        )
    }
}

/// A seeded random generator of routing cases (Hanan graphs with pins and
/// obstacles).
///
/// ```
/// use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
///
/// let mut gen = CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (3, 5)), 42);
/// let g = gen.generate();
/// assert!(g.pins().len() >= 3 && g.pins().len() <= 5);
/// ```
#[derive(Debug, Clone)]
pub struct CaseGenerator {
    config: GeneratorConfig,
    rng: StdRng,
}

impl CaseGenerator {
    /// Creates a generator with the given configuration and RNG seed.
    pub fn new(config: GeneratorConfig, seed: u64) -> Self {
        CaseGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates one random routing case.
    ///
    /// Obstacle strips that would fully surround a pin are avoided by
    /// placing obstacles before pins; pins are drawn only from empty
    /// vertices, so every generated case is well-formed by construction.
    ///
    /// # Panics
    ///
    /// Panics if the configuration leaves no room for pins (obstacles cover
    /// the whole grid), which cannot happen for the provided presets.
    pub fn generate(&mut self) -> HananGraph {
        let c = self.config.clone();
        let x_costs = (0..c.h - 1)
            .map(|_| {
                self.rng
                    .gen_range(c.edge_cost.0..=c.edge_cost.1)
                    .round()
                    .max(1.0)
            })
            .collect();
        let y_costs = (0..c.v - 1)
            .map(|_| {
                self.rng
                    .gen_range(c.edge_cost.0..=c.edge_cost.1)
                    .round()
                    .max(1.0)
            })
            .collect();
        let via = self.rng.gen_range(c.via_cost.0..=c.via_cost.1).round();
        let mut g = HananGraph::with_costs(c.h, c.v, c.m, x_costs, y_costs, via)
            .expect("generator config produces valid grids");

        let n_obstacles = self.rng.gen_range(c.obstacles.0..=c.obstacles.1);
        for _ in 0..n_obstacles {
            let len = self.rng.gen_range(c.obstacle_len.0..=c.obstacle_len.1);
            let horizontal = self.rng.gen_bool(0.5);
            let m = self.rng.gen_range(0..c.m);
            let (max_h, max_v) = if horizontal {
                (c.h.saturating_sub(len), c.v - 1)
            } else {
                (c.h - 1, c.v.saturating_sub(len))
            };
            let h0 = self.rng.gen_range(0..=max_h);
            let v0 = self.rng.gen_range(0..=max_v);
            for k in 0..len {
                let p = if horizontal {
                    GridPoint::new(h0 + k, v0, m)
                } else {
                    GridPoint::new(h0, v0 + k, m)
                };
                if g.in_bounds(p) {
                    // Overlaps are allowed (paper: obstacles may overlap to
                    // form more complicated shapes).
                    let _ = g.add_obstacle_vertex(p);
                }
            }
        }

        let n_pins = self.rng.gen_range(c.pins.0..=c.pins.1);
        let mut placed = 0;
        let mut attempts = 0;
        while placed < n_pins {
            attempts += 1;
            assert!(
                attempts < 100_000,
                "generator could not place pins; grid too congested"
            );
            let p = GridPoint::new(
                self.rng.gen_range(0..c.h),
                self.rng.gen_range(0..c.v),
                self.rng.gen_range(0..c.m),
            );
            if g.kind(p) == VertexKind::Empty && g.add_pin(p).is_ok() {
                placed += 1;
            }
        }
        g
    }

    /// Generates `n` random routing cases.
    pub fn generate_many(&mut self, n: usize) -> Vec<HananGraph> {
        (0..n).map(|_| self.generate()).collect()
    }
}

/// Specification of one randomly generated test subset (one row of the
/// paper's Table 1), with both the paper's original parameters and the
/// scaled parameters used by this reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSubsetSpec {
    /// Subset name, e.g. `"T32"`.
    pub name: &'static str,
    /// Paper dimensions `(H, V, M-range)` for reference.
    pub paper_dims: (usize, usize, (usize, usize)),
    /// Paper layout count for reference.
    pub paper_layouts: usize,
    /// Scaled `H` used by this reproduction.
    pub h: usize,
    /// Scaled `V`.
    pub v: usize,
    /// Scaled layer range (inclusive).
    pub m: (usize, usize),
    /// Scaled pin-count range (inclusive).
    pub pins: (usize, usize),
    /// Scaled obstacle-count range (inclusive).
    pub obstacles: (usize, usize),
    /// Number of layouts evaluated per subset in this reproduction.
    pub layouts: usize,
}

impl TestSubsetSpec {
    /// The seven test subsets of Table 1, re-scaled for CPU-budget
    /// reproduction. The ladder structure is preserved: each rung roughly
    /// doubles one grid dimension, and pin/obstacle counts grow with area
    /// exactly as in the paper (pins ≈ `H·V/102`, obstacles ≈ `H·V/8 …
    /// H·V·5/8` per the paper's Table 1 ratios).
    pub fn ladder() -> Vec<TestSubsetSpec> {
        fn rung(
            name: &'static str,
            paper: (usize, usize, (usize, usize), usize),
            h: usize,
            v: usize,
            layouts: usize,
        ) -> TestSubsetSpec {
            let area = h * v;
            TestSubsetSpec {
                name,
                paper_dims: (paper.0, paper.1, paper.2),
                paper_layouts: paper.3,
                h,
                v,
                m: (2, 4),
                pins: ((area / 128).max(3), (area / 32).max(4)),
                obstacles: ((area / 8).max(4), (area / 2).max(8)),
                layouts,
            }
        }
        vec![
            rung("T32", (32, 32, (4, 10), 50_000), 8, 8, 120),
            rung("T64", (64, 64, (4, 10), 50_000), 12, 12, 100),
            rung("T128", (128, 128, (4, 10), 50_000), 16, 16, 60),
            rung("T128_2", (128, 256, (4, 10), 50_000), 16, 24, 40),
            rung("T256", (256, 256, (4, 10), 16_000), 24, 24, 20),
            rung("T256_2", (256, 512, (4, 10), 1_000), 24, 40, 16),
            rung("T512", (512, 512, (4, 10), 360), 40, 40, 12),
        ]
    }

    /// A [`CaseGenerator`] drawing layouts from this subset. Layer count is
    /// drawn uniformly from the subset's range by regenerating the config
    /// per case; for simplicity the midpoint of the range is used here and
    /// callers wanting the full range can vary `m` themselves.
    pub fn generator(&self, seed: u64) -> CaseGenerator {
        let m = (self.m.0 + self.m.1) / 2;
        CaseGenerator::new(
            GeneratorConfig {
                h: self.h,
                v: self.v,
                m,
                pins: self.pins,
                obstacles: self.obstacles,
                edge_cost: (1.0, 1000.0),
                via_cost: (3.0, 5.0),
                obstacle_len: (3, 4),
            },
            seed,
        )
    }
}

impl fmt::Display for TestSubsetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}x{} (m {}..={}), pins {}..={}, obstacles {}..={}, {} layouts",
            self.name,
            self.h,
            self.v,
            self.m.0,
            self.m.1,
            self.pins.0,
            self.pins.1,
            self.obstacles.0,
            self.obstacles.1,
            self.layouts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let cfg = GeneratorConfig::tiny(8, 8, 2, (3, 6));
        let a = CaseGenerator::new(cfg.clone(), 7).generate();
        let b = CaseGenerator::new(cfg.clone(), 7).generate();
        let c = CaseGenerator::new(cfg, 8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_cases_are_well_formed() {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(10, 10, 3, (3, 6)), 1);
        for g in gen.generate_many(20) {
            assert!(g.pins().len() >= 3 && g.pins().len() <= 6);
            for &p in g.pins() {
                assert_eq!(g.kind(p), VertexKind::Pin);
            }
            assert!(g.via_cost() >= 3.0 && g.via_cost() <= 5.0);
            for &c in g.x_costs().iter().chain(g.y_costs()) {
                assert!((1.0..=10.0).contains(&c));
            }
        }
    }

    #[test]
    fn training_config_scales_obstacles_with_area() {
        let base = GeneratorConfig::training_16x16x4();
        let double = GeneratorConfig::training(32, 16, 4);
        assert_eq!(double.obstacles.0, base.obstacles.0 * 2);
        assert_eq!(double.obstacles.1, base.obstacles.1 * 2);
    }

    #[test]
    fn ladder_has_seven_rungs_with_growing_area() {
        let ladder = TestSubsetSpec::ladder();
        assert_eq!(ladder.len(), 7);
        for w in ladder.windows(2) {
            assert!(w[1].h * w[1].v >= w[0].h * w[0].v);
        }
        assert_eq!(ladder[0].name, "T32");
        assert_eq!(ladder[6].name, "T512");
    }

    #[test]
    fn ladder_generators_produce_cases() {
        for spec in TestSubsetSpec::ladder().into_iter().take(2) {
            let g = spec.generator(3).generate();
            assert_eq!(g.h(), spec.h);
            assert_eq!(g.v(), spec.v);
            assert!(g.pins().len() >= spec.pins.0);
        }
    }
}
