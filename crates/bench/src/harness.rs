//! Shared experiment machinery: the pretrained selector and the subset
//! comparison runner behind Tables 2–3 and Fig. 10.

use std::path::PathBuf;
use std::time::Duration;

use oarsmt::eval::CostComparison;
use oarsmt::rl_router::RlRouter;
use oarsmt::selector::NeuralSelector;
use oarsmt_geom::gen::TestSubsetSpec;
use oarsmt_nn::unet::UNetConfig;
use oarsmt_rl::schedule::laptop_schedule;
use oarsmt_rl::Trainer;
use oarsmt_router::{Lin18Router, RouteError};

/// Architecture of the experiment selector (small enough to train in
/// minutes on one core, wide enough to learn the 3–6-pin patterns).
pub fn experiment_net_config() -> UNetConfig {
    UNetConfig {
        in_channels: 7,
        base_channels: 4,
        levels: 2,
        seed: 1234,
    }
}

/// Path of the cached pretrained selector weights.
fn weights_path() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("artifacts");
    dir.join("selector-v1.bin")
}

/// Returns the experiment selector, training it with the scaled schedule of
/// [`laptop_schedule`] on first use and caching the weights under
/// `crates/bench/artifacts/`.
///
/// # Panics
///
/// Panics if training fails systematically (cannot generate routable
/// layouts) or the cache directory is not writable.
pub fn pretrained_selector() -> NeuralSelector {
    let path = weights_path();
    let mut selector = NeuralSelector::with_config(experiment_net_config());
    if path.exists() && selector.load(&path).is_ok() {
        return selector;
    }
    eprintln!("[harness] training experiment selector (one-time, cached at {path:?})");
    let mut trainer = Trainer::new(laptop_schedule(7));
    let reports = trainer
        .run(&mut selector)
        .expect("training on random layouts must succeed");
    for r in &reports {
        eprintln!("[harness] {r}");
    }
    std::fs::create_dir_all(path.parent().expect("artifacts dir")).expect("create artifacts dir");
    selector.save(&path).expect("cache selector weights");
    selector
}

/// Per-subset outcome of the ours-vs-\[14\] comparison.
#[derive(Debug, Clone)]
pub struct SubsetResult {
    /// Subset name.
    pub name: &'static str,
    /// Cost statistics (baseline = \[14\], ours = RL router).
    pub comparison: CostComparison,
    /// Total \[14\] routing time.
    pub baseline_time: Duration,
    /// Total Steiner-point selection time of our router.
    pub select_time: Duration,
    /// Total routing time of our router.
    pub ours_time: Duration,
    /// Per-layout `(obstacle_ratio, improvement_ratio)` points (Fig. 10).
    pub obstacle_points: Vec<(f64, f64)>,
    /// Layouts skipped because their pins were walled off.
    pub skipped: usize,
}

/// Runs one subset: generates its layouts, routes each with the \[14\]
/// baseline and with our RL router, and accumulates cost, runtime and
/// obstacle-ratio statistics.
///
/// # Errors
///
/// Propagates systematic routing failures; layouts whose pins are
/// disconnected by obstacles are counted in `skipped`.
pub fn run_subset(
    spec: &TestSubsetSpec,
    selector: &mut NeuralSelector,
    seed: u64,
) -> Result<SubsetResult, RouteError> {
    let lin18 = Lin18Router::new();
    let mut comparison = CostComparison::new();
    let mut baseline_time = Duration::ZERO;
    let mut select_time = Duration::ZERO;
    let mut ours_time = Duration::ZERO;
    let mut obstacle_points = Vec::new();
    let mut skipped = 0usize;
    let mut gen = spec.generator(seed);

    // Borrow the caller's selector inside a router for this subset.
    let mut router = RlRouter::new(&mut *selector);
    for graph in gen.generate_many(spec.layouts) {
        let t0 = std::time::Instant::now();
        let base = match lin18.route(&graph) {
            Ok(t) => t,
            Err(RouteError::Disconnected { .. }) | Err(RouteError::BlockedTerminal(_)) => {
                skipped += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        baseline_time += t0.elapsed();

        let outcome = match router.route(&graph) {
            Ok(o) => o,
            Err(oarsmt::CoreError::Route(RouteError::Disconnected { .. })) => {
                skipped += 1;
                continue;
            }
            Err(oarsmt::CoreError::Route(e)) => return Err(e),
            Err(e) => panic!("unexpected selector error: {e}"),
        };
        select_time += outcome.select_time;
        ours_time += outcome.total_time;

        comparison.record(base.cost(), outcome.tree.cost());
        let improvement = (base.cost() - outcome.tree.cost()) / base.cost();
        obstacle_points.push((graph.obstacle_ratio(), improvement));
    }
    Ok(SubsetResult {
        name: spec.name,
        comparison,
        baseline_time,
        select_time,
        ours_time,
        obstacle_points,
        skipped,
    })
}

/// One checkpoint of the Figs. 11–12 training-time curves.
#[derive(Debug, Clone, Copy)]
pub struct CurveRow {
    /// Cumulative training wall-clock seconds at this checkpoint.
    pub train_seconds: f64,
    /// Average ST-to-MST ratio on the in-training pin range.
    pub st_mst_small: f64,
    /// Average ST-to-MST ratio on the beyond-training pin range.
    pub st_mst_large: f64,
}

/// The three routers compared in Figs. 11–12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Ours: combinatorial MCTS, one-shot inference.
    Combinatorial,
    /// Conventional AlphaGo-like MCTS, sequential inference.
    AlphaGoLike,
    /// PPO, sequential inference.
    Ppo,
}

impl Policy {
    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Combinatorial => "ours",
            Policy::AlphaGoLike => "alphago-like",
            Policy::Ppo => "ppo",
        }
    }
}

/// Trains one policy on fixed-size layouts and evaluates its ST-to-MST
/// ratio after every stage — the machinery behind Figs. 11–12.
///
/// `size` is the fixed layout size; `pin_train` the training pin range;
/// evaluation uses `pin_train` ("small") and `pin_beyond` ("large", beyond
/// the training range, testing generalization as in Fig. 11(b)).
pub fn training_curve(
    policy: Policy,
    size: (usize, usize, usize),
    pin_train: (usize, usize),
    pin_beyond: (usize, usize),
    stages: usize,
    seed: u64,
) -> Vec<CurveRow> {
    use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
    use oarsmt_mcts::MctsConfig;
    use oarsmt_rl::ppo::{PpoConfig, PpoTrainer};
    use oarsmt_rl::trainer::{st_to_mst_over_cases, InferenceMode, Trainer, TrainerConfig};
    use std::time::Instant;

    let (h, v, m) = size;
    let small_cases =
        CaseGenerator::new(GeneratorConfig::paper_costs(h, v, m, pin_train), seed ^ 0xCAFE)
            .generate_many(40);
    let large_cases =
        CaseGenerator::new(GeneratorConfig::paper_costs(h, v, m, pin_beyond), seed ^ 0xBEEF)
            .generate_many(40);

    let trainer_config = TrainerConfig {
        sizes: vec![size],
        layouts_per_size: 20,
        stages,
        curriculum_stages: 2,
        pin_range: pin_train,
        epochs_per_stage: 2,
        batch_size: 32,
        learning_rate: 1e-3,
        augment: true,
        mcts: MctsConfig {
            base_iterations: 2 * h * v * m,
            base_size: h * v * m,
            ..MctsConfig::default()
        },
        seed,
    };
    let mut rows = Vec::with_capacity(stages);
    let mut elapsed = 0.0f64;
    match policy {
        Policy::Combinatorial | Policy::AlphaGoLike => {
            let mut trainer = if policy == Policy::Combinatorial {
                Trainer::new(trainer_config)
            } else {
                Trainer::new_alphago(trainer_config)
            };
            let mode = if policy == Policy::Combinatorial {
                InferenceMode::OneShot
            } else {
                InferenceMode::Sequential
            };
            let mut selector = NeuralSelector::with_config(experiment_net_config());
            for stage in 0..stages {
                let t0 = Instant::now();
                trainer
                    .run_stage(&mut selector, stage)
                    .expect("training stage");
                elapsed += t0.elapsed().as_secs_f64();
                rows.push(CurveRow {
                    train_seconds: elapsed,
                    st_mst_small: st_to_mst_over_cases(&mut selector, mode, &small_cases),
                    st_mst_large: st_to_mst_over_cases(&mut selector, mode, &large_cases),
                });
            }
        }
        Policy::Ppo => {
            let mut trainer = PpoTrainer::new(
                PpoConfig {
                    iterations: 1,
                    episodes_per_iter: 24,
                    epochs: 2,
                    size,
                    pin_range: pin_train,
                    seed,
                    ..PpoConfig::default()
                },
                experiment_net_config(),
            );
            for stage in 0..stages {
                let t0 = Instant::now();
                trainer.run_iteration(stage);
                elapsed += t0.elapsed().as_secs_f64();
                rows.push(CurveRow {
                    train_seconds: elapsed,
                    st_mst_small: st_to_mst_over_cases(
                        trainer.policy_mut(),
                        InferenceMode::Sequential,
                        &small_cases,
                    ),
                    st_mst_large: st_to_mst_over_cases(
                        trainer.policy_mut(),
                        InferenceMode::Sequential,
                        &large_cases,
                    ),
                });
            }
        }
    }
    rows
}

/// Prints the Figs. 11–12 curves for all three policies at one layout size.
pub fn print_training_curves(size: (usize, usize, usize), stages: usize, seed: u64) {
    use crate::report::Table;
    let pin_train = (3, 5);
    let pin_beyond = (6, 9);
    for policy in [Policy::Combinatorial, Policy::AlphaGoLike, Policy::Ppo] {
        let rows = training_curve(policy, size, pin_train, pin_beyond, stages, seed);
        println!(
            "{} ({}x{}x{}, train pins {}-{}, beyond {}-{}):",
            policy.name(),
            size.0,
            size.1,
            size.2,
            pin_train.0,
            pin_train.1,
            pin_beyond.0,
            pin_beyond.1
        );
        let mut table = Table::new(["train s", "st/mst (3-5 pins)", "st/mst (6-9 pins)"]);
        for r in &rows {
            table.row([
                format!("{:.1}", r.train_seconds),
                format!("{:.4}", r.st_mst_small),
                format!("{:.4}", r.st_mst_large),
            ]);
        }
        table.print();
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_subset_accumulates_statistics() {
        let spec = TestSubsetSpec {
            name: "tiny",
            paper_dims: (32, 32, (4, 10)),
            paper_layouts: 0,
            h: 7,
            v: 7,
            m: (2, 2),
            pins: (3, 5),
            obstacles: (4, 8),
            layouts: 4,
        };
        let mut selector = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed: 0,
        });
        let result = run_subset(&spec, &mut selector, 99).unwrap();
        assert!(result.comparison.count() + result.skipped == 4);
        assert!(result.comparison.count() > 0);
        assert_eq!(
            result.obstacle_points.len(),
            result.comparison.count()
        );
    }
}
