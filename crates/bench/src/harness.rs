//! Shared experiment machinery: the pretrained selector and the subset
//! comparison runner behind Tables 2–3 and Fig. 10.

use std::path::PathBuf;

use oarsmt::eval::CostComparison;
use oarsmt::parallel;
use oarsmt::rl_router::RlRouter;
use oarsmt::selector::NeuralSelector;
use oarsmt_geom::gen::TestSubsetSpec;
use oarsmt_nn::unet::UNetConfig;
use oarsmt_rl::schedule::laptop_schedule;
use oarsmt_rl::Trainer;
use oarsmt_router::{Lin18Router, RouteError};
use oarsmt_telemetry::{CounterSet, Span, SpanSet};

/// Architecture of the experiment selector (small enough to train in
/// minutes on one core, wide enough to learn the 3–6-pin patterns).
pub fn experiment_net_config() -> UNetConfig {
    UNetConfig {
        in_channels: 7,
        base_channels: 4,
        levels: 2,
        seed: 1234,
    }
}

/// Path of the cached pretrained selector weights.
fn weights_path() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("artifacts");
    dir.join("selector-v1.bin")
}

/// Returns the experiment selector, training it with the scaled schedule of
/// [`laptop_schedule`] on first use and caching the weights under
/// `crates/bench/artifacts/`.
///
/// # Panics
///
/// Panics if training fails systematically (cannot generate routable
/// layouts) or the cache directory is not writable.
pub fn pretrained_selector() -> NeuralSelector {
    let path = weights_path();
    let mut selector = NeuralSelector::with_config(experiment_net_config());
    if path.exists() && selector.load(&path).is_ok() {
        return selector;
    }
    eprintln!("[harness] training experiment selector (one-time, cached at {path:?})");
    let mut trainer = Trainer::new(laptop_schedule(7));
    let reports = trainer
        .run(&mut selector)
        .expect("training on random layouts must succeed");
    for r in &reports {
        eprintln!("[harness] {r}");
    }
    std::fs::create_dir_all(path.parent().expect("artifacts dir")).expect("create artifacts dir");
    selector.save(&path).expect("cache selector weights");
    selector
}

/// Per-subset outcome of the ours-vs-\[14\] comparison.
#[derive(Debug, Clone)]
pub struct SubsetResult {
    /// Subset name.
    pub name: &'static str,
    /// Cost statistics (baseline = \[14\], ours = RL router).
    pub comparison: CostComparison,
    /// Per-phase wall-clock histograms ([`Span::PhaseBaseline`] /
    /// [`Span::PhaseSelect`] / [`Span::PhaseRoute`]), one record per layout,
    /// summed over workers when the subset ran on a pool. The nanoseconds
    /// are measured inside each job and folded deterministically, so the
    /// spans populate regardless of the `telemetry-timing` feature.
    pub spans: SpanSet,
    /// Deterministic work counters, per-job deltas folded in index order.
    pub counters: CounterSet,
    /// Per-layout `(obstacle_ratio, improvement_ratio)` points (Fig. 10).
    pub obstacle_points: Vec<(f64, f64)>,
    /// Layouts skipped because their pins were walled off.
    pub skipped: usize,
}

/// Outcome of one layout inside [`run_subset`]'s fan-out.
enum LayoutOutcome {
    /// Pins walled off by obstacles — counted, not an error.
    Skipped,
    /// Both routers succeeded.
    Row {
        base_cost: f64,
        ours_cost: f64,
        /// `(baseline, select, route)` wall-clock nanoseconds.
        phase_ns: [u64; 3],
        obstacle_point: (f64, f64),
    },
}

/// Runs one subset: generates its layouts, routes each with the \[14\]
/// baseline and with our RL router on a pool of `threads` workers, and
/// accumulates cost, runtime and obstacle-ratio statistics.
///
/// Layout `i` is generated from `parallel::derive_seed(seed, i)` and the
/// per-layout results are folded in index order, so costs, win/loss tallies
/// and obstacle points are **bit-identical for every thread count**; only
/// the measured times vary. Workers share `selector` read-only (a
/// `&NeuralSelector` is itself a `Selector`, running the cache-free
/// inference path, which is bit-identical to the owned path) — no worker
/// clones the weight set.
///
/// # Errors
///
/// Propagates systematic routing failures; layouts whose pins are
/// disconnected by obstacles are counted in `skipped`.
pub fn run_subset(
    spec: &TestSubsetSpec,
    selector: &NeuralSelector,
    seed: u64,
    threads: usize,
) -> Result<SubsetResult, RouteError> {
    let lin18 = Lin18Router::new();
    let outcomes = parallel::run_seeded_with(
        spec.layouts,
        seed,
        threads,
        || RlRouter::new(selector),
        |router, _idx, layout_seed| -> Result<(LayoutOutcome, CounterSet), RouteError> {
            let graph = spec.generator(layout_seed).generate();
            // Each job reports its counter delta (the worker's router
            // context is reused, so absolute readings mix layouts).
            let before = router.counters();
            let t0 = std::time::Instant::now();
            let base = match lin18.route(&graph) {
                Ok(t) => t,
                Err(RouteError::Disconnected { .. }) | Err(RouteError::BlockedTerminal(_)) => {
                    return Ok((
                        LayoutOutcome::Skipped,
                        router.counters().delta_since(&before),
                    ));
                }
                Err(e) => return Err(e),
            };
            let baseline = t0.elapsed();

            let outcome = match router.route(&graph) {
                Ok(o) => o,
                Err(oarsmt::CoreError::Route(RouteError::Disconnected { .. })) => {
                    return Ok((
                        LayoutOutcome::Skipped,
                        router.counters().delta_since(&before),
                    ));
                }
                Err(oarsmt::CoreError::Route(e)) => return Err(e),
                Err(e) => panic!("unexpected selector error: {e}"),
            };
            let base_cost = base.cost();
            let ours_cost = outcome.tree.cost();
            let row = LayoutOutcome::Row {
                base_cost,
                ours_cost,
                phase_ns: [
                    baseline.as_nanos() as u64,
                    outcome.select_time.as_nanos() as u64,
                    outcome
                        .total_time
                        .saturating_sub(outcome.select_time)
                        .as_nanos() as u64,
                ],
                obstacle_point: (graph.obstacle_ratio(), (base_cost - ours_cost) / base_cost),
            };
            Ok((row, router.counters().delta_since(&before)))
        },
    );

    // Fold in submission order: f64 accumulation and the counter reduction
    // see a fixed visit order.
    let mut comparison = CostComparison::new();
    let mut spans = SpanSet::new();
    let mut counters = CounterSet::new();
    let mut obstacle_points = Vec::new();
    let mut skipped = 0usize;
    for outcome in outcomes {
        let (layout, delta) = outcome?;
        counters.merge_from(&delta);
        match layout {
            LayoutOutcome::Skipped => skipped += 1,
            LayoutOutcome::Row {
                base_cost,
                ours_cost,
                phase_ns,
                obstacle_point,
            } => {
                comparison.record(base_cost, ours_cost);
                spans.record_ns(Span::PhaseBaseline, phase_ns[0]);
                spans.record_ns(Span::PhaseSelect, phase_ns[1]);
                spans.record_ns(Span::PhaseRoute, phase_ns[2]);
                obstacle_points.push(obstacle_point);
            }
        }
    }
    Ok(SubsetResult {
        name: spec.name,
        comparison,
        spans,
        counters,
        obstacle_points,
        skipped,
    })
}

/// One checkpoint of the Figs. 11–12 training-time curves.
#[derive(Debug, Clone, Copy)]
pub struct CurveRow {
    /// Cumulative training wall-clock seconds at this checkpoint.
    pub train_seconds: f64,
    /// Average ST-to-MST ratio on the in-training pin range.
    pub st_mst_small: f64,
    /// Average ST-to-MST ratio on the beyond-training pin range.
    pub st_mst_large: f64,
}

/// The three routers compared in Figs. 11–12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Ours: combinatorial MCTS, one-shot inference.
    Combinatorial,
    /// Conventional AlphaGo-like MCTS, sequential inference.
    AlphaGoLike,
    /// PPO, sequential inference.
    Ppo,
}

impl Policy {
    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Combinatorial => "ours",
            Policy::AlphaGoLike => "alphago-like",
            Policy::Ppo => "ppo",
        }
    }
}

/// Trains one policy on fixed-size layouts and evaluates its ST-to-MST
/// ratio after every stage — the machinery behind Figs. 11–12.
///
/// `size` is the fixed layout size; `pin_train` the training pin range;
/// evaluation uses `pin_train` ("small") and `pin_beyond` ("large", beyond
/// the training range, testing generalization as in Fig. 11(b)).
pub fn training_curve(
    policy: Policy,
    size: (usize, usize, usize),
    pin_train: (usize, usize),
    pin_beyond: (usize, usize),
    stages: usize,
    seed: u64,
) -> Vec<CurveRow> {
    use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
    use oarsmt_mcts::MctsConfig;
    use oarsmt_rl::ppo::{PpoConfig, PpoTrainer};
    use oarsmt_rl::trainer::{st_to_mst_over_cases, InferenceMode, Trainer, TrainerConfig};
    use std::time::Instant;

    let (h, v, m) = size;
    let small_cases = CaseGenerator::new(
        GeneratorConfig::paper_costs(h, v, m, pin_train),
        seed ^ 0xCAFE,
    )
    .generate_many(40);
    let large_cases = CaseGenerator::new(
        GeneratorConfig::paper_costs(h, v, m, pin_beyond),
        seed ^ 0xBEEF,
    )
    .generate_many(40);

    let trainer_config = TrainerConfig {
        sizes: vec![size],
        layouts_per_size: 20,
        stages,
        curriculum_stages: 2,
        pin_range: pin_train,
        epochs_per_stage: 2,
        batch_size: 32,
        learning_rate: 1e-3,
        augment: true,
        mcts: MctsConfig {
            base_iterations: 2 * h * v * m,
            base_size: h * v * m,
            ..MctsConfig::default()
        },
        seed,
        threads: 0,
    };
    let mut rows = Vec::with_capacity(stages);
    let mut elapsed = 0.0f64;
    match policy {
        Policy::Combinatorial | Policy::AlphaGoLike => {
            let mut trainer = if policy == Policy::Combinatorial {
                Trainer::new(trainer_config)
            } else {
                Trainer::new_alphago(trainer_config)
            };
            let mode = if policy == Policy::Combinatorial {
                InferenceMode::OneShot
            } else {
                InferenceMode::Sequential
            };
            let mut selector = NeuralSelector::with_config(experiment_net_config());
            for stage in 0..stages {
                let t0 = Instant::now();
                trainer
                    .run_stage(&mut selector, stage)
                    .expect("training stage");
                elapsed += t0.elapsed().as_secs_f64();
                rows.push(CurveRow {
                    train_seconds: elapsed,
                    st_mst_small: st_to_mst_over_cases(&mut selector, mode, &small_cases),
                    st_mst_large: st_to_mst_over_cases(&mut selector, mode, &large_cases),
                });
            }
        }
        Policy::Ppo => {
            let mut trainer = PpoTrainer::new(
                PpoConfig {
                    iterations: 1,
                    episodes_per_iter: 24,
                    epochs: 2,
                    size,
                    pin_range: pin_train,
                    seed,
                    ..PpoConfig::default()
                },
                experiment_net_config(),
            );
            for stage in 0..stages {
                let t0 = Instant::now();
                trainer.run_iteration(stage);
                elapsed += t0.elapsed().as_secs_f64();
                rows.push(CurveRow {
                    train_seconds: elapsed,
                    st_mst_small: st_to_mst_over_cases(
                        trainer.policy_mut(),
                        InferenceMode::Sequential,
                        &small_cases,
                    ),
                    st_mst_large: st_to_mst_over_cases(
                        trainer.policy_mut(),
                        InferenceMode::Sequential,
                        &large_cases,
                    ),
                });
            }
        }
    }
    rows
}

/// Prints the Figs. 11–12 curves for all three policies at one layout size.
pub fn print_training_curves(size: (usize, usize, usize), stages: usize, seed: u64) {
    use crate::report::Table;
    let pin_train = (3, 5);
    let pin_beyond = (6, 9);
    for policy in [Policy::Combinatorial, Policy::AlphaGoLike, Policy::Ppo] {
        let rows = training_curve(policy, size, pin_train, pin_beyond, stages, seed);
        println!(
            "{} ({}x{}x{}, train pins {}-{}, beyond {}-{}):",
            policy.name(),
            size.0,
            size.1,
            size.2,
            pin_train.0,
            pin_train.1,
            pin_beyond.0,
            pin_beyond.1
        );
        let mut table = Table::new(["train s", "st/mst (3-5 pins)", "st/mst (6-9 pins)"]);
        for r in &rows {
            table.row([
                format!("{:.1}", r.train_seconds),
                format!("{:.4}", r.st_mst_small),
                format!("{:.4}", r.st_mst_large),
            ]);
        }
        table.print();
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_subset_accumulates_statistics() {
        let spec = TestSubsetSpec {
            name: "tiny",
            paper_dims: (32, 32, (4, 10)),
            paper_layouts: 0,
            h: 7,
            v: 7,
            m: (2, 2),
            pins: (3, 5),
            obstacles: (4, 8),
            layouts: 4,
        };
        let selector = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed: 0,
        });
        let result = run_subset(&spec, &selector, 99, 1).unwrap();
        assert!(result.comparison.count() + result.skipped == 4);
        assert!(result.comparison.count() > 0);
        assert_eq!(result.obstacle_points.len(), result.comparison.count());
    }

    #[test]
    fn run_subset_is_thread_count_invariant() {
        let spec = TestSubsetSpec {
            name: "tiny",
            paper_dims: (32, 32, (4, 10)),
            paper_layouts: 0,
            h: 7,
            v: 7,
            m: (2, 2),
            pins: (3, 5),
            obstacles: (4, 8),
            layouts: 8,
        };
        let selector = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed: 3,
        });
        let one = run_subset(&spec, &selector, 7, 1).unwrap();
        let four = run_subset(&spec, &selector, 7, 4).unwrap();
        assert_eq!(one.comparison, four.comparison);
        assert_eq!(one.obstacle_points, four.obstacle_points);
        assert_eq!(one.skipped, four.skipped);
        // Counters are bit-identical too, modulo the pool hit/miss split
        // (each worker warms its own context).
        let (mut c1, mut c4) = (one.counters, four.counters);
        c1.fold_pool_splits();
        c4.fold_pool_splits();
        assert_eq!(c1, c4, "counter totals are thread-count invariant");
        assert!(!c1.is_zero());
    }
}
