//! Line-based reader for the recorded `BENCH_*.json` artifacts.
//!
//! The throughput binaries (`unet_throughput`, `critic_throughput`) compare
//! a live run against a *recorded* pre-change baseline artifact, so the
//! reported speedups are honest (live fresh-vs-reused comparisons measure
//! whatever both paths currently share). The artifacts are written by the
//! binaries themselves in a fixed one-rung-per-line layout, which this
//! module parses with plain string scanning — no JSON dependency.

use std::io;
use std::path::Path;

/// A loaded artifact file.
#[derive(Debug, Clone)]
pub struct Artifact {
    text: String,
}

impl Artifact {
    /// Reads an artifact file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (missing baseline file, etc.).
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Artifact> {
        Ok(Artifact {
            text: std::fs::read_to_string(path)?,
        })
    }

    /// The rung object lines (every line carrying a `"name"` key), in file
    /// order.
    pub fn rung_lines(&self) -> impl Iterator<Item = &str> {
        self.text.lines().filter(|l| l.contains("\"name\""))
    }

    /// The rung line with the given name, if present.
    pub fn rung(&self, name: &str) -> Option<&str> {
        let tag = format!("\"name\": \"{name}\"");
        self.rung_lines().find(|l| l.contains(&tag))
    }

    /// A top-level numeric field (e.g. `total_fwd_per_s`).
    pub fn top_num(&self, key: &str) -> Option<f64> {
        self.text.lines().find_map(|l| json_num(l, key))
    }
}

/// The raw value token of `"key": <value>` in `line` (quotes stripped for
/// string values).
pub fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    let end = rest
        .char_indices()
        .find(|&(i, c)| (c == ',' || c == '}') && !in_string(rest, i))
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Whether byte offset `i` of `s` falls inside a double-quoted string.
fn in_string(s: &str, i: usize) -> bool {
    s[..i].bytes().filter(|&b| b == b'"').count() % 2 == 1
}

/// A numeric field of a rung line.
pub fn json_num(line: &str, key: &str) -> Option<f64> {
    json_field(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\n  \"mode\": \"baseline\",\n  \"rungs\": [\n",
        "    {\"name\": \"S8\", \"fwd_per_s\": 581.184, \"cs\": \"407a72a5b0200000\"},\n",
        "    {\"name\": \"S12\", \"fwd_per_s\": 362.861, \"cs\": \"408dba497da00000\"}\n",
        "  ],\n  \"total_fwd_per_s\": 207.542\n}\n"
    );

    #[test]
    fn fields_parse_by_key() {
        let art = Artifact {
            text: SAMPLE.to_string(),
        };
        assert_eq!(art.rung_lines().count(), 2);
        let r = art.rung("S12").unwrap();
        assert_eq!(json_num(r, "fwd_per_s"), Some(362.861));
        assert_eq!(json_field(r, "cs"), Some("408dba497da00000"));
        assert_eq!(json_field(r, "name"), Some("S12"));
        assert_eq!(art.top_num("total_fwd_per_s"), Some(207.542));
        assert!(art.rung("S99").is_none());
        assert!(json_num(r, "missing").is_none());
    }
}
