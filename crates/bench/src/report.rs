//! Minimal fixed-width table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple left-padded text table: a header row plus data rows, printed
/// with column widths fitted to the content.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded or truncated to the header width).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "cost"]);
        t.row(["a", "1"]);
        t.row(["long-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }
}
