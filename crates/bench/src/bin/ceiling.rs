//! Diagnostic (not a paper experiment): the achievable ST-to-MST ceiling on
//! the Figs. 11-12 evaluation distribution — exact Steiner optimum vs the
//! pins-only spanning construction.

#![forbid(unsafe_code)]

use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_router::exact::steiner_exact_cost;
use oarsmt_router::OarmstRouter;

fn main() {
    for (h, v, m, pins) in [
        (8, 8, 2, (3usize, 5usize)),
        (8, 8, 2, (6, 8)),
        (12, 12, 2, (4, 6)),
    ] {
        let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(h, v, m, pins), 0xCE11);
        let plain = OarmstRouter::new().with_polish_rounds(0);
        let polished = OarmstRouter::new();
        let mut sum_exact_over_mst = 0.0;
        let mut sum_polished_over_mst = 0.0;
        let mut n = 0;
        for g in gen.generate_many(25) {
            let Ok(exact) = steiner_exact_cost(&g) else {
                continue;
            };
            let Ok(mst) = plain.route(&g, &[]) else {
                continue;
            };
            let Ok(pol) = polished.route(&g, &[]) else {
                continue;
            };
            sum_exact_over_mst += exact / mst.cost();
            sum_polished_over_mst += pol.cost() / mst.cost();
            n += 1;
        }
        println!(
            "{h}x{v}x{m} pins {pins:?}: exact/mst {:.4}, polished/mst {:.4} ({n} layouts)",
            sum_exact_over_mst / n as f64,
            sum_polished_over_mst / n as f64
        );
    }
}
