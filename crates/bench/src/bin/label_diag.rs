//! Diagnostic (not a paper experiment): inspects combinatorial-MCTS label
//! quality and whether the selector can learn from it.

#![forbid(unsafe_code)]

use oarsmt::selector::{NeuralSelector, Selector, UniformSelector};
use oarsmt_bench::harness::experiment_net_config;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{GridPoint, HananGraph, VertexKind};
use oarsmt_mcts::{CombinatorialMcts, MctsConfig};
use oarsmt_nn::layer::Layer;
use oarsmt_nn::loss::bce_with_logits;
use oarsmt_nn::optim::Adam;
use oarsmt_rl::sample::TrainingSample;

fn main() {
    // 1. Known-optimum sanity check: a cross layout whose center is the
    //    unique good Steiner point. Does the label rank the center first?
    let mut g = HananGraph::uniform(7, 7, 1, 1.0, 1.0, 3.0);
    for &(h, v) in &[(0, 3), (6, 3), (3, 0), (3, 6)] {
        g.add_pin(GridPoint::new(h, v, 0)).unwrap();
    }
    let mcts = CombinatorialMcts::new(MctsConfig {
        base_iterations: 10 * g.len(),
        base_size: g.len(),
        use_critic: false,
        ..MctsConfig::default()
    });
    let out = mcts.search(&g, &mut UniformSelector::new(0.08)).unwrap();
    let mut ranked: Vec<(f32, GridPoint)> = (0..g.len())
        .filter(|&i| g.kind_at(i) == VertexKind::Empty)
        .map(|i| (out.label[i], g.point(i)))
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!(
        "cross layout: executed {:?}, cost {} -> {}",
        out.executed, out.initial_cost, out.final_cost
    );
    println!("top-5 label vertices (want (3,3,0) first):");
    for (l, p) in ranked.iter().take(5) {
        println!("  {p}  label {l:.3}");
    }

    // 2. Learnability: generate a fixed batch of labelled samples and check
    //    that BCE on them actually decreases and that predictions correlate
    //    with labels.
    let cfg = GeneratorConfig::tiny(6, 6, 1, (4, 5));
    let mut gen = CaseGenerator::new(cfg, 5);
    let mut samples = Vec::new();
    let mcts = CombinatorialMcts::new(MctsConfig {
        base_iterations: 360,
        base_size: 36,
        use_critic: false,
        ..MctsConfig::default()
    });
    let mut sel = UniformSelector::new(0.08);
    for graph in gen.generate_many(24) {
        if let Ok(out) = mcts.search(&graph, &mut sel) {
            samples.push(TrainingSample::new(graph, vec![], out.label));
        }
    }
    let mass: f32 = samples
        .iter()
        .map(|s| s.label.iter().sum::<f32>())
        .sum::<f32>()
        / samples.len() as f32;
    let peak: f32 = samples
        .iter()
        .map(|s| s.label.iter().cloned().fold(0.0f32, f32::max))
        .sum::<f32>()
        / samples.len() as f32;
    println!(
        "\n{} samples, avg label mass {mass:.3}, avg peak label {peak:.3}",
        samples.len()
    );

    let mut selector = NeuralSelector::with_config(experiment_net_config());
    let mut opt = Adam::new(2e-3);
    for epoch in 0..40 {
        let mut loss_sum = 0.0f32;
        for s in &samples {
            let (x, t, m) = s.to_tensors();
            let net = selector.net_mut();
            net.zero_grad();
            let logits = net.forward(&x);
            let out = bce_with_logits(&logits, &t, Some(&m));
            loss_sum += out.loss;
            net.backward(&out.grad);
            opt.step(net);
        }
        if epoch % 10 == 0 || epoch == 39 {
            println!(
                "epoch {epoch}: avg loss {:.4}",
                loss_sum / samples.len() as f32
            );
        }
    }
    // Correlation between prediction and label on the training samples.
    let mut num = 0.0f64;
    let mut den_p = 0.0f64;
    let mut den_l = 0.0f64;
    for s in &samples {
        let fsp = selector.fsp(&s.graph, &[]);
        let n = fsp.len() as f64;
        let mp = fsp.iter().map(|&p| p as f64).sum::<f64>() / n;
        let ml = s.label.iter().map(|&l| l as f64).sum::<f64>() / n;
        for (&p, &l) in fsp.iter().zip(&s.label) {
            let dp = p as f64 - mp;
            let dl = l as f64 - ml;
            num += dp * dl;
            den_p += dp * dp;
            den_l += dl * dl;
        }
    }
    println!(
        "prediction/label correlation on training data: {:.3}",
        num / (den_p.sqrt() * den_l.sqrt()).max(1e-12)
    );
}
