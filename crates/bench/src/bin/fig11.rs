//! Regenerates **Fig. 11**: average ST-to-MST ratio versus training time on
//! fixed-size layouts (the paper's 24×24×4, scaled here to 8×8×2), for the
//! three policy-optimization schemes: our combinatorial MCTS, the
//! conventional AlphaGo-like MCTS, and PPO.
//!
//! Paper shape to reproduce: our curve stays below the AlphaGo-like curve,
//! and both MCTS curves stay well below PPO; the gap widens on layouts
//! with more pins than seen in training (Fig. 11(b)).

#![forbid(unsafe_code)]

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Fig. 11: ST-to-MST ratio vs training time, fixed 8x8x2 layouts\n");
    oarsmt_bench::harness::print_training_curves((8, 8, 2), stages, 0xF161);
    println!("paper: ours < alphago-like << ppo at every point of the curves");
}
