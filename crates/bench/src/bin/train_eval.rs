//! Diagnostic (not a paper experiment): trains the experiment selector
//! stage by stage and tracks its quality after every stage — both the
//! ST-to-MST ratio and the comparison against the \[14\] baseline — to
//! calibrate the training schedule used by `pretrained_selector`.

#![forbid(unsafe_code)]

use oarsmt::eval::CostComparison;
use oarsmt::rl_router::RlRouter;
use oarsmt::selector::NeuralSelector;
use oarsmt_bench::harness::experiment_net_config;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig, TestSubsetSpec};
use oarsmt_rl::trainer::{st_to_mst_over_cases, InferenceMode, Trainer, TrainerConfig};
use oarsmt_router::Lin18Router;

fn eval_vs_lin18(selector: &mut NeuralSelector, spec: &TestSubsetSpec) -> CostComparison {
    let lin18 = Lin18Router::new();
    let mut cmp = CostComparison::new();
    let mut router = RlRouter::new(&mut *selector);
    let mut gen = spec.generator(0xE7A1);
    for graph in gen.generate_many(30) {
        let Ok(base) = lin18.route(&graph) else {
            continue;
        };
        let Ok(out) = router.route(&graph) else {
            continue;
        };
        cmp.record(base.cost(), out.tree.cost());
    }
    cmp
}

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let config = TrainerConfig {
        stages,
        ..oarsmt_rl::schedule::laptop_schedule(7)
    };
    let mut trainer = Trainer::new(config);
    let mut selector = NeuralSelector::with_config(experiment_net_config());
    let eval_cases =
        CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (4, 6)), 0xE7A2).generate_many(40);
    let t32 = &TestSubsetSpec::ladder()[0];

    let base_ratio = st_to_mst_over_cases(&mut selector, InferenceMode::OneShot, &eval_cases);
    println!("stage -1 (untrained): st/mst {base_ratio:.4}");
    for stage in 0..stages {
        let report = trainer.run_stage(&mut selector, stage).expect("stage");
        let ratio = st_to_mst_over_cases(&mut selector, InferenceMode::OneShot, &eval_cases);
        let cmp = eval_vs_lin18(&mut selector, t32);
        println!("stage {stage}: {report}\n         st/mst {ratio:.4} | vs lin18: {cmp}");
    }
}
