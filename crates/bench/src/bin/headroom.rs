//! Diagnostic (not a paper experiment): measures the Steiner-selection
//! headroom over the \[14\] baseline on T32-scale layouts, comparing
//! candidate sources of increasing strength. Used to calibrate the
//! experiment configuration; see DESIGN.md §5.

#![forbid(unsafe_code)]

use oarsmt::eval::CostComparison;
use oarsmt::rl_router::RlRouter;
use oarsmt::selector::{MedianHeuristicSelector, Selector};
use oarsmt::topk::{select_top_k, steiner_budget};
use oarsmt_bench::harness;
use oarsmt_geom::gen::TestSubsetSpec;
use oarsmt_mcts::{CombinatorialMcts, MctsConfig};
use oarsmt_router::{Lin18Router, OarmstRouter, RouteError};

fn main() {
    let spec = &TestSubsetSpec::ladder()[0]; // T32 scale
    let mut gen = spec.generator(0xFEED);
    let lin18 = Lin18Router::new();
    let oarmst = OarmstRouter::new();
    let mut nn = harness::pretrained_selector();
    let mut nn_router = RlRouter::new(&mut nn);
    let mut median_router = RlRouter::new(MedianHeuristicSelector::new());

    let mut vs_plain = CostComparison::new();
    let mut vs_median = CostComparison::new();
    let mut vs_nn = CostComparison::new();
    let mut vs_mcts = CostComparison::new();

    for graph in gen.generate_many(30) {
        let Ok(base) = lin18.route(&graph) else {
            continue;
        };
        let plain = oarmst.route(&graph, &[]).expect("routable");
        vs_plain.record(base.cost(), plain.cost());
        let med = median_router.route(&graph).expect("routable");
        vs_median.record(base.cost(), med.tree.cost());
        let nn_out = nn_router.route(&graph).expect("routable");
        vs_nn.record(base.cost(), nn_out.tree.cost());

        // Oracle-ish: combinatorial MCTS with a median-heuristic actor at
        // inference time (slow, only for calibration).
        let mcts = CombinatorialMcts::new(MctsConfig {
            base_iterations: 48,
            base_size: graph.len(),
            ..MctsConfig::default()
        });
        let mut sel = MedianHeuristicSelector::new();
        match mcts.search(&graph, &mut sel) {
            Ok(out) => {
                // Route with the searched combination, then the usual
                // refinement + safeguard.
                let fsp = sel.fsp(&graph, &[]);
                let _topk = select_top_k(&graph, &fsp, steiner_budget(graph.pins().len()), &[]);
                let t1 = oarmst.route(&graph, &out.executed).expect("routable");
                let mut best = t1.cost().min(plain.cost());
                let implied = t1.steiner_vertices(&graph, graph.pins());
                if !implied.is_empty() {
                    let t2 = oarmst.route(&graph, &implied).expect("routable");
                    best = best.min(t2.cost());
                }
                vs_mcts.record(base.cost(), best);
            }
            Err(RouteError::Disconnected { .. }) => {}
            Err(e) => panic!("{e}"),
        }
    }
    println!("vs [14] baseline (positive = better than [14]):");
    println!("  plain OARMST : {vs_plain}");
    println!("  ours(median) : {vs_median}");
    println!("  ours(nn)     : {vs_nn}");
    println!("  ours(mcts)   : {vs_mcts}");
}
