//! Regenerates **Fig. 12**: average ST-to-MST ratio versus training time on
//! larger fixed-size layouts (the paper's 32×32×4, scaled here to 12×12×2).
//!
//! Paper shape to reproduce: the same ordering as Fig. 11 with our lead
//! over the AlphaGo-like router growing on the larger layouts; the
//! sequential baselines also pay `n − 2` inferences per layout at test
//! time, so their evaluation is slower.

#![forbid(unsafe_code)]

fn main() {
    let stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("Fig. 12: ST-to-MST ratio vs training time, fixed 12x12x2 layouts\n");
    oarsmt_bench::harness::print_training_curves((12, 12, 2), stages, 0xF162);
    println!("paper: ours < alphago-like << ppo, lead growing with layout size");
}
