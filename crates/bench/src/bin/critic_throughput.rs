//! `critic_throughput`: rollouts/sec of the MCTS critic on the Table 3
//! (Table 1 ladder) layouts, with and without a reused [`RouteContext`].
//!
//! A *rollout* is the routing work one combinatorial-MCTS leaf expansion
//! performs (Section 3.4): one selector inference (`fsp`), one critic
//! completion + pruned OARMST route (`predict_with_fsp`), and one unpruned
//! state pricing (`state_cost`). The selector is the training-independent
//! [`MedianHeuristicSelector`] so the numbers isolate the routing/workspace
//! cost rather than neural inference.
//!
//! Two modes run over identical layout sequences:
//!
//! * **fresh** — the pre-context API (`predict_with_fsp`/`state_cost`),
//!   which allocates a new workspace for every call;
//! * **reused** — the `_in` API through one [`RouteContext`] per rung.
//!
//! The per-rung checksums must match bit-identically between modes (checked
//! always, fatal on mismatch). Emits a `BENCH_critic.json` artifact.
//!
//! Usage: `critic_throughput [--quick] [--out PATH]`

use std::time::Instant;

use oarsmt::selector::{MedianHeuristicSelector, Selector};
use oarsmt::topk::{select_top_k, steiner_budget};
use oarsmt_bench::Table;
use oarsmt_geom::gen::TestSubsetSpec;
use oarsmt_geom::HananGraph;
use oarsmt_mcts::Critic;
use oarsmt_router::RouteContext;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Fresh,
    Reused,
}

struct ModeResult {
    rollouts: usize,
    secs: f64,
    checksum: f64,
}

/// Runs the level sweep on one layout: every prefix of the heuristic's
/// top-k combination is priced exactly as an MCTS leaf would be.
/// `ctx`/`fsp_buf` are used only in reused mode.
fn sweep_layout(
    critic: &Critic,
    selector: &mut MedianHeuristicSelector,
    graph: &HananGraph,
    mode: Mode,
    ctx: &mut RouteContext,
    fsp_buf: &mut Vec<f32>,
    checksum: &mut f64,
) -> Option<usize> {
    let budget = steiner_budget(graph.pins().len());
    let fsp0 = selector.fsp(graph, &[]);
    let combo = select_top_k(graph, &fsp0, budget, &[]);
    let mut rollouts = 0usize;
    for level in 0..=combo.len() {
        let selected = &combo[..level];
        match mode {
            Mode::Fresh => {
                let fsp = selector.fsp(graph, selected);
                let predicted = critic.predict_with_fsp(graph, selected, &fsp).ok()?;
                let cost = critic.state_cost(graph, selected).ok()?;
                *checksum += predicted + cost;
            }
            Mode::Reused => {
                selector.fsp_into(graph, selected, fsp_buf);
                let predicted = critic
                    .predict_with_fsp_in(ctx, graph, selected, fsp_buf)
                    .ok()?;
                let cost = critic.state_cost_in(ctx, graph, selected).ok()?;
                *checksum += predicted + cost;
            }
        }
        rollouts += 1;
    }
    Some(rollouts)
}

/// Runs one rung in one mode over the deterministic layout sequence.
fn run_rung(
    spec: &TestSubsetSpec,
    mode: Mode,
    layouts_per_rung: usize,
    repeats: usize,
) -> ModeResult {
    let critic = Critic::new();
    let mut selector = MedianHeuristicSelector::new();
    let mut ctx = RouteContext::new();
    let mut fsp_buf = Vec::new();
    let mut gen = spec.generator(0xDAC2024);
    let mut rollouts = 0usize;
    let mut layouts = 0usize;
    let mut checksum = 0.0f64;
    let mut secs = 0.0f64;
    while layouts < layouts_per_rung {
        let graph = gen.generate();
        let t0 = Instant::now();
        let mut ok = true;
        for _ in 0..repeats {
            match sweep_layout(
                &critic,
                &mut selector,
                &graph,
                mode,
                &mut ctx,
                &mut fsp_buf,
                &mut checksum,
            ) {
                Some(r) => rollouts += r,
                None => {
                    ok = false; // disconnected layout: draw another
                    break;
                }
            }
        }
        if ok {
            secs += t0.elapsed().as_secs_f64();
            layouts += 1;
        }
    }
    ModeResult {
        rollouts,
        secs,
        checksum,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "crates/bench/artifacts/BENCH_critic.json".to_string());

    let ladder = TestSubsetSpec::ladder();
    let rungs: Vec<TestSubsetSpec> = if quick {
        ladder.into_iter().take(3).collect()
    } else {
        ladder
    };
    let layouts_per_rung = if quick { 2 } else { 4 };
    let repeats = if quick { 1 } else { 3 };

    let mut table = Table::new(["subset", "rollouts", "fresh r/s", "reused r/s", "speedup"]);
    let mut rows = Vec::new();
    let mut tot = (0usize, 0.0f64, 0.0f64); // rollouts, fresh secs, reused secs
    for spec in &rungs {
        let fresh = run_rung(spec, Mode::Fresh, layouts_per_rung, repeats);
        let reused = run_rung(spec, Mode::Reused, layouts_per_rung, repeats);
        assert_eq!(
            fresh.checksum.to_bits(),
            reused.checksum.to_bits(),
            "{}: reused-context rollouts diverged from fresh",
            spec.name
        );
        assert_eq!(fresh.rollouts, reused.rollouts);
        let speedup = (reused.rollouts as f64 / reused.secs) / (fresh.rollouts as f64 / fresh.secs);
        table.row([
            spec.name.to_string(),
            fresh.rollouts.to_string(),
            format!("{:.1}", fresh.rollouts as f64 / fresh.secs),
            format!("{:.1}", reused.rollouts as f64 / reused.secs),
            format!("{speedup:.2}x"),
        ]);
        tot.0 += fresh.rollouts;
        tot.1 += fresh.secs;
        tot.2 += reused.secs;
        rows.push((spec.name, fresh, reused, speedup));
        eprintln!("[critic_throughput] {} done", spec.name);
    }

    println!(
        "critic throughput ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    table.print();
    let fresh_rps = tot.0 as f64 / tot.1;
    let reused_rps = tot.0 as f64 / tot.2;
    println!(
        "\ntotal: {} rollouts; fresh {:.1} r/s, reused {:.1} r/s, speedup {:.2}x",
        tot.0,
        fresh_rps,
        reused_rps,
        reused_rps / fresh_rps
    );

    let mut json = String::from("{\n  \"rungs\": [\n");
    for (i, (name, fresh, reused, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rollouts\": {}, \"fresh_secs\": {:.6}, \"fresh_rps\": {:.3}, \"reused_secs\": {:.6}, \"reused_rps\": {:.3}, \"speedup\": {:.3}, \"checksum\": {:.6}}}{}\n",
            name,
            fresh.rollouts,
            fresh.secs,
            fresh.rollouts as f64 / fresh.secs,
            reused.secs,
            reused.rollouts as f64 / reused.secs,
            speedup,
            fresh.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"total_rollouts\": {},\n  \"fresh_rps\": {:.3},\n  \"reused_rps\": {:.3},\n  \"speedup\": {:.3}\n}}\n",
        tot.0,
        fresh_rps,
        reused_rps,
        reused_rps / fresh_rps
    ));
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, json).expect("write artifact");
    println!("artifact: {out_path}");
}
