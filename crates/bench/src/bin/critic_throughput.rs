//! `critic_throughput`: rollouts/sec of the MCTS critic on the Table 3
//! (Table 1 ladder) layouts, with and without a reused [`RouteContext`].
//!
//! A *rollout* is the routing work one combinatorial-MCTS leaf expansion
//! performs (Section 3.4): one selector inference (`fsp`), one critic
//! completion + pruned OARMST route (`predict_with_fsp`), and one unpruned
//! state pricing (`state_cost`). The selector is the training-independent
//! [`MedianHeuristicSelector`] so the numbers isolate the routing/workspace
//! cost rather than neural inference.
//!
//! Two modes run over identical layout sequences:
//!
//! * **fresh** — the pre-context API (`predict_with_fsp`/`state_cost`),
//!   which allocates a new workspace for every call;
//! * **reused** — the `_in` API through one [`RouteContext`] per rung.
//!
//! The per-rung checksums must match bit-identically between modes (checked
//! always, fatal on mismatch). The **headline speedup** compares the reused
//! path against the *recorded* `BENCH_critic_baseline.json` artifact — a
//! live fresh-vs-reused ratio is misleading, because the "fresh" lane also
//! picks up every unrelated improvement since the baseline was captured
//! (it shares routers, kernels and selectors with the reused lane). The
//! live ratio is still printed, labelled as an API-overhead measure. Full
//! mode additionally checks this run's checksums against the recorded
//! baseline values (quick mode runs a different workload, so only rates
//! compare). Emits a `BENCH_critic.json` artifact.
//!
//! Usage: `critic_throughput [--quick] [--out PATH] [--baseline PATH]
//! [--trace FILE] [--runlog DIR]`
//!
//! `--trace FILE` flight-records the reused lane (each rung as a
//! `bench_rung` span decomposing into the router's
//! prepare/dijkstra/retrace phases) and exports Chrome `trace_event`
//! JSON; `--runlog DIR` appends one rung record per ladder rung into
//! `DIR/metrics.jsonl` for `oarsmt report`.

#![forbid(unsafe_code)]

use std::time::Instant;

use oarsmt::selector::{MedianHeuristicSelector, Selector};
use oarsmt::topk::{select_top_k, steiner_budget};
use oarsmt_bench::artifact::{json_field, json_num, Artifact};
use oarsmt_bench::Table;
use oarsmt_geom::gen::TestSubsetSpec;
use oarsmt_geom::HananGraph;
use oarsmt_mcts::Critic;
use oarsmt_router::RouteContext;
use oarsmt_telemetry::runlog::RunLogger;
use oarsmt_telemetry::{
    Counter, CounterSet, Manifest, Span, SpanSet, SpanStart, TelemetrySnapshot, TraceRecorder,
    TIMING_ENABLED,
};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Fresh,
    Reused,
}

struct ModeResult {
    rollouts: usize,
    secs: f64,
    checksum: f64,
    /// [`Span::CriticSelect`] / [`Span::CriticRoute`] wall-clock split
    /// (zero-duration events unless `telemetry-timing` is on). Both modes
    /// carry identical instrumentation, so the api ratio stays fair.
    spans: SpanSet,
    /// Counter totals of the rung's routing work (reused mode only: the
    /// fresh-mode entry points build and discard internal workspaces).
    counters: CounterSet,
}

/// Runs the level sweep on one layout: every prefix of the heuristic's
/// top-k combination is priced exactly as an MCTS leaf would be.
/// `ctx`/`fsp_buf` are used only in reused mode.
#[allow(clippy::too_many_arguments)]
fn sweep_layout(
    critic: &Critic,
    selector: &mut MedianHeuristicSelector,
    graph: &HananGraph,
    mode: Mode,
    ctx: &mut RouteContext,
    fsp_buf: &mut Vec<f32>,
    checksum: &mut f64,
    spans: &mut SpanSet,
) -> Option<usize> {
    let budget = steiner_budget(graph.pins().len());
    let fsp0 = selector.fsp(graph, &[]);
    let combo = select_top_k(graph, &fsp0, budget, &[]);
    let mut rollouts = 0usize;
    for level in 0..=combo.len() {
        let selected = &combo[..level];
        match mode {
            Mode::Fresh => {
                let t = SpanStart::now();
                let fsp = selector.fsp(graph, selected);
                spans.stop(t, Span::CriticSelect);
                let t = SpanStart::now();
                let predicted = critic.predict_with_fsp(graph, selected, &fsp).ok()?;
                let cost = critic.state_cost(graph, selected).ok()?;
                spans.stop(t, Span::CriticRoute);
                *checksum += predicted + cost;
            }
            Mode::Reused => {
                let t = SpanStart::now();
                selector.fsp_into(graph, selected, fsp_buf);
                spans.stop(t, Span::CriticSelect);
                let t = SpanStart::now();
                let predicted = critic
                    .predict_with_fsp_in(ctx, graph, selected, fsp_buf)
                    .ok()?;
                let cost = critic.state_cost_in(ctx, graph, selected).ok()?;
                spans.stop(t, Span::CriticRoute);
                *checksum += predicted + cost;
            }
        }
        rollouts += 1;
    }
    Some(rollouts)
}

/// Runs one rung in one mode over the deterministic layout sequence.
/// With `trace`, the caller's flight recorder rides inside the rung's
/// context (swapped in and out), bracketing the rung in a
/// [`Span::BenchRung`] span.
fn run_rung(
    spec: &TestSubsetSpec,
    mode: Mode,
    layouts_per_rung: usize,
    repeats: usize,
    mut trace: Option<&mut TraceRecorder>,
) -> ModeResult {
    let critic = Critic::new();
    let mut selector = MedianHeuristicSelector::new();
    let mut ctx = RouteContext::new();
    if let Some(rec) = trace.as_deref_mut() {
        std::mem::swap(&mut ctx.trace, rec);
    }
    ctx.trace.begin(Span::BenchRung);
    let mut fsp_buf = Vec::new();
    let mut gen = spec.generator(0xDAC2024);
    let mut rollouts = 0usize;
    let mut layouts = 0usize;
    let mut checksum = 0.0f64;
    let mut secs = 0.0f64;
    let mut spans = SpanSet::new();
    while layouts < layouts_per_rung {
        let graph = gen.generate();
        let t0 = Instant::now();
        let mut ok = true;
        for _ in 0..repeats {
            match sweep_layout(
                &critic,
                &mut selector,
                &graph,
                mode,
                &mut ctx,
                &mut fsp_buf,
                &mut checksum,
                &mut spans,
            ) {
                Some(r) => rollouts += r,
                None => {
                    ok = false; // disconnected layout: draw another
                    break;
                }
            }
        }
        if ok {
            secs += t0.elapsed().as_secs_f64();
            layouts += 1;
        }
    }
    ctx.trace.end(Span::BenchRung);
    if let Some(rec) = trace {
        std::mem::swap(&mut ctx.trace, rec);
    }
    ModeResult {
        rollouts,
        secs,
        checksum,
        spans,
        counters: ctx.counters_total(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path =
        arg_val("--out").unwrap_or_else(|| "crates/bench/artifacts/BENCH_critic.json".to_string());
    let baseline_path = arg_val("--baseline")
        .unwrap_or_else(|| "crates/bench/artifacts/BENCH_critic_baseline.json".to_string());
    let baseline = Artifact::load(&baseline_path)
        .map_err(|e| format!("{baseline_path}: {e}"))
        .expect("recorded baseline artifact");
    let trace_path = arg_val("--trace");
    let mut rec = TraceRecorder::new();
    if trace_path.is_some() {
        rec.enable(1 << 16);
    }
    let mut runlog = arg_val("--runlog").map(|dir| {
        let p = std::path::Path::new(&dir);
        let root = p.parent().filter(|r| !r.as_os_str().is_empty());
        let id = p.file_name().and_then(|s| s.to_str()).unwrap_or("critic");
        RunLogger::create(root.unwrap_or_else(|| std::path::Path::new(".")), id)
            .expect("create runlog directory")
    });

    let ladder = TestSubsetSpec::ladder();
    let rungs: Vec<TestSubsetSpec> = if quick {
        ladder.into_iter().take(3).collect()
    } else {
        ladder
    };
    let layouts_per_rung = if quick { 2 } else { 4 };
    let repeats = if quick { 1 } else { 3 };

    let manifest = Manifest {
        run: "critic_throughput".to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        threads: 1,
        seed: 0xDAC2024,
        timing: TIMING_ENABLED,
    };
    if let Some(l) = runlog.as_mut() {
        l.log_manifest(&manifest).expect("write runlog manifest");
    }

    let mut table = Table::new([
        "subset",
        "rollouts",
        "fresh r/s",
        "reused r/s",
        "api ratio",
        "select share",
        "vs baseline",
    ]);
    let mut rows = Vec::new();
    let mut tot = (0usize, 0.0f64, 0.0f64); // rollouts, fresh secs, reused secs
    let mut spans_tot = SpanSet::new();
    let mut counters_tot = CounterSet::new();
    for spec in &rungs {
        let fresh = run_rung(spec, Mode::Fresh, layouts_per_rung, repeats, None);
        let reused = run_rung(
            spec,
            Mode::Reused,
            layouts_per_rung,
            repeats,
            if trace_path.is_some() {
                Some(&mut rec)
            } else {
                None
            },
        );
        assert_eq!(
            fresh.checksum.to_bits(),
            reused.checksum.to_bits(),
            "{}: reused-context rollouts diverged from fresh",
            spec.name
        );
        assert_eq!(fresh.rollouts, reused.rollouts);
        let reused_rps = reused.rollouts as f64 / reused.secs;
        let api_ratio = reused_rps / (fresh.rollouts as f64 / fresh.secs);
        let base_line = baseline
            .rung(spec.name)
            .unwrap_or_else(|| panic!("{}: missing from {baseline_path}", spec.name));
        if !quick {
            // Same workload as the recorded run: results must match exactly
            // (the artifact stores the checksum with 6 decimals).
            let recorded = json_field(base_line, "checksum").expect("baseline checksum");
            assert_eq!(
                recorded,
                format!("{:.6}", reused.checksum),
                "{}: rollout results diverged from the recorded baseline",
                spec.name
            );
        }
        let base_rps = json_num(base_line, "rps").expect("baseline rps");
        let speedup = reused_rps / base_rps;
        let sel_secs = reused.spans.total_secs(Span::CriticSelect);
        let route_secs = reused.spans.total_secs(Span::CriticRoute);
        let select_share = if sel_secs + route_secs > 0.0 {
            format!("{:.1}%", 100.0 * sel_secs / (sel_secs + route_secs))
        } else {
            "n/a".to_string() // telemetry-timing off
        };
        table.row([
            spec.name.to_string(),
            fresh.rollouts.to_string(),
            format!("{:.1}", fresh.rollouts as f64 / fresh.secs),
            format!("{reused_rps:.1}"),
            format!("{api_ratio:.2}x"),
            select_share,
            format!("{speedup:.2}x"),
        ]);
        tot.0 += fresh.rollouts;
        tot.1 += fresh.secs;
        tot.2 += reused.secs;
        spans_tot.merge_from(&reused.spans);
        counters_tot.merge_from(&reused.counters);
        if let Some(l) = runlog.as_mut() {
            l.log_rung(
                spec.name,
                "reused_rps",
                reused_rps,
                reused.secs,
                &reused.counters,
            )
            .expect("write runlog rung");
        }
        rows.push((spec.name, fresh, reused, speedup));
        eprintln!("[critic_throughput] {} done", spec.name);
    }

    if let Some(path) = &trace_path {
        let events = rec.events_in_order();
        std::fs::write(
            path,
            oarsmt_telemetry::tracing::to_chrome_json(&events, rec.dropped()),
        )
        .expect("write trace");
        eprintln!(
            "[critic_throughput] trace ({} events, {} dropped) -> {path}",
            events.len(),
            rec.dropped()
        );
    }
    if let Some(l) = &runlog {
        eprintln!("[critic_throughput] runlog -> {}", l.dir().display());
    }

    println!(
        "critic throughput ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    table.print();
    let fresh_rps = tot.0 as f64 / tot.1;
    let reused_rps = tot.0 as f64 / tot.2;
    println!(
        "\ntotal: {} rollouts; fresh {:.1} r/s, reused {:.1} r/s, api ratio {:.2}x",
        tot.0,
        fresh_rps,
        reused_rps,
        reused_rps / fresh_rps
    );
    if !quick {
        if let Some(base_rps) = baseline.top_num("total_rps") {
            println!(
                "overall speedup vs {}: {:.2}x",
                baseline_path,
                reused_rps / base_rps
            );
        }
    }
    let sel_tot = spans_tot.total_secs(Span::CriticSelect);
    let route_tot = spans_tot.total_secs(Span::CriticRoute);
    if sel_tot + route_tot > 0.0 {
        println!(
            "attribution (reused lane): select {:.1}%, route {:.1}% of rollout time",
            100.0 * sel_tot / (sel_tot + route_tot),
            100.0 * route_tot / (sel_tot + route_tot)
        );
    }

    let mut json = String::from("{\n  \"rungs\": [\n");
    for (i, (name, fresh, reused, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rollouts\": {}, \"fresh_secs\": {:.6}, \"fresh_rps\": {:.3}, \"reused_secs\": {:.6}, \"reused_rps\": {:.3}, \"speedup\": {:.3}, \"select_ns\": {}, \"route_ns\": {}, \"dijkstra_pops\": {}, \"checksum\": {:.6}}}{}\n",
            name,
            fresh.rollouts,
            fresh.secs,
            fresh.rollouts as f64 / fresh.secs,
            reused.secs,
            reused.rollouts as f64 / reused.secs,
            speedup,
            reused.spans.get(Span::CriticSelect).total_ns,
            reused.spans.get(Span::CriticRoute).total_ns,
            reused.counters.get(Counter::DijkstraPops),
            fresh.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let snapshot = TelemetrySnapshot {
        manifest,
        counters: counters_tot,
        spans: spans_tot,
    };
    json.push_str(&format!(
        "  ],\n  \"total_rollouts\": {},\n  \"fresh_rps\": {:.3},\n  \"reused_rps\": {:.3},\n  \"speedup\": {:.3},\n  \"telemetry\": [\n",
        tot.0,
        fresh_rps,
        reused_rps,
        reused_rps / fresh_rps
    ));
    let telemetry_lines: Vec<String> = snapshot
        .to_jsonl()
        .lines()
        .map(|l| format!("    {l}"))
        .collect();
    json.push_str(&telemetry_lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, json).expect("write artifact");
    println!("artifact: {out_path}");
}
