//! Regenerates **Table 3**: runtime comparison between the \[14\] baseline
//! and our RL router (Steiner-point selection time vs total time, and the
//! speedup) on the randomly generated test subsets.
//!
//! Paper shape to reproduce: the baseline may be faster on the smallest
//! subset, but our speedup grows with layout size, and the Steiner-point
//! selection time grows mildly (one inference per layout regardless of the
//! pin count).

//! `--trace FILE` exports a Chrome `trace_event` JSON of the ladder: one
//! `bench_rung` span per subset, decomposed into the baseline/select/route
//! phase totals the harness already times (reconstructed via
//! `begin_at`/`end_at`, so it works in every build; per-layout detail is
//! not recorded).

#![forbid(unsafe_code)]

use oarsmt::parallel;
use oarsmt_bench::{harness, Table};
use oarsmt_geom::gen::TestSubsetSpec;
use oarsmt_telemetry::{tracing, Span, TraceRecorder};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flag = parallel::take_threads_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("{e}\nusage: table3 [--threads N] [--trace FILE]   (or OARSMT_THREADS=N)");
        std::process::exit(2);
    });
    let threads = parallel::thread_count(flag);
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned());
    let mut rec = TraceRecorder::new();
    if trace_path.is_some() {
        rec.enable(1024);
    }
    let mut t_ns: u64 = 0;
    println!("Table 3: runtime comparison between [14] and our router ({threads} threads)\n");
    let selector = harness::pretrained_selector();
    let mut table = Table::new([
        "subset",
        "layouts",
        "[14] avg s (a)",
        "Spoint select",
        "route",
        "ours total (b)",
        "speedup (a/b)",
    ]);
    for spec in TestSubsetSpec::ladder() {
        let result =
            harness::run_subset(&spec, &selector, 0xDAC2024, threads).expect("subset must route");
        let n = result.comparison.count().max(1) as f64;
        let base = result.spans.total_secs(Span::PhaseBaseline) / n;
        let select = result.spans.total_secs(Span::PhaseSelect) / n;
        let route = result.spans.total_secs(Span::PhaseRoute) / n;
        let total = select + route;
        table.row([
            result.name.to_string(),
            result.comparison.count().to_string(),
            format!("{base:.5}"),
            format!("{select:.5}"),
            format!("{route:.5}"),
            format!("{total:.5}"),
            format!("{:.1}x", base / total),
        ]);
        let base_ns = result.spans.get(Span::PhaseBaseline).total_ns;
        let select_ns = result.spans.get(Span::PhaseSelect).total_ns;
        let route_ns = result.spans.get(Span::PhaseRoute).total_ns;
        rec.begin_at(Span::BenchRung, t_ns);
        rec.begin_at(Span::PhaseBaseline, t_ns);
        rec.end_at(Span::PhaseBaseline, t_ns + base_ns);
        t_ns += base_ns;
        rec.begin_at(Span::PhaseSelect, t_ns);
        rec.end_at(Span::PhaseSelect, t_ns + select_ns);
        t_ns += select_ns;
        rec.begin_at(Span::PhaseRoute, t_ns);
        rec.end_at(Span::PhaseRoute, t_ns + route_ns);
        t_ns += route_ns;
        rec.end_at(Span::BenchRung, t_ns);
        eprintln!("[table3] {} done", result.name);
    }
    table.print();
    if let Some(path) = &trace_path {
        let events = rec.events_in_order();
        std::fs::write(path, tracing::to_chrome_json(&events, rec.dropped())).expect("write trace");
        eprintln!("[table3] trace ({} events) -> {path}", events.len());
    }
    println!("\npaper: speedup 0.8x on T32 rising to ~75x on T512");
}
