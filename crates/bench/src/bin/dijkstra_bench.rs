//! `dijkstra_bench`: the router-core queue-policy micro-bench — binary
//! heap (oracle) vs Dial bucket queue vs A* on the Table 1 ladder rungs.
//!
//! Every rung routes the same deterministic layout sequence through one
//! [`OarmstRouter`] per [`QueuePolicy`], timing the full OARMST
//! construction (Prim + prune + polish) whose wall-clock is dominated by
//! the maze queries. All three lanes run inside the *same* binary on the
//! same layouts, so heap-vs-dial is an honest like-for-like comparison
//! (unlike cross-artifact speedups, which also pick up unrelated drift).
//!
//! Checked invariants (DESIGN.md §12):
//!
//! * heap and Dial per-rung cost checksums must match **bit-identically**
//!   (fatal on mismatch), and their pops/relaxations/pushes op counters
//!   must be exactly equal;
//! * A* checksums are recorded separately — its equal-cost tie geometry
//!   may legally diverge (§12.4) — but its settled-pop count must not
//!   exceed the oracle's on any rung (the lower bound can only prune).
//!
//! Emits a `BENCH_dijkstra.json` artifact with per-rung wall-clock,
//! speedups, op-count deltas, and an embedded telemetry snapshot.
//!
//! Usage: `dijkstra_bench [--quick] [--out PATH] [--trace FILE]`
//!
//! `--trace FILE` flight-records the Dial lane (each rung as a
//! `bench_rung` span over the router's prepare/dijkstra/retrace phases)
//! and exports Chrome `trace_event` JSON.

#![forbid(unsafe_code)]

use std::time::Instant;

use oarsmt_bench::Table;
use oarsmt_geom::gen::TestSubsetSpec;
use oarsmt_router::{OarmstRouter, QueuePolicy, RouteContext};
use oarsmt_telemetry::{
    Counter, CounterSet, Manifest, Span, SpanSet, TelemetrySnapshot, TraceRecorder, TIMING_ENABLED,
};

struct LaneResult {
    routes: usize,
    secs: f64,
    checksum: f64,
    /// Counter delta of this lane's routing work.
    counters: CounterSet,
}

/// Routes the rung's deterministic layout sequence under one policy.
/// Layouts any policy cannot connect are skipped by seed (reachability is
/// policy-independent, so every lane skips the same ones).
fn run_lane(
    spec: &TestSubsetSpec,
    policy: QueuePolicy,
    layouts_per_rung: usize,
    repeats: usize,
    mut trace: Option<&mut TraceRecorder>,
) -> LaneResult {
    let router = OarmstRouter::new().with_queue_policy(policy);
    let mut ctx = RouteContext::new();
    if let Some(rec) = trace.as_deref_mut() {
        std::mem::swap(&mut ctx.trace, rec);
    }
    ctx.trace.begin(Span::BenchRung);
    let mut gen = spec.generator(0xD1A17);
    let before = ctx.counters_total();
    let mut routes = 0usize;
    let mut layouts = 0usize;
    let mut checksum = 0.0f64;
    let mut secs = 0.0f64;
    while layouts < layouts_per_rung {
        let graph = gen.generate();
        let t0 = Instant::now();
        let mut ok = true;
        for _ in 0..repeats {
            match router.route_cost_in(&mut ctx, &graph, &[]) {
                Ok(cost) => {
                    checksum += cost;
                    routes += 1;
                }
                Err(_) => {
                    ok = false; // disconnected layout: draw another
                    break;
                }
            }
        }
        if ok {
            secs += t0.elapsed().as_secs_f64();
            layouts += 1;
        }
    }
    ctx.trace.end(Span::BenchRung);
    if let Some(rec) = trace {
        std::mem::swap(&mut ctx.trace, rec);
    }
    LaneResult {
        routes,
        secs,
        checksum,
        counters: ctx.counters_total().delta_since(&before),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "crates/bench/artifacts/BENCH_dijkstra.json".to_string());
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned());
    let mut rec = TraceRecorder::new();
    if trace_path.is_some() {
        rec.enable(1 << 16);
    }

    let ladder = TestSubsetSpec::ladder();
    let rungs: Vec<TestSubsetSpec> = if quick {
        ladder.into_iter().take(3).collect()
    } else {
        ladder
    };
    let layouts_per_rung = if quick { 2 } else { 4 };
    let repeats = if quick { 1 } else { 3 };

    let mut table = Table::new([
        "subset",
        "routes",
        "heap r/s",
        "dial r/s",
        "astar r/s",
        "dial speedup",
        "astar pop save",
    ]);
    let mut rows = Vec::new();
    let mut counters_tot = CounterSet::new();
    let mut tot = (0usize, 0.0f64, 0.0f64, 0.0f64); // routes, heap, dial, astar secs
    for spec in &rungs {
        let heap = run_lane(spec, QueuePolicy::Heap, layouts_per_rung, repeats, None);
        let dial = run_lane(
            spec,
            QueuePolicy::Dial,
            layouts_per_rung,
            repeats,
            if trace_path.is_some() {
                Some(&mut rec)
            } else {
                None
            },
        );
        let astar = run_lane(spec, QueuePolicy::AStar, layouts_per_rung, repeats, None);

        // §12.3: Dial is the heap, bit for bit — results and op counts.
        assert_eq!(
            heap.checksum.to_bits(),
            dial.checksum.to_bits(),
            "{}: Dial diverged from the heap oracle",
            spec.name
        );
        assert_eq!(heap.routes, dial.routes);
        for c in [
            Counter::DijkstraPops,
            Counter::DijkstraRelaxations,
            Counter::DijkstraPushes,
        ] {
            assert_eq!(
                heap.counters.get(c),
                dial.counters.get(c),
                "{}: {c:?} op count diverged between heap and Dial",
                spec.name
            );
        }
        // §12.4: A* may retie, but the lower bound can only prune pops.
        assert_eq!(heap.routes, astar.routes);
        assert!(
            astar.counters.get(Counter::DijkstraPops) <= heap.counters.get(Counter::DijkstraPops),
            "{}: A* popped more than the oracle",
            spec.name
        );

        let pop_save = 1.0
            - astar.counters.get(Counter::DijkstraPops) as f64
                / heap.counters.get(Counter::DijkstraPops).max(1) as f64;
        table.row([
            spec.name.to_string(),
            heap.routes.to_string(),
            format!("{:.1}", heap.routes as f64 / heap.secs),
            format!("{:.1}", dial.routes as f64 / dial.secs),
            format!("{:.1}", astar.routes as f64 / astar.secs),
            format!("{:.2}x", heap.secs / dial.secs),
            format!("{:.1}%", 100.0 * pop_save),
        ]);
        tot.0 += heap.routes;
        tot.1 += heap.secs;
        tot.2 += dial.secs;
        tot.3 += astar.secs;
        counters_tot.merge_from(&dial.counters);
        rows.push((spec.name, heap, dial, astar));
        eprintln!("[dijkstra_bench] {} done", spec.name);
    }

    if let Some(path) = &trace_path {
        let events = rec.events_in_order();
        std::fs::write(
            path,
            oarsmt_telemetry::tracing::to_chrome_json(&events, rec.dropped()),
        )
        .expect("write trace");
        eprintln!(
            "[dijkstra_bench] trace ({} events, {} dropped) -> {path}",
            events.len(),
            rec.dropped()
        );
    }

    println!(
        "dijkstra queue-policy bench ({} mode)\n",
        if quick { "quick" } else { "full" }
    );
    table.print();
    println!(
        "\ntotal: {} routes; heap {:.3}s, dial {:.3}s ({:.2}x), astar {:.3}s ({:.2}x)",
        tot.0,
        tot.1,
        tot.2,
        tot.1 / tot.2,
        tot.3,
        tot.1 / tot.3,
    );

    let mut json = String::from("{\n  \"rungs\": [\n");
    for (i, (name, heap, dial, astar)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"routes\": {}, \"heap_secs\": {:.6}, \"dial_secs\": {:.6}, \"astar_secs\": {:.6}, \"dial_speedup\": {:.3}, \"dijkstra_pops\": {}, \"dijkstra_relaxations\": {}, \"dijkstra_pushes\": {}, \"dijkstra_bucket_scans\": {}, \"astar_pops\": {}, \"checksum\": {:.6}, \"astar_checksum\": {:.6}}}{}\n",
            name,
            heap.routes,
            heap.secs,
            dial.secs,
            astar.secs,
            heap.secs / dial.secs,
            dial.counters.get(Counter::DijkstraPops),
            dial.counters.get(Counter::DijkstraRelaxations),
            dial.counters.get(Counter::DijkstraPushes),
            dial.counters.get(Counter::DijkstraBucketScans),
            astar.counters.get(Counter::DijkstraPops),
            heap.checksum,
            astar.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let snapshot = TelemetrySnapshot {
        manifest: Manifest {
            run: "dijkstra_bench".to_string(),
            mode: if quick { "quick" } else { "full" }.to_string(),
            threads: 1,
            seed: 0xD1A17,
            timing: TIMING_ENABLED,
        },
        counters: counters_tot,
        spans: SpanSet::new(),
    };
    json.push_str(&format!(
        "  ],\n  \"total_routes\": {},\n  \"heap_secs\": {:.6},\n  \"dial_secs\": {:.6},\n  \"dial_speedup\": {:.3},\n  \"astar_secs\": {:.6},\n  \"telemetry\": [\n",
        tot.0,
        tot.1,
        tot.2,
        tot.1 / tot.2,
        tot.3,
    ));
    let telemetry_lines: Vec<String> = snapshot
        .to_jsonl()
        .lines()
        .map(|l| format!("    {l}"))
        .collect();
    json.push_str(&telemetry_lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, json).expect("write artifact");
    println!("artifact: {out_path}");
}
