//! Regenerates **Table 2**: routing-cost comparison between the \[14\]
//! baseline and our RL router on the randomly generated test subsets.
//!
//! Paper shape to reproduce: our router's average routing cost is lower on
//! every subset (≈2.3–2.7% in the paper), the average improvement ratio
//! tracks the difference ratio, and the win rate grows with layout size.

#![forbid(unsafe_code)]

use oarsmt::parallel;
use oarsmt_bench::{harness, Table};
use oarsmt_geom::gen::TestSubsetSpec;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flag = parallel::take_threads_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("{e}\nusage: table2 [--threads N]   (or OARSMT_THREADS=N)");
        std::process::exit(2);
    });
    let threads = parallel::thread_count(flag);
    println!("Table 2: routing-cost comparison between [14] and our router ({threads} threads)\n");
    let selector = harness::pretrained_selector();
    let mut table = Table::new([
        "subset",
        "layouts",
        "[14] avg (a)",
        "ours avg (b)",
        "(a-b)/a",
        "avg imp",
        "win",
        "loss",
    ]);
    for spec in TestSubsetSpec::ladder() {
        let result =
            harness::run_subset(&spec, &selector, 0xDAC2024, threads).expect("subset must route");
        let c = &result.comparison;
        table.row([
            result.name.to_string(),
            c.count().to_string(),
            format!("{:.0}", c.avg_baseline()),
            format!("{:.0}", c.avg_ours()),
            format!("{:+.3}%", 100.0 * c.diff_ratio()),
            format!("{:+.3}%", 100.0 * c.avg_improvement_ratio()),
            format!("{:.1}%", 100.0 * c.win_rate()),
            format!("{:.1}%", 100.0 * c.loss_rate()),
        ]);
        eprintln!("[table2] {} done ({} skipped)", result.name, result.skipped);
    }
    table.print();
    println!(
        "\npaper: improvement 2.26%..2.68%, win rate 64.7%..100% growing with size, loss -> 0%"
    );
}
