//! `selector_batch_bench`: batched-selector equivalence and throughput.
//!
//! The batched path folds a batch of same-shape states into the GEMM N
//! axis (one matrix multiply with `N = B·spatial` per conv instead of
//! `B`). This binary pins the two promises that refactor makes, per
//! Table-1-style size rung:
//!
//! 1. **Bit-identity** — `Selector::fsp_batch_into_ws` at B ∈ {1, 4, 16}
//!    reproduces B independent `fsp_into_ws` calls bit-for-bit, and
//!    `Trainer::fit_batch` walks the exact weight trajectory of
//!    `Trainer::fit_batch_sequential` (asserted here via per-step loss
//!    bits; the rl-level property tests also compare post-step weights).
//! 2. **Throughput** — both arms are timed in the same run, interleaved
//!    per repeat with best-of-N per arm, and full mode gates on the
//!    within-run ratio: the batched inference flush must beat the
//!    single-sample arm on the smallest rung (where batching pays;
//!    measured ≈ 1.3× at S8), and `fit_batch` must never regress below
//!    the sequential arm beyond timing noise. The **recorded baseline
//!    artifact** (`BENCH_batch_baseline.json`, bootstrapped from the
//!    first full run's single-sample arm per the repo's
//!    honest-comparison policy) pins `cs_fsp` bitwise across runs and
//!    keeps the `vs base` columns honest; it is not used as a timing
//!    gate because this host shows ±40% cross-run throughput swings.
//!
//! Honest-measurement note (see EXPERIMENTS.md): the batched *inference*
//! flush wins ≈ 1.3× at S8 — per-call overhead amortization plus GEMM
//! panels spanning samples at the pooled/bottleneck levels (a single
//! `[1, 2, 2]` conv step is ≈ 1.7× faster batched, and `p = 0` convs
//! collapse to one flat GEMM per batch). Batched *fitting* is parity on
//! this CPU (≈ 0.95–1.1×): the backward weight-gradient accumulation is
//! contractually bound to the sequential per-sample `+=` order, so its
//! kernels run per sample in both arms and the batch axis cannot fatten
//! them. The refactor's fit value is the bit-identical single-step batch
//! API (and the layout groundwork for wide-ISA/accelerator backends), not
//! a CPU fit speedup — so the fit gate here is a no-regression floor,
//! not the 1.3× the inference flush clears.
//!
//! With `--simd` (requires building `-p oarsmt-bench --features simd` on
//! an AVX2+FMA host) the *timed* arms run through the wide GEMM kernels
//! (DESIGN.md §9 opt-out) and the artifact defaults to
//! `BENCH_batch_simd.json`. The bit-identity sweeps stay on the scalar
//! lane — batch-vs-single bitwise equality is a scalar-lane contract
//! (the SIMD tiles land on different column boundaries at different
//! batch offsets, so cross-B agreement there is tolerance-bounded, not
//! bitwise) — and the `cs_fsp` baseline pin therefore still holds. The
//! fit arms' per-step loss trajectories likewise only compare bitwise on
//! the scalar lane; under `--simd` the first step (identical weights) is
//! checked tolerance-close and the trajectories must stay finite.
//!
//! Usage: `selector_batch_bench [--quick] [--simd] [--out PATH]
//! [--baseline PATH]`

#![forbid(unsafe_code)]

use std::time::Instant;

use oarsmt::selector::{MedianHeuristicSelector, NeuralSelector, Selector};
use oarsmt::topk::{select_top_k, steiner_budget};
use oarsmt_bench::artifact::{json_field, json_num, Artifact};
use oarsmt_bench::Table;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_nn::unet::UNetConfig;
use oarsmt_nn::{KernelPolicy, NnWorkspace};
use oarsmt_rl::sample::TrainingSample;
use oarsmt_rl::trainer::{Trainer, TrainerConfig};
use oarsmt_telemetry::{Counter, CounterSet, Manifest, SpanSet, TelemetrySnapshot, TIMING_ENABLED};

/// Batch size of the timed arms (the largest Table-1 acceptance point).
const BATCH: usize = 16;

/// Best-of repeats for every timed arm (the host shows ±15% timing noise;
/// best-of-N treats the batched and single-sample arms identically).
const REPEATS: usize = 3;

/// One rung of the size ladder (mirrors `unet_throughput`).
struct Rung {
    name: &'static str,
    h: usize,
    v: usize,
    m: usize,
    pins: usize,
    /// Timed batched flushes (each evaluates [`BATCH`] states).
    flush_iters: usize,
    /// Timed fit steps per arm (0 = inference-only rung).
    fit_iters: usize,
}

const LADDER: &[Rung] = &[
    Rung {
        name: "S8",
        h: 8,
        v: 8,
        m: 2,
        pins: 4,
        flush_iters: 60,
        fit_iters: 40,
    },
    Rung {
        name: "S12",
        h: 12,
        v: 12,
        m: 2,
        pins: 4,
        flush_iters: 24,
        fit_iters: 16,
    },
    Rung {
        name: "S16",
        h: 16,
        v: 16,
        m: 2,
        pins: 5,
        flush_iters: 12,
        fit_iters: 8,
    },
    Rung {
        name: "S24",
        h: 24,
        v: 24,
        m: 2,
        pins: 5,
        flush_iters: 4,
        fit_iters: 0,
    },
    Rung {
        name: "S32",
        h: 32,
        v: 32,
        m: 3,
        pins: 6,
        flush_iters: 2,
        fit_iters: 0,
    },
    Rung {
        name: "S48",
        h: 48,
        v: 48,
        m: 3,
        pins: 6,
        flush_iters: 1,
        fit_iters: 0,
    },
];

/// The default selector architecture (matches `unet_throughput`).
fn selector() -> NeuralSelector {
    NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 8,
        levels: 2,
        seed: 0xDAC2024,
    })
}

fn f64_sum(data: &[f32]) -> f64 {
    data.iter().map(|&v| f64::from(v)).sum()
}

/// Deterministic layout for a rung.
fn rung_graph(r: &Rung) -> HananGraph {
    let cfg = GeneratorConfig::paper_costs(r.h, r.v, r.m, (r.pins, r.pins));
    CaseGenerator::new(cfg, 0x5EED ^ r.h as u64).generate()
}

/// [`BATCH`] deterministic selector states (extra-pin lists of varying
/// length), the flattened batch the queue-and-flush protocol sees.
fn rung_states(graph: &HananGraph) -> Vec<Vec<GridPoint>> {
    let n = graph.len();
    let stride: Vec<GridPoint> = (0..8).map(|j| graph.point((j * 7919) % n)).collect();
    (0..BATCH).map(|i| stride[..(i % 6)].to_vec()).collect()
}

/// Flattens `states` into the `(pts, lens)` convention.
fn flatten(states: &[Vec<GridPoint>]) -> (Vec<GridPoint>, Vec<u32>) {
    let mut pts = Vec::new();
    let mut lens = Vec::new();
    for s in states {
        pts.extend_from_slice(s);
        lens.push(s.len() as u32);
    }
    (pts, lens)
}

/// [`BATCH`] same-size training samples with sparse median-heuristic
/// labels (the `fit_batch` workload).
fn fit_samples(r: &Rung) -> Vec<TrainingSample> {
    let cfg = GeneratorConfig::paper_costs(r.h, r.v, r.m, (r.pins, r.pins));
    (0..BATCH)
        .map(|i| {
            let graph = CaseGenerator::new(cfg.clone(), 0xBA7C4 ^ (i as u64) << 13).generate();
            let mut heuristic = MedianHeuristicSelector::new();
            let fsp = heuristic.fsp(&graph, &[]);
            let k = steiner_budget(graph.pins().len());
            let points = select_top_k(&graph, &fsp, k, &[]);
            let mut label = vec![0.0f32; graph.len()];
            for p in points {
                label[graph.index(p)] = 1.0;
            }
            TrainingSample::new(graph, vec![], label)
        })
        .collect()
}

struct RungResult {
    /// Batched/single inference throughput in states per second.
    batch_states_per_s: f64,
    single_states_per_s: f64,
    /// Mean GEMM batch occupancy (columns per flush) of the batched arm.
    occupancy: f64,
    /// Checksum of the concatenated B=16 batched fsp output.
    cs_fsp: u64,
    counters: CounterSet,
}

/// One rung's inference arms: bitwise equivalence sweep (always scalar —
/// see the module docs), then timed batched and single-sample loops
/// through one reused workspace on the requested kernel lane.
fn run_fwd_rung(r: &Rung, iters: usize, repeats: usize, simd: bool) -> RungResult {
    let graph = rung_graph(r);
    let states = rung_states(&graph);
    let mut sel = selector();
    let mut ws = NnWorkspace::new();
    let mut batch_out = Vec::new();
    let mut single_out = Vec::new();
    let n = graph.len();

    // --- bitwise equivalence: every acceptance B, per-state blocks ---
    let mut cs_fsp = 0u64;
    for b in [1usize, 4, BATCH] {
        let (pts, lens) = flatten(&states[..b]);
        sel.fsp_batch_into_ws(&graph, &pts, &lens, &mut batch_out, &mut ws);
        assert_eq!(batch_out.len(), b * n, "{}: batch output length", r.name);
        for (i, s) in states[..b].iter().enumerate() {
            sel.fsp_into_ws(&graph, s, &mut single_out, &mut ws);
            let blk = &batch_out[i * n..(i + 1) * n];
            for (j, (&bv, &sv)) in blk.iter().zip(single_out.iter()).enumerate() {
                assert_eq!(
                    bv.to_bits(),
                    sv.to_bits(),
                    "{}: B={b} state {i} diverged from single-sample at {j}",
                    r.name
                );
            }
        }
        if b == BATCH {
            cs_fsp = f64_sum(&batch_out).to_bits();
        }
    }

    // --- switch the timed arms to the wide kernels; the dispatch counter
    // must prove they actually ran (a silent scalar fallback would fake
    // SIMD-labeled numbers). ---
    if simd {
        ws.set_kernel_policy(KernelPolicy::Simd);
        let simd_before = ws.counters.get(Counter::GemmKernelSimd);
        sel.fsp_into_ws(&graph, &states[0], &mut single_out, &mut ws);
        assert!(
            ws.counters.get(Counter::GemmKernelSimd) > simd_before,
            "{}: --simd given but the wide kernels never dispatched",
            r.name
        );
    }

    // --- timed arms (B = 16 per flush, best of `repeats`) ---
    // The two arms are interleaved per repeat: host slowdowns on this box
    // arrive in multi-second windows, so alternating batched and
    // single-sample segments exposes both arms to the same windows, and
    // each arm keeps its best-of-N wall time.
    let (pts, lens) = flatten(&states);
    let mut batch_secs = f64::INFINITY;
    let mut single_secs = f64::INFINITY;
    let mut cols = 0;
    let mut flushes = 0;
    for _ in 0..repeats {
        let cols0 = ws.counters.get(Counter::GemmBatchCols);
        let flushes0 = ws.counters.get(Counter::BatchFlushes);
        let t0 = Instant::now();
        for _ in 0..iters {
            sel.fsp_batch_into_ws(&graph, &pts, &lens, &mut batch_out, &mut ws);
            std::hint::black_box(batch_out[0]);
        }
        batch_secs = batch_secs.min(t0.elapsed().as_secs_f64());
        cols += ws.counters.get(Counter::GemmBatchCols) - cols0;
        flushes += ws.counters.get(Counter::BatchFlushes) - flushes0;

        let t0 = Instant::now();
        for _ in 0..iters {
            for s in &states {
                sel.fsp_into_ws(&graph, s, &mut single_out, &mut ws);
                std::hint::black_box(single_out[0]);
            }
        }
        single_secs = single_secs.min(t0.elapsed().as_secs_f64());
    }

    let evals = (iters * BATCH) as f64;
    RungResult {
        batch_states_per_s: evals / batch_secs,
        single_states_per_s: evals / single_secs,
        occupancy: cols as f64 / flushes.max(1) as f64,
        cs_fsp,
        counters: ws.counters,
    }
}

struct FitResult {
    batch_steps_per_s: f64,
    seq_steps_per_s: f64,
    /// Checksum over the per-step losses (both arms must agree bitwise).
    cs_loss: u64,
    counters: CounterSet,
}

/// One rung's fit arms: both start from identical weights and Adam state,
/// so the (bit-identical on the scalar lane) trajectories make the timing
/// an apples-to-apples comparison of the same computation. Under `simd`
/// both arms run the wide kernels; the batched arm's tile boundaries then
/// differ from the sequential arm's, so only the first step (identical
/// weights) is compared — tolerance-close — and both trajectories are
/// required to stay finite.
fn run_fit_rung(r: &Rung, iters: usize, repeats: usize, simd: bool) -> FitResult {
    let samples = fit_samples(r);
    let refs: Vec<&TrainingSample> = samples.iter().collect();
    let cfg = TrainerConfig {
        learning_rate: 1e-3,
        ..TrainerConfig::default()
    };

    let mut t_batch = Trainer::new(cfg.clone());
    let mut s_batch = selector();
    let mut t_seq = Trainer::new(cfg);
    let mut s_seq = selector();
    if simd {
        t_batch.set_kernel_policy(KernelPolicy::Simd);
        t_seq.set_kernel_policy(KernelPolicy::Simd);
    }

    // Best-of-REPEATS rounds; the two arms stay in weight lockstep, so
    // each round's loss trajectories must agree bitwise and each round
    // times the same computation on both sides.
    let mut batch_secs = f64::INFINITY;
    let mut seq_secs = f64::INFINITY;
    let mut cs_loss = 0u64;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let batch_losses: Vec<u32> = (0..iters)
            .map(|_| t_batch.fit_batch(&mut s_batch, &refs).to_bits())
            .collect();
        batch_secs = batch_secs.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let seq_losses: Vec<u32> = (0..iters)
            .map(|_| t_seq.fit_batch_sequential(&mut s_seq, &refs).to_bits())
            .collect();
        seq_secs = seq_secs.min(t0.elapsed().as_secs_f64());

        if simd {
            let (b0, s0) = (
                f32::from_bits(batch_losses[0]),
                f32::from_bits(seq_losses[0]),
            );
            assert!(
                (b0 - s0).abs() <= 1e-3,
                "{}: SIMD first-step losses diverged beyond tolerance ({b0} vs {s0})",
                r.name
            );
            for &bits in batch_losses.iter().chain(&seq_losses) {
                assert!(
                    f32::from_bits(bits).is_finite(),
                    "{}: non-finite loss in a SIMD fit trajectory",
                    r.name
                );
            }
        } else {
            assert_eq!(
                batch_losses, seq_losses,
                "{}: fit_batch loss trajectory diverged from sequential",
                r.name
            );
        }
        cs_loss = batch_losses
            .iter()
            .fold(cs_loss, |acc, &b| acc.rotate_left(7) ^ u64::from(b));
    }
    let mut counters = t_batch.counters();
    counters.merge_from(&t_seq.counters());
    FitResult {
        batch_steps_per_s: iters as f64 / batch_secs,
        seq_steps_per_s: iters as f64 / seq_secs,
        cs_loss,
        counters,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let simd = args.iter().any(|a| a == "--simd");
    if simd && !oarsmt_nn::simd_available() {
        eprintln!(
            "error: --simd needs `cargo ... -p oarsmt-bench --features simd` and an \
             AVX2+FMA host (refusing to record SIMD-labeled scalar numbers)"
        );
        std::process::exit(2);
    }
    let arg_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let default_out = if simd {
        "crates/bench/artifacts/BENCH_batch_simd.json"
    } else {
        "crates/bench/artifacts/BENCH_batch.json"
    };
    let out_path = arg_val("--out").unwrap_or_else(|| default_out.to_string());
    let baseline_path = arg_val("--baseline")
        .unwrap_or_else(|| "crates/bench/artifacts/BENCH_batch_baseline.json".to_string());
    let baseline = Artifact::load(&baseline_path).ok();

    let rungs: Vec<&Rung> = if quick {
        LADDER.iter().take(3).collect()
    } else {
        LADDER.iter().collect()
    };
    let scale = if quick { 4 } else { 1 }; // quick: 1/4 of the iterations

    let mut fwd_table = Table::new([
        "rung",
        "batch st/s",
        "single st/s",
        "live x",
        "vs base",
        "occupancy",
        "fsp checksum",
    ]);
    let mut fit_table = Table::new(["rung", "batch fit/s", "seq fit/s", "live x", "vs base"]);
    let mut fwd_rows = Vec::new();
    let mut fit_rows = Vec::new();
    let mut counters_tot = CounterSet::new();

    for r in &rungs {
        let iters = (r.flush_iters / scale).max(1);
        let res = run_fwd_rung(r, iters, if quick { 1 } else { REPEATS }, simd);
        counters_tot.merge_from(&res.counters);

        // Bit-identity vs the recorded baseline, when one exists: the
        // batched output must never drift between runs.
        let base_single = baseline.as_ref().and_then(|b| {
            let line = b.rung(r.name)?;
            let cs = json_field(line, "cs_fsp").expect("baseline cs_fsp");
            assert_eq!(
                cs,
                format!("{:016x}", res.cs_fsp),
                "{}: cs_fsp diverged from the recorded baseline artifact",
                r.name
            );
            json_num(line, "single_states_per_s")
        });
        let vs_base = base_single.map(|b| res.batch_states_per_s / b);
        // The batched flush must beat the single-sample arm where
        // batching pays (the smallest rung; measured ≈ 1.3×, floor
        // absorbs timing noise). The gate uses the within-run live
        // ratio — the two arms interleave through the same host noise
        // windows — because this box shows ±40% *cross-run* throughput
        // swings that would make any cross-run gate flaky; `vs_base`
        // stays reported for the record. Quick mode runs too few
        // iterations for stable timing, so only full mode gates.
        let live = res.batch_states_per_s / res.single_states_per_s;
        assert!(
            quick || r.name != "S8" || live >= 1.15,
            "{}: batched flush is {live:.2}x the single-sample arm (< 1.15x)",
            r.name
        );
        fwd_table.row([
            r.name.to_string(),
            format!("{:.2}", res.batch_states_per_s),
            format!("{:.2}", res.single_states_per_s),
            format!("{:.2}x", res.batch_states_per_s / res.single_states_per_s),
            vs_base.map_or("-".to_string(), |x| format!("{x:.2}x")),
            format!("{:.1}", res.occupancy),
            format!("{:016x}", res.cs_fsp),
        ]);
        fwd_rows.push((r.name, iters, res));
        eprintln!("[selector_batch_bench] {} fwd done", r.name);

        if r.fit_iters > 0 {
            let fit_iters = (r.fit_iters / scale).max(1);
            let fit = run_fit_rung(r, fit_iters, if quick { 1 } else { REPEATS }, simd);
            counters_tot.merge_from(&fit.counters);
            let fit_name = format!("fit{}", r.name);
            let base_seq = baseline.as_ref().and_then(|b| {
                let line = b.rung(&fit_name)?;
                json_num(line, "seq_steps_per_s")
            });
            let vs_base = base_seq.map(|b| fit.batch_steps_per_s / b);
            // No-regression floor on the within-run ratio (see the
            // module docs for why this is not 1.3×: the backward
            // accumulation order pins the weight-gradient kernels to
            // per-sample execution, so batched fitting is parity on
            // CPU). Quick mode runs too few iterations for stable
            // timing, so only full mode gates.
            let live = fit.batch_steps_per_s / fit.seq_steps_per_s;
            assert!(
                quick || live >= 0.85,
                "{fit_name}: fit_batch regressed to {live:.2}x the sequential arm (< 0.85x)"
            );
            fit_table.row([
                fit_name.clone(),
                format!("{:.3}", fit.batch_steps_per_s),
                format!("{:.3}", fit.seq_steps_per_s),
                format!("{:.2}x", fit.batch_steps_per_s / fit.seq_steps_per_s),
                vs_base.map_or("-".to_string(), |x| format!("{x:.2}x")),
            ]);
            fit_rows.push((fit_name, fit_iters, fit));
            eprintln!("[selector_batch_bench] {} fit done", r.name);
        }
    }

    println!(
        "batched selector throughput ({} mode, {} kernels, B = {BATCH}; speedups vs {})\n",
        if quick { "quick" } else { "full" },
        if simd { "avx2+fma" } else { "scalar" },
        if baseline.is_some() {
            baseline_path.as_str()
        } else {
            "(no baseline recorded yet)"
        }
    );
    fwd_table.print();
    println!();
    fit_table.print();
    println!(
        "\nchecksums: every rung bit-identical to the single-sample path at B in {{1, 4, 16}}{}",
        if simd {
            " (scalar lane; timed arms ran avx2+fma)"
        } else {
            ""
        }
    );

    let write_artifact = |path: &str, mode: &str| {
        let mut json = format!(
            "{{\n  \"mode\": \"{mode}\",\n  \"kernel\": \"{}\",\n  \"rungs\": [\n",
            if simd { "simd" } else { "scalar" }
        );
        let total = fwd_rows.len() + fit_rows.len();
        for (i, (name, iters, res)) in fwd_rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"bsz\": {BATCH}, \"flush_iters\": {}, \"batch_states_per_s\": {:.3}, \"single_states_per_s\": {:.3}, \"occupancy\": {:.2}, \"cs_fsp\": \"{:016x}\"}}{}\n",
                name,
                iters,
                res.batch_states_per_s,
                res.single_states_per_s,
                res.occupancy,
                res.cs_fsp,
                if i + 1 < total { "," } else { "" }
            ));
        }
        for (i, (name, iters, fit)) in fit_rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"name\": \"{}\", \"bsz\": {BATCH}, \"fit_iters\": {}, \"batch_steps_per_s\": {:.4}, \"seq_steps_per_s\": {:.4}, \"cs_loss\": \"{:016x}\"}}{}\n",
                name,
                iters,
                fit.batch_steps_per_s,
                fit.seq_steps_per_s,
                fit.cs_loss,
                if fwd_rows.len() + i + 1 < total { "," } else { "" }
            ));
        }
        let snapshot = TelemetrySnapshot {
            manifest: Manifest {
                run: "selector_batch_bench".to_string(),
                mode: if quick { "quick" } else { "full" }.to_string(),
                threads: 1,
                seed: 0xDAC2024,
                timing: TIMING_ENABLED,
            },
            counters: counters_tot,
            spans: SpanSet::new(),
        };
        json.push_str("  ],\n  \"telemetry\": [\n");
        let telemetry_lines: Vec<String> = snapshot
            .to_jsonl()
            .lines()
            .map(|l| format!("    {l}"))
            .collect();
        json.push_str(&telemetry_lines.join(",\n"));
        json.push_str("\n  ]\n}\n");
        if let Some(dir) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        std::fs::write(path, json).expect("write artifact");
        println!("artifact: {path}");
    };

    write_artifact(&out_path, "batch");
    if baseline.is_none() && !quick && !simd {
        // Bootstrap: record this run's single-sample arm as the baseline
        // for future comparisons (honest-comparison policy: the recorded
        // denominator predates any further batched-path tuning).
        write_artifact(&baseline_path, "single-sample-baseline");
        println!("bootstrapped baseline (speedup gate active from the next full run)");
    }
}
