//! Diagnostic (not a paper experiment): raw timings of the building
//! blocks, used to size the experiment budgets.

#![forbid(unsafe_code)]

use std::time::Instant;

use oarsmt::selector::{NeuralSelector, Selector};
use oarsmt_bench::harness::experiment_net_config;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_mcts::{CombinatorialMcts, MctsConfig};
use oarsmt_router::{Lin18Router, OarmstRouter};

fn main() {
    let mut selector = NeuralSelector::with_config(experiment_net_config());
    for (h, v, m) in [
        (6, 6, 1),
        (8, 8, 2),
        (12, 12, 2),
        (16, 16, 3),
        (24, 24, 3),
        (32, 32, 3),
    ] {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(h, v, m, (4, 6)), 1);
        let g = gen.generate();
        let t0 = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            let _ = selector.fsp(&g, &[]);
        }
        let infer = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = OarmstRouter::new().route(&g, &[]);
        }
        let route = t0.elapsed() / reps;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = Lin18Router::new().route(&g);
        }
        let lin = t0.elapsed() / reps;
        println!("{h}x{v}x{m}: fsp {infer:?}, oarmst {route:?}, lin18 {lin:?}");
    }

    // One MCTS search at the training size.
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 1, (4, 5)), 2);
    let g = gen.generate();
    let mcts = CombinatorialMcts::new(MctsConfig {
        base_iterations: 128,
        base_size: 36,
        use_critic: false,
        ..MctsConfig::default()
    });
    let t0 = Instant::now();
    let out = mcts.search(&g, &mut selector).unwrap();
    println!(
        "mcts 6x6x1 (alpha 128, no critic): {:?}, {} nodes, {} sims",
        t0.elapsed(),
        out.nodes_created,
        out.simulations
    );
    let mcts = CombinatorialMcts::new(MctsConfig {
        base_iterations: 128,
        base_size: 36,
        use_critic: true,
        ..MctsConfig::default()
    });
    let t0 = Instant::now();
    let out = mcts.search(&g, &mut selector).unwrap();
    println!(
        "mcts 6x6x1 (alpha 128, critic): {:?}, {} nodes, {} sims",
        t0.elapsed(),
        out.nodes_created,
        out.simulations
    );
}
