//! `unet_throughput`: selector-forward and train-step throughput of the
//! 3D Residual U-Net on a ladder of layout sizes.
//!
//! A *forward* is one [`UNet3d::predict_in`] over the 7-channel feature
//! encoding of a generated layout — exactly the inference a
//! `NeuralSelector::fsp` performs once per MCTS search. A *train step* is
//! one `zero_grad` + `forward_in` + BCE-with-logits + `backward_in` on the
//! same input with a sparse synthetic label — the inner loop of
//! `Trainer::fit_batch`.
//!
//! Per rung the binary records an output checksum (forward logits) and
//! gradient checksums (input gradient, concatenated parameter gradients) as
//! exact `f64` bit patterns, and asserts three bit-identity properties:
//!
//! 1. against the in-process **naive reference convolutions**
//!    (`set_naive`, the pre-GEMM loops kept as an oracle);
//! 2. against the **recorded baseline artifact**
//!    (`BENCH_unet_baseline.json`, captured before the GEMM/workspace
//!    rewrite) — also the denominator of the reported speedups;
//! 3. implicitly, across workspace reuse (the timed loops reuse one
//!    workspace; any drift would change the artifact checksums).
//!
//! With `--simd` (requires building `-p oarsmt-bench --features simd` on
//! an AVX2+FMA host) the *timed* loops run through the wide GEMM kernels
//! (DESIGN.md §9 opt-out): the untimed checksum pass stays on the scalar
//! lane so all three bit-identity properties above still hold and are
//! still asserted, the SIMD forward output is checked ULP-close to the
//! scalar one, the dispatch counter must prove the wide kernels actually
//! ran, and the artifact defaults to `BENCH_unet_simd.json` (recorded
//! checksums remain the scalar anchors; `kernel` names the timed lane).
//!
//! Usage: `unet_throughput [--quick] [--profile] [--simd] [--out PATH]
//! [--baseline PATH]`

#![forbid(unsafe_code)]

use std::time::Instant;

use oarsmt::features::{encode_features, valid_mask};
use oarsmt::selector::Selector;
use oarsmt::topk::{select_top_k, steiner_budget};
use oarsmt_bench::artifact::{json_field, json_num, Artifact};
use oarsmt_bench::Table;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::HananGraph;
use oarsmt_nn::layer::Layer;
use oarsmt_nn::loss::bce_with_logits;
use oarsmt_nn::tensor::Tensor;
use oarsmt_nn::unet::{UNet3d, UNetConfig};
use oarsmt_nn::{KernelPolicy, NnWorkspace};
use oarsmt_telemetry::{Counter, CounterSet, Manifest, SpanSet, TelemetrySnapshot, TIMING_ENABLED};

/// One rung of the size ladder.
struct Rung {
    name: &'static str,
    h: usize,
    v: usize,
    m: usize,
    pins: usize,
    /// Timed forward (predict) iterations.
    fwd_iters: usize,
    /// Timed train-step iterations.
    train_iters: usize,
}

const LADDER: &[Rung] = &[
    Rung {
        name: "S8",
        h: 8,
        v: 8,
        m: 2,
        pins: 4,
        fwd_iters: 300,
        train_iters: 120,
    },
    Rung {
        name: "S12",
        h: 12,
        v: 12,
        m: 2,
        pins: 4,
        fwd_iters: 150,
        train_iters: 60,
    },
    Rung {
        name: "S16",
        h: 16,
        v: 16,
        m: 2,
        pins: 5,
        fwd_iters: 80,
        train_iters: 32,
    },
    Rung {
        name: "S24",
        h: 24,
        v: 24,
        m: 2,
        pins: 5,
        fwd_iters: 50,
        train_iters: 20,
    },
    Rung {
        name: "S32",
        h: 32,
        v: 32,
        m: 3,
        pins: 6,
        fwd_iters: 30,
        train_iters: 12,
    },
    Rung {
        name: "S48",
        h: 48,
        v: 48,
        m: 3,
        pins: 6,
        fwd_iters: 16,
        train_iters: 6,
    },
];

/// The default selector architecture (7 feature channels, laptop width).
fn net() -> UNet3d {
    UNet3d::new(UNetConfig {
        in_channels: 7,
        base_channels: 8,
        levels: 2,
        seed: 0xDAC2024,
    })
}

/// Deterministic layout + feature tensor + sparse label/mask for a rung.
fn rung_inputs(r: &Rung) -> (HananGraph, Tensor, Tensor, Tensor) {
    let cfg = GeneratorConfig::paper_costs(r.h, r.v, r.m, (r.pins, r.pins));
    let graph = CaseGenerator::new(cfg, 0x5EED ^ r.h as u64).generate();
    let x = encode_features(&graph, &[]);
    // Sparse synthetic label: the median heuristic's top-k Steiner points.
    let mut heuristic = oarsmt::selector::MedianHeuristicSelector::new();
    let fsp = heuristic.fsp(&graph, &[]);
    let k = steiner_budget(graph.pins().len());
    let points = select_top_k(&graph, &fsp, k, &[]);
    let mut labels = vec![0.0f32; graph.len()];
    for p in points {
        labels[graph.index(p)] = 1.0;
    }
    let targets = oarsmt::features::from_graph_order(&labels, &graph);
    let mask = valid_mask(&graph, &[]);
    (graph, x, targets, mask)
}

#[derive(Clone, Copy, PartialEq, Eq)]
struct Checksums {
    /// Bit patterns: predict output, forward logits, input gradient,
    /// concatenated parameter gradients.
    predict: u64,
    logits: u64,
    grad_in: u64,
    param_grads: u64,
}

struct RungResult {
    fwd_secs: f64,
    train_secs: f64,
    cs: Checksums,
    /// Tier B per-layer spans (empty unless `--profile` and the
    /// `telemetry-timing` feature are both on).
    spans: SpanSet,
    /// Tier A counters for the whole rung (checksum pass + timed loops;
    /// the naive oracle routes through its own discarded workspaces).
    counters: CounterSet,
}

fn f64_sum(data: &[f32]) -> f64 {
    data.iter().map(|&v| f64::from(v)).sum()
}

/// One predict + one train step through the legacy entry points (fresh
/// workspaces), used for the naive-reference oracle pass.
fn checksum_pass(net: &mut UNet3d, x: &Tensor, targets: &Tensor, mask: &Tensor) -> Checksums {
    let probs = net.predict(x);
    let predict = f64_sum(probs.data()).to_bits();
    net.zero_grad();
    let logits = net.forward(x);
    let cs_logits = f64_sum(logits.data()).to_bits();
    let out = bce_with_logits(&logits, targets, Some(mask));
    let grad_in = net.backward(&out.grad);
    let cs_grad_in = f64_sum(grad_in.data()).to_bits();
    let mut param_sum = 0.0f64;
    for p in net.params_mut() {
        param_sum += f64_sum(p.grad.data());
    }
    Checksums {
        predict,
        logits: cs_logits,
        grad_in: cs_grad_in,
        param_grads: param_sum.to_bits(),
    }
}

/// Runs one rung: oracle + checksum passes first (untimed, always on the
/// scalar lane — the bit-identity contract lives there), then timing
/// loops through one reused workspace on the requested kernel lane.
fn run_rung(r: &Rung, profile: bool, simd: bool) -> RungResult {
    let (_graph, x, targets, mask) = rung_inputs(r);
    let mut net = net();
    let mut ws = NnWorkspace::new();

    // --- checksum pass through the GEMM + workspace path ---
    let probs = net.predict_in(&x, &mut ws);
    let cs_predict = f64_sum(probs.data()).to_bits();
    let scalar_probs: Vec<f32> = probs.data().to_vec();
    ws.free(probs);
    net.zero_grad();
    let logits = net.forward_in(&x, &mut ws);
    let cs_logits = f64_sum(logits.data()).to_bits();
    let out = bce_with_logits(&logits, &targets, Some(&mask));
    ws.free(logits);
    let grad_in = net.backward_in(out.grad, &mut ws);
    let cs_grad_in = f64_sum(grad_in.data()).to_bits();
    ws.free(grad_in);
    let mut param_sum = 0.0f64;
    for p in net.params_mut() {
        param_sum += f64_sum(p.grad.data());
    }
    let cs = Checksums {
        predict: cs_predict,
        logits: cs_logits,
        grad_in: cs_grad_in,
        param_grads: param_sum.to_bits(),
    };

    // --- in-process oracle: the naive reference loops must agree bitwise ---
    let mut ref_net = net.clone();
    ref_net.zero_grad();
    ref_net.set_naive(true);
    let ref_cs = checksum_pass(&mut ref_net, &x, &targets, &mask);
    assert!(
        cs == ref_cs,
        "{}: GEMM path diverged from naive reference convolutions",
        r.name
    );

    // --- switch the timed loops to the wide kernels, with two checks:
    // the forward output must stay within the DESIGN.md §9 tolerance of
    // the scalar lane, and the dispatch counter must prove the SIMD
    // kernels actually ran (a silent scalar fallback would fake numbers).
    if simd {
        ws.set_kernel_policy(KernelPolicy::Simd);
        let simd_before = ws.counters.get(Counter::GemmKernelSimd);
        let p = net.predict_in(&x, &mut ws);
        let ulp = oarsmt_nn::kernels::max_ulp_distance(p.data(), &scalar_probs);
        let close = p
            .data()
            .iter()
            .zip(&scalar_probs)
            .all(|(&a, &b)| oarsmt_nn::kernels::close_enough(a, b));
        assert!(
            close,
            "{}: SIMD forward outside the ULP contract (max {ulp} ULPs)",
            r.name
        );
        ws.free(p);
        assert!(
            ws.counters.get(Counter::GemmKernelSimd) > simd_before,
            "{}: --simd given but the wide kernels never dispatched",
            r.name
        );
    }
    drop(scalar_probs);

    if profile {
        ws.enable_profiling();
    }

    // --- forward (inference) timing ---
    let t0 = Instant::now();
    for _ in 0..r.fwd_iters {
        let p = net.predict_in(&x, &mut ws);
        std::hint::black_box(p.data()[0]);
        ws.free(p);
    }
    let fwd_secs = t0.elapsed().as_secs_f64();

    // --- train-step timing ---
    let t0 = Instant::now();
    for _ in 0..r.train_iters {
        net.zero_grad();
        let logits = net.forward_in(&x, &mut ws);
        let out = bce_with_logits(&logits, &targets, Some(&mask));
        ws.free(logits);
        let g = net.backward_in(out.grad, &mut ws);
        std::hint::black_box(g.data()[0]);
        ws.free(g);
    }
    let train_secs = t0.elapsed().as_secs_f64();

    RungResult {
        fwd_secs,
        train_secs,
        cs,
        spans: ws.take_spans(),
        counters: ws.counters,
    }
}

/// Asserts that this run's checksums match the recorded baseline rung
/// bit-for-bit (the rewrite must not change a single logit or gradient).
fn assert_baseline_checksums(name: &str, line: &str, cs: &Checksums) {
    for (key, ours) in [
        ("cs_predict", cs.predict),
        ("cs_logits", cs.logits),
        ("cs_grad_in", cs.grad_in),
        ("cs_param_grads", cs.param_grads),
    ] {
        let recorded = json_field(line, key).unwrap_or_else(|| panic!("{name}: baseline {key}"));
        assert_eq!(
            recorded,
            format!("{ours:016x}"),
            "{name}: {key} diverged from the recorded baseline artifact"
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = args.iter().any(|a| a == "--profile");
    let simd = args.iter().any(|a| a == "--simd");
    if simd && !oarsmt_nn::simd_available() {
        eprintln!(
            "error: --simd needs `cargo ... -p oarsmt-bench --features simd` and an \
             AVX2+FMA host (refusing to record SIMD-labeled scalar numbers)"
        );
        std::process::exit(2);
    }
    let arg_val = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let default_out = if simd {
        "crates/bench/artifacts/BENCH_unet_simd.json"
    } else {
        "crates/bench/artifacts/BENCH_unet.json"
    };
    let out_path = arg_val("--out").unwrap_or_else(|| default_out.to_string());
    let baseline_path = arg_val("--baseline")
        .unwrap_or_else(|| "crates/bench/artifacts/BENCH_unet_baseline.json".to_string());
    let baseline = Artifact::load(&baseline_path)
        .map_err(|e| format!("{baseline_path}: {e}"))
        .expect("recorded baseline artifact");

    let rungs: Vec<&Rung> = if quick {
        LADDER.iter().take(3).collect()
    } else {
        LADDER.iter().collect()
    };
    let scale = if quick { 4 } else { 1 }; // quick: 1/4 of the iterations

    let mut table = Table::new([
        "rung",
        "fwd/s",
        "xfwd",
        "train/s",
        "xtrain",
        "gemm d/p/f",
        "logits checksum",
    ]);
    let mut rows = Vec::new();
    let mut tot = (0usize, 0.0f64, 0usize, 0.0f64);
    let mut spans_tot = SpanSet::new();
    let mut counters_tot = CounterSet::new();
    for r in &rungs {
        let scaled = Rung {
            fwd_iters: (r.fwd_iters / scale).max(2),
            train_iters: (r.train_iters / scale).max(1),
            ..**r
        };
        let res = run_rung(&scaled, profile, simd);
        let base_line = baseline
            .rung(r.name)
            .unwrap_or_else(|| panic!("{}: missing from {baseline_path}", r.name));
        assert_baseline_checksums(r.name, base_line, &res.cs);
        let fwd_per_s = scaled.fwd_iters as f64 / res.fwd_secs;
        let train_per_s = scaled.train_iters as f64 / res.train_secs;
        let base_fwd = json_num(base_line, "fwd_per_s").expect("baseline fwd_per_s");
        let base_train = json_num(base_line, "train_per_s").expect("baseline train_per_s");
        table.row([
            r.name.to_string(),
            format!("{fwd_per_s:.2}"),
            format!("{:.2}x", fwd_per_s / base_fwd),
            format!("{train_per_s:.2}"),
            format!("{:.2}x", train_per_s / base_train),
            format!(
                "{}/{}/{}",
                res.counters.get(Counter::GemmDirect),
                res.counters.get(Counter::GemmPanel),
                res.counters.get(Counter::GemmFlat)
            ),
            format!("{:016x}", res.cs.logits),
        ]);
        tot.0 += scaled.fwd_iters;
        tot.1 += res.fwd_secs;
        tot.2 += scaled.train_iters;
        tot.3 += res.train_secs;
        spans_tot.merge_from(&res.spans);
        counters_tot.merge_from(&res.counters);
        rows.push((r.name, scaled, res, fwd_per_s, train_per_s));
        eprintln!("[unet_throughput] {} done", r.name);
    }

    println!(
        "unet selector throughput ({} mode, {} kernels; speedups vs {})\n",
        if quick { "quick" } else { "full" },
        if simd { "avx2+fma" } else { "scalar" },
        baseline_path
    );
    table.print();
    let tot_fwd = tot.0 as f64 / tot.1;
    let tot_train = tot.2 as f64 / tot.3;
    println!("\ntotal: fwd {tot_fwd:.2}/s, train {tot_train:.2}/s");
    if let (Some(base_fwd), Some(base_train)) = (
        baseline.top_num("total_fwd_per_s"),
        baseline.top_num("total_train_per_s"),
    ) {
        // Quick mode runs a rung subset, so only the full ladder compares
        // cleanly against the recorded totals.
        if !quick {
            println!(
                "overall speedup: fwd {:.2}x, train {:.2}x",
                tot_fwd / base_fwd,
                tot_train / base_train
            );
        }
    }
    if simd {
        println!(
            "checksums: scalar lane bit-identical to naive reference and recorded \
             baseline; SIMD forward within {} ULPs / {} abs of scalar on every rung",
            oarsmt_nn::kernels::MAX_ULP,
            oarsmt_nn::kernels::ABS_TOL
        );
    } else {
        println!("checksums: all rungs bit-identical to naive reference and recorded baseline");
    }

    if profile {
        let total: f64 = spans_tot.iter().map(|(_, h)| h.total_ns as f64 / 1e9).sum();
        let mut pt = Table::new(["layer kind", "secs", "share"]);
        for (name, h) in spans_tot.iter() {
            if h.count == 0 {
                continue;
            }
            let secs = h.total_ns as f64 / 1e9;
            pt.row([
                name.to_string(),
                format!("{secs:.4}"),
                format!("{:.1}%", 100.0 * secs / total.max(1e-12)),
            ]);
        }
        println!("\nper-layer time split (timed loops, all rungs)\n");
        if !TIMING_ENABLED {
            println!("(telemetry-timing feature off: spans recorded as zero-duration events)\n");
        }
        pt.print();
    }

    let mut json = format!(
        "{{\n  \"mode\": \"gemm-workspace\",\n  \"kernel\": \"{}\",\n  \"rungs\": [\n",
        if simd { "simd" } else { "scalar" }
    );
    for (i, (name, scaled, res, fwd_per_s, train_per_s)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"fwd_iters\": {}, \"fwd_secs\": {:.6}, \"fwd_per_s\": {:.3}, \"train_iters\": {}, \"train_secs\": {:.6}, \"train_per_s\": {:.3}, \"gemm_direct\": {}, \"gemm_panel\": {}, \"gemm_flat\": {}, \"gemm_simd\": {}, \"macs\": {}, \"cs_predict\": \"{:016x}\", \"cs_logits\": \"{:016x}\", \"cs_grad_in\": \"{:016x}\", \"cs_param_grads\": \"{:016x}\"}}{}\n",
            name,
            scaled.fwd_iters,
            res.fwd_secs,
            fwd_per_s,
            scaled.train_iters,
            res.train_secs,
            train_per_s,
            res.counters.get(Counter::GemmDirect),
            res.counters.get(Counter::GemmPanel),
            res.counters.get(Counter::GemmFlat),
            res.counters.get(Counter::GemmKernelSimd),
            res.counters.total_macs(),
            res.cs.predict,
            res.cs.logits,
            res.cs.grad_in,
            res.cs.param_grads,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    let snapshot = TelemetrySnapshot {
        manifest: Manifest {
            run: "unet_throughput".to_string(),
            mode: if quick { "quick" } else { "full" }.to_string(),
            threads: 1,
            seed: 0xDAC2024,
            timing: TIMING_ENABLED,
        },
        counters: counters_tot,
        spans: spans_tot,
    };
    json.push_str(&format!(
        "  ],\n  \"total_fwd_per_s\": {:.3},\n  \"total_train_per_s\": {:.3},\n  \"telemetry\": [\n",
        tot_fwd, tot_train
    ));
    let telemetry_lines: Vec<String> = snapshot
        .to_jsonl()
        .lines()
        .map(|l| format!("    {l}"))
        .collect();
    json.push_str(&telemetry_lines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out_path, json).expect("write artifact");
    println!("artifact: {out_path}");
}
