//! Regenerates **Table 4**: routing-cost comparison on the public benchmark
//! layouts (synthetic re-creations; DESIGN.md §5) against the three
//! algorithmic baselines \[12\] (spanning graph), \[16\] (geometric
//! reduction) and \[14\] (maze routing with retracing), with via cost 3.
//!
//! Paper shape to reproduce: ours beats \[12\] by the largest margin
//! (avg ≈ 4.75%), \[16\] by less (≈ 0.99%) and \[14\] by the least
//! (≈ 0.61%); an isolated small regression against one baseline on one
//! benchmark (ind2 in the paper) is within the expected noise.

#![forbid(unsafe_code)]

use oarsmt::rl_router::RlRouter;
use oarsmt_bench::{harness, Table};
use oarsmt_geom::benchmarks::BenchmarkSpec;
use oarsmt_router::{Lin18Router, Liu14Router, SpanningRouter};

fn main() {
    println!("Table 4: routing cost on public benchmark layouts (via cost 3)\n");
    let mut selector = harness::pretrained_selector();
    let mut router = RlRouter::new(&mut selector);
    let spanning = SpanningRouter::new();
    let liu = Liu14Router::new();
    let lin = Lin18Router::new();

    let mut table = Table::new([
        "case", "HxVxM", "pins", "obst", "[12] (a)", "[16] (b)", "[14] (c)", "ours (d)", "(a-d)/a",
        "(b-d)/b", "(c-d)/c",
    ]);
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;
    for spec in BenchmarkSpec::all() {
        let graph = spec.build();
        let (h, v, m, pins, obst) = spec.scaled();
        let a = spanning.route(&graph).expect("benchmark routes").cost();
        let b = liu.route(&graph).expect("benchmark routes").cost();
        let c = lin.route(&graph).expect("benchmark routes").cost();
        let d = router.route(&graph).expect("benchmark routes").tree.cost();
        let imps = [(a - d) / a, (b - d) / b, (c - d) / c];
        for (s, i) in sums.iter_mut().zip(imps) {
            *s += i;
        }
        count += 1;
        table.row([
            spec.name.to_string(),
            format!("{h}x{v}x{m}"),
            pins.to_string(),
            obst.to_string(),
            format!("{a:.0}"),
            format!("{b:.0}"),
            format!("{c:.0}"),
            format!("{d:.0}"),
            format!("{:+.3}%", 100.0 * imps[0]),
            format!("{:+.3}%", 100.0 * imps[1]),
            format!("{:+.3}%", 100.0 * imps[2]),
        ]);
        eprintln!("[table4] {} done", spec.name);
    }
    table.row([
        "avg".to_string(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:+.3}%", 100.0 * sums[0] / count as f64),
        format!("{:+.3}%", 100.0 * sums[1] / count as f64),
        format!("{:+.3}%", 100.0 * sums[2] / count as f64),
    ]);
    table.print();
    println!("\npaper: avg improvement +4.753% vs [12], +0.986% vs [16], +0.609% vs [14]");
}
