//! Regenerates **Table 1**: the settings of each randomly generated test
//! subset — the paper's original parameters side by side with the scaled
//! parameters used by this reproduction (DESIGN.md §5).

#![forbid(unsafe_code)]

use oarsmt_bench::Table;
use oarsmt_geom::gen::TestSubsetSpec;

fn main() {
    println!("Table 1: setting of each randomly generated test subset");
    println!("(paper parameters -> scaled reproduction parameters)\n");
    let mut table = Table::new([
        "subset",
        "paper HxV",
        "paper M",
        "paper layouts",
        "H",
        "V",
        "M",
        "# pins",
        "# obstacles",
        "layouts",
    ]);
    for spec in TestSubsetSpec::ladder() {
        table.row([
            spec.name.to_string(),
            format!("{}x{}", spec.paper_dims.0, spec.paper_dims.1),
            format!("{}~{}", spec.paper_dims.2 .0, spec.paper_dims.2 .1),
            spec.paper_layouts.to_string(),
            spec.h.to_string(),
            spec.v.to_string(),
            format!("{}~{}", spec.m.0, spec.m.1),
            format!("{}~{}", spec.pins.0, spec.pins.1),
            format!("{}~{}", spec.obstacles.0, spec.obstacles.1),
            spec.layouts.to_string(),
        ]);
    }
    table.print();
}
