//! Quality ablations for the design choices called out in DESIGN.md §4:
//! what each mechanism of the routers buys, measured on one random
//! workload. (The matching *runtime* ablations live in the Criterion
//! benches.)
//!
//! `cargo run --release -p oarsmt-bench --bin ablation`

#![forbid(unsafe_code)]

use oarsmt::rl_router::RlRouter;
use oarsmt::selector::MedianHeuristicSelector;
use oarsmt_bench::Table;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::HananGraph;
use oarsmt_router::exact::steiner_exact_cost;
use oarsmt_router::{Lin18Router, OarmstRouter};

fn main() {
    let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(9, 9, 2, (4, 6)), 0xAB1A);
    let cases: Vec<HananGraph> = gen
        .generate_many(40)
        .into_iter()
        .filter(|g| OarmstRouter::new().route(g, &[]).is_ok())
        .collect();
    println!(
        "quality ablations on {} random 9x9x2 layouts (4-6 pins, paper costs)\n",
        cases.len()
    );

    // Reference: the exact optimum where computable.
    let exact: Vec<Option<f64>> = cases.iter().map(|g| steiner_exact_cost(g).ok()).collect();
    let sum_exact: f64 = exact.iter().flatten().sum();

    let mut table = Table::new(["configuration", "total cost", "vs exact optimum"]);
    let mut row = |name: &str, costs: Vec<f64>| {
        let total: f64 = costs.iter().sum();
        let vs: f64 = costs
            .iter()
            .zip(&exact)
            .filter_map(|(&c, e)| e.map(|e| c / e))
            .sum::<f64>()
            / exact.iter().flatten().count() as f64;
        table.row([
            name.to_string(),
            format!("{total:.0}"),
            format!("{:.3}x", vs),
        ]);
    };

    // 1. OARMST construction variants.
    row(
        "oarmst (no polish)",
        cases
            .iter()
            .map(|g| {
                OarmstRouter::new()
                    .with_polish_rounds(0)
                    .route(g, &[])
                    .unwrap()
                    .cost()
            })
            .collect(),
    );
    row(
        "oarmst (polish, default)",
        cases
            .iter()
            .map(|g| OarmstRouter::new().route(g, &[]).unwrap().cost())
            .collect(),
    );
    row(
        "oarmst (bounded margin 1)",
        cases
            .iter()
            .map(|g| {
                OarmstRouter::new()
                    .with_bounds_margin(1)
                    .route(g, &[])
                    .map(|t| t.cost())
                    .unwrap_or(f64::NAN)
            })
            .collect(),
    );

    // 2. [14] baseline with and without its retracing schedule.
    row(
        "lin18 (no reassess)",
        cases
            .iter()
            .map(|g| {
                Lin18Router::new()
                    .without_reassess()
                    .route(g)
                    .unwrap()
                    .cost()
            })
            .collect(),
    );
    row(
        "lin18 (full)",
        cases
            .iter()
            .map(|g| Lin18Router::new().route(g).unwrap().cost())
            .collect(),
    );

    // 3. RL router mechanism stack.
    row(
        "ours (selector only, no refine/safeguard)",
        cases
            .iter()
            .map(|g| {
                RlRouter::new(MedianHeuristicSelector::new())
                    .without_refine()
                    .without_safeguard()
                    .route(g)
                    .unwrap()
                    .tree
                    .cost()
            })
            .collect(),
    );
    row(
        "ours (full)",
        cases
            .iter()
            .map(|g| {
                RlRouter::new(MedianHeuristicSelector::new())
                    .route(g)
                    .unwrap()
                    .tree
                    .cost()
            })
            .collect(),
    );
    row(
        "exact optimum",
        exact.iter().map(|e| e.unwrap_or(f64::NAN)).collect(),
    );
    table.print();
    println!("\n(total exact optimum over solvable layouts: {sum_exact:.0})");
    println!("expected ordering: no-polish > bounded >= polish >= lin18 >= ours >= exact");
}
