//! Regenerates **Fig. 10**: average routing-cost improvement ratio of our
//! router over the \[14\] baseline versus the layout obstacle ratio, per
//! test subset.
//!
//! Paper shape to reproduce: within each subset the improvement ratio
//! generally *increases* with the obstacle ratio — the RL router's
//! advantage grows as layouts get harder to route.

#![forbid(unsafe_code)]

use oarsmt::eval::ObstacleRatioCurve;
use oarsmt::parallel;
use oarsmt_bench::{harness, Table};
use oarsmt_geom::gen::TestSubsetSpec;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flag = parallel::take_threads_flag(&mut args).unwrap_or_else(|e| {
        eprintln!("{e}\nusage: fig10 [--threads N]   (or OARSMT_THREADS=N)");
        std::process::exit(2);
    });
    let threads = parallel::thread_count(flag);
    println!("Fig. 10: avg improvement ratio vs obstacle ratio, per subset ({threads} threads)\n");
    let selector = harness::pretrained_selector();
    for spec in TestSubsetSpec::ladder() {
        let result =
            harness::run_subset(&spec, &selector, 0xF160, threads).expect("subset must route");
        let max_ratio = result
            .obstacle_points
            .iter()
            .map(|&(o, _)| o)
            .fold(0.05, f64::max);
        let mut curve = ObstacleRatioCurve::new(4, max_ratio + 1e-9);
        for &(obstacle, improvement) in &result.obstacle_points {
            curve.record(obstacle, improvement);
        }
        println!("subset {}:", result.name);
        let mut table = Table::new(["obstacle ratio (bin center)", "avg improvement", "layouts"]);
        for (center, avg, n) in curve.rows() {
            table.row([
                format!("{center:.3}"),
                format!("{:+.3}%", 100.0 * avg),
                n.to_string(),
            ]);
        }
        table.print();
        println!();
    }
    println!("paper: improvement rises with obstacle ratio across all subsets");
}
