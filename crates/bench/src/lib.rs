//! Benchmark harness regenerating every table and figure of the paper.
//!
//! One binary per experiment (see DESIGN.md §4):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — test-subset settings (paper vs scaled) |
//! | `table2` | Table 2 — routing cost, ours vs \[14\] |
//! | `table3` | Table 3 — runtime, ours vs \[14\] |
//! | `table4` | Table 4 — public benchmarks vs \[12\]/\[16\]/\[14\] |
//! | `fig10`  | Fig. 10 — improvement ratio vs obstacle ratio |
//! | `fig11`  | Fig. 11 — ST-to-MST vs training time (small layouts) |
//! | `fig12`  | Fig. 12 — ST-to-MST vs training time (larger layouts) |
//!
//! Criterion micro-benchmarks (`cargo bench`) back the runtime claims:
//! Hanan reduction, router scaling, one-shot vs sequential inference, and
//! combinatorial vs conventional MCTS sample generation.
//!
//! Run any table with `cargo run --release -p oarsmt-bench --bin table2`.

#![forbid(unsafe_code)]

pub mod artifact;
pub mod harness;
pub mod report;

pub use harness::{pretrained_selector, SubsetResult};
pub use report::Table;
