//! Criterion micro-benchmarks for Hanan grid construction (Section 2.2) —
//! the reduction step whose output-size advantage over uniform grids the
//! paper relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oarsmt_geom::{Coord, HananGraph, Layout, Obstacle, Pin, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_layout(pins: usize, obstacles: usize, span: i64, seed: u64) -> Layout {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layout = Layout::new(3);
    for _ in 0..obstacles {
        let x = rng.gen_range(0..span - 6);
        let y = rng.gen_range(0..span - 6);
        let w = rng.gen_range(1..6i64);
        let h = rng.gen_range(1..6i64);
        layout = layout.with_obstacle(Obstacle::new(
            Rect::new(x, y, x + w, y + h),
            rng.gen_range(0..3),
        ));
    }
    let mut placed = 0;
    while placed < pins {
        let at = Coord::new(rng.gen_range(0..span), rng.gen_range(0..span));
        let layer = rng.gen_range(0..3);
        // Skip positions inside obstacles on the same layer; `validate`
        // cannot be used per-pin because it also rejects pin counts < 2.
        let collides = layout
            .obstacles()
            .iter()
            .any(|o| o.layer == layer && o.rect.contains(at))
            || layout.pins().iter().any(|p| p.at == at && p.layer == layer);
        if !collides {
            layout = layout.with_pin(Pin::new(at, layer));
            placed += 1;
        }
    }
    layout
        .validate()
        .expect("generated benchmark layout is valid");
    layout
}

fn bench_hanan_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hanan_from_layout");
    group.sample_size(20);
    for &(pins, obstacles) in &[(5usize, 4usize), (10, 12), (20, 30)] {
        let layout = random_layout(pins, obstacles, 200, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{pins}pins_{obstacles}obs")),
            &layout,
            |b, layout| b.iter(|| HananGraph::from_layout(layout).unwrap()),
        );
    }
    group.finish();
}

fn bench_hanan_neighbor_sweep(c: &mut Criterion) {
    let layout = random_layout(15, 20, 400, 7);
    let graph = HananGraph::from_layout(&layout).unwrap();
    // The paper's point: the Hanan graph is far smaller than the uniform
    // grid over the same area.
    let uniform = 401 * 401 * 3usize;
    assert!(graph.len() * 4 < uniform, "hanan reduces the vertex count");
    c.bench_function("hanan_neighbor_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for idx in 0..graph.len() {
                for (_, w) in graph.neighbors(graph.point(idx)) {
                    acc += w;
                }
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_hanan_construction,
    bench_hanan_neighbor_sweep
);
criterion_main!(benches);
