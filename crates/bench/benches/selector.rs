//! Criterion micro-benchmarks for the Steiner-point selector: one-shot vs
//! sequential inference (the paper's Section 3.1 claim that one inference
//! suffices, vs `n − 2` for sequential agents), and inference scaling with
//! layout size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oarsmt::selector::{NeuralSelector, Selector};
use oarsmt::topk::{select_top_k, steiner_budget};
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_mcts::alphago::sequential_select;
use oarsmt_nn::unet::UNetConfig;

fn selector() -> NeuralSelector {
    NeuralSelector::with_config(UNetConfig {
        in_channels: 7,
        base_channels: 4,
        levels: 2,
        seed: 3,
    })
}

fn bench_inference_scaling(c: &mut Criterion) {
    let mut sel = selector();
    let mut group = c.benchmark_group("selector_inference");
    group.sample_size(15);
    for &(h, v, m) in &[
        (8usize, 8usize, 2usize),
        (16, 16, 2),
        (24, 24, 3),
        (32, 32, 3),
    ] {
        let g = CaseGenerator::new(GeneratorConfig::tiny(h, v, m, (4, 6)), 1).generate();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{h}x{v}x{m}")),
            &g,
            |b, g| b.iter(|| sel.fsp(g, &[])),
        );
    }
    group.finish();
}

fn bench_one_shot_vs_sequential(c: &mut Criterion) {
    // The paper's runtime advantage: n-2 Steiner points from ONE inference
    // vs one inference per point for sequential agents.
    let g = {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(12, 12, 2, (8, 8)), 5);
        gen.generate()
    };
    let mut group = c.benchmark_group("steiner_selection");
    group.sample_size(15);
    group.bench_function("one_shot", |b| {
        let mut sel = selector();
        b.iter(|| {
            let fsp = sel.fsp(&g, &[]);
            select_top_k(&g, &fsp, steiner_budget(g.pins().len()), &[])
        })
    });
    group.bench_function("sequential", |b| {
        let mut sel = selector();
        b.iter(|| sequential_select(&g, &mut sel))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_inference_scaling,
    bench_one_shot_vs_sequential
);
criterion_main!(benches);
