//! Criterion micro-benchmarks for the routers across the Table 1 size
//! ladder — the scaling behaviour behind Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::HananGraph;
use oarsmt_router::{Lin18Router, Liu14Router, OarmstRouter, SpanningRouter};

fn case(h: usize, v: usize, m: usize, pins: usize, seed: u64) -> HananGraph {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(h, v, m, (pins, pins)), seed);
    loop {
        let g = gen.generate();
        if OarmstRouter::new().route(&g, &[]).is_ok() {
            return g;
        }
    }
}

fn bench_routers_across_sizes(c: &mut Criterion) {
    let sizes = [
        (8usize, 8usize, 2usize, 4usize),
        (16, 16, 2, 8),
        (24, 24, 3, 16),
    ];
    let mut group = c.benchmark_group("routers");
    group.sample_size(15);
    for &(h, v, m, pins) in &sizes {
        let g = case(h, v, m, pins, 99);
        let label = format!("{h}x{v}x{m}_{pins}pins");
        group.bench_with_input(BenchmarkId::new("oarmst", &label), &g, |b, g| {
            b.iter(|| OarmstRouter::new().route(g, &[]).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lin18", &label), &g, |b, g| {
            b.iter(|| Lin18Router::new().route(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("liu14", &label), &g, |b, g| {
            b.iter(|| Liu14Router::new().route(g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("spanning", &label), &g, |b, g| {
            b.iter(|| SpanningRouter::new().route(g).unwrap())
        });
    }
    group.finish();
}

fn bench_polish_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: the path-assessed polish round's cost and the
    // bounded-exploration variant.
    let g = case(16, 16, 3, 10, 7);
    let mut group = c.benchmark_group("oarmst_ablation");
    group.sample_size(15);
    group.bench_function("polish_on", |b| {
        b.iter(|| OarmstRouter::new().route(&g, &[]).unwrap())
    });
    group.bench_function("polish_off", |b| {
        b.iter(|| {
            OarmstRouter::new()
                .with_polish_rounds(0)
                .route(&g, &[])
                .unwrap()
        })
    });
    group.bench_function("bounded_margin2", |b| {
        b.iter(|| {
            OarmstRouter::new()
                .with_bounds_margin(2)
                .route(&g, &[])
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_routers_across_sizes, bench_polish_ablation);
criterion_main!(benches);
