//! Criterion micro-benchmarks for the search schemes: combinatorial vs
//! conventional MCTS sample generation (the paper reports 3.48× faster
//! sample generation for the combinatorial scheme) and the terminal-rule
//! ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use oarsmt::selector::UniformSelector;
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::HananGraph;
use oarsmt_mcts::{AlphaGoMcts, CombinatorialMcts, MctsConfig};
use oarsmt_router::OarmstRouter;

fn routable_case(seed: u64) -> HananGraph {
    let mut gen = CaseGenerator::new(GeneratorConfig::tiny(7, 7, 1, (5, 5)), seed);
    loop {
        let g = gen.generate();
        if OarmstRouter::new().route(&g, &[]).is_ok() {
            return g;
        }
    }
}

fn config() -> MctsConfig {
    MctsConfig {
        base_iterations: 4 * 49,
        base_size: 49,
        use_critic: false,
        ..MctsConfig::default()
    }
}

fn bench_sample_generation(c: &mut Criterion) {
    let g = routable_case(11);
    let mut group = c.benchmark_group("mcts_sample_generation");
    group.sample_size(10);
    group.bench_function("combinatorial", |b| {
        let mut sel = UniformSelector::new(0.08);
        let mcts = CombinatorialMcts::new(config());
        b.iter(|| mcts.search(&g, &mut sel).unwrap())
    });
    group.bench_function("conventional_alphago", |b| {
        let mut sel = UniformSelector::new(0.08);
        let mcts = AlphaGoMcts::new(config());
        b.iter(|| mcts.search(&g, &mut sel).unwrap())
    });
    group.finish();
}

fn bench_terminal_rule_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: the cost-flat terminal rule prunes ineffective
    // combinations; disabling it (a huge flat-run budget) grows the search.
    let g = routable_case(13);
    let mut group = c.benchmark_group("mcts_terminal_rules");
    group.sample_size(10);
    group.bench_function("flat_run_3", |b| {
        let mut sel = UniformSelector::new(0.08);
        let mcts = CombinatorialMcts::new(config());
        b.iter(|| mcts.search(&g, &mut sel).unwrap())
    });
    group.bench_function("flat_run_off", |b| {
        let mut sel = UniformSelector::new(0.08);
        let mcts = CombinatorialMcts::new(MctsConfig {
            max_flat_run: u32::MAX,
            ..config()
        });
        b.iter(|| mcts.search(&g, &mut sel).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sample_generation,
    bench_terminal_rule_ablation
);
criterion_main!(benches);
