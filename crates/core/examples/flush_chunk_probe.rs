//! Chunk-size A/B for the batched selector flush. Not a recorded
//! benchmark — the honest numbers live in `oarsmt-bench`
//! (`selector_batch_bench`); this exists to pick `FLUSH_CHUNK_VOXELS`
//! empirically: it emulates chunked flushes of a B = 16 `EvalQueue`
//! batch by slicing the `(pts, lens)` convention externally and timing
//! each chunk width at the large rungs.
//!
//! `cargo run --release -p oarsmt --example flush_chunk_probe`
//! (add `--features oarsmt-nn/simd` to probe the wide-kernel lane).

use std::time::Instant;

use oarsmt::selector::{NeuralSelector, Selector};
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_nn::unet::UNetConfig;
use oarsmt_nn::{KernelPolicy, NnWorkspace};

const BATCH: usize = 16;

fn states(graph: &HananGraph) -> Vec<Vec<GridPoint>> {
    let n = graph.len();
    let stride: Vec<GridPoint> = (0..8).map(|j| graph.point((j * 7919) % n)).collect();
    (0..BATCH).map(|i| stride[..(i % 6)].to_vec()).collect()
}

fn flatten(states: &[Vec<GridPoint>]) -> (Vec<GridPoint>, Vec<u32>) {
    let mut pts = Vec::new();
    let mut lens = Vec::new();
    for s in states {
        pts.extend_from_slice(s);
        lens.push(s.len() as u32);
    }
    (pts, lens)
}

fn main() {
    for (name, h, v, m, iters) in [
        ("S24", 24usize, 24usize, 2usize, 40usize),
        ("S32", 32, 32, 3, 12),
        ("S48", 48, 48, 3, 6),
    ] {
        let cfg = GeneratorConfig::paper_costs(h, v, m, (6, 6));
        let graph = CaseGenerator::new(cfg, 0x5EED ^ h as u64).generate();
        let st = states(&graph);
        let (pts, lens) = flatten(&st);
        let mut sel = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 8,
            levels: 2,
            seed: 0xDAC2024,
        });
        for policy in [KernelPolicy::Scalar, KernelPolicy::Simd] {
            let mut ws = NnWorkspace::new();
            ws.set_kernel_policy(policy);
            let mut out = Vec::new();
            print!("{name} spatial={:5} {policy:?}:", graph.len());
            for chunk in [16usize, 8, 4, 2, 1] {
                // Warm the pool for this chunk shape.
                for c0 in (0..BATCH).step_by(chunk) {
                    let c1 = (c0 + chunk).min(BATCH);
                    let p0: usize = lens[..c0].iter().map(|&l| l as usize).sum();
                    let p1: usize = lens[..c1].iter().map(|&l| l as usize).sum();
                    sel.fsp_batch_into_ws(&graph, &pts[p0..p1], &lens[c0..c1], &mut out, &mut ws);
                }
                let t0 = Instant::now();
                for _ in 0..iters {
                    for c0 in (0..BATCH).step_by(chunk) {
                        let c1 = (c0 + chunk).min(BATCH);
                        let p0: usize = lens[..c0].iter().map(|&l| l as usize).sum();
                        let p1: usize = lens[..c1].iter().map(|&l| l as usize).sum();
                        sel.fsp_batch_into_ws(
                            &graph,
                            &pts[p0..p1],
                            &lens[c0..c1],
                            &mut out,
                            &mut ws,
                        );
                        std::hint::black_box(out[0]);
                    }
                }
                let per_state = t0.elapsed().as_secs_f64() / (iters * BATCH) as f64;
                print!("  c{chunk}={:7.3}ms", per_state * 1e3);
            }
            println!();
        }
    }
}
