//! Sequential multi-net routing: the application the paper's introduction
//! motivates — in a real flow, each routed net becomes a *pre-routed wire*
//! (an obstacle) for the nets that follow.
//!
//! [`MultiNetRouter`] routes a list of nets in order on a shared Hanan
//! graph, committing each finished tree's vertices as obstacles before the
//! next net routes. Nets are usually ordered shortest-first (fewest pins /
//! smallest bounding box), which the router can do for you.

use std::fmt;

use oarsmt_geom::{GridPoint, HananGraph, VertexKind};
use oarsmt_router::RouteTree;

use crate::error::CoreError;
use crate::rl_router::RlRouter;
use crate::selector::Selector;

/// A net to route: a name and its pin locations on the shared grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name (for reporting).
    pub name: String,
    /// Pin locations.
    pub pins: Vec<GridPoint>,
}

impl Net {
    /// Creates a net.
    pub fn new<S: Into<String>>(name: S, pins: Vec<GridPoint>) -> Self {
        Net {
            name: name.into(),
            pins,
        }
    }

    /// Half-perimeter wirelength of the pin bounding box in grid steps —
    /// the classic net-ordering key.
    pub fn hpwl(&self) -> usize {
        if self.pins.is_empty() {
            return 0;
        }
        let (mut h0, mut h1, mut v0, mut v1) = (usize::MAX, 0, usize::MAX, 0);
        for p in &self.pins {
            h0 = h0.min(p.h);
            h1 = h1.max(p.h);
            v0 = v0.min(p.v);
            v1 = v1.max(p.v);
        }
        (h1 - h0) + (v1 - v0)
    }
}

/// Result of routing one net in a multi-net sequence.
#[derive(Debug, Clone)]
pub struct NetResult {
    /// The net name.
    pub name: String,
    /// The routed tree, or `None` if the net became unroutable (blocked by
    /// previously committed nets or obstacles).
    pub tree: Option<RouteTree>,
}

/// Summary of a multi-net routing run.
#[derive(Debug, Clone)]
pub struct MultiNetOutcome {
    /// Per-net results, in routing order.
    pub nets: Vec<NetResult>,
    /// Total routing cost over the successfully routed nets.
    pub total_cost: f64,
    /// Number of nets that could not be routed.
    pub failed: usize,
}

impl fmt::Display for MultiNetOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nets routed, {} failed, total cost {}",
            self.nets.len() - self.failed,
            self.failed,
            self.total_cost
        )
    }
}

/// Routes several nets sequentially, committing each tree as obstacles.
#[derive(Debug)]
pub struct MultiNetRouter<S> {
    router: RlRouter<S>,
    order_by_hpwl: bool,
}

impl<S: Selector> MultiNetRouter<S> {
    /// Creates a multi-net router around a Steiner-point selector.
    pub fn new(selector: S) -> Self {
        MultiNetRouter {
            router: RlRouter::new(selector),
            order_by_hpwl: true,
        }
    }

    /// Keeps the caller's net order instead of sorting by HPWL
    /// (builder style).
    #[must_use]
    pub fn without_ordering(mut self) -> Self {
        self.order_by_hpwl = false;
        self
    }

    /// Routes all nets on a template graph (whose own pins are ignored —
    /// each net brings its pins). Committed trees block later nets.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Route`] only for *structural* failures (a net
    /// with pins on obstacles); nets that merely become unroutable due to
    /// congestion are reported in the outcome with `tree: None`.
    pub fn route_nets(
        &mut self,
        template: &HananGraph,
        nets: &[Net],
    ) -> Result<MultiNetOutcome, CoreError> {
        let mut order: Vec<usize> = (0..nets.len()).collect();
        if self.order_by_hpwl {
            order.sort_by_key(|&i| (nets[i].hpwl(), nets[i].pins.len()));
        }
        // Start from an un-pinned copy of the template.
        let mut base = strip_pins(template);
        let mut results = Vec::with_capacity(nets.len());
        let mut total_cost = 0.0;
        let mut failed = 0usize;
        for &i in &order {
            let net = &nets[i];
            // Place this net's pins on the current (obstacle-augmented) graph.
            let mut graph = base.clone();
            let mut placeable = true;
            for &p in &net.pins {
                if graph.add_pin(p).is_err() {
                    placeable = false;
                    break;
                }
            }
            if !placeable {
                failed += 1;
                results.push(NetResult {
                    name: net.name.clone(),
                    tree: None,
                });
                continue;
            }
            match self.router.route(&graph) {
                Ok(out) => {
                    total_cost += out.tree.cost();
                    // Commit: every tree vertex becomes an obstacle for the
                    // remaining nets (pre-routed wire).
                    // lint: ordered-ok(marking a vertex set as obstacles is order-insensitive)
                    for v in out.tree.vertices() {
                        let p = graph.point(v as usize);
                        let _ = base.add_obstacle_vertex(p);
                    }
                    results.push(NetResult {
                        name: net.name.clone(),
                        tree: Some(out.tree),
                    });
                }
                Err(CoreError::Route(_)) => {
                    failed += 1;
                    results.push(NetResult {
                        name: net.name.clone(),
                        tree: None,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(MultiNetOutcome {
            nets: results,
            total_cost,
            failed,
        })
    }
}

impl<S: Selector + Clone + Send + Sync> MultiNetRouter<S> {
    /// Routes all nets like [`MultiNetRouter::route_nets`], but scores
    /// independent nets concurrently on `threads` workers.
    ///
    /// Nets are taken in (HPWL-)order and grouped into *waves* of nets
    /// whose pin bounding boxes are pairwise disjoint; each wave routes in
    /// parallel against a snapshot of the committed graph, then commits in
    /// wave order. A tree that turns out to cross a wire committed earlier
    /// in its own wave (trees may stray outside their net's bounding box)
    /// is re-routed sequentially against the up-to-date graph, so the final
    /// layout is always conflict-free.
    ///
    /// Wave composition, per-wave routing and commit order depend only on
    /// the input — **results are bit-identical for every `threads` value**.
    /// They may differ from [`MultiNetRouter::route_nets`], which commits
    /// after every net instead of after every wave.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Route`] only for *structural* failures, exactly
    /// like [`MultiNetRouter::route_nets`].
    pub fn route_nets_parallel(
        &mut self,
        template: &HananGraph,
        nets: &[Net],
        threads: usize,
    ) -> Result<MultiNetOutcome, CoreError> {
        let mut pending: Vec<usize> = (0..nets.len()).collect();
        if self.order_by_hpwl {
            pending.sort_by_key(|&i| (nets[i].hpwl(), nets[i].pins.len()));
        }
        let mut base = strip_pins(template);
        let mut results = Vec::with_capacity(nets.len());
        let mut total_cost = 0.0;
        let mut failed = 0usize;

        while !pending.is_empty() {
            // Greedy wave: the longest prefix-respecting set of nets whose
            // pin bounding boxes are pairwise disjoint.
            let mut wave: Vec<usize> = Vec::new();
            let mut boxes: Vec<(usize, usize, usize, usize)> = Vec::new();
            let mut rest: Vec<usize> = Vec::new();
            for &i in &pending {
                let b = pin_bbox(&nets[i]);
                if boxes.iter().all(|&o| !bboxes_intersect(b, o)) {
                    wave.push(i);
                    boxes.push(b);
                } else {
                    rest.push(i);
                }
            }
            pending = rest;

            // Route the wave against a snapshot of the committed graph.
            // The routers are deterministic, so the per-net trees do not
            // depend on the worker partition (the seed goes unused).
            let proto = self.router.clone();
            let routed = crate::parallel::run_seeded_with(
                wave.len(),
                0,
                threads,
                || proto.clone(),
                |router, w, _seed| -> Result<Option<RouteTree>, CoreError> {
                    route_one(router, &base, &nets[wave[w]])
                },
            );

            // Commit in wave order; trees invalidated by an earlier commit
            // of this wave are re-routed against the up-to-date graph.
            for (w, outcome) in routed.into_iter().enumerate() {
                let net = &nets[wave[w]];
                let mut tree = outcome?;
                if let Some(t) = &tree {
                    // lint: ordered-ok(existence check over a vertex set is order-insensitive)
                    let crosses_committed_wire = t
                        .vertices()
                        .iter()
                        .any(|&v| base.kind_at(v as usize) == VertexKind::Obstacle);
                    if crosses_committed_wire {
                        tree = route_one(&mut self.router, &base, net)?;
                    }
                }
                match tree {
                    Some(t) => {
                        total_cost += t.cost();
                        // lint: ordered-ok(marking a vertex set as obstacles is order-insensitive)
                        for v in t.vertices() {
                            let _ = base.add_obstacle_vertex(base.point(v as usize));
                        }
                        results.push(NetResult {
                            name: net.name.clone(),
                            tree: Some(t),
                        });
                    }
                    None => {
                        failed += 1;
                        results.push(NetResult {
                            name: net.name.clone(),
                            tree: None,
                        });
                    }
                }
            }
        }
        Ok(MultiNetOutcome {
            nets: results,
            total_cost,
            failed,
        })
    }
}

/// Routes one net on a pin-less committed graph. `Ok(None)` means the net
/// is unroutable under congestion (pins blocked or disconnected);
/// structural failures propagate.
fn route_one<S: Selector>(
    router: &mut RlRouter<S>,
    base: &HananGraph,
    net: &Net,
) -> Result<Option<RouteTree>, CoreError> {
    let mut graph = base.clone();
    for &p in &net.pins {
        if graph.add_pin(p).is_err() {
            return Ok(None);
        }
    }
    match router.route(&graph) {
        Ok(out) => Ok(Some(out.tree)),
        Err(CoreError::Route(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Inclusive `(h0, h1, v0, v1)` bounding box of a net's pins.
fn pin_bbox(net: &Net) -> (usize, usize, usize, usize) {
    let (mut h0, mut h1, mut v0, mut v1) = (usize::MAX, 0, usize::MAX, 0);
    for p in &net.pins {
        h0 = h0.min(p.h);
        h1 = h1.max(p.h);
        v0 = v0.min(p.v);
        v1 = v1.max(p.v);
    }
    (h0, h1, v0, v1)
}

fn bboxes_intersect(a: (usize, usize, usize, usize), b: (usize, usize, usize, usize)) -> bool {
    a.0 <= b.1 && b.0 <= a.1 && a.2 <= b.3 && b.2 <= a.3
}

/// Clones a graph with all pins removed (kinds reset to empty).
fn strip_pins(graph: &HananGraph) -> HananGraph {
    let (h, v, m) = graph.dims();
    let mut g = HananGraph::with_costs(
        h,
        v,
        m,
        graph.x_costs().to_vec(),
        graph.y_costs().to_vec(),
        graph.via_cost(),
    )
    .expect("dims of an existing graph are valid");
    for idx in 0..graph.len() {
        if graph.kind_at(idx) == VertexKind::Obstacle {
            g.add_obstacle_vertex(graph.point(idx))
                .expect("obstacle placement on an empty clone");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::MedianHeuristicSelector;

    fn open_grid() -> HananGraph {
        HananGraph::uniform(10, 10, 2, 1.0, 1.0, 3.0)
    }

    fn p(h: usize, v: usize, m: usize) -> GridPoint {
        GridPoint::new(h, v, m)
    }

    #[test]
    fn routes_disjoint_nets_without_conflicts() {
        let template = open_grid();
        let nets = vec![
            Net::new("a", vec![p(0, 0, 0), p(3, 0, 0)]),
            Net::new("b", vec![p(0, 5, 0), p(3, 5, 0), p(1, 8, 0)]),
        ];
        let mut router = MultiNetRouter::new(MedianHeuristicSelector::new());
        let out = router.route_nets(&template, &nets).unwrap();
        assert_eq!(out.failed, 0);
        assert!(out.total_cost > 0.0);
        // Trees are vertex-disjoint (the second net avoided the first).
        let trees: Vec<&RouteTree> = out.nets.iter().filter_map(|n| n.tree.as_ref()).collect();
        let va = trees[0].vertices();
        let vb = trees[1].vertices();
        assert!(va.is_disjoint(&vb));
    }

    #[test]
    fn later_nets_detour_around_committed_wires() {
        let template = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        // Net a routes straight across the middle; net b must cross it and
        // is forced to detour (single layer!).
        let nets = vec![
            Net::new("a", vec![p(0, 2, 0), p(4, 2, 0)]),
            Net::new("b", vec![p(2, 0, 0), p(2, 4, 0)]),
        ];
        let mut router = MultiNetRouter::new(MedianHeuristicSelector::new()).without_ordering();
        let out = router.route_nets(&template, &nets).unwrap();
        // b either fails (fully blocked) or costs more than the manhattan 4.
        match &out.nets[1].tree {
            Some(t) => assert!(t.cost() > 4.0),
            None => assert_eq!(out.failed, 1),
        }
    }

    #[test]
    fn second_layer_relieves_crossings() {
        let template = HananGraph::uniform(5, 5, 2, 1.0, 1.0, 3.0);
        let nets = vec![
            Net::new("a", vec![p(0, 2, 0), p(4, 2, 0)]),
            Net::new("b", vec![p(2, 0, 0), p(2, 4, 0)]),
        ];
        let mut router = MultiNetRouter::new(MedianHeuristicSelector::new()).without_ordering();
        let out = router.route_nets(&template, &nets).unwrap();
        assert_eq!(out.failed, 0, "layer 1 offers a crossing");
        let b = out.nets[1].tree.as_ref().unwrap();
        assert!(b.via_count(&template) >= 2 || b.cost() > 4.0);
    }

    #[test]
    fn hpwl_ordering_routes_small_nets_first() {
        let template = open_grid();
        let big = Net::new("big", vec![p(0, 0, 0), p(9, 9, 0)]);
        let small = Net::new("small", vec![p(4, 4, 0), p(5, 4, 0)]);
        let mut router = MultiNetRouter::new(MedianHeuristicSelector::new());
        let out = router
            .route_nets(&template, &[big.clone(), small.clone()])
            .unwrap();
        assert_eq!(out.nets[0].name, "small");
        assert_eq!(out.nets[1].name, "big");
        assert_eq!(big.hpwl(), 18);
        assert_eq!(small.hpwl(), 1);
    }

    #[test]
    fn parallel_routing_is_thread_count_invariant_and_conflict_free() {
        let template = open_grid();
        let nets = vec![
            Net::new("a", vec![p(0, 0, 0), p(3, 1, 0)]),
            Net::new("b", vec![p(0, 5, 0), p(3, 6, 0), p(1, 8, 0)]),
            Net::new("c", vec![p(6, 0, 0), p(9, 2, 0)]),
            Net::new("d", vec![p(6, 6, 0), p(9, 9, 1)]),
            Net::new("e", vec![p(4, 3, 1), p(5, 5, 1)]),
        ];
        let mut outcomes = Vec::new();
        for threads in [1usize, 4] {
            let mut router = MultiNetRouter::new(MedianHeuristicSelector::new());
            outcomes.push(
                router
                    .route_nets_parallel(&template, &nets, threads)
                    .unwrap(),
            );
        }
        let (one, four) = (&outcomes[0], &outcomes[1]);
        assert_eq!(one.total_cost.to_bits(), four.total_cost.to_bits());
        assert_eq!(one.failed, four.failed);
        assert_eq!(one.nets.len(), four.nets.len());
        for (a, b) in one.nets.iter().zip(&four.nets) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.tree.as_ref().map(RouteTree::vertices),
                b.tree.as_ref().map(RouteTree::vertices)
            );
        }
        // Committed trees are pairwise vertex-disjoint (no overlooked
        // conflicts between wave members).
        let trees: Vec<&RouteTree> = four.nets.iter().filter_map(|n| n.tree.as_ref()).collect();
        for (i, a) in trees.iter().enumerate() {
            for b in &trees[i + 1..] {
                assert!(a.vertices().is_disjoint(&b.vertices()));
            }
        }
    }

    #[test]
    fn pins_on_committed_wires_fail_gracefully() {
        let template = HananGraph::uniform(4, 1, 1, 1.0, 1.0, 3.0);
        let nets = vec![
            Net::new("a", vec![p(0, 0, 0), p(3, 0, 0)]),
            // b's pin sits on a's wire.
            Net::new("b", vec![p(1, 0, 0), p(2, 0, 0)]),
        ];
        let mut router = MultiNetRouter::new(MedianHeuristicSelector::new()).without_ordering();
        let out = router.route_nets(&template, &nets).unwrap();
        assert_eq!(out.failed, 1);
        assert!(out.nets[1].tree.is_none());
    }
}
