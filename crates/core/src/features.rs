//! Feature encoding of a 3D Hanan grid graph (Section 3.3, Fig. 3).
//!
//! Each vertex carries seven features:
//!
//! | channel | meaning |
//! |---|---|
//! | 0 | is the vertex a pin (selected Steiner points of an MCTS state are encoded as pins too) |
//! | 1 | is the vertex an obstacle |
//! | 2 | routing cost to the immediate **right** (`h + 1`) neighbor |
//! | 3 | routing cost to the immediate **left** (`h − 1`) neighbor |
//! | 4 | routing cost to the **upstairs** (`v + 1`) neighbor |
//! | 5 | routing cost to the **downstairs** (`v − 1`) neighbor |
//! | 6 | the via cost |
//!
//! The five cost channels are normalized by the maximum cost in the layout
//! so every value lies in `[0, 1]`; cost channels are 0 where the neighbor
//! does not exist (grid border).
//!
//! # Tensor layout
//!
//! Feature tensors are shaped `[7, M, H, V]` — the layer axis first and the
//! long `V` axis last, so convolution inner loops run over long contiguous
//! rows (Hanan layer counts are small). Use [`tensor_offset`] /
//! [`to_graph_order`] / [`from_graph_order`] to translate between the
//! tensor's spatial flattening and [`HananGraph::index`] order.

use oarsmt_geom::{GridPoint, HananGraph, VertexKind};
use oarsmt_nn::{NnWorkspace, Tensor};

/// Number of feature channels.
pub const FEATURE_CHANNELS: usize = 7;

/// The within-channel flat offset of a grid point in a feature tensor
/// (layout `[C, M, H, V]`).
#[inline]
pub fn tensor_offset(graph: &HananGraph, p: GridPoint) -> usize {
    let (h, v, _m) = graph.dims();
    (p.m * h + p.h) * v + p.v
}

/// Reorders one tensor channel (flat `[M, H, V]` data) into
/// [`HananGraph::index`] order.
///
/// # Panics
///
/// Panics if `channel.len() != graph.len()`.
pub fn to_graph_order(channel: &[f32], graph: &HananGraph) -> Vec<f32> {
    let mut out = Vec::with_capacity(graph.len());
    to_graph_order_into(channel, graph, &mut out);
    out
}

/// [`to_graph_order`] into a caller-owned buffer, which is cleared first.
/// The buffer's allocation is reused across calls (see
/// `oarsmt_router::RouteContext`).
///
/// # Panics
///
/// Panics if `channel.len() != graph.len()`.
pub fn to_graph_order_into(channel: &[f32], graph: &HananGraph, out: &mut Vec<f32>) {
    out.clear();
    to_graph_order_append(channel, graph, out);
}

/// [`to_graph_order_into`] without the clear: appends one reordered channel
/// to `out`. Batched selector paths call this once per sample to build a
/// concatenated per-sample probability buffer.
///
/// # Panics
///
/// Panics if `channel.len() != graph.len()`.
pub fn to_graph_order_append(channel: &[f32], graph: &HananGraph, out: &mut Vec<f32>) {
    assert_eq!(channel.len(), graph.len());
    out.extend((0..graph.len()).map(|idx| channel[tensor_offset(graph, graph.point(idx))]));
}

/// Builds a `[1, M, H, V]` tensor from per-vertex values given in
/// [`HananGraph::index`] order — the inverse of [`to_graph_order`].
///
/// # Panics
///
/// Panics if `values.len() != graph.len()`.
pub fn from_graph_order(values: &[f32], graph: &HananGraph) -> Tensor {
    assert_eq!(values.len(), graph.len());
    let (h, v, m) = graph.dims();
    let mut t = Tensor::zeros(&[1, m, h, v]);
    for (idx, &val) in values.iter().enumerate() {
        let off = tensor_offset(graph, graph.point(idx));
        t.data_mut()[off] = val;
    }
    t
}

/// Encodes a Hanan graph into a `[7, M, H, V]` feature tensor.
///
/// `extra_pins` are encoded as pins in channel 0 on top of the graph's own
/// pins — this is how MCTS states ("previously selected Steiner points are
/// ... treated as normal pins", Section 3.4) are presented to the selector.
pub fn encode_features(graph: &HananGraph, extra_pins: &[GridPoint]) -> Tensor {
    encode_features_into(graph, extra_pins, &mut NnWorkspace::new())
}

/// [`encode_features`] with the tensor drawn from a workspace pool, so the
/// inference hot path (see `oarsmt_router::RouteContext::nn`) encodes
/// without allocating. Free the returned tensor back into `ws` after use.
pub fn encode_features_into(
    graph: &HananGraph,
    extra_pins: &[GridPoint],
    ws: &mut NnWorkspace,
) -> Tensor {
    let (h, v, m) = graph.dims();
    let max_cost = graph.max_cost().max(f64::MIN_POSITIVE) as f32;
    let via = (graph.via_cost() as f32) / max_cost;
    let mut t = ws.alloc(&[FEATURE_CHANNELS, m, h, v]);
    for idx in 0..graph.len() {
        let p = graph.point(idx);
        let (pin, obstacle) = match graph.kind_at(idx) {
            VertexKind::Pin => (1.0, 0.0),
            VertexKind::Obstacle => (0.0, 1.0),
            VertexKind::Empty => (0.0, 0.0),
        };
        t.set4(0, p.m, p.h, p.v, pin);
        t.set4(1, p.m, p.h, p.v, obstacle);
        let right = if p.h + 1 < h {
            graph.x_cost(p.h) as f32 / max_cost
        } else {
            0.0
        };
        let left = if p.h > 0 {
            graph.x_cost(p.h - 1) as f32 / max_cost
        } else {
            0.0
        };
        let up = if p.v + 1 < v {
            graph.y_cost(p.v) as f32 / max_cost
        } else {
            0.0
        };
        let down = if p.v > 0 {
            graph.y_cost(p.v - 1) as f32 / max_cost
        } else {
            0.0
        };
        t.set4(2, p.m, p.h, p.v, right);
        t.set4(3, p.m, p.h, p.v, left);
        t.set4(4, p.m, p.h, p.v, up);
        t.set4(5, p.m, p.h, p.v, down);
        t.set4(6, p.m, p.h, p.v, via);
    }
    for &p in extra_pins {
        t.set4(0, p.m, p.h, p.v, 1.0);
    }
    t
}

/// Encodes `B` states of one Hanan graph into a channel-major
/// `[7, B, M, H, V]` batch tensor (the layout of
/// `oarsmt_nn::Layer::forward_batch_in`). State `b`'s extra pins are the
/// `lens[b]` points at their running offset into `pts` (a flattened
/// state list, so callers queue states without nested allocations).
///
/// Sample `b`'s subtensor is bit-identical to
/// [`encode_features_into`]`(graph, state_b, ws)`: the graph-dependent
/// channels are encoded once and replicated, and only the pin channel
/// differs per sample.
///
/// # Panics
///
/// Panics if `pts.len()` does not equal the sum of `lens`, or `lens` is
/// empty.
pub fn encode_features_batch_into(
    graph: &HananGraph,
    pts: &[GridPoint],
    lens: &[u32],
    ws: &mut NnWorkspace,
) -> Tensor {
    let bsz = lens.len();
    assert!(bsz > 0, "empty batch");
    assert_eq!(
        pts.len(),
        lens.iter().map(|&l| l as usize).sum::<usize>(),
        "flattened state list does not match lens"
    );
    let (h, v, m) = graph.dims();
    let spatial = m * h * v;
    let base = encode_features_into(graph, &[], ws);
    let mut t = ws.alloc(&[FEATURE_CHANNELS, bsz, m, h, v]);
    for c in 0..FEATURE_CHANNELS {
        let src = &base.data()[c * spatial..(c + 1) * spatial];
        for b in 0..bsz {
            let dst = (c * bsz + b) * spatial;
            t.data_mut()[dst..dst + spatial].copy_from_slice(src);
        }
    }
    ws.free(base);
    let mut off = 0usize;
    for (b, &l) in lens.iter().enumerate() {
        for &p in &pts[off..off + l as usize] {
            let at = b * spatial + tensor_offset(graph, p);
            t.data_mut()[at] = 1.0;
        }
        off += l as usize;
    }
    t
}

/// A training mask for BCE: `1` on vertices where a Steiner point may be
/// placed ([`VertexKind::Empty`]), `0` on pins, extra pins and obstacles.
/// Shape `[1, M, H, V]` (tensor layout).
pub fn valid_mask(graph: &HananGraph, extra_pins: &[GridPoint]) -> Tensor {
    let (h, v, m) = graph.dims();
    let mut t = Tensor::zeros(&[1, m, h, v]);
    for idx in 0..graph.len() {
        if graph.kind_at(idx) == VertexKind::Empty {
            let off = tensor_offset(graph, graph.point(idx));
            t.data_mut()[off] = 1.0;
        }
    }
    for &p in extra_pins {
        let off = tensor_offset(graph, p);
        t.data_mut()[off] = 0.0;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> HananGraph {
        let mut g = HananGraph::with_costs(3, 3, 2, vec![2.0, 4.0], vec![1.0, 8.0], 3.0).unwrap();
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(2, 2, 1)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(1, 1, 0)).unwrap();
        g
    }

    #[test]
    fn shape_and_channel_semantics() {
        let g = sample_graph();
        let t = encode_features(&g, &[]);
        assert_eq!(t.shape(), &[7, 2, 3, 3]); // [C, M, H, V]
                                              // Pin channel (indexed as c, m, h, v).
        assert_eq!(t.at4(0, 0, 0, 0), 1.0);
        assert_eq!(t.at4(0, 1, 2, 2), 1.0);
        assert_eq!(t.at4(0, 0, 1, 1), 0.0);
        // Obstacle channel.
        assert_eq!(t.at4(1, 0, 1, 1), 1.0);
        assert_eq!(t.at4(1, 1, 1, 1), 0.0);
    }

    #[test]
    fn cost_channels_are_normalized_by_max() {
        let g = sample_graph();
        let t = encode_features(&g, &[]);
        // max cost is 8; right cost from h=0 is 2 -> 0.25.
        assert_eq!(t.at4(2, 0, 0, 0), 0.25);
        // left of h=0 doesn't exist.
        assert_eq!(t.at4(3, 0, 0, 0), 0.0);
        // left of h=2 is x_cost(1) = 4 -> 0.5.
        assert_eq!(t.at4(3, 0, 2, 0), 0.5);
        // up from v=1 is y_cost(1)=8 -> 1.0.
        assert_eq!(t.at4(4, 0, 0, 1), 1.0);
        // down from v=0 doesn't exist.
        assert_eq!(t.at4(5, 0, 0, 0), 0.0);
        // via channel is uniform 3/8.
        assert_eq!(t.at4(6, 1, 2, 1), 0.375);
        // Every value within [0, 1].
        for &v in t.data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn extra_pins_appear_in_pin_channel() {
        let g = sample_graph();
        let extra = GridPoint::new(2, 0, 0);
        let t = encode_features(&g, &[extra]);
        assert_eq!(t.at4(0, 0, 2, 0), 1.0);
    }

    #[test]
    fn order_helpers_round_trip() {
        let g = sample_graph();
        let values: Vec<f32> = (0..g.len()).map(|i| i as f32).collect();
        let tensor = from_graph_order(&values, &g);
        assert_eq!(tensor.shape(), &[1, 2, 3, 3]);
        let back = to_graph_order(tensor.data(), &g);
        assert_eq!(back, values);
        // Spot-check the offset mapping.
        let p = GridPoint::new(2, 1, 1);
        assert_eq!(tensor.data()[tensor_offset(&g, p)], values[g.index(p)]);
    }

    #[test]
    fn tensor_offset_covers_all_vertices_bijectively() {
        let g = sample_graph();
        let mut seen = vec![false; g.len()];
        for idx in 0..g.len() {
            let off = tensor_offset(&g, g.point(idx));
            assert!(!seen[off]);
            seen[off] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn valid_mask_excludes_pins_obstacles_and_extras() {
        let g = sample_graph();
        let extra = GridPoint::new(2, 0, 0);
        let m = valid_mask(&g, &[extra]);
        let at = |p: GridPoint| m.data()[tensor_offset(&g, p)];
        assert_eq!(at(GridPoint::new(0, 0, 0)), 0.0); // pin
        assert_eq!(at(GridPoint::new(1, 1, 0)), 0.0); // obstacle
        assert_eq!(at(extra), 0.0); // extra pin
        assert_eq!(at(GridPoint::new(0, 1, 0)), 1.0); // free
    }
}
