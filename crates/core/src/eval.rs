//! Evaluation metrics of the paper's Section 4.
//!
//! * [`CostComparison`] — the Table 2 statistics: average routing costs,
//!   difference ratio, **average improvement ratio** (per-layout ratios
//!   averaged, avoiding large-layout bias), win/loss rates.
//! * [`st_to_mst_ratio`] — the Figs. 11–12 metric: cost of the Steiner tree
//!   over the cost of the spanning tree without any Steiner point.
//! * [`ObstacleRatioCurve`] — the Fig. 10 curve: average improvement ratio
//!   binned by obstacle ratio.

use std::fmt;

use oarsmt_geom::HananGraph;
use oarsmt_router::{OarmstRouter, RouteError, RouteTree};
use serde::{Deserialize, Serialize};

/// Accumulator comparing a baseline cost `a` against our cost `b` across
/// layouts (Table 2 semantics: improvement is `(a − b) / a`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostComparison {
    count: usize,
    sum_a: f64,
    sum_b: f64,
    sum_ratio: f64,
    wins: usize,
    losses: usize,
}

impl CostComparison {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        CostComparison::default()
    }

    /// Records one layout's costs: `baseline` (the compared router) and
    /// `ours`.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is not positive (a routed tree always has
    /// positive cost).
    pub fn record(&mut self, baseline: f64, ours: f64) {
        assert!(baseline > 0.0, "baseline cost must be positive");
        self.count += 1;
        self.sum_a += baseline;
        self.sum_b += ours;
        self.sum_ratio += (baseline - ours) / baseline;
        if ours < baseline {
            self.wins += 1;
        } else if ours > baseline {
            self.losses += 1;
        }
    }

    /// Number of recorded layouts.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Average baseline routing cost (Table 2 column "(a)").
    pub fn avg_baseline(&self) -> f64 {
        self.sum_a / self.count.max(1) as f64
    }

    /// Average of our routing cost (Table 2 column "(b)").
    pub fn avg_ours(&self) -> f64 {
        self.sum_b / self.count.max(1) as f64
    }

    /// Difference ratio of the average costs, `(a − b) / a`.
    pub fn diff_ratio(&self) -> f64 {
        if self.sum_a == 0.0 {
            0.0
        } else {
            (self.sum_a - self.sum_b) / self.sum_a
        }
    }

    /// Average of the per-layout improvement ratios (Table 2 "avg. imp.
    /// ratio") — insensitive to large-layout domination.
    pub fn avg_improvement_ratio(&self) -> f64 {
        self.sum_ratio / self.count.max(1) as f64
    }

    /// Fraction of layouts where ours is strictly cheaper.
    pub fn win_rate(&self) -> f64 {
        self.wins as f64 / self.count.max(1) as f64
    }

    /// Fraction of layouts where ours is strictly more expensive.
    pub fn loss_rate(&self) -> f64 {
        self.losses as f64 / self.count.max(1) as f64
    }
}

impl fmt::Display for CostComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} layouts: avg {:.1} vs {:.1} ({:+.3}% diff, {:+.3}% avg imp), win {:.1}% loss {:.1}%",
            self.count,
            self.avg_baseline(),
            self.avg_ours(),
            100.0 * self.diff_ratio(),
            100.0 * self.avg_improvement_ratio(),
            100.0 * self.win_rate(),
            100.0 * self.loss_rate()
        )
    }
}

/// The ST-to-MST ratio of Figs. 11–12: the cost of `tree` over the cost of
/// the obstacle-avoiding spanning tree built **without** Steiner points.
/// Lower is better; 1.0 means the Steiner points bought nothing.
///
/// # Errors
///
/// Propagates OARMST routing errors for the pins-only tree.
pub fn st_to_mst_ratio(graph: &HananGraph, tree: &RouteTree) -> Result<f64, RouteError> {
    let mst = OarmstRouter::new().route(graph, &[])?;
    Ok(tree.cost() / mst.cost())
}

/// The Fig. 10 curve: improvement ratios binned by layout obstacle ratio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObstacleRatioCurve {
    edges: Vec<f64>,
    sums: Vec<f64>,
    counts: Vec<usize>,
}

impl ObstacleRatioCurve {
    /// Creates a curve with `bins` equal-width bins over `[0, max_ratio]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `max_ratio <= 0`.
    pub fn new(bins: usize, max_ratio: f64) -> Self {
        assert!(bins > 0 && max_ratio > 0.0);
        let edges = (0..=bins)
            .map(|i| max_ratio * i as f64 / bins as f64)
            .collect();
        ObstacleRatioCurve {
            edges,
            sums: vec![0.0; bins],
            counts: vec![0; bins],
        }
    }

    /// Records one layout: its obstacle ratio and the improvement ratio
    /// achieved on it. Ratios beyond the last edge land in the last bin.
    pub fn record(&mut self, obstacle_ratio: f64, improvement_ratio: f64) {
        let bins = self.sums.len();
        let max = self.edges[bins];
        let mut bin = ((obstacle_ratio / max) * bins as f64).floor() as usize;
        if bin >= bins {
            bin = bins - 1;
        }
        self.sums[bin] += improvement_ratio;
        self.counts[bin] += 1;
    }

    /// The curve as `(bin_center, avg_improvement, count)` rows; empty bins
    /// are skipped.
    pub fn rows(&self) -> Vec<(f64, f64, usize)> {
        (0..self.sums.len())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| {
                let center = (self.edges[i] + self.edges[i + 1]) / 2.0;
                (center, self.sums[i] / self.counts[i] as f64, self.counts[i])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::GridPoint;

    #[test]
    fn comparison_statistics_match_hand_computation() {
        let mut c = CostComparison::new();
        c.record(100.0, 90.0); // +10%
        c.record(200.0, 210.0); // -5%
        c.record(50.0, 50.0); // tie
        assert_eq!(c.count(), 3);
        assert!((c.avg_baseline() - 350.0 / 3.0).abs() < 1e-9);
        assert!((c.avg_ours() - 350.0 / 3.0).abs() < 1e-9);
        assert!((c.diff_ratio() - 0.0).abs() < 1e-9);
        assert!((c.avg_improvement_ratio() - (0.10 - 0.05 + 0.0) / 3.0).abs() < 1e-9);
        assert!((c.win_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!((c.loss_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn avg_improvement_resists_large_layout_bias() {
        // One huge layout with tiny improvement, many small ones with big
        // improvements: diff_ratio is dominated by the big layout, the
        // average improvement ratio is not (the paper's motivation).
        let mut c = CostComparison::new();
        c.record(1_000_000.0, 999_000.0); // 0.1%
        for _ in 0..9 {
            c.record(100.0, 90.0); // 10%
        }
        assert!(c.diff_ratio() < 0.002);
        assert!(c.avg_improvement_ratio() > 0.08);
    }

    #[test]
    fn st_to_mst_is_one_without_steiner_gain() {
        let mut g = HananGraph::uniform(4, 1, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 0, 0)).unwrap();
        let tree = OarmstRouter::new().route(&g, &[]).unwrap();
        let r = st_to_mst_ratio(&g, &tree).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn st_to_mst_below_one_with_good_steiner_point() {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        let steiner = OarmstRouter::new()
            .route(&g, &[GridPoint::new(2, 2, 0)])
            .unwrap();
        let r = st_to_mst_ratio(&g, &steiner).unwrap();
        assert!(r <= 1.0);
    }

    #[test]
    fn obstacle_curve_bins_and_averages() {
        let mut curve = ObstacleRatioCurve::new(4, 0.4);
        curve.record(0.05, 0.01);
        curve.record(0.05, 0.03);
        curve.record(0.35, 0.10);
        curve.record(0.99, 0.20); // clamps to last bin
        let rows = curve.rows();
        assert_eq!(rows.len(), 2);
        assert!((rows[0].0 - 0.05).abs() < 1e-9);
        assert!((rows[0].1 - 0.02).abs() < 1e-9);
        assert_eq!(rows[0].2, 2);
        assert_eq!(rows[1].2, 2);
        assert!((rows[1].1 - 0.15).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_baseline_panics() {
        CostComparison::new().record(0.0, 1.0);
    }
}
