//! Steiner-point selectors: the neural agent and cheap heuristic stand-ins.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_nn::serialize::{load_from_file, save_to_file};
use oarsmt_nn::unet::{UNet3d, UNetConfig};
use oarsmt_nn::NnWorkspace;

use crate::error::CoreError;
use crate::features::{encode_features_batch_into, encode_features_into, FEATURE_CHANNELS};

/// A Steiner-point selector: anything that can produce the paper's *final
/// selected probability* `fsp(v)` for every vertex of a Hanan graph.
///
/// `extra_pins` carry the already-selected Steiner points of an MCTS state,
/// which the selector must treat as pins (Section 3.4). Implementations take
/// `&mut self` because neural inference caches activations.
pub trait Selector {
    /// Per-vertex final selected probabilities, indexed like
    /// [`HananGraph::index`], each in `[0, 1]`.
    fn fsp(&mut self, graph: &HananGraph, extra_pins: &[GridPoint]) -> Vec<f32>;

    /// [`Selector::fsp`] into a caller-owned buffer, which is cleared first.
    ///
    /// Hot paths (the MCTS critic, the RL router) call this with a scratch
    /// buffer from their `oarsmt_router::RouteContext` so repeated inference
    /// reuses one allocation. The default delegates to [`Selector::fsp`];
    /// implementations with allocation-free output paths should override it.
    fn fsp_into(&mut self, graph: &HananGraph, extra_pins: &[GridPoint], out: &mut Vec<f32>) {
        *out = self.fsp(graph, extra_pins);
    }

    /// [`Selector::fsp_into`] with a neural-network scratch arena. Neural
    /// selectors run the whole inference (feature encoding, every layer's
    /// activations) out of `ws`, so repeated calls allocate nothing; other
    /// selectors ignore `ws`. Callers on the MCTS/routing hot path pass
    /// `oarsmt_router::RouteContext::nn`.
    fn fsp_into_ws(
        &mut self,
        graph: &HananGraph,
        extra_pins: &[GridPoint],
        out: &mut Vec<f32>,
        ws: &mut NnWorkspace,
    ) {
        let _ = ws;
        self.fsp_into(graph, extra_pins, out);
    }

    /// Batched [`Selector::fsp_into_ws`] over several MCTS states of **one**
    /// graph. State `b`'s extra pins are the `lens[b]` points at their
    /// running offset into `pts` (a flattened state list — see
    /// `oarsmt_router::EvalQueue`); `out` is cleared, then receives the
    /// `lens.len() · graph.len()` per-state probabilities concatenated in
    /// state order, each block bit-identical to the single-state call.
    ///
    /// The default loops over states through `fsp_into_ws`. Neural
    /// selectors override it to stack same-shape states into one
    /// channel-major batch and run the network once (GEMM `N = B·spatial`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `pts.len()` differs from the sum of
    /// `lens`.
    fn fsp_batch_into_ws(
        &mut self,
        graph: &HananGraph,
        pts: &[GridPoint],
        lens: &[u32],
        out: &mut Vec<f32>,
        ws: &mut NnWorkspace,
    ) {
        if let [l] = lens {
            // Single-state queue: identical (bits, allocations) to calling
            // `fsp_into_ws` directly, so the MCTS B=1 flush costs nothing.
            debug_assert_eq!(pts.len(), *l as usize);
            self.fsp_into_ws(graph, pts, out, ws);
            return;
        }
        let mut tmp = Vec::new(); // default path only; overrides are pooled
        out.clear();
        let mut off = 0usize;
        for &l in lens {
            let pins = &pts[off..off + l as usize];
            off += l as usize;
            self.fsp_into_ws(graph, pins, &mut tmp, ws);
            out.extend_from_slice(&tmp);
        }
    }

    /// [`Selector::fsp_batch_into_ws`] with a throwaway workspace — test
    /// and offline convenience.
    fn fsp_batch_into(
        &mut self,
        graph: &HananGraph,
        pts: &[GridPoint],
        lens: &[u32],
        out: &mut Vec<f32>,
    ) {
        self.fsp_batch_into_ws(graph, pts, lens, out, &mut NnWorkspace::new());
    }
}

/// Mutable references are selectors too, so routers can borrow a selector
/// without taking ownership.
impl<S: Selector + ?Sized> Selector for &mut S {
    fn fsp(&mut self, graph: &HananGraph, extra_pins: &[GridPoint]) -> Vec<f32> {
        (**self).fsp(graph, extra_pins)
    }

    fn fsp_into(&mut self, graph: &HananGraph, extra_pins: &[GridPoint], out: &mut Vec<f32>) {
        (**self).fsp_into(graph, extra_pins, out);
    }

    fn fsp_into_ws(
        &mut self,
        graph: &HananGraph,
        extra_pins: &[GridPoint],
        out: &mut Vec<f32>,
        ws: &mut NnWorkspace,
    ) {
        (**self).fsp_into_ws(graph, extra_pins, out, ws);
    }

    // The batch methods must forward explicitly too, or a `&mut S` would
    // fall back to the sequential default and lose the batched kernels.
    fn fsp_batch_into_ws(
        &mut self,
        graph: &HananGraph,
        pts: &[GridPoint],
        lens: &[u32],
        out: &mut Vec<f32>,
        ws: &mut NnWorkspace,
    ) {
        (**self).fsp_batch_into_ws(graph, pts, lens, out, ws);
    }

    fn fsp_batch_into(
        &mut self,
        graph: &HananGraph,
        pts: &[GridPoint],
        lens: &[u32],
        out: &mut Vec<f32>,
    ) {
        (**self).fsp_batch_into(graph, pts, lens, out);
    }
}

/// The neural selector: the 3D Residual U-Net of Section 3.3.
///
/// Cloning a `NeuralSelector` copies the full weight set; the parallel
/// evaluation paths (see [`crate::parallel`]) clone one prototype selector
/// per worker thread so inference needs no locking.
#[derive(Debug, Clone)]
pub struct NeuralSelector {
    net: UNet3d,
}

impl NeuralSelector {
    /// Wraps an existing network.
    pub fn from_net(net: UNet3d) -> Self {
        NeuralSelector { net }
    }

    /// A randomly initialized selector with the default architecture
    /// (7 input channels, laptop-scale width).
    pub fn random(seed: u64) -> Self {
        NeuralSelector::with_config(UNetConfig {
            seed,
            ..UNetConfig::default()
        })
    }

    /// A randomly initialized selector with an explicit architecture.
    ///
    /// # Panics
    ///
    /// Panics if `config.in_channels != 7` (the feature encoding is fixed).
    pub fn with_config(config: UNetConfig) -> Self {
        assert_eq!(
            config.in_channels, FEATURE_CHANNELS,
            "the selector consumes the 7-channel encoding of Fig. 3"
        );
        let mut net = UNet3d::new(config);
        // Steiner-point labels are sparse; start near the label mean so the
        // MCTS actor's telescoping policy (Eq. 1) stays well-conditioned
        // from the first training stage.
        net.init_output_bias(-3.0);
        NeuralSelector { net }
    }

    /// Access to the underlying network (used by trainers).
    pub fn net_mut(&mut self) -> &mut UNet3d {
        &mut self.net
    }

    /// Saves the selector weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] on I/O failure.
    pub fn save<P: AsRef<Path>>(&mut self, path: P) -> Result<(), CoreError> {
        save_to_file(&mut self.net, path).map_err(CoreError::from)
    }

    /// Loads selector weights saved by [`NeuralSelector::save`] into a
    /// selector of the same architecture.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] on I/O failure or architecture
    /// mismatch.
    pub fn load<P: AsRef<Path>>(&mut self, path: P) -> Result<(), CoreError> {
        load_from_file(&mut self.net, path).map_err(CoreError::from)
    }
}

impl Selector for NeuralSelector {
    fn fsp(&mut self, graph: &HananGraph, extra_pins: &[GridPoint]) -> Vec<f32> {
        let mut out = Vec::with_capacity(graph.len());
        self.fsp_into(graph, extra_pins, &mut out);
        out
    }

    fn fsp_into(&mut self, graph: &HananGraph, extra_pins: &[GridPoint], out: &mut Vec<f32>) {
        self.fsp_into_ws(graph, extra_pins, out, &mut NnWorkspace::new());
    }

    fn fsp_into_ws(
        &mut self,
        graph: &HananGraph,
        extra_pins: &[GridPoint],
        out: &mut Vec<f32>,
        ws: &mut NnWorkspace,
    ) {
        // Thin batch-of-one wrapper (wrapper-discipline D3): the real
        // inference lives in `fsp_batch_into_ws`, whose single-state branch
        // is the classic per-sample path.
        self.fsp_batch_into_ws(graph, extra_pins, &[extra_pins.len() as u32], out, ws);
    }

    fn fsp_batch_into_ws(
        &mut self,
        graph: &HananGraph,
        pts: &[GridPoint],
        lens: &[u32],
        out: &mut Vec<f32>,
        ws: &mut NnWorkspace,
    ) {
        if lens.len() == 1 {
            // Single-state fast path: rank-4 tensors end to end (the MCTS
            // B=1 hot path keeps its exact allocation and counter profile).
            let x = encode_features_into(graph, pts, ws);
            // The network emits a [1, M, H, V] probability volume (see the
            // layout note in `features`); reorder it to graph-index order.
            let probs = self.net.predict_in(&x, ws);
            crate::features::to_graph_order_into(probs.data(), graph, out);
            ws.free(probs);
            ws.free(x);
            return;
        }
        // True batch: channel-major [7, B, M, H, V] encodes, one network
        // pass per chunk (GEMM N = B·spatial), per-state reorder of the
        // contiguous [1, B, M, H, V] probability blocks. Large flushes are
        // chunked so each pass's working set stays cache-resident (see
        // `FLUSH_CHUNK_VOXELS`); every state's arithmetic is independent of
        // its batch-mates, so the chunk boundary never changes a bit of
        // output — only which GEMM panel a state's columns land in.
        let spatial = graph.len();
        let max_chunk = (FLUSH_CHUNK_VOXELS / spatial).max(1);
        out.clear();
        let mut p0 = 0;
        let mut b0 = 0;
        while b0 < lens.len() {
            let b1 = (b0 + max_chunk).min(lens.len());
            let npts: usize = lens[b0..b1].iter().map(|&l| l as usize).sum();
            let x = encode_features_batch_into(graph, &pts[p0..p0 + npts], &lens[b0..b1], ws);
            let probs = self.net.predict_batch_in(&x, ws);
            for b in 0..b1 - b0 {
                crate::features::to_graph_order_append(
                    &probs.data()[b * spatial..(b + 1) * spatial],
                    graph,
                    out,
                );
            }
            ws.free(probs);
            ws.free(x);
            p0 += npts;
            b0 = b1;
        }
    }
}

/// Ceiling on `B_chunk · spatial` — the voxel count one batched selector
/// flush feeds the network at once. Above it, `fsp_batch_into_ws` splits
/// the flush into chunks: at the large rungs a full 16-state batch's
/// activations (tens of floats live per voxel across the U-Net levels)
/// overflow the last-level cache and the batched GEMM starts streaming
/// from memory, so capping the per-pass working set beats maximal GEMM
/// width (measured at S48, B = 16 — see EXPERIMENTS.md). Chunking is
/// invisible in the output: states are arithmetically independent, so
/// every block stays bit-identical to the single-state path at any chunk
/// size. The telemetry occupancy metric (`gemm_batch_cols` per
/// `batch_flushes`) makes the chunk width observable per run.
const FLUSH_CHUNK_VOXELS: usize = 32 * 1024;

/// Shared-reference inference: a `&NeuralSelector` is itself a selector,
/// running the cache-free `&self` network path
/// ([`UNet3d::infer_in`]) — bit-identical to the owned path. This is what
/// lets parallel workers and the training harness evaluate one weight set
/// without cloning it per thread.
impl Selector for &NeuralSelector {
    fn fsp(&mut self, graph: &HananGraph, extra_pins: &[GridPoint]) -> Vec<f32> {
        let mut out = Vec::with_capacity(graph.len());
        self.fsp_into(graph, extra_pins, &mut out);
        out
    }

    fn fsp_into(&mut self, graph: &HananGraph, extra_pins: &[GridPoint], out: &mut Vec<f32>) {
        self.fsp_into_ws(graph, extra_pins, out, &mut NnWorkspace::new());
    }

    fn fsp_into_ws(
        &mut self,
        graph: &HananGraph,
        extra_pins: &[GridPoint],
        out: &mut Vec<f32>,
        ws: &mut NnWorkspace,
    ) {
        let x = encode_features_into(graph, extra_pins, ws);
        let probs = self.net.infer_in(&x, ws);
        crate::features::to_graph_order_into(probs.data(), graph, out);
        ws.free(probs);
        ws.free(x);
    }
}

/// A [`NeuralSelector`] behind an [`Arc`]: cloning is a reference-count
/// bump instead of a full weight copy, and every clone routes inference
/// through the shared `&self` path. The selector deduplication layer of
/// the parallel sample generators and bench harness.
#[derive(Debug, Clone)]
pub struct SharedSelector(Arc<NeuralSelector>);

impl SharedSelector {
    /// Wraps a selector for shared, clone-cheap use.
    pub fn new(selector: NeuralSelector) -> Self {
        SharedSelector(Arc::new(selector))
    }

    /// The shared underlying selector.
    pub fn inner(&self) -> &NeuralSelector {
        &self.0
    }
}

impl From<NeuralSelector> for SharedSelector {
    fn from(s: NeuralSelector) -> Self {
        SharedSelector::new(s)
    }
}

impl Selector for SharedSelector {
    fn fsp(&mut self, graph: &HananGraph, extra_pins: &[GridPoint]) -> Vec<f32> {
        (&*self.0).fsp(graph, extra_pins)
    }

    fn fsp_into(&mut self, graph: &HananGraph, extra_pins: &[GridPoint], out: &mut Vec<f32>) {
        (&*self.0).fsp_into(graph, extra_pins, out);
    }

    fn fsp_into_ws(
        &mut self,
        graph: &HananGraph,
        extra_pins: &[GridPoint],
        out: &mut Vec<f32>,
        ws: &mut NnWorkspace,
    ) {
        (&*self.0).fsp_into_ws(graph, extra_pins, out, ws);
    }
}

impl fmt::Display for NeuralSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.net.config();
        write!(
            f,
            "neural selector (base {}, levels {})",
            c.base_channels, c.levels
        )
    }
}

/// A trivial selector assigning the same probability everywhere. Useful as
/// a control in experiments and tests (it reduces the RL router to the
/// plain pins-only OARMST after the safeguard).
#[derive(Debug, Clone, Copy)]
pub struct UniformSelector {
    p: f32,
}

impl UniformSelector {
    /// Creates a uniform selector with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..=1.0).contains(&p));
        UniformSelector { p }
    }
}

impl Selector for UniformSelector {
    fn fsp(&mut self, graph: &HananGraph, extra_pins: &[GridPoint]) -> Vec<f32> {
        let mut out = Vec::with_capacity(graph.len());
        self.fsp_into(graph, extra_pins, &mut out);
        out
    }

    fn fsp_into(&mut self, graph: &HananGraph, _extra_pins: &[GridPoint], out: &mut Vec<f32>) {
        out.clear();
        out.resize(graph.len(), self.p);
    }
}

/// A geometric heuristic selector: vertices close to the pins' median
/// coordinate (the classic 3-pin Steiner point) get high probability. Used
/// as an untrained-but-sensible baseline and to keep benches independent of
/// training time.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianHeuristicSelector;

impl MedianHeuristicSelector {
    /// Creates the heuristic selector.
    pub fn new() -> Self {
        MedianHeuristicSelector
    }
}

impl Selector for MedianHeuristicSelector {
    fn fsp(&mut self, graph: &HananGraph, extra_pins: &[GridPoint]) -> Vec<f32> {
        let mut out = Vec::with_capacity(graph.len());
        self.fsp_into(graph, extra_pins, &mut out);
        out
    }

    fn fsp_into(&mut self, graph: &HananGraph, extra_pins: &[GridPoint], out: &mut Vec<f32>) {
        out.clear();
        let mut pins: Vec<GridPoint> = graph.pins().to_vec();
        pins.extend_from_slice(extra_pins);
        if pins.is_empty() {
            out.resize(graph.len(), 0.0);
            return;
        }
        let median = |mut xs: Vec<usize>| -> f32 {
            xs.sort_unstable();
            xs[xs.len() / 2] as f32
        };
        let mh = median(pins.iter().map(|p| p.h).collect());
        let mv = median(pins.iter().map(|p| p.v).collect());
        let mm = median(pins.iter().map(|p| p.m).collect());
        let scale = (graph.h() + graph.v() + graph.m()) as f32;
        out.extend((0..graph.len()).map(|idx| {
            let p = graph.point(idx);
            let d = (p.h as f32 - mh).abs() + (p.v as f32 - mv).abs() + (p.m as f32 - mm).abs();
            (-4.0 * d / scale).exp()
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> HananGraph {
        let mut g = HananGraph::uniform(5, 5, 2, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 2, 0)).unwrap();
        g.add_pin(GridPoint::new(4, 2, 0)).unwrap();
        g.add_pin(GridPoint::new(2, 0, 0)).unwrap();
        g
    }

    #[test]
    fn neural_selector_outputs_probabilities_for_any_size() {
        let mut s = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 2,
            seed: 0,
        });
        for (h, v, m) in [(5, 5, 2), (3, 7, 1), (9, 4, 3)] {
            let g = HananGraph::uniform(h, v, m, 1.0, 1.0, 3.0);
            let fsp = s.fsp(&g, &[]);
            assert_eq!(fsp.len(), g.len());
            assert!(fsp.iter().all(|&p| p > 0.0 && p < 1.0));
        }
    }

    #[test]
    fn extra_pins_change_neural_output() {
        let mut s = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed: 1,
        });
        let g = graph();
        let base = s.fsp(&g, &[]);
        let with_extra = s.fsp(&g, &[GridPoint::new(3, 3, 1)]);
        assert_ne!(base, with_extra);
    }

    #[test]
    fn median_heuristic_peaks_at_the_median() {
        let mut s = MedianHeuristicSelector::new();
        let g = graph();
        let fsp = s.fsp(&g, &[]);
        // Median of pins (0,2,0),(4,2,0),(2,0,0) is (2,2,0).
        let at_median = fsp[g.index(GridPoint::new(2, 2, 0))];
        for &p in &fsp {
            assert!(p <= at_median + 1e-6);
        }
    }

    #[test]
    fn uniform_selector_is_flat() {
        let mut s = UniformSelector::new(0.3);
        let g = graph();
        let fsp = s.fsp(&g, &[]);
        assert!(fsp.iter().all(|&p| p == 0.3));
    }

    #[test]
    fn fsp_into_matches_fsp_for_every_selector() {
        let g = graph();
        let extra = [GridPoint::new(3, 3, 1)];
        let mut buf = vec![1.0f32; 3]; // stale contents must be cleared
        let mut neural = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed: 3,
        });
        neural.fsp_into(&g, &extra, &mut buf);
        assert_eq!(buf, neural.fsp(&g, &extra));
        let mut median = MedianHeuristicSelector::new();
        median.fsp_into(&g, &extra, &mut buf);
        assert_eq!(buf, median.fsp(&g, &extra));
        let mut uniform = UniformSelector::new(0.7);
        uniform.fsp_into(&g, &extra, &mut buf);
        assert_eq!(buf, uniform.fsp(&g, &extra));
    }

    /// The batched neural path must be bit-identical, per state, to the
    /// single-state path — and so must the default (looping) batch path of
    /// the heuristic selectors.
    #[test]
    fn fsp_batch_matches_single_state_bitwise() {
        let g = graph();
        // Three states: no extras, one extra, two extras.
        let states: [&[GridPoint]; 3] = [
            &[],
            &[GridPoint::new(3, 3, 1)],
            &[GridPoint::new(1, 4, 0), GridPoint::new(4, 4, 1)],
        ];
        let mut pts = Vec::new();
        let mut lens = Vec::new();
        for s in &states {
            pts.extend_from_slice(s);
            lens.push(s.len() as u32);
        }
        let mut neural = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 2,
            seed: 5,
        });
        let mut ws = NnWorkspace::new();
        let mut batched = Vec::new();
        neural.fsp_batch_into_ws(&g, &pts, &lens, &mut batched, &mut ws);
        assert_eq!(batched.len(), 3 * g.len());
        let mut single = Vec::new();
        for (b, s) in states.iter().enumerate() {
            neural.fsp_into_ws(&g, s, &mut single, &mut ws);
            for (i, (x, y)) in batched[b * g.len()..(b + 1) * g.len()]
                .iter()
                .zip(&single)
                .enumerate()
            {
                assert_eq!(x.to_bits(), y.to_bits(), "state {b} vertex {i}");
            }
        }
        // Heuristic selectors ride the default loop.
        let mut median = MedianHeuristicSelector::new();
        let mut mb = Vec::new();
        median.fsp_batch_into(&g, &pts, &lens, &mut mb);
        for (b, s) in states.iter().enumerate() {
            assert_eq!(&mb[b * g.len()..(b + 1) * g.len()], &median.fsp(&g, s)[..]);
        }
    }

    /// Shared (`&NeuralSelector` / `SharedSelector`) inference must
    /// reproduce the owned selector bit for bit.
    #[test]
    fn shared_selector_matches_owned_bitwise() {
        let g = graph();
        let extra = [GridPoint::new(3, 3, 1)];
        let mut owned = NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 2,
            seed: 9,
        });
        let reference = owned.fsp(&g, &extra);
        let mut by_ref = &owned;
        let via_ref = by_ref.fsp(&g, &extra);
        let mut shared = SharedSelector::new(owned);
        let via_arc = shared.fsp(&g, &extra);
        let cheap_clone = shared.clone();
        assert!(
            Arc::ptr_eq(&shared.0, &cheap_clone.0),
            "clone shares weights"
        );
        for i in 0..reference.len() {
            assert_eq!(reference[i].to_bits(), via_ref[i].to_bits(), "vertex {i}");
            assert_eq!(reference[i].to_bits(), via_arc[i].to_bits(), "vertex {i}");
        }
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("oarsmt_core_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("selector.bin");
        let cfg = UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed: 7,
        };
        let mut a = NeuralSelector::with_config(cfg);
        a.save(&path).unwrap();
        let mut b = NeuralSelector::with_config(UNetConfig { seed: 8, ..cfg });
        b.load(&path).unwrap();
        let g = graph();
        assert_eq!(a.fsp(&g, &[]), b.fsp(&g, &[]));
        std::fs::remove_file(&path).ok();
    }
}
