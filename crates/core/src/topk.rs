//! Top-k Steiner-point selection from a probability array.
//!
//! "If there are `n` pins to be connected in the input layout, the vertices
//! with the top `n − 2` highest probabilities will be selected as the
//! Steiner points" (Section 3.1). Only *valid* vertices — empty, not a pin
//! or obstacle, not already selected — participate; ties break toward the
//! higher selection priority (smaller lexicographic `(h, v, m)`).

use oarsmt_geom::{GridPoint, HananGraph, VertexKind};

/// Selects the `k` valid vertices with the highest probabilities.
///
/// `exclude` marks additional invalid vertices (e.g. Steiner points already
/// fixed by an MCTS state). Returns fewer than `k` points when fewer valid
/// vertices exist. The result is sorted by selection priority.
///
/// # Panics
///
/// Panics if `fsp.len() != graph.len()`.
pub fn select_top_k(
    graph: &HananGraph,
    fsp: &[f32],
    k: usize,
    exclude: &[GridPoint],
) -> Vec<GridPoint> {
    let mut out = Vec::new();
    select_top_k_into(
        graph,
        fsp,
        k,
        exclude,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut out,
    );
    out
}

/// [`select_top_k`] through caller-owned scratch buffers: `scored` and
/// `excl_idx` are cleared and reused, and the selection is **appended** to
/// `out` (the appended suffix sorted by selection priority, like
/// [`select_top_k`]'s result). Appending lets a caller keep already-fixed
/// Steiner points in `out` and extend them with the completion in place.
///
/// # Panics
///
/// Panics if `fsp.len() != graph.len()`.
pub fn select_top_k_into(
    graph: &HananGraph,
    fsp: &[f32],
    k: usize,
    exclude: &[GridPoint],
    scored: &mut Vec<(f32, u32)>,
    excl_idx: &mut Vec<u32>,
    out: &mut Vec<GridPoint>,
) {
    assert_eq!(fsp.len(), graph.len(), "fsp must cover every vertex");
    if k == 0 {
        return;
    }
    excl_idx.clear();
    excl_idx.extend(exclude.iter().map(|&p| graph.index(p) as u32));
    excl_idx.sort_unstable();
    scored.clear();
    for (idx, &p) in fsp.iter().enumerate() {
        if graph.kind_at(idx) != VertexKind::Empty {
            continue;
        }
        if excl_idx.binary_search(&(idx as u32)).is_ok() {
            continue;
        }
        scored.push((p, idx as u32));
    }
    // Highest probability first; ties by smaller index (= higher priority).
    // Unstable sort: the index tiebreak makes the comparator a strict
    // total order (no two entries compare equal), so the result is
    // identical to the stable sort's without its merge-buffer allocation.
    scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let start = out.len();
    out.extend(
        scored
            .iter()
            .take(k)
            .map(|&(_, idx)| graph.point(idx as usize)),
    );
    out[start..].sort_unstable();
}

/// The number of Steiner points the paper selects for an `n`-pin layout:
/// `max(n − 2, 0)` (Section 2.1: a layout with `n` pins needs at most
/// `n − 2` irredundant Steiner points).
pub fn steiner_budget(pin_count: usize) -> usize {
    pin_count.saturating_sub(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> HananGraph {
        let mut g = HananGraph::uniform(3, 3, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(2, 2, 0)).unwrap();
        g
    }

    #[test]
    fn picks_highest_probability_valid_vertices() {
        let g = graph();
        let mut fsp = vec![0.1f32; g.len()];
        fsp[g.index(GridPoint::new(1, 1, 0))] = 0.9;
        fsp[g.index(GridPoint::new(2, 0, 0))] = 0.8;
        // Tempt with invalid vertices:
        fsp[g.index(GridPoint::new(0, 0, 0))] = 1.0; // pin
        fsp[g.index(GridPoint::new(2, 2, 0))] = 1.0; // obstacle
        let sel = select_top_k(&g, &fsp, 2, &[]);
        assert_eq!(sel, vec![GridPoint::new(1, 1, 0), GridPoint::new(2, 0, 0)]);
    }

    #[test]
    fn exclusions_are_respected() {
        let g = graph();
        let mut fsp = vec![0.5f32; g.len()];
        let hot = GridPoint::new(1, 1, 0);
        fsp[g.index(hot)] = 0.99;
        let sel = select_top_k(&g, &fsp, 1, &[hot]);
        assert!(!sel.contains(&hot));
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn ties_break_by_priority() {
        let g = graph();
        let fsp = vec![0.5f32; g.len()];
        let sel = select_top_k(&g, &fsp, 2, &[]);
        // First two valid vertices in priority order: (0,1,0) then (0,2,0).
        assert_eq!(sel, vec![GridPoint::new(0, 1, 0), GridPoint::new(0, 2, 0)]);
    }

    #[test]
    fn k_larger_than_valid_count_returns_all_valid() {
        let g = graph();
        let fsp = vec![0.5f32; g.len()];
        let sel = select_top_k(&g, &fsp, 100, &[]);
        // 9 vertices - 1 pin - 1 obstacle = 7 valid.
        assert_eq!(sel.len(), 7);
    }

    #[test]
    fn zero_k_returns_empty() {
        let g = graph();
        let fsp = vec![0.5f32; g.len()];
        assert!(select_top_k(&g, &fsp, 0, &[]).is_empty());
    }

    #[test]
    fn steiner_budget_is_n_minus_2() {
        assert_eq!(steiner_budget(0), 0);
        assert_eq!(steiner_budget(2), 0);
        assert_eq!(steiner_budget(3), 1);
        assert_eq!(steiner_budget(10), 8);
    }

    #[test]
    fn into_variant_appends_and_matches_allocating_form() {
        let g = graph();
        let mut fsp = vec![0.1f32; g.len()];
        fsp[g.index(GridPoint::new(1, 1, 0))] = 0.9;
        fsp[g.index(GridPoint::new(2, 0, 0))] = 0.8;
        let fixed = GridPoint::new(0, 1, 0);
        let expected = select_top_k(&g, &fsp, 2, &[fixed]);

        let mut scored = vec![(0.0, 99)];
        let mut excl = vec![42];
        let mut out = vec![fixed];
        select_top_k_into(&g, &fsp, 2, &[fixed], &mut scored, &mut excl, &mut out);
        assert_eq!(out[0], fixed, "prefix is preserved");
        assert_eq!(&out[1..], &expected[..], "appended suffix matches");
    }

    #[test]
    fn result_is_sorted_by_priority() {
        let g = graph();
        let mut fsp = vec![0.0f32; g.len()];
        fsp[g.index(GridPoint::new(2, 1, 0))] = 0.9;
        fsp[g.index(GridPoint::new(0, 1, 0))] = 0.5;
        let sel = select_top_k(&g, &fsp, 2, &[]);
        assert_eq!(sel, vec![GridPoint::new(0, 1, 0), GridPoint::new(2, 1, 0)]);
    }
}
