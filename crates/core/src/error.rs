//! Error types of the RL router pipeline.

use std::error::Error;
use std::fmt;

use oarsmt_nn::NnError;
use oarsmt_router::RouteError;

/// Errors produced by the RL router.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The final OARMST construction failed.
    Route(RouteError),
    /// Loading or saving selector weights failed.
    Model(NnError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Route(e) => write!(f, "routing failed: {e}"),
            CoreError::Model(e) => write!(f, "selector model error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Route(e) => Some(e),
            CoreError::Model(e) => Some(e),
        }
    }
}

impl From<RouteError> for CoreError {
    fn from(e: RouteError) -> Self {
        CoreError::Route(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e = CoreError::from(RouteError::TooFewTerminals(1));
        assert!(e.to_string().contains("routing failed"));
        assert!(Error::source(&e).is_some());
    }
}
