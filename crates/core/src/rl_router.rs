//! The end-to-end RL ML-OARSMT router (Fig. 2 of the paper).

use std::fmt;
use std::time::{Duration, Instant};

use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_router::{OarmstRouter, RouteContext, RouteTree};

use crate::error::CoreError;
use crate::selector::Selector;
use crate::topk::{select_top_k_into, steiner_budget};

/// Result of routing one layout, including the phase timings the paper
/// reports in Table 3 (Steiner-point selection time vs total time).
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// The final ML-OARSMT.
    pub tree: RouteTree,
    /// The Steiner points actually proposed by the selector (before
    /// OARMST pruning).
    pub steiner_points: Vec<GridPoint>,
    /// Wall-clock time of the Steiner-point selection (one inference plus
    /// top-k).
    pub select_time: Duration,
    /// Total wall-clock time including OARMST construction.
    pub total_time: Duration,
}

impl fmt::Display for RouteOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "routed: cost {}, {} steiner candidates, {:?} total",
            self.tree.cost(),
            self.steiner_points.len(),
            self.total_time
        )
    }
}

/// The RL router: a Steiner-point [`Selector`] feeding the OARMST router.
///
/// With `safeguard` enabled (the default), the router also builds the
/// pins-only OARMST and returns whichever tree is cheaper, so a poorly
/// trained selector can never make the result worse than no Steiner points
/// at all. Disable it with [`RlRouter::without_safeguard`] to measure the
/// raw selector quality (as the ST-to-MST experiments of Figs. 11–12 do).
#[derive(Debug, Clone)]
pub struct RlRouter<S> {
    selector: S,
    oarmst: OarmstRouter,
    /// Per-router workspace: Dijkstra state, cached layout index sets, and
    /// inference scratch, rebound lazily to whichever layout is routed.
    /// One router (and hence one context) lives on each worker thread in
    /// the parallel evaluation paths.
    ctx: RouteContext,
    safeguard: bool,
    refine: bool,
}

impl<S: Selector> RlRouter<S> {
    /// Creates a router with the safeguard and refinement enabled.
    pub fn new(selector: S) -> Self {
        RlRouter {
            selector,
            // The refine loop runs its own explicit polish, so the inner
            // OARMST builds skip theirs.
            oarmst: OarmstRouter::new().with_polish_rounds(0),
            ctx: RouteContext::new(),
            safeguard: true,
            refine: true,
        }
    }

    /// Disables the pins-only safeguard (builder style).
    #[must_use]
    pub fn without_safeguard(mut self) -> Self {
        self.safeguard = false;
        self
    }

    /// Disables the implied-Steiner refinement pass (builder style).
    ///
    /// Refinement promotes grid vertices that emerged with degree ≥ 3 in
    /// the first tree to Steiner candidates and rebuilds once, keeping the
    /// cheaper tree — the "remove redundant Steiner points ... and then
    /// reconstruct" step of the OARMST router generalized to also *add*
    /// discovered branch points.
    #[must_use]
    pub fn without_refine(mut self) -> Self {
        self.refine = false;
        self
    }

    /// Access to the wrapped selector.
    pub fn selector_mut(&mut self) -> &mut S {
        &mut self.selector
    }

    /// Read-only access to the wrapped selector (used by the parallel
    /// multi-net path to clone per-worker routers).
    pub fn selector(&self) -> &S {
        &self.selector
    }

    /// Telemetry counters accumulated by every route through this router
    /// (context + Dijkstra workspace + NN workspace, merged in index order).
    /// Monotone across calls; diff with
    /// [`oarsmt_telemetry::CounterSet::delta_since`] to attribute work to a
    /// single route.
    #[must_use]
    pub fn counters(&self) -> oarsmt_telemetry::CounterSet {
        self.ctx.counters_total()
    }

    /// Routes a layout: one selector inference, top `n − 2` Steiner points,
    /// OARMST construction with pruning.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Route`] when the pins cannot be connected (see
    /// [`OarmstRouter::route`]).
    pub fn route(&mut self, graph: &HananGraph) -> Result<RouteOutcome, CoreError> {
        // lint: timing-ok(select_time is reported metadata; never feeds results)
        let start = Instant::now();
        let k = steiner_budget(graph.pins().len());
        self.selector
            .fsp_into_ws(graph, &[], &mut self.ctx.fsp, &mut self.ctx.nn);
        let mut steiner_points = Vec::new();
        select_top_k_into(
            graph,
            &self.ctx.fsp,
            k,
            &[],
            &mut self.ctx.scored,
            &mut self.ctx.excluded,
            &mut steiner_points,
        );
        let select_time = start.elapsed();

        let mut tree = self
            .oarmst
            .route_in(&mut self.ctx, graph, &steiner_points)?;
        if self.safeguard {
            let plain = self.oarmst.route_in(&mut self.ctx, graph, &[])?;
            if plain.cost() < tree.cost() {
                self.ctx.recycle_tree(std::mem::replace(&mut tree, plain));
            } else {
                self.ctx.recycle_tree(plain);
            }
        }
        if self.refine {
            // Alternate path-assessed polish (to convergence) with
            // reconstruction over the discovered branch vertices plus the
            // selector's candidates — the OARMST step follows [14], whose
            // retracing interleaves both moves until the tree stabilizes.
            for round in 0..4 {
                let mut terminals: Vec<GridPoint> = graph.pins().to_vec();
                terminals.extend(tree.steiner_vertices(graph, graph.pins()));
                for _ in 0..8 {
                    let (polished, improved) = oarsmt_router::retrace::polish_round_in(
                        &mut self.ctx,
                        graph,
                        tree,
                        &terminals,
                    )?;
                    tree = polished;
                    if !improved {
                        break;
                    }
                }
                let mut promoted = tree.steiner_vertices(graph, graph.pins());
                promoted.extend_from_slice(&steiner_points);
                // Rotate the Prim start terminal per round: alternate
                // construction orders explore different equal-cost path
                // choices.
                let rebuilt = self.oarmst.clone().with_start(round).route_in(
                    &mut self.ctx,
                    graph,
                    &promoted,
                )?;
                if rebuilt.cost() + 1e-9 < tree.cost() {
                    self.ctx.recycle_tree(std::mem::replace(&mut tree, rebuilt));
                } else {
                    self.ctx.recycle_tree(rebuilt);
                    break;
                }
            }
        }
        Ok(RouteOutcome {
            tree,
            steiner_points,
            select_time,
            total_time: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{MedianHeuristicSelector, NeuralSelector, UniformSelector};
    use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
    use oarsmt_nn::unet::UNetConfig;

    fn cross_graph() -> HananGraph {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        g
    }

    fn tiny_neural(seed: u64) -> NeuralSelector {
        NeuralSelector::with_config(UNetConfig {
            in_channels: 7,
            base_channels: 2,
            levels: 1,
            seed,
        })
    }

    #[test]
    fn median_selector_finds_the_cross_center() {
        let g = cross_graph();
        let mut router = RlRouter::new(MedianHeuristicSelector::new());
        let out = router.route(&g).unwrap();
        // Optimal cross tree costs 8 through the center (2,2,0).
        assert_eq!(out.tree.cost(), 8.0);
        assert!(out.steiner_points.contains(&GridPoint::new(2, 2, 0)));
    }

    #[test]
    fn safeguard_bounds_cost_by_pins_only_tree() {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(8, 8, 2, (3, 6)), 3);
        let oarmst = OarmstRouter::new();
        let mut router = RlRouter::new(tiny_neural(0));
        for g in gen.generate_many(10) {
            let Ok(plain) = oarmst.route(&g, &[]) else {
                continue;
            };
            let out = router.route(&g).unwrap();
            assert!(out.tree.cost() <= plain.cost() + 1e-9);
            assert!(out.tree.spans_in(&g, g.pins()));
            assert!(out.tree.is_tree());
        }
    }

    #[test]
    fn without_safeguard_reports_raw_selector_quality() {
        let g = cross_graph();
        // Uniform selector picks by tie-break priority — likely bad points,
        // but OARMST pruning removes redundant ones, so the tree is valid.
        let mut router = RlRouter::new(UniformSelector::new(0.5)).without_safeguard();
        let out = router.route(&g).unwrap();
        assert!(out.tree.spans_in(&g, g.pins()));
    }

    #[test]
    fn steiner_budget_matches_pin_count() {
        let g = cross_graph(); // 4 pins -> 2 candidates
        let mut router = RlRouter::new(MedianHeuristicSelector::new());
        let out = router.route(&g).unwrap();
        assert!(out.steiner_points.len() <= 2);
    }

    #[test]
    fn timings_are_ordered() {
        let g = cross_graph();
        let mut router = RlRouter::new(tiny_neural(1));
        let out = router.route(&g).unwrap();
        assert!(out.select_time <= out.total_time);
    }

    #[test]
    fn router_counters_are_monotone_and_deterministic() {
        use oarsmt_telemetry::Counter;
        let g = cross_graph();
        let mut router = RlRouter::new(MedianHeuristicSelector::new());
        router.route(&g).unwrap();
        let first = router.counters();
        assert!(first.get(Counter::DijkstraPops) > 0);
        router.route(&g).unwrap();
        let delta = router.counters().delta_since(&first);
        assert_eq!(
            delta.get(Counter::DijkstraPops),
            first.get(Counter::DijkstraPops),
            "identical routes cost identical counted work"
        );
    }

    #[test]
    fn two_pin_layouts_need_no_selection() {
        let mut g = HananGraph::uniform(4, 4, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 3, 0)).unwrap();
        let mut router = RlRouter::new(MedianHeuristicSelector::new());
        let out = router.route(&g).unwrap();
        assert!(out.steiner_points.is_empty());
        assert_eq!(out.tree.cost(), 6.0);
    }
}
