//! Deterministic scoped worker pool for evaluation and sample generation.
//!
//! Every fan-out in this workspace — Table 2/3/4 and Fig. 10 layout
//! evaluation, MCTS sample generation, batch multi-net scoring — shares the
//! same shape: a list of independent jobs, each identified by its index, that
//! must produce **bit-identical results regardless of thread count**. This
//! module provides that shape once:
//!
//! * Each job's randomness comes from [`derive_seed`]`(master, index)`, never
//!   from a shared stream, so job `i` sees the same seed whether it runs
//!   first on thread 0 or last on thread 7.
//! * Results are reassembled in submission (index) order, so downstream
//!   floating-point accumulation visits them in a fixed order.
//! * Workers pull indices from a shared atomic counter (work stealing), so
//!   uneven job sizes still balance.
//!
//! The pool is built on `std::thread::scope` + `std::sync::mpsc` only — no
//! external crates — and is therefore available everywhere `std` is.
//!
//! ```
//! use oarsmt::parallel::{derive_seed, run_seeded};
//!
//! // Square each job's derived seed; 1 thread and 4 threads must agree.
//! let one = run_seeded(8, 42, 1, |i, seed| (i, seed.wrapping_mul(seed)));
//! let four = run_seeded(8, 42, 4, |i, seed| (i, seed.wrapping_mul(seed)));
//! assert_eq!(one, four);
//! assert_eq!(one[3].1, derive_seed(42, 3).wrapping_mul(derive_seed(42, 3)));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable consulted by [`thread_count`] when no explicit
/// thread count is given: `OARSMT_THREADS=N` caps the pool at `N` workers
/// (`0` or unset means "use all available cores").
pub const THREADS_ENV: &str = "OARSMT_THREADS";

/// Derives the seed of job `index` from a master seed.
///
/// Uses one round of SplitMix64 over `master ⊕ φ·index` (golden-ratio
/// stride), so consecutive indices land far apart even for small masters.
/// The mapping is pure: the same `(master, index)` pair always yields the
/// same seed, which is what makes thread-count-independent results possible.
///
/// ```
/// use oarsmt::parallel::derive_seed;
/// assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
/// assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
/// assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
/// ```
#[must_use]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves the worker-pool size.
///
/// Priority order:
/// 1. `explicit` (e.g. a `--threads N` CLI flag), when `Some(n)` with `n > 0`;
/// 2. the [`THREADS_ENV`] environment variable, when set to a positive
///    integer;
/// 3. [`std::thread::available_parallelism`].
///
/// `Some(0)` and `OARSMT_THREADS=0` both mean "auto" and fall through to the
/// next source. The result is always at least 1.
#[must_use]
pub fn thread_count(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses and removes a `--threads N` / `--threads=N` flag from a CLI
/// argument list, returning the parsed count.
///
/// Returns `Ok(None)` when the flag is absent (callers then fall back to
/// [`thread_count`]`(None)`, i.e. the environment variable or all cores).
///
/// # Errors
///
/// Returns a description of the malformed flag (missing or non-numeric
/// value) suitable for printing next to a usage string.
pub fn take_threads_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let mut found = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            if i + 1 >= args.len() {
                return Err("--threads requires a value".to_string());
            }
            let v = args.remove(i + 1);
            args.remove(i);
            found = Some(parse_threads(&v)?);
        } else if let Some(v) = args[i].strip_prefix("--threads=") {
            let n = parse_threads(v)?;
            args.remove(i);
            found = Some(n);
        } else {
            i += 1;
        }
    }
    Ok(found)
}

fn parse_threads(v: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .map_err(|_| format!("--threads expects a non-negative integer, got {v:?}"))
}

/// Runs `tasks` independent jobs across `threads` workers and returns their
/// results **in index order**.
///
/// Job `i` receives `(i, derive_seed(master_seed, i))`. With `threads <= 1`
/// the jobs run inline on the calling thread; either way the returned
/// `Vec` is ordered by index, so results are identical for any thread count
/// as long as `job` itself is a pure function of its arguments.
///
/// ```
/// use oarsmt::parallel::run_seeded;
/// let r = run_seeded(4, 9, 2, |i, _seed| i * 10);
/// assert_eq!(r, vec![0, 10, 20, 30]);
/// ```
///
/// # Panics
///
/// Propagates panics from `job` once all workers have stopped.
pub fn run_seeded<R, F>(tasks: usize, master_seed: u64, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, u64) -> R + Sync,
{
    run_seeded_with(tasks, master_seed, threads, || (), |(), i, s| job(i, s))
}

/// Like [`run_seeded`], but each worker first builds private mutable state
/// with `init` (e.g. a cloned [`crate::selector::NeuralSelector`]) and every
/// job on that worker gets `&mut` access to it.
///
/// The state must not carry information between jobs that affects results —
/// job `i` may run on any worker — so it is only suitable for caches,
/// scratch buffers, and cloned read-only models.
///
/// # Panics
///
/// Propagates panics from `init` or `job` once all workers have stopped.
pub fn run_seeded_with<St, R, I, F>(
    tasks: usize,
    master_seed: u64,
    threads: usize,
    init: I,
    job: F,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> St + Sync,
    F: Fn(&mut St, usize, u64) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(tasks);
    if threads == 1 {
        let mut state = init();
        return (0..tasks)
            .map(|i| job(&mut state, i, derive_seed(master_seed, i as u64)))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let job = &job;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks {
                        break;
                    }
                    let out = job(&mut state, i, derive_seed(master_seed, i as u64));
                    if tx.send((i, out)).is_err() {
                        break; // receiver gone: shutting down
                    }
                }
            });
        }
        drop(tx);
        // Collect until every sender hangs up. If a worker panicked, the
        // scope re-raises the panic after this closure returns, so missing
        // slots never escape.
        while let Ok((i, out)) = rx.recv() {
            slots[i] = Some(out);
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every task index sends exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_seed(0xDAC2024, i)).collect();
        let again: Vec<u64> = (0..64).map(|i| derive_seed(0xDAC2024, i)).collect();
        assert_eq!(seeds, again);
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "derived seeds must not collide");
    }

    #[test]
    fn results_come_back_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let r = run_seeded(37, 5, threads, |i, seed| (i, seed));
            for (i, &(idx, seed)) in r.iter().enumerate() {
                assert_eq!(idx, i);
                assert_eq!(seed, derive_seed(5, i as u64));
            }
        }
    }

    #[test]
    fn per_worker_state_is_threaded_through_jobs() {
        // Each worker counts its own jobs; the counts must sum to the task
        // count even though the partition is nondeterministic.
        use std::sync::Mutex;
        let totals = Mutex::new(Vec::new());
        run_seeded_with(
            100,
            0,
            4,
            || 0usize,
            |count, _i, _s| {
                *count += 1;
                totals.lock().unwrap().push(());
            },
        );
        assert_eq!(totals.lock().unwrap().len(), 100);
    }

    #[test]
    fn zero_tasks_is_empty() {
        let r: Vec<u64> = run_seeded(0, 1, 8, |_, s| s);
        assert!(r.is_empty());
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(thread_count(Some(3)), 3);
        assert!(thread_count(None) >= 1);
    }

    #[test]
    fn threads_flag_is_taken_from_args() {
        let mut args = vec![
            "--fast".to_string(),
            "--threads".to_string(),
            "4".to_string(),
        ];
        assert_eq!(take_threads_flag(&mut args), Ok(Some(4)));
        assert_eq!(args, vec!["--fast".to_string()]);

        let mut args = vec!["--threads=2".to_string()];
        assert_eq!(take_threads_flag(&mut args), Ok(Some(2)));
        assert!(args.is_empty());

        let mut args = vec!["x".to_string()];
        assert_eq!(take_threads_flag(&mut args), Ok(None));
        assert_eq!(args.len(), 1);

        let mut args = vec!["--threads".to_string()];
        assert!(take_threads_flag(&mut args).is_err());
        let mut args = vec!["--threads=abc".to_string()];
        assert!(take_threads_flag(&mut args).is_err());
    }
}
