//! The paper's primary contribution: an RL-trained, arbitrary-size,
//! multi-layer OARSMT router.
//!
//! The router (Fig. 2 of the paper) is a three-stage pipeline:
//!
//! 1. [`features`] encodes a 3D Hanan grid graph into the 7-channel feature
//!    volume of Section 3.3 (Fig. 3),
//! 2. a [`selector`] — usually the neural
//!    [`NeuralSelector`] wrapping the 3D Residual
//!    U-Net — produces the *final selected probability* of every vertex in
//!    **one inference**, and [`topk`] picks the `n − 2` most probable valid
//!    vertices as Steiner points,
//! 3. the OARMST router of [`oarsmt_router`] connects pins plus Steiner
//!    points and prunes redundant ones.
//!
//! [`rl_router::RlRouter`] glues the stages together;
//! [`eval`] implements every metric of the paper's evaluation section
//! (routing-cost comparisons, win rates, ST-to-MST ratios, obstacle-ratio
//! curves).
//!
//! # Example
//!
//! ```
//! use oarsmt::rl_router::RlRouter;
//! use oarsmt::selector::NeuralSelector;
//! use oarsmt_geom::{HananGraph, GridPoint};
//!
//! let mut g = HananGraph::uniform(6, 6, 2, 1.0, 1.0, 3.0);
//! g.add_pin(GridPoint::new(0, 0, 0))?;
//! g.add_pin(GridPoint::new(5, 0, 0))?;
//! g.add_pin(GridPoint::new(2, 5, 1))?;
//!
//! // An untrained selector still routes correctly (the safeguard keeps the
//! // result no worse than the pins-only tree).
//! let mut router = RlRouter::new(NeuralSelector::random(42));
//! let result = router.route(&g)?;
//! assert!(result.tree.spans_in(&g, g.pins()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod eval;
pub mod features;
pub mod multi_net;
pub mod parallel;
pub mod rl_router;
pub mod selector;
pub mod topk;

pub use error::CoreError;
pub use rl_router::{RlRouter, RouteOutcome};
pub use selector::{NeuralSelector, Selector};
