//! Property-based tests for the MCTS crates: search-tree structure,
//! label algebra, actor/critic consistency.

use oarsmt::selector::{MedianHeuristicSelector, Selector, UniformSelector};
use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
use oarsmt_geom::VertexKind;
use oarsmt_mcts::actor::action_policy;
use oarsmt_mcts::{AlphaGoMcts, CombinatorialMcts, Critic, MctsConfig};
use proptest::prelude::*;

fn config(size: usize, alpha: usize) -> MctsConfig {
    MctsConfig {
        base_iterations: alpha,
        base_size: size,
        use_critic: false,
        ..MctsConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn combinatorial_labels_never_exceed_opportunity_counts(seed in 0u64..400) {
        let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(6, 6, 1, (3, 5)), seed);
        let g = gen.generate();
        let mcts = CombinatorialMcts::new(config(36, 48));
        let Ok(out) = mcts.search(&g, &mut UniformSelector::new(0.1)) else {
            return Ok(());
        };
        for (i, (&s, &o)) in out
            .counters
            .n_sel()
            .iter()
            .zip(out.counters.n_opp())
            .enumerate()
        {
            prop_assert!(s <= o, "vertex {i}: n_sel {s} > n_opp {o}");
            if g.kind_at(i) != VertexKind::Empty {
                prop_assert_eq!(o, 0, "invalid vertices get no opportunities");
            }
        }
        // Executed combination is within the Steiner budget.
        prop_assert!(out.executed.len() <= g.pins().len().saturating_sub(2));
    }

    #[test]
    fn both_searches_report_consistent_costs(seed in 0u64..400) {
        let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(6, 6, 1, (3, 4)), seed);
        let g = gen.generate();
        let comb = CombinatorialMcts::new(config(36, 24));
        let conv = AlphaGoMcts::new(config(36, 24));
        let mut sel = UniformSelector::new(0.1);
        let (Ok(a), Ok(b)) = (comb.search(&g, &mut sel), conv.search(&g, &mut sel)) else {
            return Ok(());
        };
        // Both start from the same pins-only cost.
        prop_assert!((a.initial_cost - b.initial_cost).abs() < 1e-9);
        prop_assert!(a.final_cost > 0.0 && b.final_cost > 0.0);
    }

    #[test]
    fn critic_completion_stays_near_state_cost(seed in 0u64..400) {
        // The critic's prediction (state completed with top-probability
        // Steiner points, pruned) must be finite, positive, and close to
        // the bare state cost.
        let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(6, 6, 1, (3, 5)), seed);
        let g = gen.generate();
        let critic = Critic::new();
        let mut sel = MedianHeuristicSelector::new();
        let Ok(state_cost) = critic.state_cost(&g, &[]) else {
            return Ok(());
        };
        let predicted = critic.predict(&g, &[], &mut sel).unwrap();
        prop_assert!(predicted.is_finite() && predicted > 0.0);
        // Completion prunes redundant candidates, so the prediction stays
        // near the bare state cost (an irredundant-but-harmful candidate
        // can exceed it slightly, never wildly).
        prop_assert!(predicted <= state_cost * 1.3 + 1e-9);
    }

    #[test]
    fn actor_policy_matches_manual_telescoping(seed in 0u64..400, scale in 0.02f32..0.3) {
        let mut gen = CaseGenerator::new(GeneratorConfig::paper_costs(5, 5, 1, (3, 4)), seed);
        let g = gen.generate();
        let fsp = UniformSelector::new(scale).fsp(&g, &[]);
        let policy = action_policy(&g, &fsp, None);
        // Manual recomputation of eq. (1).
        let mut manual: Vec<(u32, f64)> = Vec::new();
        let mut skip = 1.0f64;
        for i in 0..g.len() {
            if g.kind_at(i) != VertexKind::Empty {
                continue;
            }
            manual.push((i as u32, f64::from(scale) * skip));
            skip *= 1.0 - f64::from(scale);
        }
        let total: f64 = manual.iter().map(|&(_, p)| p).sum();
        prop_assert_eq!(policy.len(), manual.len());
        for (a, &(v, p)) in policy.iter().zip(&manual) {
            prop_assert_eq!(a.vertex, v);
            prop_assert!((a.prob - p / total).abs() < 1e-12);
        }
    }
}
