//! The combinatorial Monte-Carlo tree search (Section 3.4, Figs. 5–7).

use std::fmt;

use oarsmt::selector::Selector;
use oarsmt::topk::steiner_budget;
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_router::RouteError;

use crate::actor::{action_policy, ActionProb};
use crate::config::MctsConfig;
use crate::critic::Critic;
use crate::label::LabelCounters;
use crate::terminal::{terminal_reason, TerminalReason};

/// Result of one complete combinatorial MCTS on an initial layout.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The dense training label `L_fsp(v)` of Eq. (3), one entry per vertex.
    pub label: Vec<f32>,
    /// The raw `n_sel` / `n_opp` counters behind the label.
    pub counters: LabelCounters,
    /// The executed Steiner-point combination (the terminal root's state),
    /// sorted by selection priority.
    pub executed: Vec<GridPoint>,
    /// Routing cost of the executed terminal state.
    pub final_cost: f64,
    /// Routing cost `rc_{s_0}` of the initial layout (pins only).
    pub initial_cost: f64,
    /// Number of nodes materialized in the search tree (the paper's
    /// search-efficiency claim: combinatorial trees are smaller).
    pub nodes_created: usize,
    /// Number of critic evaluations (leaf simulations).
    pub simulations: usize,
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mcts: {} -> {} cost, {} steiner points, {} nodes, {} sims",
            self.initial_cost,
            self.final_cost,
            self.executed.len(),
            self.nodes_created,
            self.simulations
        )
    }
}

/// An edge of the search tree: the `(s, a)` record with visit count `N`,
/// total value `W`, mean value `Q` and prior `P` (Section 3.4).
#[derive(Debug, Clone)]
struct Edge {
    action: u32,
    child: Option<u32>,
    n: u32,
    w: f64,
    p: f64,
}

impl Edge {
    fn q(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.w / self.n as f64
        }
    }
}

/// A node of the search tree: a unique combination of selected vertices.
#[derive(Debug, Clone)]
struct Node {
    /// Selected vertex indices, ascending (== selection-priority order).
    selected: Vec<u32>,
    /// Routing cost of this state (pins + selected, unpruned OARMST).
    cost: f64,
    /// Consecutive cost-flat actions ending at this node.
    flat_run: u32,
    terminal: TerminalReason,
    expanded: bool,
    edges: Vec<Edge>,
    /// Cached leaf value, so terminal nodes are simulated once.
    value: Option<f64>,
}

/// The combinatorial MCTS driver.
#[derive(Debug)]
pub struct CombinatorialMcts {
    config: MctsConfig,
    critic: Critic,
}

impl CombinatorialMcts {
    /// Creates a search driver with the given configuration.
    pub fn new(config: MctsConfig) -> Self {
        CombinatorialMcts {
            config,
            critic: Critic::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.config
    }

    /// Runs the full search on an initial layout: repeated `α`-iteration
    /// exploration phases, each followed by executing the most-visited root
    /// action, until the root is terminal (Section 3.4). Returns the label
    /// of Eq. (3) plus the executed combination.
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures (e.g. disconnected pins).
    pub fn search<S: Selector>(
        &self,
        graph: &HananGraph,
        selector: &mut S,
    ) -> Result<SearchOutcome, RouteError> {
        let budget = steiner_budget(graph.pins().len());
        let alpha = self.config.iterations_for(graph);
        let initial_cost = self.critic.state_cost(graph, &[])?;

        let mut nodes: Vec<Node> = Vec::new();
        nodes.push(Node {
            selected: Vec::new(),
            cost: initial_cost,
            flat_run: 0,
            terminal: terminal_reason(0, budget, None, initial_cost, 0, self.config.max_flat_run),
            expanded: false,
            edges: Vec::new(),
            value: None,
        });
        let mut counters = LabelCounters::new(graph);
        let mut simulations = 0usize;
        let mut root: u32 = 0;

        while !nodes[root as usize].terminal.is_terminal() {
            for _ in 0..alpha {
                self.explore(
                    graph,
                    selector,
                    &mut nodes,
                    root,
                    budget,
                    initial_cost,
                    &mut counters,
                    &mut simulations,
                )?;
            }
            // Execute the most visited root action.
            let best_edge = {
                let node = &nodes[root as usize];
                if node.edges.is_empty() {
                    break; // expansion found no actions
                }
                (0..node.edges.len())
                    .max_by(|&a, &b| {
                        let ea = &node.edges[a];
                        let eb = &node.edges[b];
                        ea.n.cmp(&eb.n)
                            .then(ea.q().total_cmp(&eb.q()))
                            .then(eb.action.cmp(&ea.action))
                    })
                    .expect("non-empty edges")
            };
            root = self.materialize_child(graph, &mut nodes, root, best_edge, budget)?;
        }

        let executed: Vec<GridPoint> = nodes[root as usize]
            .selected
            .iter()
            .map(|&i| graph.point(i as usize))
            .collect();
        let final_cost = nodes[root as usize].cost;
        Ok(SearchOutcome {
            label: counters.label(),
            counters,
            executed,
            final_cost,
            initial_cost,
            nodes_created: nodes.len(),
            simulations,
        })
    }

    /// One exploration iteration: selection, expansion, simulation,
    /// backpropagation (Fig. 6).
    #[allow(clippy::too_many_arguments)]
    fn explore<S: Selector>(
        &self,
        graph: &HananGraph,
        selector: &mut S,
        nodes: &mut Vec<Node>,
        root: u32,
        budget: usize,
        initial_cost: f64,
        counters: &mut LabelCounters,
        simulations: &mut usize,
    ) -> Result<(), RouteError> {
        let mut path: Vec<(u32, usize)> = Vec::new();
        let mut cur = root;

        // Selection: descend by Q + U until a leaf (unexpanded or terminal).
        loop {
            let node = &nodes[cur as usize];
            if node.terminal.is_terminal() || !node.expanded {
                break;
            }
            if node.edges.is_empty() {
                break;
            }
            let sum_n: u32 = node.edges.iter().map(|e| e.n).sum();
            let sqrt_sum = (sum_n as f64).sqrt();
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (i, e) in node.edges.iter().enumerate() {
                let u = self.config.exploration * e.p * sqrt_sum / (1.0 + e.n as f64);
                let score = e.q() + u + 1e-12 * e.p; // prior as deterministic tie-break
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            counters.record_step(node.edges[best].action, node.edges.iter().map(|e| e.action));
            path.push((cur, best));
            cur = self.materialize_child(graph, nodes, cur, best, budget)?;
        }

        // Expansion + simulation at the leaf.
        let value = if let Some(v) = nodes[cur as usize].value {
            v
        } else {
            let v = if nodes[cur as usize].terminal.is_terminal() {
                // Terminal: value from the state's own routing cost.
                (initial_cost - nodes[cur as usize].cost) / initial_cost
            } else {
                let selected_points: Vec<GridPoint> = nodes[cur as usize]
                    .selected
                    .iter()
                    .map(|&i| graph.point(i as usize))
                    .collect();
                let fsp = selector.fsp(graph, &selected_points);
                let last = nodes[cur as usize].selected.last().copied();
                let policy: Vec<ActionProb> = action_policy(graph, &fsp, last);
                if policy.is_empty() {
                    nodes[cur as usize].terminal = TerminalReason::NoActions;
                } else {
                    nodes[cur as usize].edges = policy
                        .iter()
                        .map(|a| Edge {
                            action: a.vertex,
                            child: None,
                            n: 0,
                            w: 0.0,
                            p: a.prob,
                        })
                        .collect();
                    nodes[cur as usize].expanded = true;
                }
                *simulations += 1;
                let predicted = if self.config.use_critic {
                    self.critic
                        .predict_with_fsp(graph, &selected_points, &fsp)?
                } else {
                    nodes[cur as usize].cost
                };
                (initial_cost - predicted) / initial_cost
            };
            nodes[cur as usize].value = Some(v);
            v
        };

        // Backpropagation: N += 1, W += v, Q = W / N along the path.
        for (node_id, edge_idx) in path {
            let e = &mut nodes[node_id as usize].edges[edge_idx];
            e.n += 1;
            e.w += value;
        }
        Ok(())
    }

    /// Creates (or fetches) the child node behind `edge_idx` of `parent`.
    fn materialize_child(
        &self,
        graph: &HananGraph,
        nodes: &mut Vec<Node>,
        parent: u32,
        edge_idx: usize,
        budget: usize,
    ) -> Result<u32, RouteError> {
        if let Some(c) = nodes[parent as usize].edges[edge_idx].child {
            return Ok(c);
        }
        let action = nodes[parent as usize].edges[edge_idx].action;
        let mut selected = nodes[parent as usize].selected.clone();
        debug_assert!(selected.last().is_none_or(|&l| l < action));
        selected.push(action);
        let selected_points: Vec<GridPoint> =
            selected.iter().map(|&i| graph.point(i as usize)).collect();
        let cost = self.critic.state_cost(graph, &selected_points)?;
        let parent_cost = nodes[parent as usize].cost;
        let flat_run = if (cost - parent_cost).abs() <= 1e-9 {
            nodes[parent as usize].flat_run + 1
        } else {
            0
        };
        let terminal = terminal_reason(
            selected.len(),
            budget,
            Some(parent_cost),
            cost,
            flat_run,
            self.config.max_flat_run,
        );
        let id = nodes.len() as u32;
        nodes.push(Node {
            selected,
            cost,
            flat_run,
            terminal,
            expanded: false,
            edges: Vec::new(),
            value: None,
        });
        nodes[parent as usize].edges[edge_idx].child = Some(id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt::selector::{MedianHeuristicSelector, UniformSelector};
    use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
    use oarsmt_geom::VertexKind;

    fn cross() -> HananGraph {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        g
    }

    #[test]
    fn two_pin_layout_has_trivial_search() {
        let mut g = HananGraph::uniform(4, 4, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 3, 0)).unwrap();
        let mcts = CombinatorialMcts::new(MctsConfig::tiny());
        let out = mcts.search(&g, &mut UniformSelector::new(0.5)).unwrap();
        assert!(out.executed.is_empty());
        assert_eq!(out.final_cost, out.initial_cost);
        assert!(out.label.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn search_never_worsens_the_executed_cost() {
        let g = cross();
        let mcts = CombinatorialMcts::new(MctsConfig::tiny());
        let out = mcts
            .search(&g, &mut MedianHeuristicSelector::new())
            .unwrap();
        // Terminal rule 2 stops any execution that increases cost, so the
        // executed state can cost at most the initial cost.
        assert!(out.final_cost <= out.initial_cost + 1e-9);
    }

    #[test]
    fn good_selector_finds_the_cross_center() {
        let g = cross();
        let cfg = MctsConfig {
            base_iterations: 64,
            base_size: g.len(),
            ..MctsConfig::default()
        };
        let out = CombinatorialMcts::new(cfg)
            .search(&g, &mut MedianHeuristicSelector::new())
            .unwrap();
        assert!(
            out.executed.contains(&GridPoint::new(2, 2, 0)),
            "executed {:?}",
            out.executed
        );
        assert_eq!(out.final_cost, 8.0);
    }

    #[test]
    fn labels_are_probabilities_on_valid_vertices_only() {
        let g = cross();
        let out = CombinatorialMcts::new(MctsConfig::tiny())
            .search(&g, &mut UniformSelector::new(0.4))
            .unwrap();
        for idx in 0..g.len() {
            let l = out.label[idx];
            assert!((0.0..=1.0).contains(&l));
            if g.kind_at(idx) != VertexKind::Empty {
                assert_eq!(l, 0.0, "pins/obstacles never get opportunities");
            }
        }
        // n_sel <= n_opp everywhere.
        for (s, o) in out.counters.n_sel().iter().zip(out.counters.n_opp()) {
            assert!(s <= o);
        }
    }

    #[test]
    fn executed_combination_is_priority_sorted_and_unique() {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 2, (4, 6)), 2);
        let mcts = CombinatorialMcts::new(MctsConfig::tiny());
        let mut sel = MedianHeuristicSelector::new();
        for g in gen.generate_many(5) {
            let Ok(out) = mcts.search(&g, &mut sel) else {
                continue;
            };
            for w in out.executed.windows(2) {
                assert!(w[0] < w[1], "strictly increasing priority order");
            }
            for p in &out.executed {
                assert_eq!(g.kind(*p), VertexKind::Empty);
            }
        }
    }

    #[test]
    fn critic_free_mode_matches_early_curriculum() {
        let g = cross();
        let cfg = MctsConfig {
            use_critic: false,
            ..MctsConfig::tiny()
        };
        let out = CombinatorialMcts::new(cfg)
            .search(&g, &mut UniformSelector::new(0.5))
            .unwrap();
        assert!(out.final_cost <= out.initial_cost + 1e-9);
        assert!(out.simulations > 0);
    }

    #[test]
    fn node_count_is_reported() {
        let g = cross();
        let out = CombinatorialMcts::new(MctsConfig::tiny())
            .search(&g, &mut UniformSelector::new(0.5))
            .unwrap();
        assert!(out.nodes_created >= 1);
    }
}
