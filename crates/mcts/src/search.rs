//! The combinatorial Monte-Carlo tree search (Section 3.4, Figs. 5–7).

use std::fmt;

use oarsmt::selector::Selector;
use oarsmt::topk::steiner_budget;
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_router::{RouteContext, RouteError};
use oarsmt_telemetry::{Counter, CounterSet};

use crate::actor::{action_policy_into, ActionProb};
use crate::config::MctsConfig;
use crate::critic::Critic;
use crate::label::LabelCounters;
use crate::terminal::{terminal_reason, TerminalReason};

/// Result of one complete combinatorial MCTS on an initial layout.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The dense training label `L_fsp(v)` of Eq. (3), one entry per vertex.
    pub label: Vec<f32>,
    /// The raw `n_sel` / `n_opp` counters behind the label.
    pub counters: LabelCounters,
    /// The executed Steiner-point combination (the terminal root's state),
    /// sorted by selection priority.
    pub executed: Vec<GridPoint>,
    /// Routing cost of the executed terminal state.
    pub final_cost: f64,
    /// Routing cost `rc_{s_0}` of the initial layout (pins only).
    pub initial_cost: f64,
    /// Number of nodes materialized in the search tree (the paper's
    /// search-efficiency claim: combinatorial trees are smaller).
    pub nodes_created: usize,
    /// Number of critic evaluations (leaf simulations).
    pub simulations: usize,
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mcts: {} -> {} cost, {} steiner points, {} nodes, {} sims",
            self.initial_cost,
            self.final_cost,
            self.executed.len(),
            self.nodes_created,
            self.simulations
        )
    }
}

/// An edge of the search tree: the `(s, a)` record with visit count `N`,
/// total value `W`, mean value `Q` and prior `P` (Section 3.4).
#[derive(Debug, Clone)]
struct Edge {
    action: u32,
    child: Option<u32>,
    n: u32,
    w: f64,
    p: f64,
}

impl Edge {
    fn q(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.w / self.n as f64
        }
    }
}

/// A node of the search tree: a unique combination of selected vertices.
///
/// The combination itself is **not stored**: a node records only its parent
/// and the action that created it, and [`reconstruct_selected`] rebuilds the
/// combination by walking parent pointers. Creating a child is therefore
/// O(1) instead of cloning the parent's selection vector.
#[derive(Debug, Clone)]
struct Node {
    /// Parent node, or `None` at the root of the search tree.
    parent: Option<u32>,
    /// The action (vertex index) executed from `parent` to reach this node;
    /// meaningless at the root.
    action: u32,
    /// Number of selected vertices in this state (= tree depth).
    depth: u32,
    /// Routing cost of this state (pins + selected, unpruned OARMST).
    cost: f64,
    /// Consecutive cost-flat actions ending at this node.
    flat_run: u32,
    terminal: TerminalReason,
    expanded: bool,
    edges: Vec<Edge>,
    /// Cached leaf value, so terminal nodes are simulated once.
    value: Option<f64>,
}

/// Rebuilds `node`'s selected combination (vertex indices in selection
/// order, which for the combinatorial search is ascending priority order)
/// into `out` by walking parent pointers root-ward and reversing.
fn reconstruct_selected(nodes: &[Node], node: u32, out: &mut Vec<u32>) {
    out.clear();
    let mut cur = &nodes[node as usize];
    while let Some(parent) = cur.parent {
        out.push(cur.action);
        cur = &nodes[parent as usize];
    }
    out.reverse();
}

/// Scratch buffers borrowed out of the [`RouteContext`] for the duration of
/// one search, so `ctx` stays free for the critic's routing calls.
#[derive(Debug, Default)]
struct SearchBuffers {
    sel_idx: Vec<u32>,
    sel_pts: Vec<GridPoint>,
    fsp: Vec<f32>,
    policy: Vec<ActionProb>,
    /// Selection path of one exploration iteration, reused across all
    /// `α` iterations of a search.
    path: Vec<(u32, usize)>,
    /// Search-side telemetry (expansions, rollouts, backprop steps);
    /// folded into `ctx.counters` when the buffers are restored.
    counters: CounterSet,
}

impl SearchBuffers {
    fn take_from(ctx: &mut RouteContext) -> Self {
        SearchBuffers {
            sel_idx: std::mem::take(&mut ctx.selected_idx),
            sel_pts: std::mem::take(&mut ctx.selected_points),
            fsp: std::mem::take(&mut ctx.fsp),
            policy: Vec::new(),
            path: Vec::new(),
            counters: CounterSet::new(),
        }
    }

    fn restore_to(self, ctx: &mut RouteContext) {
        ctx.selected_idx = self.sel_idx;
        ctx.selected_points = self.sel_pts;
        ctx.fsp = self.fsp;
        ctx.counters.merge_from(&self.counters);
    }

    /// Rebuilds the selected combination of `node` into `sel_idx` /
    /// `sel_pts`.
    fn load_state(&mut self, nodes: &[Node], node: u32, graph: &HananGraph) {
        reconstruct_selected(nodes, node, &mut self.sel_idx);
        self.sel_pts.clear();
        self.sel_pts
            .extend(self.sel_idx.iter().map(|&i| graph.point(i as usize)));
    }
}

/// The combinatorial MCTS driver.
#[derive(Debug)]
pub struct CombinatorialMcts {
    config: MctsConfig,
    critic: Critic,
}

impl CombinatorialMcts {
    /// Creates a search driver with the given configuration.
    pub fn new(config: MctsConfig) -> Self {
        CombinatorialMcts {
            config,
            critic: Critic::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.config
    }

    /// Runs the full search on an initial layout: repeated `α`-iteration
    /// exploration phases, each followed by executing the most-visited root
    /// action, until the root is terminal (Section 3.4). Returns the label
    /// of Eq. (3) plus the executed combination.
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures (e.g. disconnected pins).
    pub fn search<S: Selector>(
        &self,
        graph: &HananGraph,
        selector: &mut S,
    ) -> Result<SearchOutcome, RouteError> {
        self.search_in(&mut RouteContext::new(), graph, selector)
    }

    /// [`CombinatorialMcts::search`] through a caller-owned
    /// [`RouteContext`]: every critic rollout routes through the context's
    /// workspaces, and the selection/inference scratch buffers are borrowed
    /// from it for the duration of the search. One context per worker
    /// thread; results are bit-identical to [`CombinatorialMcts::search`].
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures (e.g. disconnected pins).
    pub fn search_in<S: Selector>(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        selector: &mut S,
    ) -> Result<SearchOutcome, RouteError> {
        let mut bufs = SearchBuffers::take_from(ctx);
        let result = self.search_impl(ctx, &mut bufs, graph, selector);
        bufs.restore_to(ctx);
        result
    }

    fn search_impl<S: Selector>(
        &self,
        ctx: &mut RouteContext,
        bufs: &mut SearchBuffers,
        graph: &HananGraph,
        selector: &mut S,
    ) -> Result<SearchOutcome, RouteError> {
        let budget = steiner_budget(graph.pins().len());
        let alpha = self.config.iterations_for(graph);
        let initial_cost = self.critic.state_cost_in(ctx, graph, &[])?;

        let mut nodes: Vec<Node> = Vec::new();
        nodes.push(Node {
            parent: None,
            action: 0,
            depth: 0,
            cost: initial_cost,
            flat_run: 0,
            terminal: terminal_reason(0, budget, None, initial_cost, 0, self.config.max_flat_run),
            expanded: false,
            edges: Vec::new(),
            value: None,
        });
        let mut counters = LabelCounters::new(graph);
        let mut simulations = 0usize;
        let mut root: u32 = 0;

        while !nodes[root as usize].terminal.is_terminal() {
            for _ in 0..alpha {
                self.explore(
                    ctx,
                    bufs,
                    graph,
                    selector,
                    &mut nodes,
                    root,
                    budget,
                    initial_cost,
                    &mut counters,
                    &mut simulations,
                )?;
            }
            // Execute the most visited root action.
            let best_edge = {
                let node = &nodes[root as usize];
                if node.edges.is_empty() {
                    break; // expansion found no actions
                }
                // lint: panic-ok(unreachable: the is_empty break above already filtered the edgeless case)
                (0..node.edges.len())
                    .max_by(|&a, &b| {
                        let ea = &node.edges[a];
                        let eb = &node.edges[b];
                        ea.n.cmp(&eb.n)
                            .then(ea.q().total_cmp(&eb.q()))
                            .then(eb.action.cmp(&ea.action))
                    })
                    .expect("non-empty edges")
            };
            root = self.materialize_child(ctx, bufs, graph, &mut nodes, root, best_edge, budget)?;
        }

        bufs.load_state(&nodes, root, graph);
        let executed: Vec<GridPoint> = bufs.sel_pts.clone();
        let final_cost = nodes[root as usize].cost;
        Ok(SearchOutcome {
            label: counters.label(),
            counters,
            executed,
            final_cost,
            initial_cost,
            nodes_created: nodes.len(),
            simulations,
        })
    }

    /// One exploration iteration: selection, expansion, simulation,
    /// backpropagation (Fig. 6).
    #[allow(clippy::too_many_arguments)]
    fn explore<S: Selector>(
        &self,
        ctx: &mut RouteContext,
        bufs: &mut SearchBuffers,
        graph: &HananGraph,
        selector: &mut S,
        nodes: &mut Vec<Node>,
        root: u32,
        budget: usize,
        initial_cost: f64,
        counters: &mut LabelCounters,
        simulations: &mut usize,
    ) -> Result<(), RouteError> {
        // Taken (not borrowed) so `bufs` stays free for the calls below;
        // an early `?` return drops the capacity, which only matters on the
        // error path where the whole search aborts anyway.
        let mut path = std::mem::take(&mut bufs.path);
        path.clear();
        let mut cur = root;

        // Selection: descend by Q + U until a leaf (unexpanded or terminal).
        loop {
            let node = &nodes[cur as usize];
            if node.terminal.is_terminal() || !node.expanded {
                break;
            }
            if node.edges.is_empty() {
                break;
            }
            let sum_n: u32 = node.edges.iter().map(|e| e.n).sum();
            let sqrt_sum = (sum_n as f64).sqrt();
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (i, e) in node.edges.iter().enumerate() {
                let u = self.config.exploration * e.p * sqrt_sum / (1.0 + e.n as f64);
                let score = e.q() + u + 1e-12 * e.p; // prior as deterministic tie-break
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            counters.record_step(node.edges[best].action, node.edges.iter().map(|e| e.action));
            path.push((cur, best));
            cur = self.materialize_child(ctx, bufs, graph, nodes, cur, best, budget)?;
        }

        // Expansion + simulation at the leaf.
        let value = if let Some(v) = nodes[cur as usize].value {
            v
        } else {
            let v = if nodes[cur as usize].terminal.is_terminal() {
                // Terminal: value from the state's own routing cost.
                (initial_cost - nodes[cur as usize].cost) / initial_cost
            } else {
                bufs.load_state(nodes, cur, graph);
                // Leaf evals go through the context's eval queue so the
                // selector sees the batched entry point; at B = 1 the
                // flush is bit-identical to a direct `fsp_into_ws` call.
                ctx.evals.clear();
                ctx.evals.push_state(&bufs.sel_pts);
                selector.fsp_batch_into_ws(
                    graph,
                    ctx.evals.pts(),
                    ctx.evals.lens(),
                    &mut bufs.fsp,
                    &mut ctx.nn,
                );
                let last = bufs.sel_idx.last().copied();
                action_policy_into(graph, &bufs.fsp, last, &mut bufs.policy);
                if bufs.policy.is_empty() {
                    nodes[cur as usize].terminal = TerminalReason::NoActions;
                } else {
                    nodes[cur as usize].edges = bufs
                        .policy
                        .iter()
                        .map(|a| Edge {
                            action: a.vertex,
                            child: None,
                            n: 0,
                            w: 0.0,
                            p: a.prob,
                        })
                        .collect();
                    nodes[cur as usize].expanded = true;
                    bufs.counters.bump(Counter::MctsExpansions);
                }
                *simulations += 1;
                bufs.counters.bump(Counter::MctsRollouts);
                let predicted = if self.config.use_critic {
                    self.critic
                        .predict_with_fsp_in(ctx, graph, &bufs.sel_pts, &bufs.fsp)?
                } else {
                    nodes[cur as usize].cost
                };
                (initial_cost - predicted) / initial_cost
            };
            nodes[cur as usize].value = Some(v);
            v
        };

        // Backpropagation: N += 1, W += v, Q = W / N along the path.
        bufs.counters
            .add(Counter::MctsBackpropSteps, path.len() as u64);
        for &(node_id, edge_idx) in &path {
            let e = &mut nodes[node_id as usize].edges[edge_idx];
            e.n += 1;
            e.w += value;
        }
        bufs.path = path;
        Ok(())
    }

    /// Creates (or fetches) the child node behind `edge_idx` of `parent`.
    /// A new child stores only `(parent, action)` — no clone of the
    /// parent's combination.
    #[allow(clippy::too_many_arguments)]
    fn materialize_child(
        &self,
        ctx: &mut RouteContext,
        bufs: &mut SearchBuffers,
        graph: &HananGraph,
        nodes: &mut Vec<Node>,
        parent: u32,
        edge_idx: usize,
        budget: usize,
    ) -> Result<u32, RouteError> {
        if let Some(c) = nodes[parent as usize].edges[edge_idx].child {
            return Ok(c);
        }
        let action = nodes[parent as usize].edges[edge_idx].action;
        bufs.load_state(nodes, parent, graph);
        debug_assert!(bufs.sel_idx.last().is_none_or(|&l| l < action));
        bufs.sel_idx.push(action);
        bufs.sel_pts.push(graph.point(action as usize));
        let cost = self.critic.state_cost_in(ctx, graph, &bufs.sel_pts)?;
        let parent_cost = nodes[parent as usize].cost;
        let flat_run = if (cost - parent_cost).abs() <= 1e-9 {
            nodes[parent as usize].flat_run + 1
        } else {
            0
        };
        let depth = nodes[parent as usize].depth + 1;
        let terminal = terminal_reason(
            depth as usize,
            budget,
            Some(parent_cost),
            cost,
            flat_run,
            self.config.max_flat_run,
        );
        let id = nodes.len() as u32;
        nodes.push(Node {
            parent: Some(parent),
            action,
            depth,
            cost,
            flat_run,
            terminal,
            expanded: false,
            edges: Vec::new(),
            value: None,
        });
        nodes[parent as usize].edges[edge_idx].child = Some(id);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt::selector::{MedianHeuristicSelector, UniformSelector};
    use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
    use oarsmt_geom::VertexKind;

    fn cross() -> HananGraph {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        g
    }

    #[test]
    fn two_pin_layout_has_trivial_search() {
        let mut g = HananGraph::uniform(4, 4, 1, 1.0, 1.0, 3.0);
        g.add_pin(GridPoint::new(0, 0, 0)).unwrap();
        g.add_pin(GridPoint::new(3, 3, 0)).unwrap();
        let mcts = CombinatorialMcts::new(MctsConfig::tiny());
        let out = mcts.search(&g, &mut UniformSelector::new(0.5)).unwrap();
        assert!(out.executed.is_empty());
        assert_eq!(out.final_cost, out.initial_cost);
        assert!(out.label.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn search_never_worsens_the_executed_cost() {
        let g = cross();
        let mcts = CombinatorialMcts::new(MctsConfig::tiny());
        let out = mcts
            .search(&g, &mut MedianHeuristicSelector::new())
            .unwrap();
        // Terminal rule 2 stops any execution that increases cost, so the
        // executed state can cost at most the initial cost.
        assert!(out.final_cost <= out.initial_cost + 1e-9);
    }

    #[test]
    fn good_selector_finds_the_cross_center() {
        let g = cross();
        let cfg = MctsConfig {
            base_iterations: 64,
            base_size: g.len(),
            ..MctsConfig::default()
        };
        let out = CombinatorialMcts::new(cfg)
            .search(&g, &mut MedianHeuristicSelector::new())
            .unwrap();
        assert!(
            out.executed.contains(&GridPoint::new(2, 2, 0)),
            "executed {:?}",
            out.executed
        );
        assert_eq!(out.final_cost, 8.0);
    }

    #[test]
    fn labels_are_probabilities_on_valid_vertices_only() {
        let g = cross();
        let out = CombinatorialMcts::new(MctsConfig::tiny())
            .search(&g, &mut UniformSelector::new(0.4))
            .unwrap();
        for idx in 0..g.len() {
            let l = out.label[idx];
            assert!((0.0..=1.0).contains(&l));
            if g.kind_at(idx) != VertexKind::Empty {
                assert_eq!(l, 0.0, "pins/obstacles never get opportunities");
            }
        }
        // n_sel <= n_opp everywhere.
        for (s, o) in out.counters.n_sel().iter().zip(out.counters.n_opp()) {
            assert!(s <= o);
        }
    }

    #[test]
    fn executed_combination_is_priority_sorted_and_unique() {
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 2, (4, 6)), 2);
        let mcts = CombinatorialMcts::new(MctsConfig::tiny());
        let mut sel = MedianHeuristicSelector::new();
        for g in gen.generate_many(5) {
            let Ok(out) = mcts.search(&g, &mut sel) else {
                continue;
            };
            for w in out.executed.windows(2) {
                assert!(w[0] < w[1], "strictly increasing priority order");
            }
            for p in &out.executed {
                assert_eq!(g.kind(*p), VertexKind::Empty);
            }
        }
    }

    #[test]
    fn critic_free_mode_matches_early_curriculum() {
        let g = cross();
        let cfg = MctsConfig {
            use_critic: false,
            ..MctsConfig::tiny()
        };
        let out = CombinatorialMcts::new(cfg)
            .search(&g, &mut UniformSelector::new(0.5))
            .unwrap();
        assert!(out.final_cost <= out.initial_cost + 1e-9);
        assert!(out.simulations > 0);
    }

    /// Satellite pin: visit tallies captured from the pre-refactor
    /// implementation (each child cloned its parent's `selected` vector).
    /// The parent-pointer representation must reproduce them bit-identically
    /// — any drift means the reconstruction changed the search trajectory.
    #[test]
    fn visit_tallies_match_pre_refactor_goldens() {
        let g = cross();
        let sum = |xs: &[u32]| xs.iter().map(|&x| u64::from(x)).sum::<u64>();

        let out = CombinatorialMcts::new(MctsConfig::tiny())
            .search(&g, &mut UniformSelector::new(0.4))
            .unwrap();
        assert_eq!(sum(out.counters.n_sel()), 9);
        assert_eq!(sum(out.counters.n_opp()), 183);
        assert_eq!(out.nodes_created, 5);
        assert_eq!(out.simulations, 2);
        assert_eq!(out.final_cost, 12.0);
        assert_eq!(out.initial_cost, 12.0);
        assert_eq!(
            out.executed,
            vec![GridPoint::new(0, 0, 0), GridPoint::new(0, 1, 0)]
        );

        let out = CombinatorialMcts::new(MctsConfig::tiny())
            .search(&g, &mut MedianHeuristicSelector::new())
            .unwrap();
        assert_eq!(sum(out.counters.n_sel()), 8);
        assert_eq!(sum(out.counters.n_opp()), 78);
        assert_eq!(out.nodes_created, 7);
        assert_eq!(out.simulations, 3);
        assert_eq!(
            out.executed,
            vec![GridPoint::new(0, 1, 0), GridPoint::new(0, 3, 0)]
        );

        let cfg = MctsConfig {
            base_iterations: 64,
            base_size: g.len(),
            ..MctsConfig::default()
        };
        let out = CombinatorialMcts::new(cfg)
            .search(&g, &mut MedianHeuristicSelector::new())
            .unwrap();
        assert_eq!(sum(out.counters.n_sel()), 183);
        assert_eq!(sum(out.counters.n_opp()), 1335);
        assert_eq!(out.nodes_created, 33);
        assert_eq!(out.simulations, 8);
        assert_eq!(out.final_cost, 8.0);
        assert_eq!(
            out.executed,
            vec![GridPoint::new(1, 2, 0), GridPoint::new(2, 2, 0)]
        );
    }

    #[test]
    fn search_in_with_reused_context_matches_fresh_search() {
        use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
        use oarsmt_router::RouteContext;
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 2, (4, 6)), 11);
        let mcts = CombinatorialMcts::new(MctsConfig::tiny());
        let mut ctx = RouteContext::new(); // reused across every layout
        for g in gen.generate_many(6) {
            let mut sel = MedianHeuristicSelector::new();
            let Ok(fresh) = mcts.search(&g, &mut sel) else {
                continue;
            };
            let reused = mcts.search_in(&mut ctx, &g, &mut sel).unwrap();
            assert_eq!(fresh.executed, reused.executed);
            assert_eq!(fresh.final_cost.to_bits(), reused.final_cost.to_bits());
            assert_eq!(fresh.label, reused.label);
            assert_eq!(fresh.nodes_created, reused.nodes_created);
            assert_eq!(fresh.simulations, reused.simulations);
        }
    }

    #[test]
    fn search_counters_accumulate_into_the_context() {
        use oarsmt_router::RouteContext;
        let g = cross();
        let mcts = CombinatorialMcts::new(MctsConfig::tiny());
        let mut ctx = RouteContext::new();
        let out = mcts
            .search_in(&mut ctx, &g, &mut UniformSelector::new(0.4))
            .unwrap();
        let totals = ctx.counters_total();
        assert_eq!(
            totals.get(Counter::MctsRollouts),
            out.simulations as u64,
            "every critic rollout is counted"
        );
        assert!(totals.get(Counter::MctsExpansions) >= 1);
        assert!(totals.get(Counter::DijkstraPops) > 0, "routing is counted");
        // A second identical search adds an identical delta: counters are
        // deterministic functions of the work, not of the environment.
        let before = ctx.counters_total();
        mcts.search_in(&mut ctx, &g, &mut UniformSelector::new(0.4))
            .unwrap();
        let delta = ctx.counters_total().delta_since(&before);
        assert_eq!(delta.get(Counter::MctsRollouts), out.simulations as u64);
        assert_eq!(
            delta.get(Counter::DijkstraPops),
            before.get(Counter::DijkstraPops)
        );
    }

    #[test]
    fn node_count_is_reported() {
        let g = cross();
        let out = CombinatorialMcts::new(MctsConfig::tiny())
            .search(&g, &mut UniformSelector::new(0.5))
            .unwrap();
        assert!(out.nodes_created >= 1);
    }
}
