//! Conventional (AlphaGo-like) MCTS baseline (Section 4.2).
//!
//! Differences from the combinatorial search:
//!
//! * actions at every level may pick **any** valid vertex — different orders
//!   of the same Steiner-point set are distinct tree paths, so the search
//!   space is redundant;
//! * one training sample is generated **per executed move** (the visit
//!   distribution over the root's children), instead of one dense label per
//!   search tree;
//! * the trained agent is *sequential*: inference selects one Steiner point
//!   at a time and re-runs the network with the grown pin set (`n − 2`
//!   inferences per layout).

use oarsmt::selector::Selector;
use oarsmt::topk::steiner_budget;
use oarsmt_geom::{GridPoint, HananGraph, VertexKind};
use oarsmt_router::{RouteContext, RouteError};
use oarsmt_telemetry::{Counter, CounterSet};

use crate::config::MctsConfig;
use crate::critic::Critic;
use crate::terminal::{terminal_reason, TerminalReason};

/// One per-move training sample of the conventional scheme: the state
/// (already-selected Steiner points, to be encoded as extra pins) and the
/// per-vertex visit distribution.
#[derive(Debug, Clone)]
pub struct AlphaGoSample {
    /// Steiner points selected before this move.
    pub state: Vec<GridPoint>,
    /// Normalized root-visit distribution over all vertices (zeros on
    /// invalid vertices).
    pub label: Vec<f32>,
}

/// Result of one conventional MCTS run.
#[derive(Debug, Clone)]
pub struct AlphaGoOutcome {
    /// One sample per executed move.
    pub samples: Vec<AlphaGoSample>,
    /// The executed Steiner points, in selection order.
    pub executed: Vec<GridPoint>,
    /// Routing cost of the final state.
    pub final_cost: f64,
    /// Pins-only routing cost `rc_{s_0}`.
    pub initial_cost: f64,
    /// Number of nodes materialized (for the search-size comparison against
    /// the combinatorial scheme).
    pub nodes_created: usize,
    /// Number of critic evaluations.
    pub simulations: usize,
}

#[derive(Debug, Clone)]
struct Edge {
    action: u32,
    child: Option<u32>,
    n: u32,
    w: f64,
    p: f64,
}

impl Edge {
    fn q(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.w / self.n as f64
        }
    }
}

/// Like the combinatorial search's node, the selected combination is not
/// stored: children record `(parent, action)` and the combination is
/// rebuilt by walking parent pointers (in selection order, which here is
/// *not* sorted).
#[derive(Debug, Clone)]
struct Node {
    parent: Option<u32>,
    action: u32,
    depth: u32,
    cost: f64,
    flat_run: u32,
    terminal: TerminalReason,
    expanded: bool,
    edges: Vec<Edge>,
    value: Option<f64>,
}

/// Rebuilds `node`'s selected vertices (selection order) into `out`.
fn reconstruct_selected(nodes: &[Node], node: u32, out: &mut Vec<u32>) {
    out.clear();
    let mut cur = &nodes[node as usize];
    while let Some(parent) = cur.parent {
        out.push(cur.action);
        cur = &nodes[parent as usize];
    }
    out.reverse();
}

/// Scratch borrowed out of the [`RouteContext`] for one search.
#[derive(Debug, Default)]
struct SearchBuffers {
    sel_idx: Vec<u32>,
    sel_pts: Vec<GridPoint>,
    fsp: Vec<f32>,
    /// Selection path of one exploration iteration, reused across all
    /// `α` iterations of a search.
    path: Vec<(u32, usize)>,
    /// Search-side telemetry (expansions, rollouts, backprop steps);
    /// folded into `ctx.counters` when the buffers are restored.
    counters: CounterSet,
}

impl SearchBuffers {
    fn take_from(ctx: &mut RouteContext) -> Self {
        SearchBuffers {
            sel_idx: std::mem::take(&mut ctx.selected_idx),
            sel_pts: std::mem::take(&mut ctx.selected_points),
            fsp: std::mem::take(&mut ctx.fsp),
            path: Vec::new(),
            counters: CounterSet::new(),
        }
    }

    fn restore_to(self, ctx: &mut RouteContext) {
        ctx.selected_idx = self.sel_idx;
        ctx.selected_points = self.sel_pts;
        ctx.fsp = self.fsp;
        ctx.counters.merge_from(&self.counters);
    }

    fn load_state(&mut self, nodes: &[Node], node: u32, graph: &HananGraph) {
        reconstruct_selected(nodes, node, &mut self.sel_idx);
        self.sel_pts.clear();
        self.sel_pts
            .extend(self.sel_idx.iter().map(|&i| graph.point(i as usize)));
    }
}

/// The conventional MCTS driver.
#[derive(Debug)]
pub struct AlphaGoMcts {
    config: MctsConfig,
    critic: Critic,
}

impl AlphaGoMcts {
    /// Creates a driver with the given configuration.
    pub fn new(config: MctsConfig) -> Self {
        AlphaGoMcts {
            config,
            critic: Critic::new(),
        }
    }

    /// Runs the conventional search, producing one sample per executed
    /// move.
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures.
    pub fn search<S: Selector>(
        &self,
        graph: &HananGraph,
        selector: &mut S,
    ) -> Result<AlphaGoOutcome, RouteError> {
        self.search_in(&mut RouteContext::new(), graph, selector)
    }

    /// [`AlphaGoMcts::search`] through a caller-owned [`RouteContext`]
    /// (see [`crate::search::CombinatorialMcts::search_in`]).
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures.
    pub fn search_in<S: Selector>(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        selector: &mut S,
    ) -> Result<AlphaGoOutcome, RouteError> {
        let mut bufs = SearchBuffers::take_from(ctx);
        let result = self.search_impl(ctx, &mut bufs, graph, selector);
        bufs.restore_to(ctx);
        result
    }

    fn search_impl<S: Selector>(
        &self,
        ctx: &mut RouteContext,
        bufs: &mut SearchBuffers,
        graph: &HananGraph,
        selector: &mut S,
    ) -> Result<AlphaGoOutcome, RouteError> {
        let budget = steiner_budget(graph.pins().len());
        let alpha = self.config.iterations_for(graph);
        let initial_cost = self.critic.state_cost_in(ctx, graph, &[])?;
        let mut nodes = vec![Node {
            parent: None,
            action: 0,
            depth: 0,
            cost: initial_cost,
            flat_run: 0,
            terminal: terminal_reason(0, budget, None, initial_cost, 0, self.config.max_flat_run),
            expanded: false,
            edges: Vec::new(),
            value: None,
        }];
        let mut samples = Vec::new();
        let mut simulations = 0usize;
        let mut root: u32 = 0;

        while !nodes[root as usize].terminal.is_terminal() {
            for _ in 0..alpha {
                self.explore(
                    ctx,
                    bufs,
                    graph,
                    selector,
                    &mut nodes,
                    root,
                    budget,
                    initial_cost,
                    &mut simulations,
                )?;
            }
            let node = &nodes[root as usize];
            if node.edges.is_empty() {
                break;
            }
            // Per-move label: normalized visit counts.
            let total: u32 = node.edges.iter().map(|e| e.n).sum();
            if total > 0 {
                let mut label = vec![0.0f32; graph.len()];
                for e in &node.edges {
                    label[e.action as usize] = e.n as f32 / total as f32;
                }
                bufs.load_state(&nodes, root, graph);
                samples.push(AlphaGoSample {
                    state: bufs.sel_pts.clone(),
                    label,
                });
            }
            let node = &nodes[root as usize];
            // lint: panic-ok(unreachable: the is_empty break above already filtered the edgeless case and nothing mutates the node in between)
            let best_edge = (0..node.edges.len())
                .max_by(|&a, &b| {
                    let ea = &node.edges[a];
                    let eb = &node.edges[b];
                    ea.n.cmp(&eb.n).then(ea.q().total_cmp(&eb.q()))
                })
                .expect("non-empty edges");
            root = self.materialize_child(ctx, bufs, graph, &mut nodes, root, best_edge, budget)?;
        }

        bufs.load_state(&nodes, root, graph);
        Ok(AlphaGoOutcome {
            samples,
            executed: bufs.sel_pts.clone(),
            final_cost: nodes[root as usize].cost,
            initial_cost,
            nodes_created: nodes.len(),
            simulations,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn explore<S: Selector>(
        &self,
        ctx: &mut RouteContext,
        bufs: &mut SearchBuffers,
        graph: &HananGraph,
        selector: &mut S,
        nodes: &mut Vec<Node>,
        root: u32,
        budget: usize,
        initial_cost: f64,
        simulations: &mut usize,
    ) -> Result<(), RouteError> {
        // Taken (not borrowed) so `bufs` stays free for the calls below.
        let mut path = std::mem::take(&mut bufs.path);
        path.clear();
        let mut cur = root;
        loop {
            let node = &nodes[cur as usize];
            if node.terminal.is_terminal() || !node.expanded || node.edges.is_empty() {
                break;
            }
            let sum_n: u32 = node.edges.iter().map(|e| e.n).sum();
            let sqrt_sum = (sum_n as f64).sqrt();
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (i, e) in node.edges.iter().enumerate() {
                let u = self.config.exploration * e.p * sqrt_sum / (1.0 + e.n as f64);
                let score = e.q() + u + 1e-12 * e.p;
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            path.push((cur, best));
            cur = self.materialize_child(ctx, bufs, graph, nodes, cur, best, budget)?;
        }

        let value = if let Some(v) = nodes[cur as usize].value {
            v
        } else {
            let v = if nodes[cur as usize].terminal.is_terminal() {
                (initial_cost - nodes[cur as usize].cost) / initial_cost
            } else {
                bufs.load_state(nodes, cur, graph);
                // Same queue-and-flush protocol as `search.rs` (B = 1).
                ctx.evals.clear();
                ctx.evals.push_state(&bufs.sel_pts);
                selector.fsp_batch_into_ws(
                    graph,
                    ctx.evals.pts(),
                    ctx.evals.lens(),
                    &mut bufs.fsp,
                    &mut ctx.nn,
                );
                let fsp = &bufs.fsp;
                // Conventional prior: fsp normalized over ALL valid
                // vertices, no priority cutoff.
                let selected_set = &bufs.sel_idx;
                let valid: Vec<(u32, f64)> = (0..graph.len())
                    .filter(|&i| {
                        graph.kind_at(i) == VertexKind::Empty && !selected_set.contains(&(i as u32))
                    })
                    .map(|i| (i as u32, f64::from(fsp[i].clamp(0.0, 1.0))))
                    .collect();
                let total: f64 = valid.iter().map(|&(_, p)| p).sum();
                if valid.is_empty() {
                    nodes[cur as usize].terminal = TerminalReason::NoActions;
                } else {
                    let n = valid.len() as f64;
                    nodes[cur as usize].edges = valid
                        .iter()
                        .map(|&(action, p)| Edge {
                            action,
                            child: None,
                            n: 0,
                            w: 0.0,
                            p: if total > 0.0 { p / total } else { 1.0 / n },
                        })
                        .collect();
                    nodes[cur as usize].expanded = true;
                    bufs.counters.bump(Counter::MctsExpansions);
                }
                *simulations += 1;
                bufs.counters.bump(Counter::MctsRollouts);
                let predicted = if self.config.use_critic {
                    self.critic
                        .predict_with_fsp_in(ctx, graph, &bufs.sel_pts, &bufs.fsp)?
                } else {
                    nodes[cur as usize].cost
                };
                (initial_cost - predicted) / initial_cost
            };
            nodes[cur as usize].value = Some(v);
            v
        };

        bufs.counters
            .add(Counter::MctsBackpropSteps, path.len() as u64);
        for &(node_id, edge_idx) in &path {
            let e = &mut nodes[node_id as usize].edges[edge_idx];
            e.n += 1;
            e.w += value;
        }
        bufs.path = path;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn materialize_child(
        &self,
        ctx: &mut RouteContext,
        bufs: &mut SearchBuffers,
        graph: &HananGraph,
        nodes: &mut Vec<Node>,
        parent: u32,
        edge_idx: usize,
        budget: usize,
    ) -> Result<u32, RouteError> {
        if let Some(c) = nodes[parent as usize].edges[edge_idx].child {
            return Ok(c);
        }
        let action = nodes[parent as usize].edges[edge_idx].action;
        bufs.load_state(nodes, parent, graph);
        bufs.sel_idx.push(action); // selection order preserved (not sorted)
        bufs.sel_pts.push(graph.point(action as usize));
        let cost = self.critic.state_cost_in(ctx, graph, &bufs.sel_pts)?;
        let parent_cost = nodes[parent as usize].cost;
        let flat_run = if (cost - parent_cost).abs() <= 1e-9 {
            nodes[parent as usize].flat_run + 1
        } else {
            0
        };
        let depth = nodes[parent as usize].depth + 1;
        let terminal = terminal_reason(
            depth as usize,
            budget,
            Some(parent_cost),
            cost,
            flat_run,
            self.config.max_flat_run,
        );
        let id = nodes.len() as u32;
        nodes.push(Node {
            parent: Some(parent),
            action,
            depth,
            cost,
            flat_run,
            terminal,
            expanded: false,
            edges: Vec::new(),
            value: None,
        });
        nodes[parent as usize].edges[edge_idx].child = Some(id);
        Ok(id)
    }
}

/// Sequential inference with a trained (or heuristic) selector: select one
/// Steiner point at a time, feeding each selection back as a pin — the
/// test-time behaviour of the AlphaGo-like and PPO baselines, requiring
/// `n − 2` network inferences. Returns the selected points.
pub fn sequential_select<S: Selector>(graph: &HananGraph, selector: &mut S) -> Vec<GridPoint> {
    let budget = steiner_budget(graph.pins().len());
    let mut selected: Vec<GridPoint> = Vec::new();
    for _ in 0..budget {
        let fsp = selector.fsp(graph, &selected);
        let next = oarsmt::topk::select_top_k(graph, &fsp, 1, &selected);
        match next.first() {
            Some(&p) => selected.push(p),
            None => break,
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::CombinatorialMcts;
    use oarsmt::selector::{MedianHeuristicSelector, UniformSelector};

    fn cross() -> HananGraph {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        g
    }

    #[test]
    fn per_move_samples_are_distributions() {
        let g = cross();
        let out = AlphaGoMcts::new(MctsConfig::tiny())
            .search(&g, &mut UniformSelector::new(0.5))
            .unwrap();
        for s in &out.samples {
            let sum: f32 = s.label.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "labels are distributions");
            for &l in &s.label {
                assert!((0.0..=1.0).contains(&l));
            }
        }
    }

    #[test]
    fn conventional_tree_is_larger_than_combinatorial() {
        // The paper's efficiency claim: with the same iteration budget and
        // an uncommitted (training-start) selector, the priority-ordered
        // action space materializes fewer nodes in total.
        use oarsmt_geom::gen::{CaseGenerator, GeneratorConfig};
        let cfg = MctsConfig {
            base_iterations: 32,
            base_size: 6 * 6, // 6x6x1 grid
            ..MctsConfig::default()
        };
        let mut gen = CaseGenerator::new(GeneratorConfig::tiny(6, 6, 1, (4, 6)), 17);
        let mut sel = UniformSelector::new(0.5);
        let (mut comb_nodes, mut conv_nodes) = (0usize, 0usize);
        for g in gen.generate_many(6) {
            let Ok(comb) = CombinatorialMcts::new(cfg.clone()).search(&g, &mut sel) else {
                continue;
            };
            let conv = AlphaGoMcts::new(cfg.clone()).search(&g, &mut sel).unwrap();
            comb_nodes += comb.nodes_created;
            conv_nodes += conv.nodes_created;
        }
        assert!(
            conv_nodes > comb_nodes,
            "conventional {conv_nodes} vs combinatorial {comb_nodes}"
        );
    }

    #[test]
    fn executed_cost_never_exceeds_initial() {
        let g = cross();
        let out = AlphaGoMcts::new(MctsConfig::tiny())
            .search(&g, &mut MedianHeuristicSelector::new())
            .unwrap();
        assert!(out.final_cost <= out.initial_cost + 1e-9);
    }

    #[test]
    fn sequential_select_needs_one_inference_per_point() {
        /// Counts selector invocations.
        struct Counting {
            inner: MedianHeuristicSelector,
            calls: usize,
        }
        impl Selector for Counting {
            fn fsp(&mut self, g: &HananGraph, e: &[GridPoint]) -> Vec<f32> {
                self.calls += 1;
                self.inner.fsp(g, e)
            }
        }
        let g = cross(); // 4 pins -> budget 2
        let mut s = Counting {
            inner: MedianHeuristicSelector::new(),
            calls: 0,
        };
        let pts = sequential_select(&g, &mut s);
        assert_eq!(pts.len(), 2);
        assert_eq!(s.calls, 2, "sequential agents pay n-2 inferences");
    }
}
