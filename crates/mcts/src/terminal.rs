//! Terminal-state rules of the combinatorial MCTS (Section 3.4).
//!
//! A node is terminal — no child will be explored — when any of:
//!
//! 1. it sits at level `n − 2` (the Steiner budget is exhausted),
//! 2. its last action **increased** the routing cost,
//! 3. the routing cost stayed the same for three consecutive actions
//!    ([`MctsConfig::max_flat_run`](crate::config::MctsConfig) in general).
//!
//! These rules prune combinations that cannot help, which is where much of
//! the search-efficiency win over conventional MCTS comes from.

use serde::{Deserialize, Serialize};

/// Why a node is terminal (or [`TerminalReason::NotTerminal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminalReason {
    /// The node is expandable.
    NotTerminal,
    /// Criterion 1: `n − 2` Steiner points already selected.
    BudgetExhausted,
    /// Criterion 2: the last action increased the routing cost.
    CostIncreased,
    /// Criterion 3: the cost was flat for the configured number of
    /// consecutive actions.
    CostFlat,
    /// No valid action remains (every lower-priority vertex is occupied).
    NoActions,
}

impl TerminalReason {
    /// Whether the reason marks a terminal node.
    pub fn is_terminal(self) -> bool {
        self != TerminalReason::NotTerminal
    }
}

/// Evaluates the terminal rules for a node.
///
/// * `level` — number of selected Steiner points in the state.
/// * `budget` — `n − 2` for an `n`-pin layout.
/// * `parent_cost` — routing cost of the parent state (`None` at the root).
/// * `cost` — routing cost of this state.
/// * `flat_run` — number of consecutive ancestors (including this node's
///   action) whose action left the cost unchanged.
/// * `max_flat_run` — criterion-3 threshold.
pub fn terminal_reason(
    level: usize,
    budget: usize,
    parent_cost: Option<f64>,
    cost: f64,
    flat_run: u32,
    max_flat_run: u32,
) -> TerminalReason {
    if level >= budget {
        return TerminalReason::BudgetExhausted;
    }
    if let Some(pc) = parent_cost {
        if cost > pc + 1e-9 {
            return TerminalReason::CostIncreased;
        }
    }
    if flat_run >= max_flat_run {
        return TerminalReason::CostFlat;
    }
    TerminalReason::NotTerminal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_rule_fires_at_n_minus_2() {
        assert_eq!(
            terminal_reason(3, 3, Some(10.0), 9.0, 0, 3),
            TerminalReason::BudgetExhausted
        );
        assert_eq!(
            terminal_reason(2, 3, Some(10.0), 9.0, 0, 3),
            TerminalReason::NotTerminal
        );
    }

    #[test]
    fn cost_increase_rule() {
        assert_eq!(
            terminal_reason(1, 5, Some(10.0), 10.5, 0, 3),
            TerminalReason::CostIncreased
        );
        // Equal cost is not an increase.
        assert_eq!(
            terminal_reason(1, 5, Some(10.0), 10.0, 1, 3),
            TerminalReason::NotTerminal
        );
        // Decrease is fine.
        assert_eq!(
            terminal_reason(1, 5, Some(10.0), 8.0, 0, 3),
            TerminalReason::NotTerminal
        );
    }

    #[test]
    fn flat_run_rule() {
        assert_eq!(
            terminal_reason(2, 9, Some(10.0), 10.0, 3, 3),
            TerminalReason::CostFlat
        );
        assert_eq!(
            terminal_reason(2, 9, Some(10.0), 10.0, 2, 3),
            TerminalReason::NotTerminal
        );
    }

    #[test]
    fn root_has_no_parent_cost() {
        assert_eq!(
            terminal_reason(0, 4, None, 42.0, 0, 3),
            TerminalReason::NotTerminal
        );
        // Zero budget makes even the root terminal.
        assert_eq!(
            terminal_reason(0, 0, None, 42.0, 0, 3),
            TerminalReason::BudgetExhausted
        );
    }

    #[test]
    fn is_terminal_helper() {
        assert!(!TerminalReason::NotTerminal.is_terminal());
        assert!(TerminalReason::BudgetExhausted.is_terminal());
        assert!(TerminalReason::NoActions.is_terminal());
    }
}
