//! MCTS configuration.

use std::fmt;

use oarsmt_geom::HananGraph;
use serde::{Deserialize, Serialize};

/// Configuration shared by the combinatorial and conventional searches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MctsConfig {
    /// Exploration iterations per executed action for the reference layout
    /// size. The paper uses `α = 2000` for `16×16×4` layouts "scaling it
    /// for a larger layout proportionally to the size increase"; this
    /// reproduction defaults to a laptop-scale 64.
    pub base_iterations: usize,
    /// Vertex count of the reference layout the iteration budget is
    /// calibrated for (`16·16·4` in the paper).
    pub base_size: usize,
    /// Consecutive equal-cost actions after which a state is terminal
    /// (criterion 3 of Section 3.4; the paper uses 3).
    pub max_flat_run: u32,
    /// Multiplier on the UCT exploration term `U(s, a)`.
    pub exploration: f64,
    /// Whether the critic completes states before pricing them. The paper
    /// disables this during the first curriculum stages ("we do not use the
    /// critic's predicted values ... instead, we directly calculate the
    /// routing cost resulting from the already selected Steiner points").
    pub use_critic: bool,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            base_iterations: 64,
            base_size: 16 * 16 * 4,
            max_flat_run: 3,
            exploration: 1.0,
            use_critic: true,
        }
    }
}

impl MctsConfig {
    /// A very small budget for unit tests.
    pub fn tiny() -> Self {
        MctsConfig {
            base_iterations: 12,
            ..MctsConfig::default()
        }
    }

    /// The iteration budget for a graph, scaled proportionally to its
    /// vertex count as in the paper (never below 4).
    pub fn iterations_for(&self, graph: &HananGraph) -> usize {
        let scaled = self.base_iterations * graph.len() / self.base_size.max(1);
        scaled.max(self.base_iterations.min(4)).max(4)
    }
}

impl fmt::Display for MctsConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mcts: {} iters @ {} vertices, flat-run {}, critic {}",
            self.base_iterations, self.base_size, self.max_flat_run, self.use_critic
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_scale_with_graph_size() {
        let cfg = MctsConfig {
            base_iterations: 100,
            base_size: 100,
            ..MctsConfig::default()
        };
        let small = HananGraph::uniform(5, 5, 2, 1.0, 1.0, 3.0); // 50
        let base = HananGraph::uniform(10, 10, 1, 1.0, 1.0, 3.0); // 100
        let big = HananGraph::uniform(10, 10, 4, 1.0, 1.0, 3.0); // 400
        assert_eq!(cfg.iterations_for(&small), 50);
        assert_eq!(cfg.iterations_for(&base), 100);
        assert_eq!(cfg.iterations_for(&big), 400);
    }

    #[test]
    fn iterations_never_hit_zero() {
        let cfg = MctsConfig {
            base_iterations: 8,
            base_size: 1_000_000,
            ..MctsConfig::default()
        };
        let g = HananGraph::uniform(2, 2, 1, 1.0, 1.0, 3.0);
        assert!(cfg.iterations_for(&g) >= 4);
    }
}
