//! The actor: converting the selector's independent per-vertex
//! probabilities into a sequential action policy (Eq. 1 of the paper).
//!
//! The Steiner-point selector outputs a *final selected probability*
//! `fsp(v)` per vertex whose sum exceeds one (multiple vertices are selected
//! at once), so it cannot directly act as an MCTS policy. The actor
//! re-weights it along the selection-priority order: for a valid vertex `u`
//! with the last selected point `w`,
//!
//! `p'(u) = fsp(u) × Π_{w < v < u, v valid} (1 − fsp(v))`
//!
//! — the probability that `u` is selected *and* every valid vertex between
//! `w` and `u` is skipped — then normalizes over all valid vertices.

use oarsmt_geom::{HananGraph, VertexKind};

/// One action of the policy: a vertex (by linear index) and its normalized
/// selection probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionProb {
    /// Linear vertex index of the action.
    pub vertex: u32,
    /// Normalized policy probability.
    pub prob: f64,
}

/// Computes the action policy for a state.
///
/// * `fsp` — the selector's probabilities for the state (selected Steiner
///   points already encoded as pins).
/// * `last_selected` — linear index of the last selected Steiner point, or
///   `None` at the root. Only vertices with a strictly larger index (lower
///   selection priority) are valid actions.
///
/// Returns an empty vector when no valid action exists. Probabilities sum
/// to 1 otherwise.
///
/// # Panics
///
/// Panics if `fsp.len() != graph.len()`.
pub fn action_policy(
    graph: &HananGraph,
    fsp: &[f32],
    last_selected: Option<u32>,
) -> Vec<ActionProb> {
    let mut out = Vec::new();
    action_policy_into(graph, fsp, last_selected, &mut out);
    out
}

/// [`action_policy`] into a caller-owned buffer, which is cleared first.
/// The search reuses one buffer per expansion instead of allocating a
/// policy vector on every simulation.
///
/// # Panics
///
/// Panics if `fsp.len() != graph.len()`.
pub fn action_policy_into(
    graph: &HananGraph,
    fsp: &[f32],
    last_selected: Option<u32>,
    out: &mut Vec<ActionProb>,
) {
    assert_eq!(fsp.len(), graph.len());
    out.clear();
    let start = last_selected.map_or(0, |w| w as usize + 1);
    // Running product of (1 - fsp(v)) over valid vertices with higher
    // priority than the current candidate (and lower than w).
    let mut skip_product = 1.0f64;
    for (idx, &f) in fsp.iter().enumerate().skip(start) {
        if graph.kind_at(idx) != VertexKind::Empty {
            continue;
        }
        let p = f64::from(f.clamp(0.0, 1.0));
        let w = p * skip_product;
        if w > 0.0 {
            out.push(ActionProb {
                vertex: idx as u32,
                prob: w,
            });
        }
        skip_product *= 1.0 - p;
    }
    let total: f64 = out.iter().map(|a| a.prob).sum();
    if total <= 0.0 {
        // Degenerate selector (all zeros): fall back to uniform over valid
        // vertices so the search can still progress.
        out.clear();
        out.extend(
            (start..graph.len())
                .filter(|&i| graph.kind_at(i) == VertexKind::Empty)
                .map(|i| ActionProb {
                    vertex: i as u32,
                    prob: 0.0,
                }),
        );
        let n = out.len() as f64;
        for a in out.iter_mut() {
            a.prob = 1.0 / n;
        }
        return;
    }
    for a in out.iter_mut() {
        a.prob /= total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt_geom::GridPoint;

    fn line_graph(len: usize) -> HananGraph {
        HananGraph::uniform(len, 1, 1, 1.0, 1.0, 3.0)
    }

    #[test]
    fn policy_sums_to_one() {
        let g = line_graph(6);
        let fsp = vec![0.3, 0.9, 0.1, 0.5, 0.0, 0.7];
        let policy = action_policy(&g, &fsp, None);
        let sum: f64 = policy.iter().map(|a| a.prob).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn telescoping_weights_match_eq1_by_hand() {
        let g = line_graph(3);
        let fsp = vec![0.5, 0.5, 0.5];
        let policy = action_policy(&g, &fsp, None);
        // p'(0) = 0.5; p'(1) = 0.5*0.5; p'(2) = 0.5*0.25.
        // Normalized: 4/7, 2/7, 1/7.
        assert_eq!(policy.len(), 3);
        assert!((policy[0].prob - 4.0 / 7.0).abs() < 1e-12);
        assert!((policy[1].prob - 2.0 / 7.0).abs() < 1e-12);
        assert!((policy[2].prob - 1.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn respects_priority_cutoff() {
        let g = line_graph(5);
        let fsp = vec![0.9; 5];
        let policy = action_policy(&g, &fsp, Some(2));
        let vertices: Vec<u32> = policy.iter().map(|a| a.vertex).collect();
        assert_eq!(vertices, vec![3, 4]);
    }

    #[test]
    fn pins_and_obstacles_are_invalid_and_skipped_in_the_product() {
        let mut g = line_graph(4);
        g.add_pin(GridPoint::new(1, 0, 0)).unwrap();
        g.add_obstacle_vertex(GridPoint::new(2, 0, 0)).unwrap();
        let fsp = vec![0.5, 1.0, 1.0, 0.5];
        let policy = action_policy(&g, &fsp, None);
        // Valid: 0 and 3. Invalid vertices must NOT contribute (1 - fsp)
        // factors, so p'(3) = 0.5 * (1 - 0.5) = 0.25.
        assert_eq!(policy.len(), 2);
        assert_eq!(policy[0].vertex, 0);
        assert_eq!(policy[1].vertex, 3);
        assert!((policy[0].prob - 0.5 / 0.75).abs() < 1e-12);
        assert!((policy[1].prob - 0.25 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_zero_selector_falls_back_to_uniform() {
        let g = line_graph(4);
        let fsp = vec![0.0; 4];
        let policy = action_policy(&g, &fsp, Some(0));
        assert_eq!(policy.len(), 3);
        for a in &policy {
            assert!((a.prob - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn no_valid_action_gives_empty_policy() {
        let g = line_graph(3);
        let fsp = vec![0.5; 3];
        assert!(action_policy(&g, &fsp, Some(2)).is_empty());
    }

    #[test]
    fn certain_vertex_absorbs_following_probability() {
        let g = line_graph(3);
        let fsp = vec![0.2, 1.0, 0.9];
        let policy = action_policy(&g, &fsp, None);
        // fsp(1) = 1 makes the skip product 0 beyond it: vertex 2 gets 0.
        assert_eq!(policy.len(), 2);
        assert_eq!(policy[0].vertex, 0);
        assert_eq!(policy[1].vertex, 1);
        let sum: f64 = policy.iter().map(|a| a.prob).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
