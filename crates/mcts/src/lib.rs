//! Combinatorial Monte-Carlo tree search — the paper's training-signal
//! engine (Sections 3.4–3.5) — plus the conventional AlphaGo-like MCTS
//! baseline (Section 4.2).
//!
//! The **combinatorial** MCTS explores Steiner-point *combinations*: an
//! action may only select a vertex with lower selection priority (larger
//! lexicographic `(h, v, m)`) than the previously selected one, so every
//! node of the search tree is a unique combination and no permutation is
//! searched twice. Its [`actor`] converts the Steiner-point selector's
//! independent per-vertex probabilities into a sequential action policy
//! (Eq. 1), its [`critic`] completes a partial state with the top remaining
//! probabilities and prices the tree with the OARMST router, and the label
//! statistic `L_fsp(v) = n_sel(v) / n_opp(v)` (Eq. 3) over the whole search
//! tree becomes a dense supervised target for the selector.
//!
//! The **conventional** baseline in [`alphago`] searches ordered sequences
//! (any valid vertex at every level) and emits one visit-distribution label
//! per executed move — the scheme of \[4\]/AlphaGo that the paper compares
//! against in Figs. 11–12.

#![forbid(unsafe_code)]

pub mod actor;
pub mod alphago;
pub mod config;
pub mod critic;
pub mod label;
pub mod search;
pub mod terminal;

pub use actor::action_policy;
pub use alphago::{AlphaGoMcts, AlphaGoSample};
pub use config::MctsConfig;
pub use critic::Critic;
pub use label::LabelCounters;
pub use search::{CombinatorialMcts, SearchOutcome};

// The parallel sample-generation path (`oarsmt_rl`) fans one search per
// worker thread: the engines and their outcomes must stay `Send + Sync`.
// Keeping the assertion here turns an accidental `Rc`/`RefCell` in search
// state into a compile error instead of a distant one in `oarsmt_rl`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CombinatorialMcts>();
    assert_send_sync::<AlphaGoMcts>();
    assert_send_sync::<SearchOutcome>();
    assert_send_sync::<AlphaGoSample>();
    assert_send_sync::<MctsConfig>();
    assert_send_sync::<Critic>();
    assert_send_sync::<LabelCounters>();
};
