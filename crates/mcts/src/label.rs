//! The `n_sel` / `n_opp` counters and the label of Eq. (3).
//!
//! Every selection step of the MCTS updates, for the node where a decision
//! was made: `n_sel(v) += 1` for the chosen vertex `v`, and
//! `n_opp(u) += 1` for **every** vertex `u` that was a valid action at that
//! node (Fig. 7). After the whole search tree is built, the training label
//! is `L_fsp(v) = n_sel(v) / n_opp(v)` — the empirical probability that the
//! UCT-guided search takes `v` when it has the opportunity.

use oarsmt_geom::HananGraph;
use serde::{Deserialize, Serialize};

/// Per-vertex selection/opportunity counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelCounters {
    n_sel: Vec<u32>,
    n_opp: Vec<u32>,
}

impl LabelCounters {
    /// Creates zeroed counters for a graph.
    pub fn new(graph: &HananGraph) -> Self {
        LabelCounters {
            n_sel: vec![0; graph.len()],
            n_opp: vec![0; graph.len()],
        }
    }

    /// Records one selection step: `chosen` was taken among the
    /// `opportunities`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `chosen` is not among the opportunities.
    pub fn record_step<I: IntoIterator<Item = u32>>(&mut self, chosen: u32, opportunities: I) {
        let mut saw_chosen = false;
        for u in opportunities {
            self.n_opp[u as usize] += 1;
            saw_chosen |= u == chosen;
        }
        debug_assert!(saw_chosen, "chosen action must be a valid opportunity");
        self.n_sel[chosen as usize] += 1;
    }

    /// Selection counts per vertex.
    pub fn n_sel(&self) -> &[u32] {
        &self.n_sel
    }

    /// Opportunity counts per vertex.
    pub fn n_opp(&self) -> &[u32] {
        &self.n_opp
    }

    /// The label array of Eq. (3): `n_sel(v) / n_opp(v)`, with 0 where a
    /// vertex never had an opportunity.
    pub fn label(&self) -> Vec<f32> {
        self.n_sel
            .iter()
            .zip(&self.n_opp)
            .map(|(&s, &o)| if o == 0 { 0.0 } else { s as f32 / o as f32 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> HananGraph {
        HananGraph::uniform(4, 1, 1, 1.0, 1.0, 3.0)
    }

    #[test]
    fn label_is_sel_over_opp() {
        let g = graph();
        let mut c = LabelCounters::new(&g);
        // Two steps: choose 1 among {0,1,2}, then choose 2 among {2,3}.
        c.record_step(1, [0, 1, 2]);
        c.record_step(2, [2, 3]);
        assert_eq!(c.n_sel(), &[0, 1, 1, 0]);
        assert_eq!(c.n_opp(), &[1, 1, 2, 1]);
        let label = c.label();
        assert_eq!(label, vec![0.0, 1.0, 0.5, 0.0]);
    }

    #[test]
    fn never_offered_vertices_get_zero() {
        let g = graph();
        let c = LabelCounters::new(&g);
        assert!(c.label().iter().all(|&l| l == 0.0));
    }

    #[test]
    fn labels_stay_in_unit_interval() {
        let g = graph();
        let mut c = LabelCounters::new(&g);
        for _ in 0..10 {
            c.record_step(0, [0, 1]);
        }
        for &l in &c.label() {
            assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "valid opportunity")]
    fn chosen_outside_opportunities_is_a_bug() {
        let g = graph();
        let mut c = LabelCounters::new(&g);
        c.record_step(3, [0, 1]);
    }
}
