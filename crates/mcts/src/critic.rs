//! The critic: predicting the final routing cost of a partial state
//! (orange box of Fig. 5).
//!
//! For a state at level `i` (with `i` Steiner points selected), the critic
//! queries the Steiner-point selector for the final selected probabilities,
//! completes the state with the top `n − 2 − i` remaining valid vertices,
//! runs the OARMST router over pins + all Steiner points, and reports the
//! resulting cost.

use oarsmt::selector::Selector;
use oarsmt::topk::{select_top_k_into, steiner_budget};
use oarsmt_geom::{GridPoint, HananGraph};
use oarsmt_router::{OarmstRouter, QueuePolicy, RouteContext, RouteError};

/// The critic built on top of a Steiner-point selector.
#[derive(Debug)]
pub struct Critic {
    oarmst: OarmstRouter,
}

impl Default for Critic {
    fn default() -> Self {
        Critic {
            oarmst: OarmstRouter::new(),
        }
    }
}

impl Critic {
    /// Creates a critic.
    pub fn new() -> Self {
        Critic::default()
    }

    /// Selects the [`QueuePolicy`] for the critic's OARMST maze queries
    /// (builder style; default `Auto`, which is bit-identical to the heap
    /// oracle — see DESIGN.md §12).
    #[must_use]
    pub fn with_queue_policy(mut self, policy: QueuePolicy) -> Self {
        self.oarmst = self.oarmst.with_queue_policy(policy);
        self
    }

    /// Predicts the final routing cost of a state given the selector's
    /// `fsp` for that state (so callers can reuse one inference for both
    /// the actor and the critic).
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures.
    pub fn predict_with_fsp(
        &self,
        graph: &HananGraph,
        selected: &[GridPoint],
        fsp: &[f32],
    ) -> Result<f64, RouteError> {
        self.predict_with_fsp_in(&mut RouteContext::new(), graph, selected, fsp)
    }

    /// [`Critic::predict_with_fsp`] through a caller-owned
    /// [`RouteContext`]: the completed state is assembled in the context's
    /// completion buffer and priced with the context's routing workspaces —
    /// no per-call allocation on the MCTS simulation hot path.
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures.
    pub fn predict_with_fsp_in(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        selected: &[GridPoint],
        fsp: &[f32],
    ) -> Result<f64, RouteError> {
        let budget = steiner_budget(graph.pins().len());
        let remaining = budget.saturating_sub(selected.len());
        // Take the buffer out so `ctx` stays free for the routing call.
        let mut all = std::mem::take(&mut ctx.completion);
        all.clear();
        all.extend_from_slice(selected);
        select_top_k_into(
            graph,
            fsp,
            remaining,
            selected,
            &mut ctx.scored,
            &mut ctx.excluded,
            &mut all,
        );
        let cost = self.oarmst.route_cost_in(ctx, graph, &all);
        ctx.completion = all;
        cost
    }

    /// Predicts the final routing cost of a state, running the selector
    /// itself.
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures.
    pub fn predict<S: Selector>(
        &self,
        graph: &HananGraph,
        selected: &[GridPoint],
        selector: &mut S,
    ) -> Result<f64, RouteError> {
        let fsp = selector.fsp(graph, selected);
        self.predict_with_fsp(graph, selected, &fsp)
    }

    /// The raw routing cost of a state *without* completion: pins plus the
    /// already-selected Steiner points (unpruned). Used instead of the
    /// prediction during early curriculum stages and for the terminal
    /// rules.
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures.
    pub fn state_cost(
        &self,
        graph: &HananGraph,
        selected: &[GridPoint],
    ) -> Result<f64, RouteError> {
        self.state_cost_in(&mut RouteContext::new(), graph, selected)
    }

    /// [`Critic::state_cost`] through a caller-owned [`RouteContext`].
    ///
    /// # Errors
    ///
    /// Propagates OARMST routing failures.
    pub fn state_cost_in(
        &self,
        ctx: &mut RouteContext,
        graph: &HananGraph,
        selected: &[GridPoint],
    ) -> Result<f64, RouteError> {
        self.oarmst.cost_unpruned_in(ctx, graph, selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oarsmt::selector::{MedianHeuristicSelector, UniformSelector};
    use oarsmt_geom::GridPoint;

    fn cross() -> HananGraph {
        let mut g = HananGraph::uniform(5, 5, 1, 1.0, 1.0, 3.0);
        for &(h, v) in &[(0, 2), (4, 2), (2, 0), (2, 4)] {
            g.add_pin(GridPoint::new(h, v, 0)).unwrap();
        }
        g
    }

    #[test]
    fn critic_with_good_selector_predicts_low_cost() {
        let g = cross();
        let critic = Critic::new();
        let mut good = MedianHeuristicSelector::new();
        let predicted = critic.predict(&g, &[], &mut good).unwrap();
        // The heuristic puts the center first; a 4-pin cross with the
        // center costs 8.
        assert_eq!(predicted, 8.0);
    }

    #[test]
    fn critic_completion_respects_already_selected_points() {
        let g = cross();
        let critic = Critic::new();
        let mut sel = UniformSelector::new(0.5);
        let center = GridPoint::new(2, 2, 0);
        // With the center already fixed, completion adds at most 1 more
        // point; the state's final cost can't exceed the unpruned cost of
        // center + one extra stub... but must at least span the cross.
        let cost = critic.predict(&g, &[center], &mut sel).unwrap();
        assert!(cost >= 8.0);
    }

    #[test]
    fn state_cost_is_unpruned() {
        let g = cross();
        let critic = Critic::new();
        let empty = critic.state_cost(&g, &[]).unwrap();
        let with_center = critic.state_cost(&g, &[GridPoint::new(2, 2, 0)]).unwrap();
        assert_eq!(with_center, 8.0);
        assert!(empty >= with_center);
        // A bad Steiner point strictly increases the unpruned cost.
        let with_bad = critic.state_cost(&g, &[GridPoint::new(4, 4, 0)]).unwrap();
        assert!(with_bad > with_center);
    }
}
