//! Quick scalar-vs-SIMD forward/backward throughput probe at selector
//! scale. Not a recorded benchmark — the honest numbers live in
//! `oarsmt-bench` (`unet_throughput --simd`); this exists to sanity-check
//! kernel dispatch and speedup interactively:
//! `cargo run --release -p oarsmt-nn --features simd --example simd_probe`.

use oarsmt_nn::init::Initializer;
use oarsmt_nn::layer::Layer;
use oarsmt_nn::unet::{UNet3d, UNetConfig};
use oarsmt_nn::{simd_available, KernelPolicy, NnWorkspace};
use std::time::Instant;

fn bench(label: &str, shape: &[usize], policy: KernelPolicy, iters: usize) -> f64 {
    let mut net = UNet3d::new(UNetConfig {
        in_channels: 7,
        base_channels: 8,
        levels: 2,
        seed: 0xDAC2024,
    });
    let x = Initializer::new(42).uniform(shape, 1.0);
    let mut ws = NnWorkspace::new();
    ws.set_kernel_policy(policy);
    // Warm the pool.
    let y = net.predict_in(&x, &mut ws);
    ws.free(y);
    ws.enable_profiling();
    let t0 = Instant::now();
    for _ in 0..iters {
        let y = net.predict_in(&x, &mut ws);
        ws.free(y);
    }
    let fwd = t0.elapsed().as_secs_f64() / iters as f64;
    let spans = ws.take_spans();
    for (name, st) in spans.iter() {
        if st.count > 0 {
            println!(
                "    {name:14} {:8.3} ms  ({} calls)",
                st.total_ns as f64 / 1e6 / iters as f64,
                st.count
            );
        }
    }

    // Train step: forward + backward.
    let gseed = Initializer::new(43).uniform(&[1, shape[1], shape[2], shape[3]], 1.0);
    let t0 = Instant::now();
    let titers = iters.div_ceil(3);
    for _ in 0..titers {
        let y = net.forward_in(&x, &mut ws);
        ws.free(y);
        let g = ws.alloc_copy(&gseed);
        let gi = net.backward_in(g, &mut ws);
        ws.free(gi);
    }
    let train = t0.elapsed().as_secs_f64() / titers as f64;
    println!(
        "{label:22} fwd {:8.3} ms   train {:8.3} ms",
        fwd * 1e3,
        train * 1e3
    );
    fwd
}

fn main() {
    println!("simd_available = {}", simd_available());
    for (name, shape, iters) in [
        ("S24 [7,24,24,2]", [7usize, 24, 24, 2], 60usize),
        ("S48 [7,48,48,3]", [7, 48, 48, 3], 16),
    ] {
        let s = bench(
            &format!("{name} scalar"),
            &shape,
            KernelPolicy::Scalar,
            iters,
        );
        let v = bench(&format!("{name} simd"), &shape, KernelPolicy::Simd, iters);
        println!("{name}: fwd speedup {:.2}x", s / v);
    }
}
