//! Property-based tests for the neural-network substrate: gradient
//! correctness on random shapes, shape preservation, serialization
//! robustness.

use oarsmt_nn::activation::{Relu, Sigmoid};
use oarsmt_nn::conv3d::Conv3d;
use oarsmt_nn::gradcheck::check_layer_gradients;
use oarsmt_nn::init::Initializer;
use oarsmt_nn::layer::Layer;
use oarsmt_nn::loss::bce_with_logits;
use oarsmt_nn::pool::{pooled, MaxPool3d};
use oarsmt_nn::serialize::{load_params, save_params};
use oarsmt_nn::tensor::Tensor;
use oarsmt_nn::unet::{UNet3d, UNetConfig};
use oarsmt_nn::upsample::Upsample3d;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv3d_gradients_hold_on_random_shapes(
        in_c in 1usize..3,
        out_c in 1usize..3,
        d1 in 1usize..4,
        d2 in 1usize..4,
        d3 in 1usize..3,
        seed in 0u64..1000,
    ) {
        let mut conv = Conv3d::new(in_c, out_c, 3, &mut Initializer::new(seed));
        let x = Initializer::new(seed ^ 1).uniform(&[in_c, d1, d2, d3], 1.0);
        check_layer_gradients(&mut conv, &x, 1e-2, 3e-2);
    }

    #[test]
    fn unet_preserves_spatial_shape(
        d1 in 1usize..9,
        d2 in 1usize..9,
        d3 in 1usize..5,
        levels in 1usize..4,
    ) {
        let mut net = UNet3d::new(UNetConfig {
            in_channels: 2,
            base_channels: 1,
            levels,
            seed: 0,
        });
        let x = Tensor::zeros(&[2, d1, d2, d3]);
        let y = net.forward(&x);
        prop_assert_eq!(y.shape(), &[1, d1, d2, d3]);
    }

    #[test]
    fn pool_then_upsample_restores_shape(
        d1 in 1usize..10,
        d2 in 1usize..10,
        d3 in 1usize..5,
    ) {
        let x = Tensor::zeros(&[3, d1, d2, d3]);
        let mut pool = MaxPool3d::new();
        let pooled_t = pool.forward(&x);
        prop_assert_eq!(pooled_t.shape(), &[3, pooled(d1), pooled(d2), pooled(d3)]);
        let mut up = Upsample3d::to_shape([d1, d2, d3]);
        let restored = up.forward(&pooled_t);
        prop_assert_eq!(restored.shape(), x.shape());
    }

    #[test]
    fn activations_preserve_shape_and_ranges(
        len in 1usize..64,
        seed in 0u64..1000,
    ) {
        let x = Initializer::new(seed).uniform(&[len], 5.0);
        let r = Relu::new().forward(&x);
        prop_assert!(r.data().iter().all(|&v| v >= 0.0));
        let s = Sigmoid::new().forward(&x);
        prop_assert!(s.data().iter().all(|&v| v > 0.0 && v < 1.0));
        prop_assert_eq!(r.shape(), x.shape());
        prop_assert_eq!(s.shape(), x.shape());
    }

    #[test]
    fn bce_loss_is_nonnegative_and_grad_bounded(
        len in 1usize..32,
        seed in 0u64..1000,
    ) {
        let logits = Initializer::new(seed).uniform(&[len], 8.0);
        let targets = Initializer::new(seed ^ 2).uniform(&[len], 0.5).map(|v| v.abs().min(1.0));
        let out = bce_with_logits(&logits, &targets, None);
        prop_assert!(out.loss >= 0.0);
        // Per-element gradient of the mean is bounded by 1/len.
        for &g in out.grad.data() {
            prop_assert!(g.abs() <= 1.0 / len as f32 + 1e-6);
        }
    }

    #[test]
    fn serialization_rejects_random_corruption(
        flip in 8usize..64,
        byte in 0u8..255,
    ) {
        let cfg = UNetConfig { in_channels: 2, base_channels: 1, levels: 1, seed: 0 };
        let mut net = UNet3d::new(cfg);
        let mut bytes = Vec::new();
        save_params(&mut net, &mut bytes).unwrap();
        // Corrupt a header byte; loading must error, never panic.
        let i = flip % bytes.len().min(64);
        if bytes[i] == byte {
            return Ok(()); // no-op corruption
        }
        bytes[i] = byte;
        let mut other = UNet3d::new(cfg);
        let _ = load_params(&mut other, bytes.as_slice()); // Err or Ok, no panic
    }
}

#[test]
fn training_step_reduces_loss_on_one_sample() {
    // One fixed (input, target) pair: repeated Adam steps must reduce BCE.
    use oarsmt_nn::optim::Adam;
    let mut net = UNet3d::new(UNetConfig {
        in_channels: 2,
        base_channels: 2,
        levels: 1,
        seed: 9,
    });
    let x = Initializer::new(1).uniform(&[2, 4, 4, 2], 1.0);
    let target = Initializer::new(2)
        .uniform(&[1, 4, 4, 2], 0.5)
        .map(|v| v.abs().min(1.0));
    let mut opt = Adam::new(1e-2);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..60 {
        net.zero_grad();
        let logits = net.forward(&x);
        let out = bce_with_logits(&logits, &target, None);
        net.backward(&out.grad);
        opt.step(&mut net);
        first.get_or_insert(out.loss);
        last = out.loss;
    }
    assert!(
        last < first.unwrap() * 0.8,
        "loss {} -> {} should drop by >20%",
        first.unwrap(),
        last
    );
}
