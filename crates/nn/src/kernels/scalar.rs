//! The scalar register tiles: the default kernel family, bit-identical to
//! the naive seven-loop oracle (moved verbatim from `conv3d`; the
//! accumulation-order contract lives in that module's docs and DESIGN.md
//! §9).

/// The forward register tile: `M` output channels × `N` z lanes, bias
/// first, K strictly ascending per element.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn fwd_tile<const M: usize, const N: usize>(
    xp: &[f32],
    off: &[usize],
    src_base: usize,
    w: &[f32],
    bias: &[f32],
    oc0: usize,
    out: &mut [f32],
    n: usize,
    out_base: usize,
) {
    let kd = off.len();
    let mut acc = [[0.0f32; N]; M];
    for (i, row) in acc.iter_mut().enumerate() {
        *row = [bias[oc0 + i]; N];
    }
    for (kx, &o) in off.iter().enumerate() {
        let src = &xp[o + src_base..o + src_base + N];
        for (i, row) in acc.iter_mut().enumerate() {
            let wv = w[(oc0 + i) * kd + kx];
            for (v, &s) in row.iter_mut().zip(src) {
                *v += wv * s;
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let ob = (oc0 + i) * n + out_base;
        out[ob..ob + N].copy_from_slice(row);
    }
}

/// `out[i][col0 + j] = bias[i] + Σ_k a[i][k] · b[k][j]` for `i < m`,
/// `j < n`, with the K loop strictly ascending per output element.
/// Register-blocked `MR`×`NR` tiles; edges fall back to scalar columns
/// (same per-element order either way).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_bias(
    m: usize,
    kd: usize,
    n: usize,
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
) {
    use super::{MR, NR};
    let mut i0 = 0;
    while i0 < m {
        let mr = MR.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let nr = NR.min(n - j0);
            if mr == MR && nr == NR {
                gemm_tile(a, bias, b, ldb, kd, i0, j0, out, ldo, col0);
            } else {
                gemm_cols(
                    a,
                    bias,
                    b,
                    ldb,
                    kd,
                    i0,
                    i0 + mr,
                    j0,
                    j0 + nr,
                    out,
                    ldo,
                    col0,
                );
            }
            j0 += nr;
        }
        i0 += mr;
    }
}

/// Scalar edge columns of the GEMM: rows `[i0, i1)` × columns `[j0, j1)`,
/// one fresh bias-first K-ascending accumulation per element (the shared
/// ragged-edge path of both kernel families).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_cols(
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    ldb: usize,
    kd: usize,
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
) {
    for i in i0..i1 {
        let arow = &a[i * kd..(i + 1) * kd];
        for j in j0..j1 {
            let mut acc = bias[i];
            for (kx, &av) in arow.iter().enumerate() {
                acc += av * b[kx * ldb + j];
            }
            out[i * ldo + col0 + j] = acc;
        }
    }
}

/// The full `MR`×`NR` GEMM tile of the panel/flat paths:
/// `out[i0 + i][col0 + j0 + j] = bias[i0 + i] + Σ_k a[i0 + i][k]·b[k][j0 + j]`
/// with the K loop strictly ascending per output element.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_tile(
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    ldb: usize,
    kd: usize,
    i0: usize,
    j0: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
) {
    use super::{MR, NR};
    let mut acc = [[0.0f32; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        *row = [bias[i0 + i]; NR];
    }
    for kx in 0..kd {
        let brow = &b[kx * ldb + j0..kx * ldb + j0 + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + i) * kd + kx];
            for (v, &bv) in row.iter_mut().zip(brow) {
                *v += av * bv;
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let o = (i0 + i) * ldo + col0 + j0;
        out[o..o + NR].copy_from_slice(row);
    }
}

/// One fresh z-ascending dot for `L` output-channel lanes of tap `kx`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn wg_lanes<const L: usize>(
    xrow: &[f32],
    gt: &[f32],
    gt_base: usize,
    out_c: usize,
    oc0: usize,
    gw: &mut [f32],
    kd: usize,
    kx: usize,
) {
    let mut acc = [0.0f32; L];
    for (z, &xv) in xrow.iter().enumerate() {
        let lane = gt_base + z * out_c + oc0;
        for (av, &gv) in acc.iter_mut().zip(&gt[lane..lane + L]) {
            *av += xv * gv;
        }
    }
    for (l, &av) in acc.iter().enumerate() {
        gw[(oc0 + l) * kd + kx] += av;
    }
}

/// The gather register tile: `L` input channels × `N` z lanes of one
/// `(ix, iy)` input row, accumulated in `oc asc, a desc, b desc, c asc`
/// order and stored once.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn ig_tile<const L: usize, const N: usize>(
    gsrc: &[f32],
    out_c: usize,
    in_c: usize,
    k: usize,
    p: usize,
    d1: usize,
    d2: usize,
    d3: usize,
    pd1: usize,
    pd2: usize,
    pd3: usize,
    w: &[f32],
    gi: &mut [f32],
    ic0: usize,
    ix: usize,
    iy: usize,
    zc: usize,
    ldo: usize,
    col0: usize,
) {
    let p2 = 2 * p;
    let kk = k * k * k;
    let mut acc = [[0.0f32; N]; L];
    for oc in 0..out_c {
        for a in (0..k).rev() {
            let px = ix + p2 - a;
            if px < p || px - p >= d1 {
                continue;
            }
            for b in (0..k).rev() {
                let py = iy + p2 - b;
                if py < p || py - p >= d2 {
                    continue;
                }
                let w_base = (((oc * in_c + ic0) * k + a) * k + b) * k;
                for c in 0..k {
                    let g_base = ((oc * pd1 + px) * pd2 + py) * pd3 + (p2 - c) + zc;
                    let gch = &gsrc[g_base..g_base + N];
                    for (l, accl) in acc.iter_mut().enumerate() {
                        let wv = w[w_base + l * kk + c];
                        for (v, &gv) in accl.iter_mut().zip(gch) {
                            *v += wv * gv;
                        }
                    }
                }
            }
        }
    }
    for (l, accl) in acc.iter().enumerate() {
        let gb = (ic0 + l) * ldo + col0 + (ix * d2 + iy) * d3 + zc;
        gi[gb..gb + N].copy_from_slice(accl);
    }
}
