//! AVX2+FMA ports of the register tiles in [`scalar`](super::scalar).
//!
//! Each kernel keeps the scalar tile's loop structure and per-element
//! accumulation *sequence* exactly — the only arithmetic difference is
//! that `_mm256_fmadd_ps` fuses every multiply-add into a single rounding,
//! which is why this lane is ULP-bounded rather than bit-identical
//! (DESIGN.md §9). One 8-wide `__m256` register covers the `NR = 8` z
//! lanes (forward, panel GEMM, gather) or the `WL = 8` output-channel
//! lanes (weight grad), so the tile geometry is unchanged.
//!
//! # Safety
//!
//! Every function here carries `#[target_feature(enable = "avx2,fma")]`,
//! so calling one is `unsafe` with the contract *the running CPU supports
//! AVX2 and FMA* — the dispatchers in [`super`] establish that via the
//! cached [`simd_available`](super::simd_available) probe. The pointer
//! arithmetic inside touches exactly the indices the scalar tiles address
//! through checked slices; each `unsafe` block states the bound it relies
//! on, and debug builds re-check the tile's outermost bounds with
//! `debug_assert!`.

use core::arch::x86_64::{
    _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
};

use super::{ICT, MR, NR, WL};

/// Forward tile, `MR = 4` output channels × `NR = 8` z lanes: SIMD twin
/// of [`scalar::fwd_tile`](super::scalar::fwd_tile)`::<4, 8>`.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn fwd_tile_4x8(
    xp: &[f32],
    off: &[usize],
    src_base: usize,
    w: &[f32],
    bias: &[f32],
    oc0: usize,
    out: &mut [f32],
    ldo: usize,
    out_base: usize,
) {
    let kd = off.len();
    debug_assert!(bias.len() >= oc0 + MR);
    debug_assert!(w.len() >= (oc0 + MR) * kd);
    debug_assert!(out.len() >= (oc0 + MR - 1) * ldo + out_base + NR);
    let mut acc = [_mm256_setzero_ps(); MR];
    for (i, a) in acc.iter_mut().enumerate() {
        *a = _mm256_set1_ps(bias[oc0 + i]);
    }
    for (kx, &o) in off.iter().enumerate() {
        debug_assert!(xp.len() >= o + src_base + NR);
        // SAFETY: the scalar tile reads `xp[o + src_base .. o + src_base + 8]`
        // through a checked slice; the caller passes the same `off`/`src_base`.
        let src = unsafe { _mm256_loadu_ps(xp.as_ptr().add(o + src_base)) };
        for (i, a) in acc.iter_mut().enumerate() {
            *a = _mm256_fmadd_ps(_mm256_set1_ps(w[(oc0 + i) * kd + kx]), src, *a);
        }
    }
    for (i, a) in acc.iter().enumerate() {
        // SAFETY: row `oc0 + i` spans `[(oc0 + i)·ldo + out_base, +8)`, in
        // bounds per the debug_assert above (same slice the scalar tile
        // writes through `copy_from_slice`).
        unsafe { _mm256_storeu_ps(out.as_mut_ptr().add((oc0 + i) * ldo + out_base), *a) };
    }
}

/// Columns a wide GEMM tile covers: two `__m256` per row, eight
/// accumulator registers per `MR`-row block — enough independent FMA
/// chains to cover the fused-multiply-add latency that the 8-column tile
/// leaves on the table.
const NW: usize = 2 * NR;

/// Whole panel/flat GEMM, SIMD lane of
/// [`scalar::gemm_bias`](super::scalar::gemm_bias). Walks 16-column
/// panels **column-major** (all row blocks of one panel before the next),
/// so the `kd`×16 slice of `b` a panel reads stays L1-resident instead of
/// being re-streamed from L2/L3 once per row block. Per output element
/// the accumulation is still one bias-first K-ascending chain; only the
/// tile traversal order differs from the scalar lane, and traversal order
/// never touches element values.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_bias_wide(
    m: usize,
    kd: usize,
    n: usize,
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
) {
    let mut j0 = 0;
    while j0 + NW <= n {
        let mut i0 = 0;
        while i0 + MR <= m {
            gemm_tile_4x16(a, bias, b, ldb, kd, i0, j0, out, ldo, col0);
            i0 += MR;
        }
        if i0 < m {
            super::scalar::gemm_cols(a, bias, b, ldb, kd, i0, m, j0, j0 + NW, out, ldo, col0);
        }
        j0 += NW;
    }
    if j0 + NR <= n {
        let mut i0 = 0;
        while i0 + MR <= m {
            gemm_tile_4x8(a, bias, b, ldb, kd, i0, j0, out, ldo, col0);
            i0 += MR;
        }
        if i0 < m {
            super::scalar::gemm_cols(a, bias, b, ldb, kd, i0, m, j0, j0 + NR, out, ldo, col0);
        }
        j0 += NR;
    }
    if j0 < n {
        super::scalar::gemm_cols(a, bias, b, ldb, kd, 0, m, j0, n, out, ldo, col0);
    }
}

/// Wide GEMM tile, `MR = 4` rows × [`NW`]` = 16` columns: each of the
/// eight accumulators is an independent FMA chain, and each broadcast of
/// `a[i][k]` feeds two fused multiply-adds.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
fn gemm_tile_4x16(
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    ldb: usize,
    kd: usize,
    i0: usize,
    j0: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
) {
    debug_assert!(bias.len() >= i0 + MR);
    debug_assert!(a.len() >= (i0 + MR) * kd);
    debug_assert!(kd == 0 || b.len() >= (kd - 1) * ldb + j0 + NW);
    debug_assert!(out.len() >= (i0 + MR - 1) * ldo + col0 + j0 + NW);
    let mut lo = [_mm256_setzero_ps(); MR];
    let mut hi = [_mm256_setzero_ps(); MR];
    for i in 0..MR {
        let bv = _mm256_set1_ps(bias[i0 + i]);
        lo[i] = bv;
        hi[i] = bv;
    }
    for kx in 0..kd {
        let base = kx * ldb + j0;
        // SAFETY: the scalar lane reads `b[kx·ldb + j0 .. +16]` through
        // checked slices; bounds re-checked by the debug_assert above.
        let b0 = unsafe { _mm256_loadu_ps(b.as_ptr().add(base)) };
        // SAFETY: as above, columns `j0 + 8 .. j0 + 16` of row `kx`.
        let b1 = unsafe { _mm256_loadu_ps(b.as_ptr().add(base + 8)) };
        for i in 0..MR {
            let av = _mm256_set1_ps(a[(i0 + i) * kd + kx]);
            lo[i] = _mm256_fmadd_ps(av, b0, lo[i]);
            hi[i] = _mm256_fmadd_ps(av, b1, hi[i]);
        }
    }
    for i in 0..MR {
        let o = (i0 + i) * ldo + col0 + j0;
        // SAFETY: row `i0 + i` spans `[o, o + 16)`, in bounds per the
        // debug_assert above.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(o), lo[i]) };
        // SAFETY: as above, the upper 8 of the same 16-column span.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr().add(o + 8), hi[i]) };
    }
}

/// Narrow GEMM tile, `MR = 4` rows × `NR = 8` columns, for the column
/// remainder of [`gemm_bias_wide`]: SIMD twin of
/// [`scalar::gemm_tile`](super::scalar::gemm_tile).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
fn gemm_tile_4x8(
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    ldb: usize,
    kd: usize,
    i0: usize,
    j0: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
) {
    debug_assert!(bias.len() >= i0 + MR);
    debug_assert!(a.len() >= (i0 + MR) * kd);
    debug_assert!(kd == 0 || b.len() >= (kd - 1) * ldb + j0 + NR);
    debug_assert!(out.len() >= (i0 + MR - 1) * ldo + col0 + j0 + NR);
    let mut acc = [_mm256_setzero_ps(); MR];
    for (i, v) in acc.iter_mut().enumerate() {
        *v = _mm256_set1_ps(bias[i0 + i]);
    }
    for kx in 0..kd {
        // SAFETY: the scalar tile reads `b[kx·ldb + j0 .. +8]` through a
        // checked slice; bounds re-checked by the debug_assert above.
        let brow = unsafe { _mm256_loadu_ps(b.as_ptr().add(kx * ldb + j0)) };
        for (i, v) in acc.iter_mut().enumerate() {
            *v = _mm256_fmadd_ps(_mm256_set1_ps(a[(i0 + i) * kd + kx]), brow, *v);
        }
    }
    for (i, v) in acc.iter().enumerate() {
        // SAFETY: row `i0 + i` spans `[(i0 + i)·ldo + col0 + j0, +8)`, in
        // bounds per the debug_assert above.
        unsafe { _mm256_storeu_ps(out.as_mut_ptr().add((i0 + i) * ldo + col0 + j0), *v) };
    }
}

/// Weight-gradient lanes, `WL = 8` output channels: SIMD twin of
/// [`scalar::wg_lanes`](super::scalar::wg_lanes)`::<8>`.
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn wg_lanes_8(
    xrow: &[f32],
    gt: &[f32],
    gt_base: usize,
    out_c: usize,
    oc0: usize,
    gw: &mut [f32],
    kd: usize,
    kx: usize,
) {
    debug_assert!(xrow.is_empty() || gt.len() >= gt_base + (xrow.len() - 1) * out_c + oc0 + WL);
    let mut acc = _mm256_setzero_ps();
    for (z, &xv) in xrow.iter().enumerate() {
        let lane = gt_base + z * out_c + oc0;
        // SAFETY: the scalar kernel reads `gt[lane .. lane + 8]` through a
        // checked slice; bounds re-checked by the debug_assert above.
        let g = unsafe { _mm256_loadu_ps(gt.as_ptr().add(lane)) };
        acc = _mm256_fmadd_ps(_mm256_set1_ps(xv), g, acc);
    }
    let mut lanes = [0.0f32; WL];
    // SAFETY: `lanes` is exactly 8 floats.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
    for (l, &av) in lanes.iter().enumerate() {
        gw[(oc0 + l) * kd + kx] += av;
    }
}

/// Input-gradient gather tile, `ICT = 4` input channels × `NR = 8` z
/// lanes: SIMD twin of [`scalar::ig_tile`](super::scalar::ig_tile)
/// `::<4, 8>` (same `oc asc, a desc, b desc, c asc` sweep).
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
pub(crate) fn ig_tile_4x8(
    gsrc: &[f32],
    out_c: usize,
    in_c: usize,
    k: usize,
    p: usize,
    d1: usize,
    d2: usize,
    d3: usize,
    pd1: usize,
    pd2: usize,
    pd3: usize,
    w: &[f32],
    gi: &mut [f32],
    ic0: usize,
    ix: usize,
    iy: usize,
    zc: usize,
    ldo: usize,
    col0: usize,
) {
    let p2 = 2 * p;
    let kk = k * k * k;
    debug_assert!(gi.len() >= (ic0 + ICT - 1) * ldo + col0 + (ix * d2 + iy) * d3 + zc + NR);
    let mut acc = [_mm256_setzero_ps(); ICT];
    for oc in 0..out_c {
        for a in (0..k).rev() {
            let px = ix + p2 - a;
            if px < p || px - p >= d1 {
                continue;
            }
            for b in (0..k).rev() {
                let py = iy + p2 - b;
                if py < p || py - p >= d2 {
                    continue;
                }
                let w_base = (((oc * in_c + ic0) * k + a) * k + b) * k;
                for c in 0..k {
                    let g_base = ((oc * pd1 + px) * pd2 + py) * pd3 + (p2 - c) + zc;
                    debug_assert!(gsrc.len() >= g_base + NR);
                    // SAFETY: the scalar tile reads `gsrc[g_base .. g_base + 8]`
                    // through a checked slice for the same `(oc, px, py, c, zc)`.
                    let g = unsafe { _mm256_loadu_ps(gsrc.as_ptr().add(g_base)) };
                    for (l, accl) in acc.iter_mut().enumerate() {
                        let wv = _mm256_set1_ps(w[w_base + l * kk + c]);
                        *accl = _mm256_fmadd_ps(wv, g, *accl);
                    }
                }
            }
        }
    }
    for (l, accl) in acc.iter().enumerate() {
        let gb = (ic0 + l) * ldo + col0 + (ix * d2 + iy) * d3 + zc;
        // SAFETY: row `ic0 + l` spans `[gb, gb + 8)`, in bounds per the
        // debug_assert above (the scalar tile's `copy_from_slice` range).
        unsafe { _mm256_storeu_ps(gi.as_mut_ptr().add(gb), *accl) };
    }
}

// The kernels above hard-code one 8-wide register per tile row; they are
// only correct at the exact geometry the dispatchers check for.
const _: () = assert!(MR == 4 && NR == 8 && WL == 8 && ICT == 4);
