//! GEMM micro-kernel family and runtime kernel dispatch.
//!
//! The convolution lowering in [`conv3d`](crate::conv3d) funnels every
//! FLOP through four register tiles: the forward tile (`MR` output
//! channels × `NR` z lanes), the panel GEMM tile (same geometry over a
//! materialized patch panel), the weight-gradient lanes (`WL` output
//! channels) and the input-gradient gather tile (`ICT` input channels ×
//! `NR` z lanes). This module owns those tiles in two flavors:
//!
//! * `scalar` — the default. Bit-identical to the naive seven-loop
//!   oracle (the per-element accumulation-order contract of DESIGN.md §9).
//! * `avx2` — AVX2+FMA ports of the same tiles, compiled only under the
//!   `simd` cargo feature on `x86_64`. FMA contracts each
//!   multiply-then-add into one rounding, so this lane is a **documented
//!   opt-out of the bit-identity guarantee**: results agree with the
//!   scalar tiles to a small ULP bound (see [`close_enough`]) but not bit
//!   for bit.
//!
//! Selection is explicit and never automatic: callers set a
//! [`KernelPolicy`] on their [`NnWorkspace`](crate::workspace::NnWorkspace)
//! (default [`KernelPolicy::Scalar`]), and [`KernelPolicy::Simd`] engages
//! the wide tiles only when [`simd_available`] — a cached
//! `is_x86_feature_detected!` probe — confirms AVX2 and FMA at runtime.
//! On any other host (or with the feature off) the policy silently
//! resolves back to the scalar tiles, so requesting SIMD is always safe
//! and always deterministic for a given host. The telemetry counter
//! `gemm_kernel_simd` records each conv kernel entry that actually ran
//! the wide lane, making the dispatch observable in tests and bench
//! artifacts.

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod avx2;
pub(crate) mod scalar;

/// Micro-kernel rows (output channels per forward register tile).
pub(crate) const MR: usize = 4;
/// Micro-kernel columns (z lanes per register tile).
pub(crate) const NR: usize = 8;
/// Output-channel lanes of the weight-gradient kernel.
pub(crate) const WL: usize = 8;
/// Input-channel lanes of the input-gradient gather (share each padded
/// gradient-row read across `ICT` register accumulator rows).
pub(crate) const ICT: usize = 4;

/// Which micro-kernel family a workspace routes conv GEMM calls through.
///
/// `Scalar` is the default and the only policy that preserves the
/// bit-identity contract against the naive oracle. `Simd` *requests* the
/// AVX2+FMA tiles; it engages only when the crate was built with the
/// `simd` feature **and** [`simd_available`] holds on this host, and
/// falls back to the scalar tiles (bit-identical results) otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPolicy {
    /// Scalar register tiles; bit-identical to the naive oracle.
    #[default]
    Scalar,
    /// AVX2+FMA register tiles where supported; ULP-bounded, not
    /// bit-identical (DESIGN.md §9 opt-out).
    Simd,
}

/// Whether the AVX2+FMA kernel lane can run on this build and host:
/// `true` iff the `simd` feature is compiled in, the target is `x86_64`,
/// and the CPU reports both `avx2` and `fma`. The CPUID probe runs once
/// and is cached in a process-wide dispatch table (`OnceLock`), so the
/// hot path pays one relaxed atomic load, not a CPUID.
#[must_use]
pub fn simd_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Resolves a policy against the build and host: `true` means the wide
/// tiles will actually run.
/// [`NnWorkspace::set_kernel_policy`](crate::workspace::NnWorkspace::set_kernel_policy)
/// calls this once per policy change and caches the answer, so kernels
/// branch on a plain `bool`.
#[must_use]
pub fn resolve(policy: KernelPolicy) -> bool {
    match policy {
        KernelPolicy::Scalar => false,
        KernelPolicy::Simd => simd_available(),
    }
}

/// Maps a float onto a monotonically ordered integer line (negative
/// floats mirror below zero, `-0.0` and `+0.0` both map to `0`), so ULP
/// distance is a plain integer difference.
fn ordered(x: f32) -> i64 {
    let b = i64::from(x.to_bits() as i32);
    if b < 0 {
        i64::from(i32::MIN) - b
    } else {
        b
    }
}

/// Distance between `a` and `b` in units-in-the-last-place: the number of
/// representable `f32` values strictly between them (0 when equal, with
/// `-0.0 == +0.0`). `u64::MAX` if either is NaN.
#[must_use]
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    ordered(a).abs_diff(ordered(b))
}

/// The SIMD validation tolerance (DESIGN.md §9): values agree when they
/// are within [`MAX_ULP`] units-in-the-last-place *or* within
/// [`ABS_TOL`] absolutely (the absolute escape covers cancellation, where
/// a tiny absolute difference can be an unbounded relative one).
pub const MAX_ULP: u64 = 512;
/// Absolute tolerance partner of [`MAX_ULP`].
pub const ABS_TOL: f32 = 1e-5;

/// Whether `a` and `b` agree under the documented SIMD tolerance
/// ([`MAX_ULP`] ULPs or [`ABS_TOL`] absolute). NaNs never agree.
#[must_use]
pub fn close_enough(a: f32, b: f32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    (a - b).abs() <= ABS_TOL || ulp_distance(a, b) <= MAX_ULP
}

/// The largest elementwise ULP distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn max_ulp_distance(a: &[f32], b: &[f32]) -> u64 {
    assert_eq!(a.len(), b.len(), "ULP comparison needs equal shapes");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ulp_distance(x, y))
        .max()
        .unwrap_or(0)
}

/// Dispatches the forward register tile: `M` output channels × `N` z
/// lanes, bias first, K strictly ascending per element. The AVX2 lane
/// runs only for the full `MR`×`NR` geometry; ragged edges always take
/// the scalar tile (their per-element order is identical either way).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn fwd_tile<const M: usize, const N: usize>(
    simd: bool,
    xp: &[f32],
    off: &[usize],
    src_base: usize,
    w: &[f32],
    bias: &[f32],
    oc0: usize,
    out: &mut [f32],
    ldo: usize,
    out_base: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd && M == MR && N == NR {
        // SAFETY: `simd` is only true when `resolve` observed
        // `simd_available()`, i.e. the running CPU supports AVX2+FMA.
        unsafe { avx2::fwd_tile_4x8(xp, off, src_base, w, bias, oc0, out, ldo, out_base) };
        return;
    }
    let _ = simd;
    scalar::fwd_tile::<M, N>(xp, off, src_base, w, bias, oc0, out, ldo, out_base);
}

/// Dispatches the whole panel/flat GEMM
/// (`out[i][col0 + j] = bias[i] + Σ_k a[i][k]·b[k][j]`, `i < m`,
/// `j < n`). The two lanes traverse the output differently — scalar walks
/// `MR`×`NR` tiles row-block-major (the bit-identity layout), the AVX2
/// lane walks 16-column panels column-major so each `kd`×16 slice of `b`
/// stays L1-resident across every row block — but every output element is
/// still one bias-first K-ascending accumulation in both.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_bias(
    simd: bool,
    m: usize,
    kd: usize,
    n: usize,
    a: &[f32],
    bias: &[f32],
    b: &[f32],
    ldb: usize,
    out: &mut [f32],
    ldo: usize,
    col0: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd {
        // SAFETY: `simd` is only true when `resolve` observed
        // `simd_available()`, i.e. the running CPU supports AVX2+FMA.
        unsafe { avx2::gemm_bias_wide(m, kd, n, a, bias, b, ldb, out, ldo, col0) };
        return;
    }
    let _ = simd;
    scalar::gemm_bias(m, kd, n, a, bias, b, ldb, out, ldo, col0);
}

/// Dispatches the weight-gradient lanes: one fresh z-ascending dot for
/// `L` output-channel lanes of tap `kx`. The AVX2 lane runs only for the
/// full `WL`-lane geometry **and** a z run deep enough (`ICT` taps) to
/// amortize its horizontal spill — on the shallow pooled grids the spill
/// costs more than the fused multiply-adds save.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn wg_lanes<const L: usize>(
    simd: bool,
    xrow: &[f32],
    gt: &[f32],
    gt_base: usize,
    out_c: usize,
    oc0: usize,
    gw: &mut [f32],
    kd: usize,
    kx: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd && L == WL && xrow.len() >= ICT {
        // SAFETY: `simd` is only true when `resolve` observed
        // `simd_available()`, i.e. the running CPU supports AVX2+FMA.
        unsafe { avx2::wg_lanes_8(xrow, gt, gt_base, out_c, oc0, gw, kd, kx) };
        return;
    }
    let _ = simd;
    scalar::wg_lanes::<L>(xrow, gt, gt_base, out_c, oc0, gw, kd, kx);
}

/// Dispatches the input-gradient gather tile: `L` input channels × `N` z
/// lanes of one `(ix, iy)` input row, accumulated in the naive
/// `oc asc, a desc, b desc, c asc` order. The AVX2 lane runs only for
/// the full `ICT`×`NR` geometry.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn ig_tile<const L: usize, const N: usize>(
    simd: bool,
    gsrc: &[f32],
    out_c: usize,
    in_c: usize,
    k: usize,
    p: usize,
    d1: usize,
    d2: usize,
    d3: usize,
    pd1: usize,
    pd2: usize,
    pd3: usize,
    w: &[f32],
    gi: &mut [f32],
    ic0: usize,
    ix: usize,
    iy: usize,
    zc: usize,
    ldo: usize,
    col0: usize,
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd && L == ICT && N == NR {
        // SAFETY: `simd` is only true when `resolve` observed
        // `simd_available()`, i.e. the running CPU supports AVX2+FMA.
        unsafe {
            avx2::ig_tile_4x8(
                gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ix, iy, zc, ldo,
                col0,
            );
        }
        return;
    }
    let _ = simd;
    scalar::ig_tile::<L, N>(
        gsrc, out_c, in_c, k, p, d1, d2, d3, pd1, pd2, pd3, w, gi, ic0, ix, iy, zc, ldo, col0,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_policy_never_resolves_to_simd() {
        assert!(!resolve(KernelPolicy::Scalar));
    }

    #[test]
    fn simd_policy_resolves_to_availability() {
        // Without the feature this is always false; with it, it matches
        // the (cached) CPUID probe — either way the two must agree.
        assert_eq!(resolve(KernelPolicy::Simd), simd_available());
        #[cfg(not(feature = "simd"))]
        assert!(
            !simd_available(),
            "simd_available is false without the feature"
        );
    }

    #[test]
    fn default_policy_is_scalar() {
        assert_eq!(KernelPolicy::default(), KernelPolicy::Scalar);
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        // Symmetric across zero: 1 ULP below +min_positive is -min_positive? No —
        // one step below the smallest positive subnormal is zero, then the
        // negative line continues.
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(tiny, 0.0), 1);
        assert_eq!(ulp_distance(tiny, -tiny), 2);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
        assert!(ulp_distance(1.0, -1.0) > 1 << 30, "opposite signs are far");
    }

    #[test]
    fn close_enough_accepts_tolerance_and_rejects_gross_error() {
        assert!(close_enough(1.0, 1.0));
        assert!(close_enough(1.0, 1.0 + 1e-6), "abs escape");
        assert!(close_enough(1e20, 1e20 * (1.0 + 1e-6)), "ulp escape");
        assert!(!close_enough(1.0, 1.1));
        assert!(!close_enough(f32::NAN, f32::NAN));
    }

    #[test]
    fn max_ulp_distance_scans_elementwise() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, f32::from_bits(2.0f32.to_bits() + 3), 3.0];
        assert_eq!(max_ulp_distance(&a, &b), 3);
    }
}
